//! # Qonductor
//!
//! A Rust reproduction of *"Qonductor: A Cloud Orchestrator for Quantum
//! Computing"* (SC '25). This facade crate re-exports the workspace crates
//! under a single namespace so that examples, integration tests, and
//! downstream users can depend on one crate.
//!
//! * [`circuit`] — circuit IR, DAG, metrics, algorithm generators, workloads.
//! * [`backend`] — QPU models, calibration, noise, noisy simulator, queues, fleets.
//! * [`transpiler`] — basis decomposition, layout/routing, scheduling.
//! * [`mitigation`] — ZNE, REM, DD, Pauli twirling, PEC, circuit knitting.
//! * [`estimator`] — regression + numerical fidelity/runtime estimation, resource plans.
//! * [`scheduler`] — NSGA-II multi-objective scheduler, MCDM selection, baselines.
//! * [`consensus`] — heartbeat failure detection, Raft-lite election, replicated KV store.
//! * [`cloudsim`] — discrete-event cloud simulation, load generator, metrics.
//! * [`core`] — the Qonductor API, workflow manager/registry, job manager, control plane.

pub use qonductor_backend as backend;
pub use qonductor_circuit as circuit;
pub use qonductor_cloudsim as cloudsim;
pub use qonductor_consensus as consensus;
pub use qonductor_core as core;
pub use qonductor_estimator as estimator;
pub use qonductor_mitigation as mitigation;
pub use qonductor_scheduler as scheduler;
pub use qonductor_transpiler as transpiler;
