//! Calibration-crossover handling (§7): if a generated schedule spans a
//! calibration cycle boundary, the jobs that would run *after* the calibration
//! update are partitioned off so that their fidelity/runtime estimates can be
//! recomputed with the new calibration data and the jobs reassigned or delayed.

use serde::{Deserialize, Serialize};

/// One scheduled job with its planned start time on its assigned QPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedJob {
    /// Job identifier.
    pub job_id: u64,
    /// Index of the QPU the job was assigned to.
    pub qpu_index: usize,
    /// Planned start time (simulated seconds).
    pub start_s: f64,
    /// Planned execution duration in seconds.
    pub duration_s: f64,
}

impl PlannedJob {
    /// Planned finish time.
    pub fn finish_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// The partition of a schedule at a calibration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossoverPartition {
    /// Jobs that complete entirely before the calibration boundary: keep as-is.
    pub before: Vec<PlannedJob>,
    /// Jobs that start before but finish after the boundary: they straddle the
    /// calibration update and are conservatively re-evaluated as well.
    pub straddling: Vec<PlannedJob>,
    /// Jobs that start after the boundary: must be re-estimated with the new
    /// calibration data and reassigned or delayed.
    pub after: Vec<PlannedJob>,
}

impl CrossoverPartition {
    /// `true` if any job needs re-evaluation (straddles or follows the boundary).
    pub fn needs_reevaluation(&self) -> bool {
        !self.straddling.is_empty() || !self.after.is_empty()
    }

    /// Job IDs requiring fresh estimates from the resource estimator.
    pub fn jobs_to_reestimate(&self) -> Vec<u64> {
        self.straddling.iter().chain(self.after.iter()).map(|j| j.job_id).collect()
    }
}

/// Partition a planned schedule at a calibration boundary time.
pub fn partition_at_boundary(schedule: &[PlannedJob], boundary_s: f64) -> CrossoverPartition {
    let mut before = Vec::new();
    let mut straddling = Vec::new();
    let mut after = Vec::new();
    for job in schedule {
        if job.finish_s() <= boundary_s {
            before.push(*job);
        } else if job.start_s < boundary_s {
            straddling.push(*job);
        } else {
            after.push(*job);
        }
    }
    CrossoverPartition { before, straddling, after }
}

/// Build the planned per-QPU timeline of an assignment: jobs run back-to-back
/// on their assigned QPU after its current queue drains.
pub fn plan_timeline(
    assignment: &[(u64, usize, f64)], // (job_id, qpu_index, duration_s)
    qpu_waiting_s: &[f64],
    now_s: f64,
) -> Vec<PlannedJob> {
    let mut next_free: Vec<f64> = qpu_waiting_s.iter().map(|w| now_s + w).collect();
    let mut planned = Vec::with_capacity(assignment.len());
    for &(job_id, qpu, duration_s) in assignment {
        let start = next_free[qpu];
        planned.push(PlannedJob { job_id, qpu_index: qpu, start_s: start, duration_s });
        next_free[qpu] = start + duration_s;
    }
    planned
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_classifies_before_straddling_after() {
        let schedule = vec![
            PlannedJob { job_id: 1, qpu_index: 0, start_s: 0.0, duration_s: 50.0 },
            PlannedJob { job_id: 2, qpu_index: 0, start_s: 80.0, duration_s: 50.0 },
            PlannedJob { job_id: 3, qpu_index: 1, start_s: 150.0, duration_s: 20.0 },
        ];
        let partition = partition_at_boundary(&schedule, 100.0);
        assert_eq!(partition.before.len(), 1);
        assert_eq!(partition.straddling.len(), 1);
        assert_eq!(partition.after.len(), 1);
        assert!(partition.needs_reevaluation());
        assert_eq!(partition.jobs_to_reestimate(), vec![2, 3]);
    }

    #[test]
    fn schedule_entirely_before_boundary_needs_no_work() {
        let schedule = vec![PlannedJob { job_id: 1, qpu_index: 0, start_s: 0.0, duration_s: 10.0 }];
        let partition = partition_at_boundary(&schedule, 1000.0);
        assert!(!partition.needs_reevaluation());
        assert!(partition.jobs_to_reestimate().is_empty());
    }

    #[test]
    fn timeline_respects_queue_waits_and_serialises_per_qpu() {
        let assignment = vec![(1u64, 0usize, 10.0), (2, 0, 20.0), (3, 1, 5.0)];
        let planned = plan_timeline(&assignment, &[30.0, 0.0], 100.0);
        assert_eq!(planned[0].start_s, 130.0);
        assert_eq!(planned[1].start_s, 140.0);
        assert_eq!(planned[1].finish_s(), 160.0);
        assert_eq!(planned[2].start_s, 100.0);
    }

    #[test]
    fn boundary_exactly_at_finish_keeps_job_before() {
        let schedule =
            vec![PlannedJob { job_id: 1, qpu_index: 0, start_s: 0.0, duration_s: 100.0 }];
        let partition = partition_at_boundary(&schedule, 100.0);
        assert_eq!(partition.before.len(), 1);
        assert!(partition.straddling.is_empty());
        assert!(partition.after.is_empty());
        assert!(!partition.needs_reevaluation());
    }

    /// A job *starting* exactly at the boundary runs entirely under the new
    /// calibration: it belongs to `after`, not `straddling`.
    #[test]
    fn boundary_exactly_at_start_moves_job_after() {
        let schedule =
            vec![PlannedJob { job_id: 7, qpu_index: 2, start_s: 100.0, duration_s: 10.0 }];
        let partition = partition_at_boundary(&schedule, 100.0);
        assert!(partition.before.is_empty());
        assert!(partition.straddling.is_empty());
        assert_eq!(partition.after.len(), 1);
        assert_eq!(partition.jobs_to_reestimate(), vec![7]);
    }

    /// A zero-duration job exactly at the boundary finishes at the boundary —
    /// `finish <= boundary` wins, so it stays `before` (it never executes
    /// under the new calibration).
    #[test]
    fn zero_duration_job_at_the_boundary_stays_before() {
        let schedule =
            vec![PlannedJob { job_id: 3, qpu_index: 0, start_s: 100.0, duration_s: 0.0 }];
        let partition = partition_at_boundary(&schedule, 100.0);
        assert_eq!(partition.before.len(), 1);
        assert!(!partition.needs_reevaluation());
    }

    #[test]
    fn empty_schedule_partitions_to_nothing() {
        let partition = partition_at_boundary(&[], 50.0);
        assert!(partition.before.is_empty());
        assert!(partition.straddling.is_empty());
        assert!(partition.after.is_empty());
        assert!(!partition.needs_reevaluation());
        assert!(partition.jobs_to_reestimate().is_empty());
    }

    #[test]
    fn schedule_entirely_after_boundary_reestimates_everything() {
        let schedule = vec![
            PlannedJob { job_id: 1, qpu_index: 0, start_s: 10.0, duration_s: 5.0 },
            PlannedJob { job_id: 2, qpu_index: 1, start_s: 20.0, duration_s: 5.0 },
        ];
        let partition = partition_at_boundary(&schedule, 10.0);
        assert!(partition.before.is_empty());
        assert!(partition.straddling.is_empty());
        assert_eq!(partition.after.len(), 2);
        assert_eq!(partition.jobs_to_reestimate(), vec![1, 2]);
    }

    /// The partition is exhaustive and exclusive: every input job lands in
    /// exactly one bucket, whatever the boundary.
    #[test]
    fn partition_conserves_jobs_across_boundaries() {
        let schedule: Vec<PlannedJob> = (0..20)
            .map(|i| PlannedJob {
                job_id: i,
                qpu_index: (i % 3) as usize,
                start_s: (i as f64) * 7.5,
                duration_s: 1.0 + (i % 5) as f64 * 3.0,
            })
            .collect();
        for boundary in [-10.0, 0.0, 7.5, 40.0, 75.0, 1_000.0] {
            let partition = partition_at_boundary(&schedule, boundary);
            let mut ids: Vec<u64> = partition
                .before
                .iter()
                .chain(&partition.straddling)
                .chain(&partition.after)
                .map(|j| j.job_id)
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..20).collect::<Vec<u64>>(), "boundary {boundary}");
        }
    }
}
