//! Scheduling triggers (§7): scheduling is invoked either when the pending job
//! queue reaches a size limit (default 100) or when a time interval elapses
//! (default 120 s), whichever comes first.

use serde::{Deserialize, Serialize};

/// Trigger configuration and state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleTrigger {
    /// Queue-size trigger threshold (paper default: 100 jobs).
    pub queue_limit: usize,
    /// Time-based trigger interval in seconds (paper default: 120 s).
    pub interval_s: f64,
    /// Simulated time of the last scheduling invocation.
    last_invocation_s: f64,
}

/// Why scheduling was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerReason {
    /// The pending queue reached the size limit.
    QueueSize,
    /// The time interval elapsed.
    Interval,
}

impl Default for ScheduleTrigger {
    fn default() -> Self {
        ScheduleTrigger { queue_limit: 100, interval_s: 120.0, last_invocation_s: 0.0 }
    }
}

impl ScheduleTrigger {
    /// Create a trigger with explicit thresholds.
    pub fn new(queue_limit: usize, interval_s: f64) -> Self {
        ScheduleTrigger { queue_limit, interval_s, last_invocation_s: 0.0 }
    }

    /// Check whether scheduling should run now. Returns the trigger reason, or
    /// `None` if neither condition holds. The queue-size check takes priority.
    pub fn check(&self, queue_len: usize, now_s: f64) -> Option<TriggerReason> {
        if queue_len >= self.queue_limit && queue_len > 0 {
            Some(TriggerReason::QueueSize)
        } else if now_s - self.last_invocation_s >= self.interval_s && queue_len > 0 {
            Some(TriggerReason::Interval)
        } else {
            None
        }
    }

    /// Record that scheduling ran at `now_s` (resets the interval timer).
    pub fn mark_invoked(&mut self, now_s: f64) {
        self.last_invocation_s = now_s;
    }

    /// Simulated time of the last invocation.
    pub fn last_invocation_s(&self) -> f64 {
        self.last_invocation_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_size_trigger_fires_at_the_limit() {
        let t = ScheduleTrigger::default();
        assert_eq!(t.check(99, 10.0), None);
        assert_eq!(t.check(100, 10.0), Some(TriggerReason::QueueSize));
        assert_eq!(t.check(250, 10.0), Some(TriggerReason::QueueSize));
    }

    #[test]
    fn interval_trigger_fires_after_the_period() {
        let mut t = ScheduleTrigger::default();
        assert_eq!(t.check(5, 60.0), None);
        assert_eq!(t.check(5, 120.0), Some(TriggerReason::Interval));
        t.mark_invoked(120.0);
        assert_eq!(t.check(5, 180.0), None);
        assert_eq!(t.check(5, 240.0), Some(TriggerReason::Interval));
    }

    #[test]
    fn empty_queue_never_triggers() {
        let t = ScheduleTrigger::default();
        assert_eq!(t.check(0, 10_000.0), None);
    }

    #[test]
    fn queue_trigger_takes_priority_over_interval() {
        let t = ScheduleTrigger::default();
        assert_eq!(t.check(150, 10_000.0), Some(TriggerReason::QueueSize));
    }

    #[test]
    fn custom_thresholds_are_respected() {
        let mut t = ScheduleTrigger::new(10, 30.0);
        assert_eq!(t.check(10, 0.0), Some(TriggerReason::QueueSize));
        t.mark_invoked(0.0);
        assert_eq!(t.check(3, 29.0), None);
        assert_eq!(t.check(3, 30.0), Some(TriggerReason::Interval));
    }
}
