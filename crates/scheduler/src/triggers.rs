//! Scheduling triggers (§7): scheduling is invoked either when the pending job
//! queue reaches a size limit (default 100) or when a time interval elapses
//! (default 120 s), whichever comes first.
//!
//! The interval timer arms *lazily*: a freshly constructed trigger has no
//! baseline, so a trigger created long after the simulated epoch does not fire
//! the interval path on the first submission it sees. The baseline is set by
//! the first non-empty [`ScheduleTrigger::check`], an explicit
//! [`ScheduleTrigger::arm_if_unarmed`] (the job manager arms at the first
//! pooled submission), or [`ScheduleTrigger::mark_invoked`].

use serde::{Deserialize, Serialize};

/// Default slack margin before a deadline at which the SLO path fires the
/// trigger early ([`ScheduleTrigger::slo_margin_s`]): the configured estimate
/// of one scheduling cycle's latency (snapshot + NSGA-II + enqueue). A config
/// knob, *not* a wall-clock measurement — determinism requires the margin to
/// be part of the replicated trigger state.
pub const DEFAULT_SLO_MARGIN_S: f64 = 2.0;

/// Trigger configuration and state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleTrigger {
    /// Queue-size trigger threshold (paper default: 100 jobs).
    pub queue_limit: usize,
    /// Time-based trigger interval in seconds (paper default: 120 s).
    pub interval_s: f64,
    /// Estimated scheduling-cycle latency: when a pending job's deadline
    /// slack falls below this margin the trigger fires early
    /// ([`TriggerReason::SloSlack`]) instead of letting the job wait out the
    /// interval. Deterministic by construction (a configured constant, never
    /// measured from the wall clock).
    pub slo_margin_s: f64,
    /// Simulated time of the last scheduling invocation, or `None` until the
    /// trigger is armed.
    last_invocation_s: Option<f64>,
}

/// Why scheduling was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerReason {
    /// The pending queue reached the size limit.
    QueueSize,
    /// A pending job's deadline slack fell below the estimated scheduling
    /// latency ([`ScheduleTrigger::slo_margin_s`]): waiting for the next
    /// interval expiry would blow the job's SLO deadline.
    SloSlack,
    /// The time interval elapsed.
    Interval,
}

impl Default for ScheduleTrigger {
    fn default() -> Self {
        ScheduleTrigger {
            queue_limit: 100,
            interval_s: 120.0,
            slo_margin_s: DEFAULT_SLO_MARGIN_S,
            last_invocation_s: None,
        }
    }
}

impl ScheduleTrigger {
    /// Create a trigger with explicit thresholds. The interval timer is
    /// unarmed until the first observation (see the module docs).
    pub fn new(queue_limit: usize, interval_s: f64) -> Self {
        ScheduleTrigger {
            queue_limit,
            interval_s,
            slo_margin_s: DEFAULT_SLO_MARGIN_S,
            last_invocation_s: None,
        }
    }

    /// The same trigger with an explicit SLO slack margin (the deterministic
    /// estimate of one scheduling cycle's latency).
    pub fn with_slo_margin(mut self, slo_margin_s: f64) -> Self {
        self.slo_margin_s = slo_margin_s;
        self
    }

    /// Arm the interval timer at `now_s` if it has no baseline yet. Callers
    /// that pool work (the job manager) arm at the first submission so the
    /// interval measures time-with-pending-work, not time-since-epoch.
    pub fn arm_if_unarmed(&mut self, now_s: f64) {
        if self.last_invocation_s.is_none() {
            self.last_invocation_s = Some(now_s);
        }
    }

    /// Check whether scheduling should run now. Returns the trigger reason, or
    /// `None` if neither condition holds. The queue-size check takes priority.
    /// An unarmed trigger arms itself at the first check that observes a
    /// non-empty queue (and therefore never interval-fires on that check).
    pub fn check(&mut self, queue_len: usize, now_s: f64) -> Option<TriggerReason> {
        self.check_with_urgency(queue_len, now_s, false)
    }

    /// [`Self::check`] with the admission-aware SLO lane: `urgent` reports
    /// whether any pending job's deadline slack has fallen below
    /// [`Self::slo_margin_s`] (the caller computes this from its pool — the
    /// trigger itself holds no job state). Fire priority is
    /// queue-size > SLO slack > interval; the SLO path fires even on the
    /// arming check, since a deadline about to be blown cannot wait out the
    /// first interval.
    pub fn check_with_urgency(
        &mut self,
        queue_len: usize,
        now_s: f64,
        urgent: bool,
    ) -> Option<TriggerReason> {
        if queue_len == 0 {
            return None;
        }
        let Some(last) = self.last_invocation_s else {
            self.last_invocation_s = Some(now_s);
            return if queue_len >= self.queue_limit {
                Some(TriggerReason::QueueSize)
            } else if urgent {
                Some(TriggerReason::SloSlack)
            } else {
                None
            };
        };
        if queue_len >= self.queue_limit {
            Some(TriggerReason::QueueSize)
        } else if urgent {
            Some(TriggerReason::SloSlack)
        } else if now_s - last >= self.interval_s {
            Some(TriggerReason::Interval)
        } else {
            None
        }
    }

    /// Record that scheduling ran at `now_s` (resets the interval timer).
    pub fn mark_invoked(&mut self, now_s: f64) {
        self.last_invocation_s = Some(now_s);
    }

    /// Simulated time of the last invocation (or lazy-arming observation);
    /// `None` while the trigger is unarmed.
    pub fn last_invocation_s(&self) -> Option<f64> {
        self.last_invocation_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_size_trigger_fires_at_the_limit() {
        let mut t = ScheduleTrigger::default();
        assert_eq!(t.check(99, 10.0), None);
        assert_eq!(t.check(100, 10.0), Some(TriggerReason::QueueSize));
        assert_eq!(t.check(250, 10.0), Some(TriggerReason::QueueSize));
    }

    #[test]
    fn interval_trigger_fires_one_period_after_arming() {
        let mut t = ScheduleTrigger::default();
        // First observation arms the timer instead of firing it.
        assert_eq!(t.check(5, 60.0), None);
        assert_eq!(t.check(5, 179.0), None, "one interval must elapse after arming");
        assert_eq!(t.check(5, 180.0), Some(TriggerReason::Interval));
        t.mark_invoked(180.0);
        assert_eq!(t.check(5, 240.0), None);
        assert_eq!(t.check(5, 300.0), Some(TriggerReason::Interval));
    }

    #[test]
    fn empty_queue_never_triggers_or_arms() {
        let mut t = ScheduleTrigger::default();
        assert_eq!(t.check(0, 10_000.0), None);
        assert_eq!(t.last_invocation_s(), None, "an idle check must not arm the timer");
    }

    #[test]
    fn queue_trigger_takes_priority_over_interval() {
        let mut t = ScheduleTrigger::default();
        t.mark_invoked(0.0);
        assert_eq!(t.check(150, 10_000.0), Some(TriggerReason::QueueSize));
    }

    #[test]
    fn custom_thresholds_are_respected() {
        let mut t = ScheduleTrigger::new(10, 30.0);
        assert_eq!(t.check(10, 0.0), Some(TriggerReason::QueueSize));
        t.mark_invoked(0.0);
        assert_eq!(t.check(3, 29.0), None);
        assert_eq!(t.check(3, 30.0), Some(TriggerReason::Interval));
    }

    /// Regression: a trigger constructed when simulated time is already far
    /// beyond `interval_s` must not fire the interval path on the first
    /// submission it observes — the old eager `last_invocation_s = 0.0`
    /// baseline made `now - 0.0 ≥ interval` trivially true.
    #[test]
    fn late_construction_does_not_fire_immediately() {
        let mut t = ScheduleTrigger::new(100, 120.0);
        assert_eq!(t.check(5, 10_000.0), None, "first check arms, never interval-fires");
        assert_eq!(t.check(5, 10_119.9), None);
        assert_eq!(t.check(5, 10_120.0), Some(TriggerReason::Interval));
    }

    /// The queue-size path still fires on the very first (arming) check.
    #[test]
    fn late_construction_queue_path_is_unaffected() {
        let mut t = ScheduleTrigger::new(3, 120.0);
        assert_eq!(t.check(3, 50_000.0), Some(TriggerReason::QueueSize));
    }

    /// The SLO lane fires between interval expiries — but only when the
    /// caller reports an urgent job, and never on an empty queue.
    #[test]
    fn slo_slack_fires_early_but_only_when_urgent() {
        let mut t = ScheduleTrigger::new(100, 120.0);
        t.mark_invoked(0.0);
        assert_eq!(t.check_with_urgency(5, 10.0, false), None);
        assert_eq!(t.check_with_urgency(5, 10.0, true), Some(TriggerReason::SloSlack));
        assert_eq!(t.check_with_urgency(0, 10.0, true), None, "no queue, nothing to rescue");
    }

    /// Priority: queue-size beats SLO slack beats interval.
    #[test]
    fn slo_slack_priority_sits_between_queue_size_and_interval() {
        let mut t = ScheduleTrigger::new(10, 60.0);
        t.mark_invoked(0.0);
        assert_eq!(t.check_with_urgency(10, 5.0, true), Some(TriggerReason::QueueSize));
        assert_eq!(t.check_with_urgency(5, 100.0, true), Some(TriggerReason::SloSlack));
        assert_eq!(t.check_with_urgency(5, 100.0, false), Some(TriggerReason::Interval));
    }

    /// Unlike the interval path, the SLO path fires even on the arming check:
    /// a deadline about to be blown cannot wait out the first interval.
    #[test]
    fn slo_slack_fires_on_the_arming_check() {
        let mut t = ScheduleTrigger::new(100, 120.0);
        assert_eq!(t.check_with_urgency(3, 10_000.0, true), Some(TriggerReason::SloSlack));
        assert_eq!(t.last_invocation_s(), Some(10_000.0), "the check still armed the timer");
    }

    #[test]
    fn slo_margin_is_configurable() {
        let t = ScheduleTrigger::new(10, 60.0).with_slo_margin(7.5);
        assert_eq!(t.slo_margin_s, 7.5);
        assert_eq!(ScheduleTrigger::default().slo_margin_s, DEFAULT_SLO_MARGIN_S);
    }

    #[test]
    fn explicit_arming_sets_the_baseline_once() {
        let mut t = ScheduleTrigger::new(100, 60.0);
        t.arm_if_unarmed(500.0);
        t.arm_if_unarmed(900.0); // no-op: already armed
        assert_eq!(t.last_invocation_s(), Some(500.0));
        assert_eq!(t.check(1, 559.0), None);
        assert_eq!(t.check(1, 560.0), Some(TriggerReason::Interval));
    }
}
