//! Multiple-Criteria Decision-Making (MCDM) selection over the Pareto front
//! using pseudo-weights (§7, Eq. 2): pick the solution whose normalised
//! position in objective space is closest to the user's preference vector
//! `P = (p_fidelity, p_jct)` with `p_fidelity + p_jct = 1`.

use crate::nsga2::ParetoSolution;
use serde::{Deserialize, Serialize};

/// Scheduling priority expressed as a preference vector over the two objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Preference {
    /// Relative importance of fidelity (0..=1).
    pub fidelity_weight: f64,
    /// Relative importance of (low) JCT (0..=1).
    pub jct_weight: f64,
}

impl Preference {
    /// Balanced preference (equal weights) — the paper's default.
    pub fn balanced() -> Self {
        Preference { fidelity_weight: 0.5, jct_weight: 0.5 }
    }

    /// Prioritise fidelity.
    pub fn fidelity_first() -> Self {
        Preference { fidelity_weight: 0.9, jct_weight: 0.1 }
    }

    /// Prioritise job completion time.
    pub fn jct_first() -> Self {
        Preference { fidelity_weight: 0.1, jct_weight: 0.9 }
    }

    /// Normalise the weights so that they sum to one.
    pub fn normalised(&self) -> Preference {
        let sum = (self.fidelity_weight + self.jct_weight).max(1e-12);
        Preference {
            fidelity_weight: self.fidelity_weight / sum,
            jct_weight: self.jct_weight / sum,
        }
    }
}

/// Pseudo-weights of every solution on the front: `(w_fidelity, w_jct)` per
/// solution, each measuring the normalised distance to the worst value of that
/// objective (Eq. 2). Both components of each pair sum to 1. On a degenerate
/// front where both objective ranges collapse (every solution effectively
/// identical) the weights fall back to uniform `(0.5, 0.5)` so the sum-to-1
/// invariant holds and selection stays well-defined.
pub fn pseudo_weights(front: &[ParetoSolution]) -> Vec<(f64, f64)> {
    assert!(!front.is_empty(), "cannot compute pseudo-weights of an empty front");
    let jct: Vec<f64> = front.iter().map(|s| s.objectives.mean_jct_s).collect();
    let err: Vec<f64> = front.iter().map(|s| s.objectives.mean_error).collect();
    let (jct_min, jct_max) = min_max(&jct);
    let (err_min, err_max) = min_max(&err);
    // Degeneracy is a *front-level* property: only when neither objective
    // separates any pair of solutions do the weights fall back to uniform.
    // (A per-solution check would hand a near-worst-in-both corner solution
    // the uniform weights too, making balanced selection prefer it.)
    if jct_max - jct_min <= 1e-12 && err_max - err_min <= 1e-12 {
        return vec![(0.5, 0.5); front.len()];
    }
    front
        .iter()
        .map(|s| {
            // Normalised distance to the *worst* (maximum) value: 1 = best.
            let w_jct = (jct_max - s.objectives.mean_jct_s) / (jct_max - jct_min).max(1e-12);
            let w_fid = (err_max - s.objectives.mean_error) / (err_max - err_min).max(1e-12);
            let total = (w_jct + w_fid).max(1e-12);
            (w_fid / total, w_jct / total)
        })
        .collect()
}

/// Select the Pareto solution whose pseudo-weight vector is closest (Euclidean)
/// to the preference vector. Returns the index into `front`.
pub fn select(front: &[ParetoSolution], preference: Preference) -> usize {
    assert!(!front.is_empty(), "cannot select from an empty front");
    if front.len() == 1 {
        return 0;
    }
    let pref = preference.normalised();
    pseudo_weights(front)
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let da = (a.0 - pref.fidelity_weight).powi(2) + (a.1 - pref.jct_weight).powi(2);
            let db = (b.0 - pref.fidelity_weight).powi(2) + (b.1 - pref.jct_weight).powi(2);
            da.total_cmp(&db)
        })
        .map(|(i, _)| i)
        .expect("non-empty front")
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Objectives;

    fn front() -> Vec<ParetoSolution> {
        // Four solutions spanning the tradeoff: lower JCT ↔ higher error.
        let points = [(100.0, 0.10), (200.0, 0.07), (400.0, 0.05), (800.0, 0.02)];
        points
            .iter()
            .enumerate()
            .map(|(i, &(jct, err))| ParetoSolution {
                assignment: vec![i],
                objectives: Objectives { mean_jct_s: jct, mean_error: err, mean_cost: 0.0 },
            })
            .collect()
    }

    #[test]
    fn pseudo_weights_sum_to_one_per_solution() {
        let w = pseudo_weights(&front());
        for (fid, jct) in w {
            assert!((fid + jct - 1.0).abs() < 1e-9);
            assert!(fid >= 0.0 && jct >= 0.0);
        }
    }

    #[test]
    fn extreme_solutions_get_extreme_pseudo_weights() {
        let w = pseudo_weights(&front());
        // The lowest-JCT solution has the full JCT pseudo-weight.
        assert!((w[0].1 - 1.0).abs() < 1e-9);
        // The lowest-error solution has the full fidelity pseudo-weight.
        assert!((w[3].0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jct_priority_selects_fastest_solution() {
        let f = front();
        let idx = select(&f, Preference::jct_first());
        assert_eq!(idx, 0);
    }

    #[test]
    fn fidelity_priority_selects_highest_fidelity_solution() {
        let f = front();
        let idx = select(&f, Preference::fidelity_first());
        assert_eq!(idx, 3);
    }

    #[test]
    fn balanced_priority_selects_an_interior_solution() {
        let f = front();
        let idx = select(&f, Preference::balanced());
        assert!(idx == 1 || idx == 2, "balanced pick should be in the middle, got {idx}");
    }

    #[test]
    fn single_solution_front_is_selected_directly() {
        let f = vec![front().remove(0)];
        assert_eq!(select(&f, Preference::balanced()), 0);
    }

    #[test]
    fn preference_normalisation() {
        let p = Preference { fidelity_weight: 2.0, jct_weight: 6.0 }.normalised();
        assert!((p.fidelity_weight - 0.25).abs() < 1e-12);
        assert!((p.jct_weight - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_front_falls_back_to_uniform_weights() {
        // Every solution has identical objectives: both ranges collapse.
        let f: Vec<ParetoSolution> = (0..3)
            .map(|i| ParetoSolution {
                assignment: vec![i],
                objectives: Objectives { mean_jct_s: 42.0, mean_error: 0.25, mean_cost: 0.0 },
            })
            .collect();
        for (fid, jct) in pseudo_weights(&f) {
            assert!((fid + jct - 1.0).abs() < 1e-9, "sum-to-1 must hold on degenerate fronts");
            assert!((fid - 0.5).abs() < 1e-9 && (jct - 0.5).abs() < 1e-9);
        }
        // Selection is well-defined (and deterministic) rather than arbitrary.
        assert_eq!(select(&f, Preference::balanced()), 0);
        assert_eq!(select(&f, Preference::jct_first()), 0);
    }

    /// A near-worst-in-both corner solution on a *non*-degenerate front must
    /// keep its normalised raw pseudo-weights (here ≈ (1/3, 2/3)) — the exact
    /// uniform fallback is reserved for fully collapsed fronts. (Eq. 2
    /// measures *relative* tradeoff position, so such a corner still gets
    /// interior-looking weights; what the front-level check guarantees is
    /// that the fallback never overrides the formula on a live front.)
    #[test]
    fn near_worst_corner_solution_is_not_mistaken_for_degenerate() {
        let points = [(100.0, 0.0), (0.0, 1.0), (100.0 - 1e-7, 1.0 - 5e-10)];
        let f: Vec<ParetoSolution> = points
            .iter()
            .enumerate()
            .map(|(i, &(jct, err))| ParetoSolution {
                assignment: vec![i],
                objectives: Objectives { mean_jct_s: jct, mean_error: err, mean_cost: 0.0 },
            })
            .collect();
        let w = pseudo_weights(&f);
        for (fid, jct) in &w {
            assert!((fid + jct - 1.0).abs() < 1e-9);
        }
        // Raw weights survive: w_fid/w_jct are 5e-10 and 1e-9 before
        // normalisation, i.e. (1/3, 2/3) — not the uniform (0.5, 0.5).
        assert!((w[2].0 - 1.0 / 3.0).abs() < 1e-6, "corner weights: {:?}", w[2]);
        // The extremes keep their full pseudo-weight on either objective.
        assert!((w[0].0 - 1.0).abs() < 1e-9);
        assert!((w[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_front_panics() {
        select(&[], Preference::balanced());
    }
}
