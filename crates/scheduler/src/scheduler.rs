//! The Qonductor hybrid quantum scheduler (§7, Figure 5): three configurable
//! stages — job pre-processing (filtering + estimate fetching), multi-objective
//! optimization (NSGA-II), and selection (MCDM pseudo-weights) — with per-stage
//! runtime instrumentation used by the scalability study (Figure 9c).

use crate::crossover::{plan_timeline, PlannedJob};
use crate::mcdm::{self, Preference};
use crate::nsga2::{self, Nsga2Config, OptimizerWorkspace, ParetoSolution};
use crate::problem::{JobRequest, Objectives, QpuState, SchedulingProblem};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Maximum number of Pareto solutions remembered between warm-started cycles.
const WARM_FRONT_CAP: usize = 16;

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// NSGA-II hyper-parameters for the optimization stage.
    pub nsga2: Nsga2Config,
    /// Objective preference used by the MCDM selection stage.
    pub preference: Preference,
    /// Weight of the proactive calibration-boundary penalty (§7): when > 0
    /// and the caller supplies per-QPU boundary horizons
    /// ([`HybridScheduler::schedule_with_horizons`]), the optimizer penalises
    /// plans whose per-QPU busy time spills past the device's next
    /// recalibration, steering the Pareto front toward plans the dispatch
    /// layer will not have to split. 0 (the default) disables the penalty and
    /// keeps every outcome bit-identical to the horizon-less path.
    #[serde(default)]
    pub boundary_penalty_weight: f64,
    /// How many times a single job may be parked at a calibration boundary
    /// (`CalibrationPolicy::SplitAtBoundary`) before the dispatch layer stops
    /// deferring it and lets it run across the boundary. Bounds the worst-case
    /// added latency of boundary splitting to `max_deferrals` recalibration
    /// periods; 0 disables deferral entirely.
    #[serde(default = "default_max_deferrals")]
    pub max_deferrals: u32,
    /// Weight of the federation cost objective: when > 0 and the caller
    /// supplies per-QPU shot prices
    /// ([`HybridScheduler::schedule_with_fleet_context`]), each candidate
    /// plan's total monetary cost (`Σ shots × cost_per_shot[qpu]`) is
    /// reported as [`Objectives::mean_cost`] and folded into the JCT
    /// objective scaled by this weight, steering placement toward cheaper
    /// providers. 0 (the default) disables the lane and keeps every outcome
    /// bit-identical to the cost-free path.
    #[serde(default)]
    pub cost_weight: f64,
}

/// Paper-default deferral budget (see `SchedulerConfig::max_deferrals`).
fn default_max_deferrals() -> u32 {
    4
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            nsga2: Nsga2Config::default(),
            preference: Preference::balanced(),
            boundary_penalty_weight: 0.0,
            max_deferrals: default_max_deferrals(),
            cost_weight: 0.0,
        }
    }
}

/// Wall-clock runtime of each scheduling stage, in seconds (Figure 9c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Job pre-processing: filtering and estimate assembly.
    pub preprocessing_s: f64,
    /// Multi-objective optimization (NSGA-II).
    pub optimization_s: f64,
    /// MCDM selection.
    pub selection_s: f64,
}

impl StageTimings {
    /// Total scheduling overhead.
    pub fn total_s(&self) -> f64 {
        self.preprocessing_s + self.optimization_s + self.selection_s
    }
}

/// One job→QPU placement decided by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Job identifier.
    pub job_id: u64,
    /// Index of the assigned QPU (into the QPU list given to the scheduler).
    pub qpu_index: usize,
}

/// The outcome of one scheduling cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Chosen placements (one per schedulable job).
    pub placements: Vec<Placement>,
    /// Objectives of the chosen solution.
    pub chosen: Objectives,
    /// The full Pareto front explored by the optimizer.
    pub pareto_front: Vec<ParetoSolution>,
    /// Objectives of the front's extreme points: (min-JCT solution, min-error solution).
    pub front_min_jct: Objectives,
    /// Objectives of the front solution with the lowest error (highest fidelity).
    pub front_min_error: Objectives,
    /// Jobs that could not be scheduled (no feasible QPU).
    pub rejected_jobs: Vec<u64>,
    /// Per-stage runtimes.
    pub timings: StageTimings,
    /// Index of the chosen solution within `pareto_front`.
    pub chosen_index: usize,
    /// The chosen placements as a planned per-QPU timeline, *relative to the
    /// dispatch instant*: each job's `start_s` is its offset from "now"
    /// (current queue wait plus co-scheduled jobs ahead of it on the same
    /// QPU), using the problem's sanitised execution estimates. The dispatch
    /// layer shifts this by the dispatch time and partitions it at the next
    /// recalibration boundary (`crossover::partition_at_boundary`, §7).
    pub planned: Vec<PlannedJob>,
}

/// A remembered Pareto front: one job-id→QPU assignment map per kept
/// solution, repairable against the next cycle's job list.
type WarmFront = Vec<Vec<(u64, usize)>>;

/// Cross-cycle optimizer memory of a warm-started scheduler: the reusable
/// workspace (no steady-state allocation) and the previous cycle's Pareto
/// front, stored as job-id→QPU maps so it can be repaired against the next
/// cycle's job list.
#[derive(Debug, Default)]
struct WarmState {
    workspace: OptimizerWorkspace,
    front: WarmFront,
}

/// A schedule computed ahead of its dispatch instant
/// ([`HybridScheduler::schedule_speculative`]): the outcome itself plus the
/// warm-start front a live cycle over the same inputs would have remembered.
/// The warm memory is *not* touched until [`HybridScheduler::adopt`] commits
/// the plan, so a discarded speculation leaves the scheduler byte-identical
/// to one that never speculated.
#[derive(Debug, Clone)]
pub struct SpeculativeSchedule {
    /// The outcome the plan produces when adopted.
    pub outcome: ScheduleOutcome,
    /// The post-cycle warm front (`None` for stateless schedulers).
    front: Option<WarmFront>,
}

/// The Qonductor quantum-job scheduler. Stateless by default; constructed
/// with [`HybridScheduler::with_warm_start`] it becomes optionally stateful,
/// seeding each cycle's NSGA-II population from the previous cycle's Pareto
/// front (repaired against the new job list) so batch-to-batch cycles
/// converge in fewer generations. The memory sits behind a mutex, so the
/// shared-reference [`HybridScheduler::schedule`] signature is unchanged.
#[derive(Debug, Default)]
pub struct HybridScheduler {
    config: SchedulerConfig,
    warm: Option<Mutex<WarmState>>,
}

impl Clone for HybridScheduler {
    fn clone(&self) -> Self {
        HybridScheduler {
            config: self.config,
            // The remembered front transfers; the workspace is rebuilt lazily.
            warm: self.warm.as_ref().map(|m| {
                Mutex::new(WarmState {
                    workspace: OptimizerWorkspace::new(),
                    front: m.lock().front.clone(),
                })
            }),
        }
    }
}

impl HybridScheduler {
    /// Create a stateless scheduler with the given configuration: every cycle
    /// starts the optimizer from a fresh random population.
    pub fn new(config: SchedulerConfig) -> Self {
        HybridScheduler { config, warm: None }
    }

    /// Create a warm-started scheduler: each cycle seeds the optimizer with
    /// the previous cycle's Pareto front and reuses the optimizer workspace.
    /// The first cycle (cold path) is identical to a stateless scheduler's.
    pub fn with_warm_start(config: SchedulerConfig) -> Self {
        HybridScheduler { config, warm: Some(Mutex::new(WarmState::default())) }
    }

    /// Whether this scheduler carries warm-start memory across cycles.
    pub fn is_warm_start(&self) -> bool {
        self.warm.is_some()
    }

    /// Drop any remembered Pareto front (e.g. after a fleet reconfiguration
    /// that invalidates previous placements). No-op on stateless schedulers.
    pub fn clear_memory(&self) {
        if let Some(mem) = &self.warm {
            mem.lock().front.clear();
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Run the optimizer for one cycle, consulting the warm-start memory when
    /// enabled. With `commit` the remembered front is updated in place (the
    /// live path); without it the would-be front is returned instead, so a
    /// speculative cycle can be computed now and committed — or discarded —
    /// later without perturbing the scheduler's observable state.
    fn run_optimizer(
        &self,
        problem: &SchedulingProblem,
        job_ids: &[u64],
        commit: bool,
    ) -> (nsga2::Nsga2Result, Option<WarmFront>) {
        let Some(mem) = &self.warm else {
            return (nsga2::optimize(problem, &self.config.nsga2), None);
        };
        let mut mem = mem.lock();
        // Repair the remembered front against the current job list: genes for
        // unknown jobs are marked invalid and snapped by the optimizer.
        let seeds: Vec<Vec<usize>> = mem
            .front
            .iter()
            .map(|sol| {
                let by_id: HashMap<u64, usize> = sol.iter().copied().collect();
                job_ids.iter().map(|id| by_id.get(id).copied().unwrap_or(usize::MAX)).collect()
            })
            .collect();
        let WarmState { workspace, front } = &mut *mem;
        let result = nsga2::optimize_with(problem, &self.config.nsga2, &seeds, workspace);
        // The front is sorted by JCT; stride-sample the cap across it so both
        // extremes (and the interior) stay represented in the next cycle's
        // seeds, whatever the configured preference favours.
        let n = result.pareto_front.len();
        let keep = n.min(WARM_FRONT_CAP);
        let next_front: WarmFront = (0..keep)
            .map(|k| {
                let idx = if keep <= 1 { 0 } else { k * (n - 1) / (keep - 1) };
                let s = &result.pareto_front[idx];
                job_ids.iter().copied().zip(s.assignment.iter().copied()).collect()
            })
            .collect();
        if commit {
            *front = next_front;
            (result, None)
        } else {
            (result, Some(next_front))
        }
    }

    /// Run one scheduling cycle over the pending jobs and available QPUs.
    ///
    /// Jobs whose qubit requirement no QPU can satisfy are filtered out during
    /// pre-processing and reported in `rejected_jobs`.
    pub fn schedule(&self, jobs: Vec<JobRequest>, qpus: Vec<QpuState>) -> ScheduleOutcome {
        self.schedule_cycle(jobs, qpus, &[], &[], true).0
    }

    /// [`Self::schedule`] with per-QPU recalibration horizons: `horizon_s[q]`
    /// is the number of seconds from the dispatch instant until QPU `q`'s
    /// next calibration boundary. When
    /// [`SchedulerConfig::boundary_penalty_weight`] is positive the optimizer
    /// proactively penalises plans whose per-QPU busy time spills past the
    /// horizon, so fewer chosen plans straddle a boundary and reach the
    /// dispatch layer's split path at all. With a zero weight (or an empty
    /// horizon table) the outcome is bit-identical to [`Self::schedule`].
    pub fn schedule_with_horizons(
        &self,
        jobs: Vec<JobRequest>,
        qpus: Vec<QpuState>,
        horizon_s: &[f64],
    ) -> ScheduleOutcome {
        self.schedule_cycle(jobs, qpus, horizon_s, &[], true).0
    }

    /// [`Self::schedule_with_horizons`] plus per-QPU shot prices
    /// (`cost_per_shot[q]`, credit units, index-aligned with `qpus`): the
    /// full fleet context a federated dispatch layer carries. When
    /// [`SchedulerConfig::cost_weight`] is positive the optimizer trades
    /// turnaround against spend (see
    /// [`SchedulingProblem::with_shot_costs`]); with a zero weight (or an
    /// empty price table) the outcome is bit-identical to
    /// [`Self::schedule_with_horizons`].
    pub fn schedule_with_fleet_context(
        &self,
        jobs: Vec<JobRequest>,
        qpus: Vec<QpuState>,
        horizon_s: &[f64],
        cost_per_shot: &[f64],
    ) -> ScheduleOutcome {
        self.schedule_cycle(jobs, qpus, horizon_s, cost_per_shot, true).0
    }

    /// Compute a schedule for a *future* dispatch without mutating the
    /// scheduler: the warm-start memory is consulted but not advanced, so the
    /// caller can hold the plan while the current batch executes and either
    /// [`Self::adopt`] it (if the pool snapshot is still valid at trigger
    /// fire) or drop it with no trace. Adopting is equivalent, bit for bit,
    /// to having called [`Self::schedule_with_horizons`] at the fire instant
    /// with the same inputs.
    pub fn schedule_speculative(
        &self,
        jobs: Vec<JobRequest>,
        qpus: Vec<QpuState>,
        horizon_s: &[f64],
        cost_per_shot: &[f64],
    ) -> SpeculativeSchedule {
        let (outcome, front) = self.schedule_cycle(jobs, qpus, horizon_s, cost_per_shot, false);
        SpeculativeSchedule { outcome, front }
    }

    /// Commit a speculative schedule: install the warm-start front the cycle
    /// would have remembered had it run live. No-op for stateless schedulers
    /// and for plans computed by one.
    pub fn adopt(&self, plan: &SpeculativeSchedule) {
        if let (Some(mem), Some(front)) = (&self.warm, &plan.front) {
            mem.lock().front = front.clone();
        }
    }

    /// The three-stage cycle shared by the live and speculative paths.
    /// Returns the outcome plus, when `commit` is false and warm start is on,
    /// the front the warm memory *would* have kept.
    fn schedule_cycle(
        &self,
        jobs: Vec<JobRequest>,
        qpus: Vec<QpuState>,
        horizon_s: &[f64],
        cost_per_shot: &[f64],
        commit: bool,
    ) -> (ScheduleOutcome, Option<WarmFront>) {
        assert!(!qpus.is_empty(), "scheduling requires at least one QPU");
        // ---------- Stage 1: job pre-processing ----------
        let t0 = Instant::now();
        let max_qpu_size = qpus.iter().map(|q| q.num_qubits).max().unwrap_or(0);
        let (schedulable, rejected): (Vec<JobRequest>, Vec<JobRequest>) =
            jobs.into_iter().partition(|j| j.qubits <= max_qpu_size);
        let rejected_jobs: Vec<u64> = rejected.iter().map(|j| j.job_id).collect();
        if schedulable.is_empty() {
            let zero = Objectives { mean_jct_s: 0.0, mean_error: 0.0, mean_cost: 0.0 };
            let outcome = ScheduleOutcome {
                placements: vec![],
                chosen: zero,
                pareto_front: vec![],
                front_min_jct: zero,
                front_min_error: zero,
                rejected_jobs,
                timings: StageTimings {
                    preprocessing_s: t0.elapsed().as_secs_f64(),
                    optimization_s: 0.0,
                    selection_s: 0.0,
                },
                chosen_index: 0,
                planned: vec![],
            };
            // An empty cycle never touches the warm memory, so adopting it is
            // trivially a no-op (`front: None` on the speculative path).
            return (outcome, None);
        }
        let job_ids: Vec<u64> = schedulable.iter().map(|j| j.job_id).collect();
        let mut problem = SchedulingProblem::new(schedulable, qpus);
        if self.config.boundary_penalty_weight > 0.0 && !horizon_s.is_empty() {
            problem = problem.with_boundary_penalty(horizon_s, self.config.boundary_penalty_weight);
        }
        if self.config.cost_weight > 0.0 && !cost_per_shot.is_empty() {
            problem = problem.with_shot_costs(cost_per_shot, self.config.cost_weight);
        }
        let preprocessing_s = t0.elapsed().as_secs_f64();

        // ---------- Stage 2: multi-objective optimization ----------
        let t1 = Instant::now();
        let (result, next_front) = self.run_optimizer(&problem, &job_ids, commit);
        let optimization_s = t1.elapsed().as_secs_f64();

        // ---------- Stage 3: MCDM selection ----------
        let t2 = Instant::now();
        let chosen_index = mcdm::select(&result.pareto_front, self.config.preference);
        let chosen_solution = &result.pareto_front[chosen_index];
        let placements: Vec<Placement> = chosen_solution
            .assignment
            .iter()
            .zip(&job_ids)
            .map(|(&qpu_index, &job_id)| Placement { job_id, qpu_index })
            .collect();
        let front_min_jct = result
            .pareto_front
            .iter()
            .map(|s| s.objectives)
            .min_by(|a, b| a.mean_jct_s.total_cmp(&b.mean_jct_s))
            .unwrap_or(chosen_solution.objectives);
        let front_min_error = result
            .pareto_front
            .iter()
            .map(|s| s.objectives)
            .min_by(|a, b| a.mean_error.total_cmp(&b.mean_error))
            .unwrap_or(chosen_solution.objectives);
        // Planned per-QPU timeline of the chosen assignment (relative time:
        // "now" is 0), from the sanitised estimates so it matches exactly
        // what the dispatch layer will enqueue.
        let assignment: Vec<(u64, usize, f64)> = placements
            .iter()
            .enumerate()
            .map(|(i, p)| (p.job_id, p.qpu_index, problem.jobs[i].exec_time_per_qpu[p.qpu_index]))
            .collect();
        let waits: Vec<f64> = problem.qpus.iter().map(|q| q.waiting_time_s).collect();
        let planned = plan_timeline(&assignment, &waits, 0.0);
        let selection_s = t2.elapsed().as_secs_f64();

        let outcome = ScheduleOutcome {
            placements,
            chosen: chosen_solution.objectives,
            pareto_front: result.pareto_front,
            front_min_jct,
            front_min_error,
            rejected_jobs,
            timings: StageTimings { preprocessing_s, optimization_s, selection_s },
            chosen_index,
            planned,
        };
        (outcome, next_front)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn jobs_and_qpus(
        num_jobs: usize,
        num_qpus: usize,
        seed: u64,
    ) -> (Vec<JobRequest>, Vec<QpuState>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let qpus: Vec<QpuState> = (0..num_qpus)
            .map(|i| QpuState {
                name: format!("qpu{i}"),
                num_qubits: if i == 0 { 7 } else { 27 },
                waiting_time_s: rng.gen_range(0.0..300.0),
                calibration_epoch: 0,
            })
            .collect();
        let jobs: Vec<JobRequest> = (0..num_jobs)
            .map(|i| JobRequest {
                job_id: 1000 + i as u64,
                qubits: rng.gen_range(2..=25),
                shots: 4000,
                fidelity_per_qpu: (0..num_qpus).map(|_| rng.gen_range(0.5..0.95)).collect(),
                exec_time_per_qpu: (0..num_qpus).map(|_| rng.gen_range(5.0..80.0)).collect(),
            })
            .collect();
        (jobs, qpus)
    }

    #[test]
    fn schedule_places_every_schedulable_job_feasibly() {
        let (jobs, qpus) = jobs_and_qpus(50, 5, 1);
        let scheduler = HybridScheduler::default();
        let outcome = scheduler.schedule(jobs.clone(), qpus.clone());
        assert_eq!(outcome.placements.len() + outcome.rejected_jobs.len(), jobs.len());
        for p in &outcome.placements {
            let job = jobs.iter().find(|j| j.job_id == p.job_id).unwrap();
            assert!(qpus[p.qpu_index].num_qubits >= job.qubits);
        }
        assert!(outcome.timings.total_s() > 0.0);
        assert!(outcome.timings.optimization_s > outcome.timings.selection_s);
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let (mut jobs, qpus) = jobs_and_qpus(5, 3, 2);
        jobs.push(JobRequest {
            job_id: 9999,
            qubits: 100,
            shots: 100,
            fidelity_per_qpu: vec![0.5; 3],
            exec_time_per_qpu: vec![1.0; 3],
        });
        let outcome = HybridScheduler::default().schedule(jobs, qpus);
        assert!(outcome.rejected_jobs.contains(&9999));
    }

    #[test]
    fn chosen_solution_sits_between_front_extremes() {
        let (jobs, qpus) = jobs_and_qpus(80, 8, 3);
        let outcome = HybridScheduler::default().schedule(jobs, qpus);
        assert!(outcome.chosen.mean_jct_s >= outcome.front_min_jct.mean_jct_s - 1e-9);
        assert!(outcome.chosen.mean_error >= outcome.front_min_error.mean_error - 1e-9);
        assert!(!outcome.pareto_front.is_empty());
        assert!(outcome.chosen_index < outcome.pareto_front.len());
    }

    #[test]
    fn jct_priority_yields_lower_jct_than_fidelity_priority() {
        let (jobs, qpus) = jobs_and_qpus(60, 6, 4);
        let jct_first = HybridScheduler::new(SchedulerConfig {
            preference: Preference::jct_first(),
            ..Default::default()
        })
        .schedule(jobs.clone(), qpus.clone());
        let fid_first = HybridScheduler::new(SchedulerConfig {
            preference: Preference::fidelity_first(),
            ..Default::default()
        })
        .schedule(jobs, qpus);
        assert!(jct_first.chosen.mean_jct_s <= fid_first.chosen.mean_jct_s);
        assert!(jct_first.chosen.mean_fidelity() <= fid_first.chosen.mean_fidelity() + 1e-9);
    }

    /// Regression: a NaN/∞ estimate from the resource estimator must not
    /// panic the scheduling cycle — it is clamped at problem construction and
    /// the placement is penalised instead.
    #[test]
    fn non_finite_estimates_complete_the_cycle_penalised() {
        let qpus = vec![
            QpuState {
                name: "poisoned".into(),
                num_qubits: 27,
                waiting_time_s: 1.0,
                calibration_epoch: 0,
            },
            QpuState {
                name: "clean".into(),
                num_qubits: 27,
                waiting_time_s: 1.0,
                calibration_epoch: 0,
            },
        ];
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| JobRequest {
                job_id: i,
                qubits: 5,
                shots: 1000,
                // QPU 0 reports NaN fidelity and ∞ execution time for every job.
                fidelity_per_qpu: vec![f64::NAN, 0.9],
                exec_time_per_qpu: vec![f64::INFINITY, 10.0],
            })
            .collect();
        let outcome = HybridScheduler::default().schedule(jobs, qpus);
        assert_eq!(outcome.placements.len(), 6);
        assert!(outcome.chosen.mean_jct_s.is_finite());
        assert!(outcome.chosen.mean_error.is_finite());
        // The sanitised estimates (fidelity 0, huge exec time) make the
        // poisoned QPU strictly dominated: every job lands on the clean one.
        for p in &outcome.placements {
            assert_eq!(p.qpu_index, 1, "job {} must avoid the poisoned QPU", p.job_id);
        }
    }

    #[test]
    fn warm_start_matches_cold_first_cycle_and_stays_deterministic() {
        let (jobs, qpus) = jobs_and_qpus(40, 5, 7);
        let cold = HybridScheduler::default();
        let warm = HybridScheduler::with_warm_start(SchedulerConfig::default());
        assert!(warm.is_warm_start() && !cold.is_warm_start());
        // Cycle 1: no memory yet, so the warm scheduler is bit-identical.
        let a = cold.schedule(jobs.clone(), qpus.clone());
        let b = warm.schedule(jobs.clone(), qpus.clone());
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.chosen, b.chosen);
        // Cycle 2 (same jobs): the warm scheduler seeds from its remembered
        // front; two independent warm schedulers agree cycle for cycle.
        let warm2 = HybridScheduler::with_warm_start(SchedulerConfig::default());
        let _ = warm2.schedule(jobs.clone(), qpus.clone());
        let c = warm.schedule(jobs.clone(), qpus.clone());
        let d = warm2.schedule(jobs.clone(), qpus.clone());
        assert_eq!(c.placements, d.placements);
        assert_eq!(c.chosen, d.chosen);
        // Warm seeding never regresses the chosen solution's JCT extreme.
        assert!(c.front_min_jct.mean_jct_s <= a.front_min_jct.mean_jct_s + 1e-9);
    }

    #[test]
    fn warm_start_memory_survives_clone_and_clears() {
        let (jobs, qpus) = jobs_and_qpus(20, 4, 8);
        let warm = HybridScheduler::with_warm_start(SchedulerConfig::default());
        let _ = warm.schedule(jobs.clone(), qpus.clone());
        let cloned = warm.clone();
        assert!(cloned.is_warm_start());
        let a = warm.schedule(jobs.clone(), qpus.clone());
        let b = cloned.schedule(jobs.clone(), qpus.clone());
        assert_eq!(a.placements, b.placements, "cloned memory must behave identically");
        warm.clear_memory();
        let _ = warm.schedule(jobs, qpus); // cold again: must not panic
    }

    /// The outcome's planned timeline mirrors the chosen placements exactly:
    /// one entry per placement, starts = queue wait + co-scheduled work ahead
    /// on the same QPU, durations = the sanitised execution estimates.
    #[test]
    fn planned_timeline_matches_placements_and_serialises_per_qpu() {
        let (jobs, qpus) = jobs_and_qpus(30, 4, 11);
        let outcome = HybridScheduler::default().schedule(jobs.clone(), qpus.clone());
        assert_eq!(outcome.planned.len(), outcome.placements.len());
        let mut next_free: Vec<f64> = qpus.iter().map(|q| q.waiting_time_s).collect();
        for (p, planned) in outcome.placements.iter().zip(&outcome.planned) {
            assert_eq!(planned.job_id, p.job_id);
            assert_eq!(planned.qpu_index, p.qpu_index);
            // The timeline uses the problem's *sanitised* (grid-snapped)
            // waits, so allow the 2⁻²⁰ s quantisation against the raw input.
            assert!((planned.start_s - next_free[p.qpu_index]).abs() < 1e-5);
            assert!(planned.duration_s > 0.0);
            next_free[p.qpu_index] = planned.finish_s();
        }
    }

    #[test]
    fn cost_weight_steers_placement_and_zero_weight_is_bit_identical() {
        // Two equally capable QPUs; QPU 0 is 20× pricier per shot.
        let qpus: Vec<QpuState> = (0..2)
            .map(|i| QpuState {
                name: format!("qpu{i}"),
                num_qubits: 27,
                waiting_time_s: 0.0,
                calibration_epoch: 0,
            })
            .collect();
        let jobs: Vec<JobRequest> = (0..12)
            .map(|i| JobRequest {
                job_id: i,
                qubits: 5,
                shots: 1000,
                fidelity_per_qpu: vec![0.9, 0.9],
                exec_time_per_qpu: vec![10.0, 10.0],
            })
            .collect();
        let prices = [20.0, 1.0];

        // Zero weight: bit-identical to the price-blind path, zero mean_cost.
        let blind = HybridScheduler::default().schedule(jobs.clone(), qpus.clone());
        let zero_w = HybridScheduler::default().schedule_with_fleet_context(
            jobs.clone(),
            qpus.clone(),
            &[],
            &prices,
        );
        assert_eq!(blind.placements, zero_w.placements);
        assert_eq!(blind.chosen.mean_jct_s.to_bits(), zero_w.chosen.mean_jct_s.to_bits());
        assert_eq!(zero_w.chosen.mean_cost, 0.0);

        // A strong cost weight drives every job onto the cheap QPU.
        let costed = HybridScheduler::new(SchedulerConfig {
            cost_weight: 10.0,
            ..SchedulerConfig::default()
        })
        .schedule_with_fleet_context(jobs, qpus, &[], &prices);
        assert!(costed.chosen.mean_cost > 0.0);
        assert!(
            costed.placements.iter().all(|p| p.qpu_index == 1),
            "cost pressure must avoid the pricey QPU: {:?}",
            costed.placements
        );
        // All 12 jobs × 1000 shots × 1.0 credit on the cheap device.
        assert!((costed.chosen.mean_cost - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn all_jobs_oversized_returns_empty_schedule() {
        let qpus = vec![QpuState {
            name: "tiny".into(),
            num_qubits: 5,
            waiting_time_s: 0.0,
            calibration_epoch: 0,
        }];
        let jobs = vec![JobRequest {
            job_id: 1,
            qubits: 50,
            shots: 100,
            fidelity_per_qpu: vec![0.5],
            exec_time_per_qpu: vec![1.0],
        }];
        let outcome = HybridScheduler::default().schedule(jobs, qpus);
        assert!(outcome.placements.is_empty());
        assert_eq!(outcome.rejected_jobs, vec![1]);
    }
}
