//! The Qonductor hybrid quantum scheduler (§7, Figure 5): three configurable
//! stages — job pre-processing (filtering + estimate fetching), multi-objective
//! optimization (NSGA-II), and selection (MCDM pseudo-weights) — with per-stage
//! runtime instrumentation used by the scalability study (Figure 9c).

use crate::mcdm::{self, Preference};
use crate::nsga2::{self, Nsga2Config, ParetoSolution};
use crate::problem::{JobRequest, Objectives, QpuState, SchedulingProblem};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// NSGA-II hyper-parameters for the optimization stage.
    pub nsga2: Nsga2Config,
    /// Objective preference used by the MCDM selection stage.
    pub preference: Preference,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { nsga2: Nsga2Config::default(), preference: Preference::balanced() }
    }
}

/// Wall-clock runtime of each scheduling stage, in seconds (Figure 9c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Job pre-processing: filtering and estimate assembly.
    pub preprocessing_s: f64,
    /// Multi-objective optimization (NSGA-II).
    pub optimization_s: f64,
    /// MCDM selection.
    pub selection_s: f64,
}

impl StageTimings {
    /// Total scheduling overhead.
    pub fn total_s(&self) -> f64 {
        self.preprocessing_s + self.optimization_s + self.selection_s
    }
}

/// One job→QPU placement decided by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Job identifier.
    pub job_id: u64,
    /// Index of the assigned QPU (into the QPU list given to the scheduler).
    pub qpu_index: usize,
}

/// The outcome of one scheduling cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Chosen placements (one per schedulable job).
    pub placements: Vec<Placement>,
    /// Objectives of the chosen solution.
    pub chosen: Objectives,
    /// The full Pareto front explored by the optimizer.
    pub pareto_front: Vec<ParetoSolution>,
    /// Objectives of the front's extreme points: (min-JCT solution, min-error solution).
    pub front_min_jct: Objectives,
    /// Objectives of the front solution with the lowest error (highest fidelity).
    pub front_min_error: Objectives,
    /// Jobs that could not be scheduled (no feasible QPU).
    pub rejected_jobs: Vec<u64>,
    /// Per-stage runtimes.
    pub timings: StageTimings,
    /// Index of the chosen solution within `pareto_front`.
    pub chosen_index: usize,
}

/// The Qonductor quantum-job scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridScheduler {
    config: SchedulerConfig,
}

impl HybridScheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        HybridScheduler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Run one scheduling cycle over the pending jobs and available QPUs.
    ///
    /// Jobs whose qubit requirement no QPU can satisfy are filtered out during
    /// pre-processing and reported in `rejected_jobs`.
    pub fn schedule(&self, jobs: Vec<JobRequest>, qpus: Vec<QpuState>) -> ScheduleOutcome {
        assert!(!qpus.is_empty(), "scheduling requires at least one QPU");
        // ---------- Stage 1: job pre-processing ----------
        let t0 = Instant::now();
        let max_qpu_size = qpus.iter().map(|q| q.num_qubits).max().unwrap_or(0);
        let (schedulable, rejected): (Vec<JobRequest>, Vec<JobRequest>) =
            jobs.into_iter().partition(|j| j.qubits <= max_qpu_size);
        let rejected_jobs: Vec<u64> = rejected.iter().map(|j| j.job_id).collect();
        if schedulable.is_empty() {
            let zero = Objectives { mean_jct_s: 0.0, mean_error: 0.0 };
            return ScheduleOutcome {
                placements: vec![],
                chosen: zero,
                pareto_front: vec![],
                front_min_jct: zero,
                front_min_error: zero,
                rejected_jobs,
                timings: StageTimings {
                    preprocessing_s: t0.elapsed().as_secs_f64(),
                    optimization_s: 0.0,
                    selection_s: 0.0,
                },
                chosen_index: 0,
            };
        }
        let job_ids: Vec<u64> = schedulable.iter().map(|j| j.job_id).collect();
        let problem = SchedulingProblem::new(schedulable, qpus);
        let preprocessing_s = t0.elapsed().as_secs_f64();

        // ---------- Stage 2: multi-objective optimization ----------
        let t1 = Instant::now();
        let result = nsga2::optimize(&problem, &self.config.nsga2);
        let optimization_s = t1.elapsed().as_secs_f64();

        // ---------- Stage 3: MCDM selection ----------
        let t2 = Instant::now();
        let chosen_index = mcdm::select(&result.pareto_front, self.config.preference);
        let chosen_solution = &result.pareto_front[chosen_index];
        let placements: Vec<Placement> = chosen_solution
            .assignment
            .iter()
            .zip(&job_ids)
            .map(|(&qpu_index, &job_id)| Placement { job_id, qpu_index })
            .collect();
        let front_min_jct = result
            .pareto_front
            .iter()
            .map(|s| s.objectives)
            .min_by(|a, b| a.mean_jct_s.partial_cmp(&b.mean_jct_s).unwrap())
            .unwrap_or(chosen_solution.objectives);
        let front_min_error = result
            .pareto_front
            .iter()
            .map(|s| s.objectives)
            .min_by(|a, b| a.mean_error.partial_cmp(&b.mean_error).unwrap())
            .unwrap_or(chosen_solution.objectives);
        let selection_s = t2.elapsed().as_secs_f64();

        ScheduleOutcome {
            placements,
            chosen: chosen_solution.objectives,
            pareto_front: result.pareto_front,
            front_min_jct,
            front_min_error,
            rejected_jobs,
            timings: StageTimings { preprocessing_s, optimization_s, selection_s },
            chosen_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn jobs_and_qpus(
        num_jobs: usize,
        num_qpus: usize,
        seed: u64,
    ) -> (Vec<JobRequest>, Vec<QpuState>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let qpus: Vec<QpuState> = (0..num_qpus)
            .map(|i| QpuState {
                name: format!("qpu{i}"),
                num_qubits: if i == 0 { 7 } else { 27 },
                waiting_time_s: rng.gen_range(0.0..300.0),
            })
            .collect();
        let jobs: Vec<JobRequest> = (0..num_jobs)
            .map(|i| JobRequest {
                job_id: 1000 + i as u64,
                qubits: rng.gen_range(2..=25),
                shots: 4000,
                fidelity_per_qpu: (0..num_qpus).map(|_| rng.gen_range(0.5..0.95)).collect(),
                exec_time_per_qpu: (0..num_qpus).map(|_| rng.gen_range(5.0..80.0)).collect(),
            })
            .collect();
        (jobs, qpus)
    }

    #[test]
    fn schedule_places_every_schedulable_job_feasibly() {
        let (jobs, qpus) = jobs_and_qpus(50, 5, 1);
        let scheduler = HybridScheduler::default();
        let outcome = scheduler.schedule(jobs.clone(), qpus.clone());
        assert_eq!(outcome.placements.len() + outcome.rejected_jobs.len(), jobs.len());
        for p in &outcome.placements {
            let job = jobs.iter().find(|j| j.job_id == p.job_id).unwrap();
            assert!(qpus[p.qpu_index].num_qubits >= job.qubits);
        }
        assert!(outcome.timings.total_s() > 0.0);
        assert!(outcome.timings.optimization_s > outcome.timings.selection_s);
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let (mut jobs, qpus) = jobs_and_qpus(5, 3, 2);
        jobs.push(JobRequest {
            job_id: 9999,
            qubits: 100,
            shots: 100,
            fidelity_per_qpu: vec![0.5; 3],
            exec_time_per_qpu: vec![1.0; 3],
        });
        let outcome = HybridScheduler::default().schedule(jobs, qpus);
        assert!(outcome.rejected_jobs.contains(&9999));
    }

    #[test]
    fn chosen_solution_sits_between_front_extremes() {
        let (jobs, qpus) = jobs_and_qpus(80, 8, 3);
        let outcome = HybridScheduler::default().schedule(jobs, qpus);
        assert!(outcome.chosen.mean_jct_s >= outcome.front_min_jct.mean_jct_s - 1e-9);
        assert!(outcome.chosen.mean_error >= outcome.front_min_error.mean_error - 1e-9);
        assert!(!outcome.pareto_front.is_empty());
        assert!(outcome.chosen_index < outcome.pareto_front.len());
    }

    #[test]
    fn jct_priority_yields_lower_jct_than_fidelity_priority() {
        let (jobs, qpus) = jobs_and_qpus(60, 6, 4);
        let jct_first = HybridScheduler::new(SchedulerConfig {
            preference: Preference::jct_first(),
            ..Default::default()
        })
        .schedule(jobs.clone(), qpus.clone());
        let fid_first = HybridScheduler::new(SchedulerConfig {
            preference: Preference::fidelity_first(),
            ..Default::default()
        })
        .schedule(jobs, qpus);
        assert!(jct_first.chosen.mean_jct_s <= fid_first.chosen.mean_jct_s);
        assert!(jct_first.chosen.mean_fidelity() <= fid_first.chosen.mean_fidelity() + 1e-9);
    }

    #[test]
    fn all_jobs_oversized_returns_empty_schedule() {
        let qpus = vec![QpuState { name: "tiny".into(), num_qubits: 5, waiting_time_s: 0.0 }];
        let jobs = vec![JobRequest {
            job_id: 1,
            qubits: 50,
            shots: 100,
            fidelity_per_qpu: vec![0.5],
            exec_time_per_qpu: vec![1.0],
        }];
        let outcome = HybridScheduler::default().schedule(jobs, qpus);
        assert!(outcome.placements.is_empty());
        assert_eq!(outcome.rejected_jobs, vec![1]);
    }
}
