//! # qonductor-scheduler
//!
//! The Qonductor hybrid scheduler (§7): the Eq.-1 multi-objective scheduling
//! problem, a from-scratch NSGA-II optimizer with the paper's customised
//! genetic operators and sliding-window termination, MCDM pseudo-weight
//! selection (Eq. 2), FCFS / fidelity-greedy / least-busy baselines, the
//! Kubernetes-style filter–score scheduler for classical jobs, queue-size and
//! time-based scheduling triggers, and calibration-crossover handling.

#![warn(missing_docs)]

pub mod baselines;
pub mod classical;
pub mod crossover;
pub mod mcdm;
pub mod nsga2;
pub mod problem;
pub mod scheduler;
pub mod triggers;

pub use baselines::{assign as baseline_assign, BaselinePolicy};
pub use classical::{place, ClassicalNode, ClassicalRequest, ScoringPolicy};
pub use crossover::{partition_at_boundary, plan_timeline, CrossoverPartition, PlannedJob};
pub use mcdm::{pseudo_weights, select, Preference};
pub use nsga2::{
    optimize, optimize_seeded, optimize_sequential, optimize_with, Nsga2Config, Nsga2Result,
    OptimizerWorkspace, ParetoSolution, MIGRATION_INTERVAL, MIN_ISLAND_POP,
};
pub use problem::{
    EvalState, JobRequest, Objectives, QpuState, SchedulingProblem, INFEASIBLE_PENALTY_S,
    MAX_EXEC_S, MAX_PLACEMENT_COST, MAX_WAIT_S, NON_FINITE_EXEC_S,
};
pub use scheduler::{
    HybridScheduler, Placement, ScheduleOutcome, SchedulerConfig, SpeculativeSchedule, StageTimings,
};
pub use triggers::{ScheduleTrigger, TriggerReason, DEFAULT_SLO_MARGIN_S};
