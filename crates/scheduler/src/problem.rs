//! The quantum-job scheduling problem formulation of §7, Eq. (1).
//!
//! An assignment maps each of `N` jobs to one of `Q` QPUs. The two conflicting
//! objectives are the mean job completion time (queue waiting time of the
//! chosen QPU plus the execution time of every job co-scheduled on it) and the
//! mean error (one minus the estimated fidelity of each job on its chosen
//! QPU). The qubit-capacity constraint `q_i ≤ s_{x_i}` restricts the feasible
//! QPU set of each job.
//!
//! # Hot-path layout
//!
//! Estimates are stored twice: in the caller-facing [`JobRequest`] /
//! [`QpuState`] structs, and in flat structure-of-arrays tables with stride
//! `num_qpus` (`exec`, `err`, plus a per-job feasibility bitset) that the
//! optimizer's inner loop indexes directly. A third, *transposed* view stores
//! per-QPU f32 lanes (`lane_exec`, `lane_err`, `lane_feas`, stride
//! `num_jobs`) for [`SchedulingProblem::evaluate_lanes`], a branch-free
//! chunked reduction the compiler auto-vectorizes. Both f64 views hold the
//! *sanitised* values computed by
//! [`SchedulingProblem::new`]: non-finite or out-of-range estimates are
//! clamped (a NaN/∞ from the resource estimator must penalise a placement,
//! never panic or poison the objective arithmetic), and every time/error value
//! is quantised to a dyadic grid (multiples of 2⁻²⁰ s and 2⁻³² respectively).
//!
//! The dyadic grid is what makes *incremental* evaluation exact: per-QPU sums
//! of grid values are integers scaled by a power of two, so as long as the
//! scaled magnitude stays below 2⁵³ (≈ 8.6·10⁹ s of total assigned time per
//! QPU) every add/remove in [`EvalState`] is exact f64 arithmetic. An
//! [`EvalState`] updated through any sequence of [`SchedulingProblem::move_job`]
//! calls therefore yields objectives that are bit-for-bit identical to a
//! from-scratch [`SchedulingProblem::evaluate`] of the same assignment —
//! property-tested in `tests/property_tests.rs`.

use serde::{Deserialize, Serialize};

/// Execution-time estimate substituted for non-finite (or negative) estimates:
/// large enough that the optimizer steers away, finite so arithmetic stays
/// well-defined.
pub const NON_FINITE_EXEC_S: f64 = 1e6;

/// Upper clamp on per-job execution estimates (seconds).
pub const MAX_EXEC_S: f64 = 1e6;

/// Upper clamp on per-QPU queue waiting-time estimates (seconds); non-finite
/// waiting times clamp here (an unknown queue is assumed maximally busy).
pub const MAX_WAIT_S: f64 = 1e8;

/// Mean-JCT penalty added per infeasibly placed job (Eq. 1 constraint
/// violation), steering the optimizer toward feasible assignments.
pub const INFEASIBLE_PENALTY_S: f64 = 1e7;

/// Upper clamp on the per-placement shot cost (credit units): keeps per-QPU
/// cost sums exactly representable on the dyadic grid (see the module docs'
/// 2⁵³ budget) no matter what a provider's billing table claims.
pub const MAX_PLACEMENT_COST: f64 = 1e6;

/// Times snap to multiples of 2⁻²⁰ s (≈ 1 µs): power-of-two scaling keeps
/// quantisation exact and per-QPU sums exactly representable.
const TIME_GRID: f64 = 1_048_576.0; // 2^20
/// Errors snap to multiples of 2⁻³² (≈ 2.3e-10), far below any estimator
/// resolution but exact under summation.
const ERR_GRID: f64 = 4_294_967_296.0; // 2^32

/// Snap `v` to the dyadic grid with `grid` steps per unit. Scaling by a power
/// of two is exact, `round` is exact, and the division back is exact, so the
/// result is exactly `k / grid` for an integer `k`.
fn snap(v: f64, grid: f64) -> f64 {
    (v * grid).round() / grid
}

/// Sanitised execution-time estimate: finite, non-negative, clamped to
/// [`MAX_EXEC_S`], on the time grid.
fn sanitize_exec(v: f64) -> f64 {
    let v = if v.is_finite() && v >= 0.0 { v.min(MAX_EXEC_S) } else { NON_FINITE_EXEC_S };
    snap(v, TIME_GRID)
}

/// Sanitised error (1 − fidelity): a non-finite fidelity estimate degrades to
/// the maximum error 1.0 so the optimizer penalises the placement.
fn sanitize_err(fidelity: f64) -> f64 {
    let f = if fidelity.is_finite() { fidelity.clamp(0.0, 1.0) } else { 0.0 };
    snap(1.0 - f, ERR_GRID)
}

/// Sanitised queue waiting time: finite, non-negative, clamped, on the grid.
fn sanitize_wait(v: f64) -> f64 {
    let v = if v.is_finite() { v.clamp(0.0, MAX_WAIT_S) } else { MAX_WAIT_S };
    snap(v, TIME_GRID)
}

/// Sanitised per-placement shot cost: a non-finite or negative billing entry
/// degrades to free (costs must never poison the objective arithmetic), the
/// rest clamps to [`MAX_PLACEMENT_COST`] and snaps to the time grid so
/// incremental cost sums stay exact.
fn sanitize_cost(v: f64) -> f64 {
    let v = if v.is_finite() && v >= 0.0 { v.min(MAX_PLACEMENT_COST) } else { 0.0 };
    snap(v, TIME_GRID)
}

/// One QPU lane of a single-table reduction (the cost lane): sum `vals` over
/// the genes assigned to QPU `qm`. Same 8-accumulator shape as [`lane_fold`]
/// so results are deterministic per target; the cost lane is folded
/// separately to keep the three-table SSE2 kernel untouched.
fn lane_fold_single(genes: &[u16], vals: &[f32], qm: u16) -> f32 {
    let n = genes.len();
    debug_assert_eq!(vals.len(), n);
    let mut acc = [0.0f32; 8];
    let mut i = 0usize;
    while i + 8 <= n {
        for l in 0..8 {
            let m = (genes[i + l] == qm) as u32 as f32;
            acc[l] += m * vals[i + l];
        }
        i += 8;
    }
    while i < n {
        acc[0] += (genes[i] == qm) as u32 as f32 * vals[i];
        i += 1;
    }
    acc.iter().sum()
}

/// One QPU lane of the objective reduction: sum `exec`/`feas`/`err` over the
/// genes assigned to QPU `qm`. On x86-64 this runs hand-packed SSE2 (baseline
/// for the target, so no runtime dispatch): one 128-bit load covers eight
/// `u16` genes, a packed `pcmpeqw` builds the selection mask, and widening
/// the 16-bit mask halves to 32 bits (`punpck` of the mask with itself)
/// yields all-ones f32 masks that AND the lane values directly — no
/// branches, no int→float conversion. Other targets take the scalar
/// eight-accumulator fold below, which LLVM can autovectorize. The two
/// bodies accumulate in the same 8 partial lanes; only the final horizontal
/// reduction order differs, so results are deterministic per target.
fn lane_fold(genes: &[u16], exec: &[f32], feas: &[f32], err: &[f32], qm: u16) -> (f32, f32, f32) {
    let n = genes.len();
    debug_assert!(exec.len() == n && feas.len() == n && err.len() == n);
    let mut time_acc = [0.0f32; 8];
    let mut feas_acc = [0.0f32; 8];
    let mut err_acc = [0.0f32; 8];
    let mut i = 0usize;
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        // SAFETY: all intrinsics are SSE2, baseline on x86_64; every unaligned
        // load reads 8 u16s / 4 f32s starting at `i` or `i + 4` with
        // `i + 8 <= n` checked by the loop condition, within the equal-length
        // slices.
        unsafe {
            let qv = _mm_set1_epi16(qm as i16);
            let mut t0 = _mm_setzero_ps();
            let mut t1 = _mm_setzero_ps();
            let mut f0 = _mm_setzero_ps();
            let mut f1 = _mm_setzero_ps();
            let mut e0 = _mm_setzero_ps();
            let mut e1 = _mm_setzero_ps();
            while i + 8 <= n {
                let g = _mm_loadu_si128(genes.as_ptr().add(i) as *const __m128i);
                let m16 = _mm_cmpeq_epi16(g, qv);
                let m0 = _mm_castsi128_ps(_mm_unpacklo_epi16(m16, m16));
                let m1 = _mm_castsi128_ps(_mm_unpackhi_epi16(m16, m16));
                t0 = _mm_add_ps(t0, _mm_and_ps(m0, _mm_loadu_ps(exec.as_ptr().add(i))));
                t1 = _mm_add_ps(t1, _mm_and_ps(m1, _mm_loadu_ps(exec.as_ptr().add(i + 4))));
                f0 = _mm_add_ps(f0, _mm_and_ps(m0, _mm_loadu_ps(feas.as_ptr().add(i))));
                f1 = _mm_add_ps(f1, _mm_and_ps(m1, _mm_loadu_ps(feas.as_ptr().add(i + 4))));
                e0 = _mm_add_ps(e0, _mm_and_ps(m0, _mm_loadu_ps(err.as_ptr().add(i))));
                e1 = _mm_add_ps(e1, _mm_and_ps(m1, _mm_loadu_ps(err.as_ptr().add(i + 4))));
                i += 8;
            }
            _mm_storeu_ps(time_acc.as_mut_ptr(), t0);
            _mm_storeu_ps(time_acc.as_mut_ptr().add(4), t1);
            _mm_storeu_ps(feas_acc.as_mut_ptr(), f0);
            _mm_storeu_ps(feas_acc.as_mut_ptr().add(4), f1);
            _mm_storeu_ps(err_acc.as_mut_ptr(), e0);
            _mm_storeu_ps(err_acc.as_mut_ptr().add(4), e1);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        while i + 8 <= n {
            for l in 0..8 {
                let m = (genes[i + l] == qm) as u32 as f32;
                time_acc[l] += m * exec[i + l];
                feas_acc[l] += m * feas[i + l];
                err_acc[l] += m * err[i + l];
            }
            i += 8;
        }
    }
    while i < n {
        let m = (genes[i] == qm) as u32 as f32;
        time_acc[0] += m * exec[i];
        feas_acc[0] += m * feas[i];
        err_acc[0] += m * err[i];
        i += 1;
    }
    (time_acc.iter().sum::<f32>(), feas_acc.iter().sum::<f32>(), err_acc.iter().sum::<f32>())
}

/// One job awaiting scheduling, together with its per-QPU estimates (produced
/// by the resource estimator and fetched from the system monitor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Unique job identifier.
    pub job_id: u64,
    /// Number of qubits the job needs (`q_i` in Eq. 1).
    pub qubits: u32,
    /// Number of shots.
    pub shots: u32,
    /// Estimated fidelity of this job on each QPU (`f_{i,x}`), indexed by QPU.
    pub fidelity_per_qpu: Vec<f64>,
    /// Estimated execution time in seconds on each QPU (`t_{i,x}`), indexed by QPU.
    pub exec_time_per_qpu: Vec<f64>,
}

/// The scheduler-visible state of one QPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpuState {
    /// Device name.
    pub name: String,
    /// Number of qubits (`s_x` in Eq. 1).
    pub num_qubits: u32,
    /// Approximate waiting time of the device's current queue in seconds (`w_x`).
    pub waiting_time_s: f64,
    /// Calibration epoch of the snapshot the estimates were computed against
    /// (§7: estimates are only valid until the device's next recalibration
    /// boundary). Callers without an epoch clock pass 0.
    pub calibration_epoch: u64,
}

/// A fully specified scheduling problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulingProblem {
    /// Jobs to schedule in this cycle (estimates sanitised by [`Self::new`]).
    pub jobs: Vec<JobRequest>,
    /// Available QPUs (waiting times sanitised by [`Self::new`]).
    pub qpus: Vec<QpuState>,
    /// For each job, the indices of QPUs that satisfy the capacity constraint.
    feasible: Vec<Vec<usize>>,
    /// Flat execution-time table, `exec[job * num_qpus + qpu]`.
    exec: Vec<f64>,
    /// Flat error table (1 − fidelity), `err[job * num_qpus + qpu]`.
    err: Vec<f64>,
    /// Capacity-feasibility bitset: bit `qpu` of the `mask_words` words
    /// starting at `job * mask_words` is set when the placement is feasible.
    feasible_bits: Vec<u64>,
    /// Number of `u64` words per job row in `feasible_bits`.
    mask_words: usize,
    /// Transposed f32 execution-time lanes, `lane_exec[qpu * num_jobs + job]`
    /// (all placements, feasible or not — they occupy the device either way).
    lane_exec: Vec<f32>,
    /// Transposed f32 error lanes: the job's error on the QPU when feasible,
    /// `1.0` when infeasible (matching the full error an infeasible placement
    /// contributes to the mean-error objective).
    lane_err: Vec<f32>,
    /// Transposed f32 feasibility lanes: `1.0` when feasible, else `0.0`.
    lane_feas: Vec<f32>,
    /// Sanitised per-QPU queue waiting times.
    wait: Vec<f64>,
    /// `nearest[job * num_qpus + r]` = the feasible QPU(s) nearest to index
    /// `r`: `(lo, hi)` with `lo == hi` when unambiguous, two equidistant
    /// candidates otherwise, and `(MAX, MAX)` for jobs with no feasible QPU.
    /// Lets the optimizer snap a real-valued gene in O(1).
    nearest: Vec<(u32, u32)>,
    /// Per-QPU calibration epoch the estimate tables were built from
    /// (index-aligned with `qpus`).
    epochs: Vec<u64>,
    /// Optional calibration-boundary penalty (see
    /// [`Self::with_boundary_penalty`]). `None` leaves the objectives
    /// bit-for-bit identical to a problem built without the penalty.
    boundary: Option<BoundaryPenalty>,
    /// Optional per-placement shot-cost objective lane (see
    /// [`Self::with_shot_costs`]). `None` leaves the objectives bit-for-bit
    /// identical to a problem built without costs.
    costs: Option<ShotCosts>,
}

/// Soft penalty steering the optimizer away from plans that spill past a
/// QPU's next recalibration: estimates are only valid until the boundary, so
/// work scheduled beyond it must be deferred or split at dispatch time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BoundaryPenalty {
    /// Seconds from now until each QPU's next calibration boundary
    /// (`f64::INFINITY` = no upcoming boundary, index-aligned with `qpus`).
    horizon_s: Vec<f64>,
    /// Seconds of JCT-sum penalty added per second a QPU's planned busy time
    /// (queue wait + newly assigned work) overruns its horizon.
    weight: f64,
}

/// The federation cost lane: per-placement monetary cost
/// (`shots × cost_per_shot[qpu]`) mirrored into both evaluation layouts.
/// The cost sum is reported as [`Objectives::mean_cost`] and, scaled by
/// `weight`, folded into the JCT objective so the optimizer trades turnaround
/// against spend. Dominance stays two-dimensional — the cost lane steers
/// through the scalarised JCT like the boundary penalty does, which keeps the
/// 2-D Pareto sweep, crowding, and MCDM layers untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShotCosts {
    /// Flat sanitised cost table, `cost[job * num_qpus + qpu]`, on the time
    /// grid so incremental sums are exact.
    cost: Vec<f64>,
    /// Transposed f32 cost lanes, `lane_cost[qpu * num_jobs + job]`, for the
    /// island optimizer's batch path.
    lane_cost: Vec<f32>,
    /// Seconds of JCT-sum pressure per credit unit of plan cost.
    weight: f64,
}

/// Sentinel in the nearest-feasible table for jobs with an empty feasible set.
pub(crate) const NO_FEASIBLE: u32 = u32::MAX;

/// The objective values of one assignment (all minimised). `mean_jct_s` and
/// `mean_error` are the two Pareto dimensions of Eq. (1); `mean_cost` is the
/// federation cost lane, reported for MCDM tie-breaking and diagnostics and
/// folded into `mean_jct_s` (scaled by the cost weight) during the search —
/// it does **not** participate in [`Objectives::dominates`], which keeps the
/// 2-D non-dominated sort intact. Always `0.0` when no cost lane is attached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// Mean job completion time in seconds (`f₁`).
    pub mean_jct_s: f64,
    /// Mean error = 1 − mean fidelity (`f₂`).
    pub mean_error: f64,
    /// Mean per-job placement cost in credit units (federation lane).
    #[serde(default)]
    pub mean_cost: f64,
}

impl Objectives {
    /// Mean fidelity of the assignment.
    pub fn mean_fidelity(&self) -> f64 {
        1.0 - self.mean_error
    }

    /// Pareto dominance over the two Eq. (1) objectives: `self` dominates
    /// `other` if it is no worse in both and strictly better in at least one.
    /// `mean_cost` is deliberately excluded — cost pressure reaches the
    /// search through the scalarised JCT term (see
    /// [`SchedulingProblem::with_shot_costs`]).
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.mean_jct_s <= other.mean_jct_s && self.mean_error <= other.mean_error;
        let better = self.mean_jct_s < other.mean_jct_s || self.mean_error < other.mean_error;
        no_worse && better
    }
}

/// Per-assignment evaluation aggregates, maintained incrementally: the per-QPU
/// assigned execution time and feasibly-placed job count, plus the error sum
/// and infeasible-placement count. An offspring whose crossover/mutation
/// changed `k` genes updates in O(k) instead of re-scanning all `N` jobs;
/// [`SchedulingProblem::objectives_of`] turns the aggregates into objective
/// values in O(Q).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalState {
    /// Total execution time newly assigned to each QPU (all placements,
    /// including infeasible ones — they still occupy the device in Eq. 1).
    assigned_time: Vec<f64>,
    /// Number of feasibly placed jobs per QPU.
    feasible_count: Vec<u32>,
    /// Sum of error values over feasibly placed jobs.
    err_sum: f64,
    /// Number of infeasibly placed jobs (each adds the JCT penalty and a full
    /// error of 1.0).
    infeasible: u32,
    /// Sum of per-placement shot costs over all placed jobs (exact on the
    /// dyadic grid). Stays `0.0` when the problem has no cost lane.
    cost_sum: f64,
}

impl EvalState {
    /// An empty state sized for `num_qpus` devices.
    pub fn new(num_qpus: usize) -> Self {
        EvalState {
            assigned_time: vec![0.0; num_qpus],
            feasible_count: vec![0; num_qpus],
            err_sum: 0.0,
            infeasible: 0,
            cost_sum: 0.0,
        }
    }

    /// Clear and resize for `num_qpus` devices, reusing the buffers.
    pub fn reset(&mut self, num_qpus: usize) {
        self.assigned_time.clear();
        self.assigned_time.resize(num_qpus, 0.0);
        self.feasible_count.clear();
        self.feasible_count.resize(num_qpus, 0);
        self.err_sum = 0.0;
        self.infeasible = 0;
        self.cost_sum = 0.0;
    }

    /// Copy another state into this one, reusing the buffers (no allocation
    /// when capacities suffice).
    pub fn copy_from(&mut self, src: &EvalState) {
        self.assigned_time.clone_from(&src.assigned_time);
        self.feasible_count.clone_from(&src.feasible_count);
        self.err_sum = src.err_sum;
        self.infeasible = src.infeasible;
        self.cost_sum = src.cost_sum;
    }
}

impl SchedulingProblem {
    /// Build a problem instance, computing the per-job feasible QPU sets and
    /// the flat evaluation tables. Estimates are sanitised here (see the
    /// module docs): non-finite fidelities degrade to 0, non-finite execution
    /// times to [`NON_FINITE_EXEC_S`], non-finite waiting times to
    /// [`MAX_WAIT_S`], and everything snaps to the dyadic grid that keeps
    /// incremental evaluation exact. The sanitised values are written back
    /// into the public `jobs` / `qpus` so every view agrees.
    ///
    /// # Panics
    /// Panics if `jobs` or `qpus` is empty, or if estimate vectors have the
    /// wrong length.
    pub fn new(mut jobs: Vec<JobRequest>, mut qpus: Vec<QpuState>) -> Self {
        assert!(!jobs.is_empty(), "scheduling problem needs at least one job");
        assert!(!qpus.is_empty(), "scheduling problem needs at least one QPU");
        let num_qpus = qpus.len();
        for j in &jobs {
            assert_eq!(j.fidelity_per_qpu.len(), num_qpus, "job {} fidelity estimates", j.job_id);
            assert_eq!(j.exec_time_per_qpu.len(), num_qpus, "job {} time estimates", j.job_id);
        }
        for q in &mut qpus {
            q.waiting_time_s = sanitize_wait(q.waiting_time_s);
        }
        let wait: Vec<f64> = qpus.iter().map(|q| q.waiting_time_s).collect();
        let mask_words = num_qpus.div_ceil(64);
        let mut exec = Vec::with_capacity(jobs.len() * num_qpus);
        let mut err = Vec::with_capacity(jobs.len() * num_qpus);
        let mut feasible_bits = vec![0u64; jobs.len() * mask_words];
        let mut feasible = Vec::with_capacity(jobs.len());
        for (i, j) in jobs.iter_mut().enumerate() {
            for t in &mut j.exec_time_per_qpu {
                *t = sanitize_exec(*t);
                exec.push(*t);
            }
            for f in &mut j.fidelity_per_qpu {
                let e = sanitize_err(*f);
                // 1 − k·2⁻³² is exact, so the stored fidelity mirrors `err`.
                *f = 1.0 - e;
                err.push(e);
            }
            let mut set = Vec::new();
            for (idx, q) in qpus.iter().enumerate() {
                if q.num_qubits >= j.qubits {
                    feasible_bits[i * mask_words + idx / 64] |= 1u64 << (idx % 64);
                    set.push(idx);
                }
            }
            feasible.push(set);
        }
        // Transposed f32 lanes: one contiguous run per QPU so the objective
        // reduction streams each lane without gathers.
        let num_jobs = jobs.len();
        let mut lane_exec = vec![0.0f32; num_jobs * num_qpus];
        let mut lane_err = vec![0.0f32; num_jobs * num_qpus];
        let mut lane_feas = vec![0.0f32; num_jobs * num_qpus];
        for i in 0..num_jobs {
            for q in 0..num_qpus {
                let ok = feasible_bits[i * mask_words + q / 64] >> (q % 64) & 1 != 0;
                lane_exec[q * num_jobs + i] = exec[i * num_qpus + q] as f32;
                lane_err[q * num_jobs + i] = if ok { err[i * num_qpus + q] as f32 } else { 1.0 };
                lane_feas[q * num_jobs + i] = if ok { 1.0 } else { 0.0 };
            }
        }
        let mut nearest = Vec::with_capacity(jobs.len() * num_qpus);
        for set in &feasible {
            if set.is_empty() {
                nearest.extend(std::iter::repeat_n((NO_FEASIBLE, NO_FEASIBLE), num_qpus));
                continue;
            }
            for r in 0..num_qpus {
                // `set` is ascending; find the nearest member(s) to index r.
                let idx = set.partition_point(|&q| q < r);
                let entry = if idx == 0 {
                    (set[0] as u32, set[0] as u32)
                } else if idx == set.len() {
                    (set[set.len() - 1] as u32, set[set.len() - 1] as u32)
                } else {
                    let lo = set[idx - 1];
                    let hi = set[idx];
                    match (r - lo).cmp(&(hi - r)) {
                        std::cmp::Ordering::Less => (lo as u32, lo as u32),
                        std::cmp::Ordering::Greater => (hi as u32, hi as u32),
                        std::cmp::Ordering::Equal => (lo as u32, hi as u32),
                    }
                };
                nearest.push(entry);
            }
        }
        let epochs = qpus.iter().map(|q| q.calibration_epoch).collect();
        SchedulingProblem {
            jobs,
            qpus,
            feasible,
            exec,
            err,
            feasible_bits,
            mask_words,
            lane_exec,
            lane_err,
            lane_feas,
            wait,
            nearest,
            epochs,
            boundary: None,
            costs: None,
        }
    }

    /// Attach a calibration-boundary penalty: `horizon_s[q]` is the number of
    /// seconds until QPU `q`'s next recalibration (non-finite or missing =
    /// no boundary), and `weight` scales the JCT-sum penalty per second a
    /// QPU's planned busy time overruns its horizon. The penalty is computed
    /// from the per-QPU aggregates inside [`Self::objectives_of`], so
    /// incremental and full evaluation remain bit-for-bit identical; a
    /// zero/negative weight disables it entirely.
    pub fn with_boundary_penalty(mut self, horizon_s: &[f64], weight: f64) -> Self {
        if weight <= 0.0 || !weight.is_finite() {
            self.boundary = None;
            return self;
        }
        let horizon_s: Vec<f64> = (0..self.num_qpus())
            .map(|q| match horizon_s.get(q) {
                Some(&h) if h.is_finite() => snap(h.max(0.0), TIME_GRID),
                _ => f64::INFINITY,
            })
            .collect();
        self.boundary = Some(BoundaryPenalty { horizon_s, weight });
        self
    }

    /// `true` when a calibration-boundary penalty is attached.
    pub fn has_boundary_penalty(&self) -> bool {
        self.boundary.is_some()
    }

    /// Attach the federation cost lane: `cost_per_shot[q]` is QPU `q`'s
    /// per-shot price in credit units (non-finite, negative, or missing
    /// entries degrade to free), and `weight` scales the JCT-sum pressure per
    /// credit unit of total plan cost. Each placement's cost is
    /// `shots × cost_per_shot[qpu]`, sanitised and snapped to the dyadic grid
    /// so [`EvalState`] cost sums update exactly; the lane is also mirrored
    /// into transposed f32 lanes for the island optimizer. The cost term is
    /// computed from the aggregates inside [`Self::objectives_of`], so
    /// incremental and full evaluation remain bit-for-bit identical; a
    /// zero/negative weight disables the lane entirely, leaving every
    /// objective bit-identical to a cost-free problem.
    pub fn with_shot_costs(mut self, cost_per_shot: &[f64], weight: f64) -> Self {
        if weight <= 0.0 || !weight.is_finite() {
            self.costs = None;
            return self;
        }
        let num_qpus = self.num_qpus();
        let num_jobs = self.num_jobs();
        let mut cost = Vec::with_capacity(num_jobs * num_qpus);
        for j in &self.jobs {
            for q in 0..num_qpus {
                let per_shot = cost_per_shot.get(q).copied().unwrap_or(0.0);
                cost.push(sanitize_cost(f64::from(j.shots) * per_shot));
            }
        }
        let mut lane_cost = vec![0.0f32; num_jobs * num_qpus];
        for (i, row) in cost.chunks_exact(num_qpus).enumerate() {
            for (q, &c) in row.iter().enumerate() {
                lane_cost[q * num_jobs + i] = c as f32;
            }
        }
        self.costs = Some(ShotCosts { cost, lane_cost, weight });
        self
    }

    /// `true` when the federation cost lane is attached.
    pub fn has_shot_costs(&self) -> bool {
        self.costs.is_some()
    }

    /// The calibration epoch each QPU's estimate column was built from
    /// (index-aligned with `qpus`). Diagnostic/library surface: external
    /// callers comparing this against a live epoch clock can tell when the
    /// tables went stale; the in-tree dispatch layer reads the fleet's
    /// clocks directly.
    pub fn qpu_epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// The feasible QPU(s) nearest to index `r` for `job`: `Some((lo, hi))`
    /// with `lo == hi` when unambiguous and `lo < hi` for an equidistant tie,
    /// or `None` when the job has no feasible QPU. O(1) table lookup for the
    /// optimizer's gene-snapping inner loop.
    pub fn nearest_feasible(&self, job: usize, r: usize) -> Option<(usize, usize)> {
        let (lo, hi) = self.nearest[job * self.num_qpus() + r.min(self.num_qpus() - 1)];
        (lo != NO_FEASIBLE).then_some((lo as usize, hi as usize))
    }

    /// The nearest-feasible row for `job` (length `num_qpus`). The island
    /// path's branch-free snap hoists this once per gene and indexes it with
    /// the row length itself, so the bounds check vanishes; entries are
    /// [`NO_FEASIBLE`] pairs when the job has no feasible QPU.
    #[inline]
    pub(crate) fn snap_row(&self, job: usize) -> &[(u32, u32)] {
        let q = self.num_qpus();
        &self.nearest[job * q..job * q + q]
    }

    /// The whole nearest-feasible table, row-major with stride `num_qpus`.
    /// Hot loops walk it with `chunks_exact(num_qpus)` alongside the gene
    /// vector, which removes the per-gene slice range checks [`snap_row`]
    /// pays.
    #[inline]
    pub(crate) fn snap_table(&self) -> &[(u32, u32)] {
        &self.nearest
    }

    /// Number of jobs (`N`).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of QPUs (`Q`).
    pub fn num_qpus(&self) -> usize {
        self.qpus.len()
    }

    /// Feasible QPU indices for job `i`.
    pub fn feasible_qpus(&self, job: usize) -> &[usize] {
        &self.feasible[job]
    }

    /// Feasibility-bitset lookup (callers guarantee `qpu < num_qpus`).
    #[inline]
    fn feasible_bit(&self, job: usize, qpu: usize) -> bool {
        self.feasible_bits[job * self.mask_words + qpu / 64] >> (qpu % 64) & 1 != 0
    }

    /// `true` if placing `job` on `qpu` satisfies the capacity constraint.
    pub fn placement_is_feasible(&self, job: usize, qpu: usize) -> bool {
        qpu < self.num_qpus() && self.feasible_bit(job, qpu)
    }

    /// `true` if every job has at least one feasible QPU.
    pub fn is_feasible(&self) -> bool {
        self.feasible.iter().all(|f| !f.is_empty())
    }

    /// `true` if the assignment respects every job's capacity constraint.
    pub fn assignment_is_feasible(&self, assignment: &[usize]) -> bool {
        assignment.len() == self.num_jobs()
            && assignment.iter().enumerate().all(|(i, &q)| self.placement_is_feasible(i, q))
    }

    /// Rebuild `state` from scratch for an assignment (O(N)).
    pub fn init_state(&self, assignment: &[usize], state: &mut EvalState) {
        assert_eq!(assignment.len(), self.num_jobs());
        state.reset(self.num_qpus());
        for (i, &q) in assignment.iter().enumerate() {
            self.place_job(state, i, q);
        }
    }

    /// Add job `i`'s contribution on QPU `q` to the aggregates (O(1)).
    pub fn place_job(&self, state: &mut EvalState, job: usize, qpu: usize) {
        let k = job * self.num_qpus() + qpu;
        state.assigned_time[qpu] += self.exec[k];
        if let Some(c) = &self.costs {
            state.cost_sum += c.cost[k];
        }
        if self.feasible_bit(job, qpu) {
            state.feasible_count[qpu] += 1;
            state.err_sum += self.err[k];
        } else {
            state.infeasible += 1;
        }
    }

    /// Remove job `i`'s contribution on QPU `q` from the aggregates (O(1)).
    /// Exact inverse of [`Self::place_job`] thanks to the dyadic grid.
    pub fn unplace_job(&self, state: &mut EvalState, job: usize, qpu: usize) {
        let k = job * self.num_qpus() + qpu;
        state.assigned_time[qpu] -= self.exec[k];
        if let Some(c) = &self.costs {
            state.cost_sum -= c.cost[k];
        }
        if self.feasible_bit(job, qpu) {
            state.feasible_count[qpu] -= 1;
            state.err_sum -= self.err[k];
        } else {
            state.infeasible -= 1;
        }
    }

    /// Move job `i` from QPU `from` to QPU `to`, updating the aggregates in
    /// O(1). No-op when `from == to`. Equivalent to
    /// [`Self::unplace_job`] + [`Self::place_job`], fused for the optimizer's
    /// inner loop.
    pub fn move_job(&self, state: &mut EvalState, job: usize, from: usize, to: usize) {
        if from == to {
            return;
        }
        let row = job * self.num_qpus();
        let (kf, kt) = (row + from, row + to);
        state.assigned_time[from] -= self.exec[kf];
        state.assigned_time[to] += self.exec[kt];
        if let Some(c) = &self.costs {
            // Subtract-then-add of grid values is exact, so a move is the
            // exact inverse-compose of unplace + place for the cost sum too.
            state.cost_sum -= c.cost[kf];
            state.cost_sum += c.cost[kt];
        }
        match (self.feasible_bit(job, from), self.feasible_bit(job, to)) {
            (true, true) => {
                state.feasible_count[from] -= 1;
                state.feasible_count[to] += 1;
                state.err_sum += self.err[kt] - self.err[kf];
            }
            (true, false) => {
                state.feasible_count[from] -= 1;
                state.err_sum -= self.err[kf];
                state.infeasible += 1;
            }
            (false, true) => {
                state.feasible_count[to] += 1;
                state.err_sum += self.err[kt];
                state.infeasible -= 1;
            }
            (false, false) => {}
        }
    }

    /// Objective values of the assignment summarised by `state` (O(Q)). This
    /// is the single canonical reduction: [`Self::evaluate`] and the
    /// incremental path both end here, so their results are bitwise equal.
    pub fn objectives_of(&self, state: &EvalState) -> Objectives {
        let n = self.num_jobs() as f64;
        let mut jct_sum = f64::from(state.infeasible) * INFEASIBLE_PENALTY_S;
        for q in 0..self.num_qpus() {
            jct_sum += f64::from(state.feasible_count[q]) * (self.wait[q] + state.assigned_time[q]);
        }
        if let Some(b) = &self.boundary {
            for q in 0..self.num_qpus() {
                let over = self.wait[q] + state.assigned_time[q] - b.horizon_s[q];
                if over > 0.0 {
                    jct_sum += b.weight * over;
                }
            }
        }
        let mut mean_cost = 0.0;
        if let Some(c) = &self.costs {
            jct_sum += c.weight * state.cost_sum;
            mean_cost = state.cost_sum / n;
        }
        let err_total = state.err_sum + f64::from(state.infeasible);
        Objectives { mean_jct_s: jct_sum / n, mean_error: err_total / n, mean_cost }
    }

    /// Evaluate the two objectives of Eq. (1) for an assignment
    /// (`assignment[i]` = QPU index of job `i`). Infeasible job placements are
    /// penalised with [`INFEASIBLE_PENALTY_S`] so the optimizer steers away
    /// from them.
    pub fn evaluate(&self, assignment: &[usize]) -> Objectives {
        let mut state = EvalState::new(self.num_qpus());
        self.init_state(assignment, &mut state);
        self.objectives_of(&state)
    }

    /// Evaluate the two objectives over the transposed f32 lanes: one
    /// branch-free chunked fold per QPU lane (the selection mask is a
    /// compare-and-convert, so the compiler auto-vectorizes the inner loop).
    /// Semantically equivalent to [`Self::evaluate`] up to f32 rounding —
    /// this is the island optimizer's batch-evaluation path; the sequential
    /// reference keeps the exact incremental f64 path.
    ///
    /// Convenience wrapper that narrows a `usize` assignment; the optimizer's
    /// hot path keeps its genes packed as `u16` and calls
    /// [`Self::evaluate_lanes_packed`] directly.
    pub fn evaluate_lanes(&self, assignment: &[usize]) -> Objectives {
        debug_assert!(self.num_qpus() <= 1 << 16);
        let genes: Vec<u16> = assignment.iter().map(|&q| q as u16).collect();
        self.evaluate_lanes_packed(&genes)
    }

    /// [`Self::evaluate_lanes`] over a packed `u16` gene buffer: no widening
    /// pass, no allocation, and the gene stream occupies a quarter of the
    /// cache footprint of a `usize` assignment.
    pub fn evaluate_lanes_packed(&self, genes: &[u16]) -> Objectives {
        let n = self.num_jobs();
        assert_eq!(genes.len(), n);
        let num_qpus = self.num_qpus();
        let mut jct_sum = 0.0f64;
        let mut err_total = 0.0f64;
        let mut feas_total = 0.0f64;
        let mut cost_total = 0.0f64;
        for q in 0..num_qpus {
            let qm = q as u16;
            let exec_lane = &self.lane_exec[q * n..(q + 1) * n];
            let err_lane = &self.lane_err[q * n..(q + 1) * n];
            let feas_lane = &self.lane_feas[q * n..(q + 1) * n];
            let (time32, feas32, errs32) = lane_fold(genes, exec_lane, feas_lane, err_lane, qm);
            let time = f64::from(time32);
            let feas = f64::from(feas32);
            let errs = f64::from(errs32);
            let busy = self.wait[q] + time;
            jct_sum += feas * busy;
            err_total += errs;
            feas_total += feas;
            if let Some(b) = &self.boundary {
                let over = busy - b.horizon_s[q];
                if over > 0.0 {
                    jct_sum += b.weight * over;
                }
            }
            if let Some(c) = &self.costs {
                let cost_lane = &c.lane_cost[q * n..(q + 1) * n];
                cost_total += f64::from(lane_fold_single(genes, cost_lane, qm));
            }
        }
        // Every job is assigned exactly once, so the infeasible count is the
        // complement of the feasible count; infeasible error contributions of
        // 1.0 are already folded into `lane_err`.
        let infeasible = (n as f64 - feas_total).max(0.0);
        jct_sum += infeasible * INFEASIBLE_PENALTY_S;
        let mut mean_cost = 0.0;
        if let Some(c) = &self.costs {
            jct_sum += c.weight * cost_total;
            mean_cost = cost_total / n as f64;
        }
        Objectives { mean_jct_s: jct_sum / n as f64, mean_error: err_total / n as f64, mean_cost }
    }

    /// Per-job completion times (seconds) under an assignment — used by the
    /// evaluation to report JCT percentiles.
    pub fn job_completion_times(&self, assignment: &[usize]) -> Vec<f64> {
        let stride = self.num_qpus();
        let mut assigned_time = vec![0.0f64; stride];
        for (i, &q) in assignment.iter().enumerate() {
            assigned_time[q] += self.exec[i * stride + q];
        }
        assignment.iter().map(|&q| self.wait[q] + assigned_time[q]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy_problem() -> SchedulingProblem {
        let qpus = vec![
            QpuState {
                name: "fast_noisy".into(),
                num_qubits: 27,
                waiting_time_s: 0.0,
                calibration_epoch: 0,
            },
            QpuState {
                name: "slow_good".into(),
                num_qubits: 27,
                waiting_time_s: 100.0,
                calibration_epoch: 0,
            },
            QpuState {
                name: "small".into(),
                num_qubits: 7,
                waiting_time_s: 10.0,
                calibration_epoch: 0,
            },
        ];
        let jobs = (0..4)
            .map(|i| JobRequest {
                job_id: i,
                qubits: if i == 3 { 20 } else { 5 },
                shots: 1000,
                fidelity_per_qpu: vec![0.6, 0.9, 0.7],
                exec_time_per_qpu: vec![10.0, 10.0, 12.0],
            })
            .collect();
        SchedulingProblem::new(jobs, qpus)
    }

    #[test]
    fn qpu_epochs_mirror_the_input_states() {
        let mut p = toy_problem();
        assert_eq!(p.qpu_epochs(), &[0, 0, 0]);
        let mut qpus = p.qpus.clone();
        for (i, q) in qpus.iter_mut().enumerate() {
            q.calibration_epoch = 5 + i as u64;
        }
        p = SchedulingProblem::new(p.jobs, qpus);
        assert_eq!(p.qpu_epochs(), &[5, 6, 7], "epoch tags survive problem construction");
    }

    #[test]
    fn feasible_sets_respect_capacity() {
        let p = toy_problem();
        assert_eq!(p.feasible_qpus(0), &[0, 1, 2]);
        assert_eq!(p.feasible_qpus(3), &[0, 1], "20-qubit job cannot use the 7-qubit QPU");
        assert!(p.is_feasible());
        assert!(p.placement_is_feasible(0, 2));
        assert!(!p.placement_is_feasible(3, 2));
        assert!(!p.placement_is_feasible(0, 99), "out-of-range QPU is never feasible");
    }

    #[test]
    fn evaluate_accounts_for_queue_and_co_scheduled_jobs() {
        let p = toy_problem();
        // All four jobs on QPU 0: each job's JCT = 0 (wait) + 40 (all co-scheduled).
        let all_zero = vec![0, 0, 0, 0];
        let obj = p.evaluate(&all_zero);
        assert!((obj.mean_jct_s - 40.0).abs() < 1e-9);
        assert!((obj.mean_error - 0.4).abs() < 1e-9);
        // Spread over QPUs 0 and 1: lower mean JCT contribution from co-scheduling
        // but QPU 1 carries its 100 s queue.
        let spread = vec![0, 0, 1, 1];
        let obj2 = p.evaluate(&spread);
        assert!((obj2.mean_jct_s - ((20.0 + 20.0 + 120.0 + 120.0) / 4.0)).abs() < 1e-9);
        assert!(obj2.mean_error < obj.mean_error);
    }

    #[test]
    fn infeasible_assignment_is_penalised() {
        let p = toy_problem();
        let bad = vec![2, 2, 2, 2]; // job 3 (20 qubits) cannot run on the 7-qubit QPU
        assert!(!p.assignment_is_feasible(&bad));
        let obj = p.evaluate(&bad);
        assert!(obj.mean_jct_s > 1e6);
    }

    #[test]
    fn dominance_relation() {
        let a = Objectives { mean_jct_s: 10.0, mean_error: 0.1, mean_cost: 0.0 };
        let b = Objectives { mean_jct_s: 20.0, mean_error: 0.2, mean_cost: 0.0 };
        let c = Objectives { mean_jct_s: 5.0, mean_error: 0.3, mean_cost: 0.0 };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a), "a and c are incomparable");
        assert!(!a.dominates(&a), "dominance is irreflexive");
        // The cost lane never participates in dominance.
        let pricey = Objectives { mean_cost: 99.0, ..a };
        assert!(pricey.dominates(&b) && !b.dominates(&pricey));
    }

    #[test]
    fn completion_times_match_objective_mean() {
        let p = toy_problem();
        let assignment = vec![0, 1, 0, 1];
        let jcts = p.job_completion_times(&assignment);
        let mean: f64 = jcts.iter().sum::<f64>() / jcts.len() as f64;
        assert!((mean - p.evaluate(&assignment).mean_jct_s).abs() < 1e-9);
    }

    #[test]
    fn non_finite_estimates_are_sanitised_not_propagated() {
        let qpus = vec![
            QpuState {
                name: "a".into(),
                num_qubits: 27,
                waiting_time_s: f64::NAN,
                calibration_epoch: 0,
            },
            QpuState {
                name: "b".into(),
                num_qubits: 27,
                waiting_time_s: 5.0,
                calibration_epoch: 0,
            },
        ];
        let jobs = vec![JobRequest {
            job_id: 0,
            qubits: 5,
            shots: 100,
            fidelity_per_qpu: vec![f64::NAN, 0.9],
            exec_time_per_qpu: vec![f64::INFINITY, 10.0],
        }];
        let p = SchedulingProblem::new(jobs, qpus);
        // NaN wait clamps to the maximum: the unknown queue is maximally busy.
        assert_eq!(p.qpus[0].waiting_time_s, MAX_WAIT_S);
        // NaN fidelity degrades to zero; ∞ exec degrades to the finite marker.
        assert_eq!(p.jobs[0].fidelity_per_qpu[0], 0.0);
        assert_eq!(p.jobs[0].exec_time_per_qpu[0], NON_FINITE_EXEC_S);
        let on_bad = p.evaluate(&[0]);
        let on_good = p.evaluate(&[1]);
        assert!(on_bad.mean_jct_s.is_finite() && on_bad.mean_error.is_finite());
        assert!(on_bad.mean_error > on_good.mean_error, "NaN placement is penalised");
        assert!(on_bad.mean_jct_s > on_good.mean_jct_s);
    }

    #[test]
    fn incremental_moves_match_full_evaluation() {
        let p = toy_problem();
        let mut assignment = vec![0, 0, 0, 0];
        let mut state = EvalState::new(p.num_qpus());
        p.init_state(&assignment, &mut state);
        // Walk job 1 across every QPU (including the infeasible one for job 3).
        for (job, to) in [(1usize, 1usize), (3, 2), (1, 2), (3, 0), (2, 1), (1, 0)] {
            p.move_job(&mut state, job, assignment[job], to);
            assignment[job] = to;
            let inc = p.objectives_of(&state);
            let full = p.evaluate(&assignment);
            assert_eq!(inc.mean_jct_s.to_bits(), full.mean_jct_s.to_bits());
            assert_eq!(inc.mean_error.to_bits(), full.mean_error.to_bits());
        }
    }

    #[test]
    #[should_panic]
    fn empty_problem_panics() {
        SchedulingProblem::new(vec![], vec![]);
    }

    #[test]
    fn lane_evaluation_tracks_the_exact_path() {
        let p = toy_problem();
        for assignment in [vec![0, 0, 0, 0], vec![0, 1, 2, 1], vec![2, 2, 2, 2], vec![1, 0, 2, 0]] {
            let exact = p.evaluate(&assignment);
            let lanes = p.evaluate_lanes(&assignment);
            let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
            assert!(rel(exact.mean_jct_s, lanes.mean_jct_s) < 1e-4, "{exact:?} vs {lanes:?}");
            assert!(rel(exact.mean_error, lanes.mean_error) < 1e-4, "{exact:?} vs {lanes:?}");
        }
    }

    #[test]
    fn boundary_penalty_only_fires_past_the_horizon() {
        let base = toy_problem();
        let assignment = vec![0, 0, 0, 0]; // 40 s of work on QPU 0 (wait 0)
        let unpenalised = base.evaluate(&assignment);

        // Horizon beyond the planned busy time: objectives are bit-identical.
        let roomy = toy_problem().with_boundary_penalty(&[100.0, 100.0, 100.0], 2.0);
        assert!(roomy.has_boundary_penalty());
        let o = roomy.evaluate(&assignment);
        assert_eq!(o.mean_jct_s.to_bits(), unpenalised.mean_jct_s.to_bits());

        // Horizon at 30 s: 10 s overrun × weight 2 / 4 jobs = +5 s mean JCT.
        let tight = toy_problem().with_boundary_penalty(&[30.0, 100.0, 100.0], 2.0);
        let t = tight.evaluate(&assignment);
        assert!((t.mean_jct_s - (unpenalised.mean_jct_s + 5.0)).abs() < 1e-9);
        assert_eq!(t.mean_error.to_bits(), unpenalised.mean_error.to_bits());

        // Incremental moves stay bit-identical to full evaluation under the
        // penalty, and the lane path applies it too.
        let mut state = EvalState::new(tight.num_qpus());
        let mut genes = assignment.clone();
        tight.init_state(&genes, &mut state);
        for (job, to) in [(1usize, 1usize), (3, 1), (1, 0)] {
            tight.move_job(&mut state, job, genes[job], to);
            genes[job] = to;
            let inc = tight.objectives_of(&state);
            let full = tight.evaluate(&genes);
            assert_eq!(inc.mean_jct_s.to_bits(), full.mean_jct_s.to_bits());
        }
        let lanes = tight.evaluate_lanes(&assignment);
        assert!((lanes.mean_jct_s - t.mean_jct_s).abs() / t.mean_jct_s < 1e-4);

        // Zero or non-finite weights disable the penalty outright.
        assert!(!toy_problem().with_boundary_penalty(&[30.0], 0.0).has_boundary_penalty());
        assert!(!toy_problem().with_boundary_penalty(&[30.0], f64::NAN).has_boundary_penalty());
    }

    #[test]
    fn cost_lane_prices_placements_without_touching_other_objectives() {
        let base = toy_problem();
        let assignment = vec![0, 0, 1, 1];
        let free = base.evaluate(&assignment);
        assert_eq!(free.mean_cost, 0.0, "no lane attached → zero cost");

        // 1000 shots each at 2.0 / 0.5 / 0.1 credits per shot.
        let prices = [2.0, 0.5, 0.1];
        let weight = 0.001;
        let priced = toy_problem().with_shot_costs(&prices, weight);
        assert!(priced.has_shot_costs());
        let o = priced.evaluate(&assignment);
        let expected_cost = (2.0 * 2000.0 + 2.0 * 500.0) / 4.0;
        assert!((o.mean_cost - expected_cost).abs() < 1e-9, "{o:?}");
        // Cost reaches the search as scalarised JCT pressure...
        let expected_jct = free.mean_jct_s + weight * expected_cost * 4.0 / 4.0;
        assert!((o.mean_jct_s - expected_jct).abs() < 1e-9);
        // ...and never perturbs the error objective.
        assert_eq!(o.mean_error.to_bits(), free.mean_error.to_bits());

        // Incremental moves stay bit-identical to full evaluation with the
        // lane attached, cost_sum included.
        let mut state = EvalState::new(priced.num_qpus());
        let mut genes = assignment.clone();
        priced.init_state(&genes, &mut state);
        for (job, to) in [(0usize, 2usize), (3, 0), (0, 1), (2, 2), (3, 1)] {
            priced.move_job(&mut state, job, genes[job], to);
            genes[job] = to;
            let inc = priced.objectives_of(&state);
            let full = priced.evaluate(&genes);
            assert_eq!(inc.mean_jct_s.to_bits(), full.mean_jct_s.to_bits());
            assert_eq!(inc.mean_cost.to_bits(), full.mean_cost.to_bits());
        }

        // The f32 island path agrees to lane tolerance.
        let lanes = priced.evaluate_lanes(&assignment);
        assert!((lanes.mean_cost - o.mean_cost).abs() / o.mean_cost.max(1.0) < 1e-4);
        assert!((lanes.mean_jct_s - o.mean_jct_s).abs() / o.mean_jct_s < 1e-4);

        // A disabled lane leaves every objective bit-identical to cost-free.
        let disabled = toy_problem().with_shot_costs(&prices, 0.0);
        assert!(!disabled.has_shot_costs());
        let d = disabled.evaluate(&assignment);
        assert_eq!(d.mean_jct_s.to_bits(), free.mean_jct_s.to_bits());
        assert_eq!(d.mean_cost, 0.0);
        assert!(!toy_problem().with_shot_costs(&prices, f64::NAN).has_shot_costs());

        // Billing garbage degrades to free instead of poisoning objectives.
        let weird = toy_problem().with_shot_costs(&[f64::NAN, -3.0], 1.0);
        let w = weird.evaluate(&assignment);
        assert_eq!(w.mean_cost, 0.0);
        assert!(w.mean_jct_s.is_finite());
    }
}
