//! The quantum-job scheduling problem formulation of §7, Eq. (1).
//!
//! An assignment maps each of `N` jobs to one of `Q` QPUs. The two conflicting
//! objectives are the mean job completion time (queue waiting time of the
//! chosen QPU plus the execution time of every job co-scheduled on it) and the
//! mean error (one minus the estimated fidelity of each job on its chosen
//! QPU). The qubit-capacity constraint `q_i ≤ s_{x_i}` restricts the feasible
//! QPU set of each job.

use serde::{Deserialize, Serialize};

/// One job awaiting scheduling, together with its per-QPU estimates (produced
/// by the resource estimator and fetched from the system monitor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Unique job identifier.
    pub job_id: u64,
    /// Number of qubits the job needs (`q_i` in Eq. 1).
    pub qubits: u32,
    /// Number of shots.
    pub shots: u32,
    /// Estimated fidelity of this job on each QPU (`f_{i,x}`), indexed by QPU.
    pub fidelity_per_qpu: Vec<f64>,
    /// Estimated execution time in seconds on each QPU (`t_{i,x}`), indexed by QPU.
    pub exec_time_per_qpu: Vec<f64>,
}

/// The scheduler-visible state of one QPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpuState {
    /// Device name.
    pub name: String,
    /// Number of qubits (`s_x` in Eq. 1).
    pub num_qubits: u32,
    /// Approximate waiting time of the device's current queue in seconds (`w_x`).
    pub waiting_time_s: f64,
}

/// A fully specified scheduling problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulingProblem {
    /// Jobs to schedule in this cycle.
    pub jobs: Vec<JobRequest>,
    /// Available QPUs.
    pub qpus: Vec<QpuState>,
    /// For each job, the indices of QPUs that satisfy the capacity constraint.
    feasible: Vec<Vec<usize>>,
}

/// The two objective values of one assignment (both minimised).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// Mean job completion time in seconds (`f₁`).
    pub mean_jct_s: f64,
    /// Mean error = 1 − mean fidelity (`f₂`).
    pub mean_error: f64,
}

impl Objectives {
    /// Mean fidelity of the assignment.
    pub fn mean_fidelity(&self) -> f64 {
        1.0 - self.mean_error
    }

    /// Pareto dominance: `self` dominates `other` if it is no worse in both
    /// objectives and strictly better in at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.mean_jct_s <= other.mean_jct_s && self.mean_error <= other.mean_error;
        let better = self.mean_jct_s < other.mean_jct_s || self.mean_error < other.mean_error;
        no_worse && better
    }
}

impl SchedulingProblem {
    /// Build a problem instance, computing the per-job feasible QPU sets.
    ///
    /// # Panics
    /// Panics if `jobs` or `qpus` is empty, or if estimate vectors have the
    /// wrong length.
    pub fn new(jobs: Vec<JobRequest>, qpus: Vec<QpuState>) -> Self {
        assert!(!jobs.is_empty(), "scheduling problem needs at least one job");
        assert!(!qpus.is_empty(), "scheduling problem needs at least one QPU");
        for j in &jobs {
            assert_eq!(j.fidelity_per_qpu.len(), qpus.len(), "job {} fidelity estimates", j.job_id);
            assert_eq!(j.exec_time_per_qpu.len(), qpus.len(), "job {} time estimates", j.job_id);
        }
        let feasible = jobs
            .iter()
            .map(|j| {
                qpus.iter()
                    .enumerate()
                    .filter(|(_, q)| q.num_qubits >= j.qubits)
                    .map(|(idx, _)| idx)
                    .collect::<Vec<_>>()
            })
            .collect();
        SchedulingProblem { jobs, qpus, feasible }
    }

    /// Number of jobs (`N`).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of QPUs (`Q`).
    pub fn num_qpus(&self) -> usize {
        self.qpus.len()
    }

    /// Feasible QPU indices for job `i`.
    pub fn feasible_qpus(&self, job: usize) -> &[usize] {
        &self.feasible[job]
    }

    /// `true` if every job has at least one feasible QPU.
    pub fn is_feasible(&self) -> bool {
        self.feasible.iter().all(|f| !f.is_empty())
    }

    /// `true` if the assignment respects every job's capacity constraint.
    pub fn assignment_is_feasible(&self, assignment: &[usize]) -> bool {
        assignment.len() == self.num_jobs()
            && assignment.iter().enumerate().all(|(i, &q)| {
                q < self.num_qpus() && self.qpus[q].num_qubits >= self.jobs[i].qubits
            })
    }

    /// Evaluate the two objectives of Eq. (1) for an assignment
    /// (`assignment[i]` = QPU index of job `i`). Infeasible job placements are
    /// penalised with a large constant so the optimizer steers away from them.
    pub fn evaluate(&self, assignment: &[usize]) -> Objectives {
        assert_eq!(assignment.len(), self.num_jobs());
        let n = self.num_jobs() as f64;
        // Total execution time newly assigned to each QPU this cycle.
        let mut assigned_time = vec![0.0f64; self.num_qpus()];
        for (i, &q) in assignment.iter().enumerate() {
            assigned_time[q] += self.jobs[i].exec_time_per_qpu[q];
        }
        let mut jct_sum = 0.0;
        let mut err_sum = 0.0;
        const INFEASIBLE_PENALTY: f64 = 1e7;
        for (i, &q) in assignment.iter().enumerate() {
            if self.qpus[q].num_qubits < self.jobs[i].qubits {
                jct_sum += INFEASIBLE_PENALTY;
                err_sum += 1.0;
                continue;
            }
            jct_sum += self.qpus[q].waiting_time_s + assigned_time[q];
            err_sum += 1.0 - self.jobs[i].fidelity_per_qpu[q];
        }
        Objectives { mean_jct_s: jct_sum / n, mean_error: err_sum / n }
    }

    /// Per-job completion times (seconds) under an assignment — used by the
    /// evaluation to report JCT percentiles.
    pub fn job_completion_times(&self, assignment: &[usize]) -> Vec<f64> {
        let mut assigned_time = vec![0.0f64; self.num_qpus()];
        for (i, &q) in assignment.iter().enumerate() {
            assigned_time[q] += self.jobs[i].exec_time_per_qpu[q];
        }
        assignment.iter().map(|&q| self.qpus[q].waiting_time_s + assigned_time[q]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy_problem() -> SchedulingProblem {
        let qpus = vec![
            QpuState { name: "fast_noisy".into(), num_qubits: 27, waiting_time_s: 0.0 },
            QpuState { name: "slow_good".into(), num_qubits: 27, waiting_time_s: 100.0 },
            QpuState { name: "small".into(), num_qubits: 7, waiting_time_s: 10.0 },
        ];
        let jobs = (0..4)
            .map(|i| JobRequest {
                job_id: i,
                qubits: if i == 3 { 20 } else { 5 },
                shots: 1000,
                fidelity_per_qpu: vec![0.6, 0.9, 0.7],
                exec_time_per_qpu: vec![10.0, 10.0, 12.0],
            })
            .collect();
        SchedulingProblem::new(jobs, qpus)
    }

    #[test]
    fn feasible_sets_respect_capacity() {
        let p = toy_problem();
        assert_eq!(p.feasible_qpus(0), &[0, 1, 2]);
        assert_eq!(p.feasible_qpus(3), &[0, 1], "20-qubit job cannot use the 7-qubit QPU");
        assert!(p.is_feasible());
    }

    #[test]
    fn evaluate_accounts_for_queue_and_co_scheduled_jobs() {
        let p = toy_problem();
        // All four jobs on QPU 0: each job's JCT = 0 (wait) + 40 (all co-scheduled).
        let all_zero = vec![0, 0, 0, 0];
        let obj = p.evaluate(&all_zero);
        assert!((obj.mean_jct_s - 40.0).abs() < 1e-9);
        assert!((obj.mean_error - 0.4).abs() < 1e-9);
        // Spread over QPUs 0 and 1: lower mean JCT contribution from co-scheduling
        // but QPU 1 carries its 100 s queue.
        let spread = vec![0, 0, 1, 1];
        let obj2 = p.evaluate(&spread);
        assert!((obj2.mean_jct_s - ((20.0 + 20.0 + 120.0 + 120.0) / 4.0)).abs() < 1e-9);
        assert!(obj2.mean_error < obj.mean_error);
    }

    #[test]
    fn infeasible_assignment_is_penalised() {
        let p = toy_problem();
        let bad = vec![2, 2, 2, 2]; // job 3 (20 qubits) cannot run on the 7-qubit QPU
        assert!(!p.assignment_is_feasible(&bad));
        let obj = p.evaluate(&bad);
        assert!(obj.mean_jct_s > 1e6);
    }

    #[test]
    fn dominance_relation() {
        let a = Objectives { mean_jct_s: 10.0, mean_error: 0.1 };
        let b = Objectives { mean_jct_s: 20.0, mean_error: 0.2 };
        let c = Objectives { mean_jct_s: 5.0, mean_error: 0.3 };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a), "a and c are incomparable");
        assert!(!a.dominates(&a), "dominance is irreflexive");
    }

    #[test]
    fn completion_times_match_objective_mean() {
        let p = toy_problem();
        let assignment = vec![0, 1, 0, 1];
        let jcts = p.job_completion_times(&assignment);
        let mean: f64 = jcts.iter().sum::<f64>() / jcts.len() as f64;
        assert!((mean - p.evaluate(&assignment).mean_jct_s).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_problem_panics() {
        SchedulingProblem::new(vec![], vec![]);
    }
}
