//! Classical-job scheduling: the standard two-stage *filtering–scoring*
//! algorithm of Kubernetes (§7): filter out nodes that cannot satisfy the
//! job's resource requests, score the remainder with a pluggable policy, and
//! pick the best-scoring node.

use serde::{Deserialize, Serialize};

/// A classical worker node (CPU server, possibly with accelerators).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassicalNode {
    /// Node name.
    pub name: String,
    /// Total vCPUs.
    pub cpus: u32,
    /// Total memory in GB.
    pub memory_gb: u32,
    /// Number of GPUs/FPGAs attached.
    pub accelerators: u32,
    /// vCPUs currently allocated.
    pub cpus_used: u32,
    /// Memory currently allocated in GB.
    pub memory_used_gb: u32,
    /// Accelerators currently allocated.
    pub accelerators_used: u32,
}

impl ClassicalNode {
    /// A standard VM node (Table 1: 4–32 vCPUs, 16–64 GB RAM).
    pub fn standard_vm(name: impl Into<String>) -> Self {
        ClassicalNode {
            name: name.into(),
            cpus: 32,
            memory_gb: 64,
            accelerators: 0,
            cpus_used: 0,
            memory_used_gb: 0,
            accelerators_used: 0,
        }
    }

    /// A high-end accelerated node (Table 1: 64+ vCPUs, GPUs).
    pub fn high_end_vm(name: impl Into<String>) -> Self {
        ClassicalNode {
            name: name.into(),
            cpus: 128,
            memory_gb: 1024,
            accelerators: 4,
            cpus_used: 0,
            memory_used_gb: 0,
            accelerators_used: 0,
        }
    }

    /// Free vCPUs.
    pub fn cpus_free(&self) -> u32 {
        self.cpus.saturating_sub(self.cpus_used)
    }

    /// Free memory in GB.
    pub fn memory_free_gb(&self) -> u32 {
        self.memory_gb.saturating_sub(self.memory_used_gb)
    }

    /// Free accelerators.
    pub fn accelerators_free(&self) -> u32 {
        self.accelerators.saturating_sub(self.accelerators_used)
    }

    /// Fraction of capacity currently allocated (mean over CPU and memory).
    pub fn utilisation(&self) -> f64 {
        let cpu = self.cpus_used as f64 / self.cpus.max(1) as f64;
        let mem = self.memory_used_gb as f64 / self.memory_gb.max(1) as f64;
        (cpu + mem) / 2.0
    }

    /// Reserve resources for a job (used after placement).
    pub fn allocate(&mut self, request: &ClassicalRequest) {
        self.cpus_used += request.cpus;
        self.memory_used_gb += request.memory_gb;
        self.accelerators_used += request.accelerators;
    }

    /// Release resources after a job finishes.
    pub fn release(&mut self, request: &ClassicalRequest) {
        self.cpus_used = self.cpus_used.saturating_sub(request.cpus);
        self.memory_used_gb = self.memory_used_gb.saturating_sub(request.memory_gb);
        self.accelerators_used = self.accelerators_used.saturating_sub(request.accelerators);
    }
}

/// Resource request of one classical job (from the deployment configuration,
/// e.g. Listing 1's `nvidia.com/gpu: 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassicalRequest {
    /// Requested vCPUs.
    pub cpus: u32,
    /// Requested memory in GB.
    pub memory_gb: u32,
    /// Requested accelerators.
    pub accelerators: u32,
}

impl ClassicalRequest {
    /// A small CPU-only request (default for error-mitigation post-processing).
    pub fn small() -> Self {
        ClassicalRequest { cpus: 4, memory_gb: 8, accelerators: 0 }
    }

    /// A GPU-accelerated request (e.g. circuit-knitting reconstruction).
    pub fn accelerated() -> Self {
        ClassicalRequest { cpus: 16, memory_gb: 64, accelerators: 1 }
    }
}

/// Node-scoring policy used after filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoringPolicy {
    /// Prefer the least-utilised node (spreads load, the Kubernetes default).
    LeastAllocated,
    /// Prefer the most-utilised node that still fits (bin-packs work).
    MostAllocated,
}

/// Filter stage: nodes that can satisfy the request.
pub fn filter<'a>(
    nodes: &'a [ClassicalNode],
    request: &ClassicalRequest,
) -> Vec<&'a ClassicalNode> {
    nodes
        .iter()
        .filter(|n| {
            n.cpus_free() >= request.cpus
                && n.memory_free_gb() >= request.memory_gb
                && n.accelerators_free() >= request.accelerators
        })
        .collect()
}

/// Two-stage filter–score placement. Returns the index of the chosen node in
/// `nodes`, or `None` if no node fits.
pub fn place(
    nodes: &[ClassicalNode],
    request: &ClassicalRequest,
    policy: ScoringPolicy,
) -> Option<usize> {
    let candidates: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            n.cpus_free() >= request.cpus
                && n.memory_free_gb() >= request.memory_gb
                && n.accelerators_free() >= request.accelerators
        })
        .map(|(i, _)| i)
        .collect();
    match policy {
        ScoringPolicy::LeastAllocated => candidates
            .into_iter()
            .min_by(|&a, &b| nodes[a].utilisation().partial_cmp(&nodes[b].utilisation()).unwrap()),
        ScoringPolicy::MostAllocated => candidates
            .into_iter()
            .max_by(|&a, &b| nodes[a].utilisation().partial_cmp(&nodes[b].utilisation()).unwrap()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<ClassicalNode> {
        let mut busy = ClassicalNode::standard_vm("busy");
        busy.allocate(&ClassicalRequest { cpus: 24, memory_gb: 48, accelerators: 0 });
        vec![busy, ClassicalNode::standard_vm("idle"), ClassicalNode::high_end_vm("gpu")]
    }

    #[test]
    fn filter_removes_nodes_without_capacity() {
        let nodes = cluster();
        let filtered =
            filter(&nodes, &ClassicalRequest { cpus: 16, memory_gb: 32, accelerators: 0 });
        let names: Vec<&str> = filtered.iter().map(|n| n.name.as_str()).collect();
        assert!(!names.contains(&"busy"));
        assert!(names.contains(&"idle"));
        assert!(names.contains(&"gpu"));
    }

    #[test]
    fn gpu_requests_only_fit_accelerated_nodes() {
        let nodes = cluster();
        let placed = place(&nodes, &ClassicalRequest::accelerated(), ScoringPolicy::LeastAllocated);
        assert_eq!(placed, Some(2));
    }

    #[test]
    fn least_allocated_prefers_the_idle_node() {
        let nodes = cluster();
        let placed =
            place(&nodes, &ClassicalRequest::small(), ScoringPolicy::LeastAllocated).unwrap();
        // Both "idle" and "gpu" are at zero utilisation; either is acceptable,
        // but never the busy node.
        assert_ne!(nodes[placed].name, "busy");
        assert_eq!(nodes[placed].utilisation(), 0.0);
    }

    #[test]
    fn most_allocated_bin_packs_onto_the_busy_node() {
        let nodes = cluster();
        let placed =
            place(&nodes, &ClassicalRequest::small(), ScoringPolicy::MostAllocated).unwrap();
        assert_eq!(nodes[placed].name, "busy");
    }

    #[test]
    fn no_fit_returns_none() {
        let nodes = vec![ClassicalNode::standard_vm("only")];
        let placed = place(
            &nodes,
            &ClassicalRequest { cpus: 64, memory_gb: 8, accelerators: 0 },
            ScoringPolicy::LeastAllocated,
        );
        assert_eq!(placed, None);
    }

    #[test]
    fn allocate_and_release_are_inverse() {
        let mut node = ClassicalNode::standard_vm("n");
        let req = ClassicalRequest::small();
        node.allocate(&req);
        assert_eq!(node.cpus_free(), 28);
        assert!(node.utilisation() > 0.0);
        node.release(&req);
        assert_eq!(node.cpus_free(), 32);
        assert_eq!(node.utilisation(), 0.0);
    }
}
