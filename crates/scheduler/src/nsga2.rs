//! NSGA-II multi-objective genetic algorithm (Deb et al. 2002), customised as
//! described in §7: random-integer population initialisation, real-valued
//! crossover simulated with an exponential probability distribution, polynomial
//! mutation perturbing solutions within a parent's vicinity, maximum
//! generation/evaluation thresholds, and sliding-window tolerance termination.
//!
//! # Hot path
//!
//! Offspring are evaluated *incrementally*: every individual carries an
//! [`EvalState`] of per-QPU aggregates, children start as copies of a parent's
//! state, and each gene the genetic operators change applies an O(1)
//! [`SchedulingProblem::move_job`] delta — so a child whose crossover/mutation
//! touched `k` genes costs O(k + Q) instead of a full O(N) re-scan. Thanks to
//! the problem's dyadic estimate grid the deltas are exact, and incremental
//! objectives are bit-for-bit identical to [`SchedulingProblem::evaluate`].
//!
//! All per-generation buffers (the merged parent+offspring pool, domination
//! lists, front queues, sort scratch) live in a reusable
//! [`OptimizerWorkspace`], so a generation performs no heap allocation in
//! steady state, and warm-started callers amortise the buffers across
//! scheduling cycles. [`optimize_with`] additionally accepts seed assignments
//! (e.g. the previous cycle's Pareto front) that are repaired against the
//! current problem and injected into the initial population.
//!
//! # Island mode
//!
//! With [`Nsga2Config::num_threads`] > 1, [`optimize_with`] runs an island
//! model: the population splits into independent subpopulations over the
//! shared read-only problem tables, each with its own deterministic RNG
//! stream, workspace slot, and termination window. Every
//! [`Nsga2Config::migration_interval`] generations the islands exchange
//! Pareto-front elites along a ring, and the final front is the non-dominated merge of
//! the island fronts. Islands use two speed levers the sequential reference
//! path deliberately avoids: an `O(n log n)` sweep-based non-dominated sort
//! (ranks identical to the pairwise algorithm) and polynomial `ln`/`pow`
//! approximations in the genetic operators (pure IEEE arithmetic, so island
//! runs are deterministic for a fixed seed and island count — but not
//! stream-compatible with the sequential path). Worker threads are spawned
//! only when the host has more than one core; the results are identical
//! either way because islands never share mutable state mid-round.
//! [`optimize_sequential`] remains the single-population reference whose
//! behaviour is pinned bit-for-bit by the property suite.

use crate::problem::{EvalState, Objectives, SchedulingProblem, NO_FEASIBLE};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// NSGA-II hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Population size.
    pub population_size: usize,
    /// Maximum number of generations.
    pub max_generations: usize,
    /// Maximum number of objective-function evaluations.
    pub max_evaluations: usize,
    /// Crossover probability per gene.
    pub crossover_probability: f64,
    /// Mutation probability per gene.
    pub mutation_probability: f64,
    /// Mean of the exponential distribution used to simulate real-valued crossover.
    pub crossover_spread: f64,
    /// Polynomial-mutation distribution index (higher = smaller perturbations).
    pub mutation_eta: f64,
    /// Sliding-window tolerance termination: stop when the best mean-JCT and
    /// mean-error improvements over the last `tolerance_window` generations are
    /// both below `tolerance`.
    pub tolerance: f64,
    /// Number of generations in the termination window.
    pub tolerance_window: usize,
    /// Number of NSGA-II islands (independent subpopulations exchanging
    /// Pareto elites along a ring every [`Nsga2Config::migration_interval`]
    /// generations). `<= 1` selects the sequential single-population
    /// reference path; larger values are clamped so every island keeps at
    /// least [`Nsga2Config::min_island_pop`] individuals. The field once sized a fitness
    /// thread pool that PR 3's incremental evaluation removed; it now
    /// controls partitioning, and threads are an implementation detail
    /// (spawned only on multi-core hosts, never changing results).
    pub num_threads: usize,
    /// Generations an island evolves between ring elite exchanges
    /// (default [`MIGRATION_INTERVAL`]; values `< 1` are clamped to 1).
    /// Only consulted on the island path.
    #[serde(default)]
    pub migration_interval: usize,
    /// Minimum individuals per island: requested island counts are clamped
    /// so no island drops below this (default [`MIN_ISLAND_POP`]; values
    /// `< 1` are clamped to 1 — tiny subpopulations stall the genetic
    /// operators).
    #[serde(default)]
    pub min_island_pop: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population_size: 60,
            max_generations: 80,
            max_evaluations: 20_000,
            crossover_probability: 0.9,
            mutation_probability: 0.15,
            crossover_spread: 1.0,
            mutation_eta: 20.0,
            tolerance: 1e-3,
            tolerance_window: 10,
            num_threads: 4,
            migration_interval: MIGRATION_INTERVAL,
            min_island_pop: MIN_ISLAND_POP,
            seed: 0xC0FFEE,
        }
    }
}

/// One solution on the returned Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoSolution {
    /// Job→QPU assignment.
    pub assignment: Vec<usize>,
    /// Objective values of the assignment.
    pub objectives: Objectives,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Result {
    /// The non-dominated front of the final population.
    pub pareto_front: Vec<ParetoSolution>,
    /// Number of generations executed.
    pub generations: usize,
    /// Number of objective-function evaluations performed.
    pub evaluations: usize,
}

const ZERO_OBJECTIVES: Objectives = Objectives { mean_jct_s: 0.0, mean_error: 0.0, mean_cost: 0.0 };

#[derive(Debug, Clone)]
struct Individual {
    genes: Vec<usize>,
    state: EvalState,
    objectives: Objectives,
    rank: usize,
    crowding: f64,
}

impl Default for Individual {
    fn default() -> Self {
        Individual {
            genes: Vec::new(),
            state: EvalState::default(),
            objectives: ZERO_OBJECTIVES,
            rank: 0,
            crowding: 0.0,
        }
    }
}

impl Individual {
    /// Copy `src` into `self`, reusing buffers (no allocation once sized).
    fn copy_from(&mut self, src: &Individual) {
        self.genes.clone_from(&src.genes);
        self.state.copy_from(&src.state);
        self.objectives = src.objectives;
        self.rank = src.rank;
        self.crowding = src.crowding;
    }
}

/// Island-path individual: genes packed as `u16` QPU indices (a quarter of
/// the cache footprint of the sequential `Vec<usize>` genome — the island
/// pool streams through L1 every generation) and no incremental
/// [`EvalState`]: island objectives always come from one
/// [`SchedulingProblem::evaluate_lanes_packed`] pass.
#[derive(Debug, Clone)]
struct LaneIndividual {
    genes: Vec<u16>,
    objectives: Objectives,
    rank: usize,
    crowding: f64,
}

impl Default for LaneIndividual {
    fn default() -> Self {
        LaneIndividual { genes: Vec::new(), objectives: ZERO_OBJECTIVES, rank: 0, crowding: 0.0 }
    }
}

impl LaneIndividual {
    /// Copy `src` into `self`, reusing buffers (no allocation once sized).
    fn copy_from(&mut self, src: &LaneIndividual) {
        self.genes.clone_from(&src.genes);
        self.objectives = src.objectives;
        self.rank = src.rank;
        self.crowding = src.crowding;
    }
}

/// Rank/crowding view shared by the sequential [`Individual`] and the island
/// [`LaneIndividual`], so selection machinery (tournament, non-dominated
/// sorting, crowding) is written once.
trait Ranked {
    fn objectives(&self) -> Objectives;
    fn rank(&self) -> usize;
    fn crowding(&self) -> f64;
    fn set_rank(&mut self, rank: usize);
    fn set_crowding(&mut self, crowding: f64);
}

macro_rules! impl_ranked {
    ($ty:ty) => {
        impl Ranked for $ty {
            fn objectives(&self) -> Objectives {
                self.objectives
            }
            fn rank(&self) -> usize {
                self.rank
            }
            fn crowding(&self) -> f64 {
                self.crowding
            }
            fn set_rank(&mut self, rank: usize) {
                self.rank = rank;
            }
            fn set_crowding(&mut self, crowding: f64) {
                self.crowding = crowding;
            }
        }
    };
}

impl_ranked!(Individual);
impl_ranked!(LaneIndividual);

/// Scratch buffers for non-dominated sorting and crowding assignment.
#[derive(Debug, Default)]
struct RankScratch {
    dominated_by: Vec<Vec<usize>>,
    domination_count: Vec<usize>,
    current: Vec<usize>,
    next: Vec<usize>,
    sorted: Vec<usize>,
}

/// Scratch buffers for the `O(n log n)` sweep-based non-dominated sort used
/// on the island path.
#[derive(Debug, Default)]
struct SweepScratch {
    /// Individual indices sorted by (JCT, error, index).
    order: Vec<u32>,
    /// Per-front lexicographic key `(error, JCT)` of the most recently
    /// inserted member — the front's minimum, strictly increasing across
    /// fronts (the staircases are nested), which is what makes the rank
    /// lookup a binary search.
    front_key: Vec<(f64, f64)>,
    /// Members of each front in processing order, for crowding assignment.
    fronts: Vec<Vec<usize>>,
    /// Crowding sort scratch.
    sorted: Vec<usize>,
}

/// Bucket count of the island operator tables: plenty of distributional
/// resolution for values that are immediately snapped to a QPU index.
const OP_TABLE: usize = 512;

/// Quantised inverse-CDF tables for the island genetic operators. The
/// crossover offset (`-spread·ln(u)`), the polynomial-mutation delta, and the
/// geometric mutation gap are each tabulated at the [`OP_TABLE`] bucket
/// centres of their uniform driver, turning three transcendental evaluations
/// per operator site into one table load. The values feed a snap to a small
/// integer QPU index, so quantising the driver to 9 bits is far below the
/// snap's own rounding; the search distribution keeps its shape. Built once
/// per workspace and reused while the operator parameters stay unchanged.
#[derive(Debug)]
struct OperatorTables {
    built: bool,
    spread: f64,
    inv_eta: f64,
    p_mut: f64,
    /// `-spread/2 · ln(u)` at bucket centres of the conditioned crossover
    /// draw (the crossover's own `· 0.5` is folded in).
    offset: Box<[f32; OP_TABLE]>,
    /// Polynomial-mutation delta at bucket centres of the magnitude draw.
    delta: Box<[f32; OP_TABLE]>,
    /// Geometric gap `ln(1-g) / ln(1-p_mut)` at bucket centres.
    gap: Box<[f32; OP_TABLE]>,
}

impl Default for OperatorTables {
    fn default() -> Self {
        OperatorTables {
            built: false,
            spread: 0.0,
            inv_eta: 0.0,
            p_mut: 0.0,
            offset: Box::new([0.0; OP_TABLE]),
            delta: Box::new([0.0; OP_TABLE]),
            gap: Box::new([0.0; OP_TABLE]),
        }
    }
}

impl OperatorTables {
    /// (Re)build the tables if `config`'s operator parameters changed.
    fn ensure(&mut self, config: &Nsga2Config) {
        let spread = config.crossover_spread;
        let inv_eta = 1.0 / (config.mutation_eta + 1.0);
        let p_mut = config.mutation_probability.clamp(0.0, 1.0);
        if self.built && self.spread == spread && self.inv_eta == inv_eta && self.p_mut == p_mut {
            return;
        }
        self.built = true;
        self.spread = spread;
        self.inv_eta = inv_eta;
        self.p_mut = p_mut;
        let inv_ln_miss = if p_mut > 0.0 && p_mut < 1.0 { 1.0 / fast_ln(1.0 - p_mut) } else { 0.0 };
        for j in 0..OP_TABLE {
            let u = (j as f64 + 0.5) / OP_TABLE as f64;
            self.offset[j] = (-0.5 * spread * fast_ln(u)) as f32;
            let delta = if u < 0.5 {
                pow_frac_fast(2.0 * u, inv_eta) - 1.0
            } else {
                1.0 - pow_frac_fast(2.0 * (1.0 - u), inv_eta)
            };
            self.delta[j] = delta as f32;
            self.gap[j] = (fast_ln(1.0 - u) * inv_ln_miss) as f32;
        }
    }

    /// Table lookup for a uniform f32 driver in `[0, 1)`. The operator hot
    /// loops run single-precision end to end (u16 genes are exact in f32),
    /// which keeps width conversions out of each iteration's dependency
    /// chain. The fixed-size array plus the integer `.min` clamp elide the
    /// bounds check, and the unchecked cast skips the ~10-instruction
    /// saturating `as usize` sequence (two compares and cmovs) the safe
    /// cast lowers to.
    #[inline]
    fn bucket32(table: &[f32; OP_TABLE], u: f32) -> f32 {
        // SAFETY: every caller derives `u` from RNG top bits (or a
        // conditioned rescale thereof), so it is finite and in [0, 1);
        // `u * OP_TABLE` is then in [0, OP_TABLE] — in range for usize.
        let idx = unsafe { (u * OP_TABLE as f32).to_int_unchecked::<usize>() };
        table[idx.min(OP_TABLE - 1)]
    }
}

/// SplitMix64: the island-path entropy stream. One add is the only
/// loop-carried dependency, so consecutive draws pipeline where xoshiro's
/// four-word state rotation serialises; statistical quality is ample for
/// genetic-operator drivers. The island path has no RNG-stream contract —
/// only determinism per `(seed, islands)` — so swapping the generator is
/// fair game; the sequential path keeps [`StdRng`].
struct IslandRng(u64);

impl IslandRng {
    /// Seed the stream. The seed passes through one finaliser mix first:
    /// [`island_seed`] spaces raw seeds by the golden-ratio constant, which
    /// is exactly SplitMix64's own state stride — without the mix, island
    /// `i`'s stream would be island 0's stream shifted by `i` draws, and
    /// the islands would run correlated searches.
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        IslandRng(z ^ (z >> 31))
    }
}

impl rand::RngCore for IslandRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Scale turning the top 24 bits of a draw into a uniform f32 in `[0, 1)`.
const UNIT32: f32 = 1.0 / (1u32 << 24) as f32;

/// Lemire multiply-shift map of 64 random bits onto `[0, n)`: one widening
/// multiply instead of the shim `gen_range`'s 128-bit modulo (a `__umodti3`
/// libcall). The without-rejection bias is `O(n / 2^64)` — irrelevant for
/// genetic-operator index draws, and the island path carries no RNG-stream
/// contract.
#[inline]
fn lemire_index(bits: u64, n: usize) -> usize {
    (((bits as u128) * (n as u128)) >> 64) as usize
}

/// Island-path binary tournament: both contestant indices come from one
/// 64-bit draw (32-bit Lemire halves) instead of two `gen_range` calls.
#[inline]
fn tournament_lanes(population: &[LaneIndividual], rng: &mut IslandRng) -> usize {
    let bits = rng.next_u64();
    let n = population.len() as u64;
    let a = (((bits >> 32) * n) >> 32) as usize;
    let b = (((bits & 0xffff_ffff) * n) >> 32) as usize;
    let x = &population[a];
    let y = &population[b];
    if x.rank < y.rank || (x.rank == y.rank && x.crowding > y.crowding) {
        a
    } else {
        b
    }
}

/// Fill a lane-individual's genes with a uniformly random feasible
/// assignment ([`random_into`] minus the usize round-trip and the modulo).
fn random_lanes_into(problem: &SchedulingProblem, genes: &mut Vec<u16>, rng: &mut IslandRng) {
    genes.clear();
    for i in 0..problem.num_jobs() {
        let feasible = problem.feasible_qpus(i);
        let g = if feasible.is_empty() {
            lemire_index(rng.next_u64(), problem.num_qpus())
        } else {
            feasible[lemire_index(rng.next_u64(), feasible.len())]
        };
        genes.push(g as u16);
    }
}

/// Per-island evolution state: a private pool, sweep scratch, and
/// termination window, so islands only touch shared state at migration.
#[derive(Debug, Default)]
struct IslandSlot {
    pool: Vec<LaneIndividual>,
    spare: LaneIndividual,
    sweep: SweepScratch,
    history: Vec<(f64, f64)>,
    evaluations: usize,
    generations: usize,
    done: bool,
}

/// Reusable scratch state for [`optimize_with`]: the merged parent+offspring
/// pool, an odd-population spare child, the ranking scratch, and the
/// termination history for the sequential path, plus one [`IslandSlot`] per
/// island and the elite-migration buffer for island mode. Create once (e.g.
/// per scheduler) and reuse across cycles — every buffer is fully
/// overwritten per run, so reuse never changes results, it only removes
/// steady-state allocation.
#[derive(Debug, Default)]
pub struct OptimizerWorkspace {
    pool: Vec<Individual>,
    spare: Individual,
    scratch: RankScratch,
    history: Vec<(f64, f64)>,
    islands: Vec<IslandSlot>,
    elites: Vec<LaneIndividual>,
    tables: OperatorTables,
}

impl OptimizerWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        OptimizerWorkspace::default()
    }
}

/// Run NSGA-II on a scheduling problem and return its Pareto front.
pub fn optimize(problem: &SchedulingProblem, config: &Nsga2Config) -> Nsga2Result {
    let mut workspace = OptimizerWorkspace::new();
    optimize_with(problem, config, &[], &mut workspace)
}

/// Run NSGA-II with seed assignments injected into the initial population
/// (warm start). Seeds are repaired against the problem: out-of-range or
/// capacity-violating genes snap to the job's first feasible QPU.
pub fn optimize_seeded(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    seeds: &[Vec<usize>],
) -> Nsga2Result {
    let mut workspace = OptimizerWorkspace::new();
    optimize_with(problem, config, seeds, &mut workspace)
}

/// Default for [`Nsga2Config::migration_interval`]: generations an island
/// evolves between elite exchanges.
pub const MIGRATION_INTERVAL: usize = 5;

/// Pareto-front elites each island sends to its ring neighbour per exchange.
const MIGRATION_ELITES: usize = 2;

/// Default for [`Nsga2Config::min_island_pop`]: minimum individuals per
/// island (tiny subpopulations stall the genetic operators).
pub const MIN_ISLAND_POP: usize = 4;

/// Effective island count for a configuration: `num_threads` clamped so each
/// island keeps at least [`Nsga2Config::min_island_pop`] individuals.
fn effective_islands(config: &Nsga2Config) -> usize {
    let pop_size = config.population_size.max(4);
    config.num_threads.min(pop_size / config.min_island_pop.max(1)).max(1)
}

/// The full-control entry point: NSGA-II with warm-start seeds and a caller
/// owned, reusable [`OptimizerWorkspace`]. At most half the population is
/// seeded (the rest stays random for diversity). Deterministic for a fixed
/// `config.seed`, seed list, island count, and problem — regardless of
/// workspace history or host core count. Dispatches to
/// [`optimize_sequential`] when the effective island count is 1 (see
/// [`Nsga2Config::num_threads`]), and to the island model otherwise.
pub fn optimize_with(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    seeds: &[Vec<usize>],
    workspace: &mut OptimizerWorkspace,
) -> Nsga2Result {
    let islands = effective_islands(config);
    // The island path packs genes as u16 QPU indices; a fleet wider than
    // that (never seen in practice) takes the sequential reference path.
    if islands <= 1 || problem.num_qpus() > (1 << 16) {
        optimize_sequential(problem, config, seeds, workspace)
    } else {
        optimize_islands(problem, config, seeds, workspace, islands)
    }
}

/// The single-population reference algorithm: exact `libm` operators and the
/// pairwise non-dominated sort. This path's RNG stream and arithmetic are
/// pinned bit-for-bit by the property suite; the island path trades that
/// stream compatibility for speed.
pub fn optimize_sequential(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    seeds: &[Vec<usize>],
    workspace: &mut OptimizerWorkspace,
) -> Nsga2Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pop_size = config.population_size.max(4);
    let total = pop_size * 2;

    let OptimizerWorkspace { pool, spare, scratch, history, .. } = workspace;
    if pool.len() < total {
        pool.resize_with(total, Individual::default);
    }
    history.clear();

    // Initial population: repaired seeds first (capped at half the
    // population), random feasible integers for the rest.
    let num_seeds = seeds.len().min(pop_size / 2);
    for (k, ind) in pool.iter_mut().take(pop_size).enumerate() {
        if k < num_seeds {
            repair_into(problem, &seeds[k], &mut ind.genes);
        } else {
            random_into(problem, &mut ind.genes, &mut rng);
        }
        problem.init_state(&ind.genes, &mut ind.state);
        ind.objectives = problem.objectives_of(&ind.state);
        ind.rank = 0;
        ind.crowding = 0.0;
    }
    let mut evaluations = pop_size;
    rank_and_crowd(&mut pool[..pop_size], scratch, pop_size);

    let mut generations = 0usize;
    for gen in 0..config.max_generations {
        generations = gen + 1;
        // Offspring generation, bred in place into the pool's upper half.
        let (parents, kids) = pool[..total].split_at_mut(pop_size);
        let mut k = 0;
        while k < kids.len() {
            let p1 = tournament(parents, &mut rng);
            let p2 = tournament(parents, &mut rng);
            if k + 1 < kids.len() {
                let (head, tail) = kids.split_at_mut(k + 1);
                breed(
                    problem,
                    config,
                    &parents[p1],
                    &parents[p2],
                    &mut head[k],
                    &mut tail[0],
                    &mut rng,
                );
                k += 2;
            } else {
                // Odd population: the second child lands in the spare slot.
                breed(problem, config, &parents[p1], &parents[p2], &mut kids[k], spare, &mut rng);
                k += 1;
            }
        }
        evaluations += pop_size;

        // Environmental selection over the merged population: sort the whole
        // pool by (rank, crowding); the best `pop_size` become next parents.
        // Ranking stops once `pop_size` individuals are placed in fronts —
        // the tail is dropped by the truncation either way.
        rank_and_crowd(&mut pool[..total], scratch, pop_size);
        pool[..total].sort_unstable_by(|a, b| {
            a.rank.cmp(&b.rank).then_with(|| b.crowding.total_cmp(&a.crowding))
        });

        // Termination checks over the survivors.
        let best_jct =
            pool[..pop_size].iter().map(|i| i.objectives.mean_jct_s).fold(f64::INFINITY, f64::min);
        let best_err =
            pool[..pop_size].iter().map(|i| i.objectives.mean_error).fold(f64::INFINITY, f64::min);
        history.push((best_jct, best_err));
        if evaluations >= config.max_evaluations {
            break;
        }
        if history.len() > config.tolerance_window {
            let w = config.tolerance_window;
            let (old_jct, old_err) = history[history.len() - 1 - w];
            let jct_impr = (old_jct - best_jct) / old_jct.abs().max(1e-9);
            let err_impr = (old_err - best_err) / old_err.abs().max(1e-9);
            if jct_impr < config.tolerance && err_impr < config.tolerance {
                break;
            }
        }
    }

    // Extract the first non-dominated front, deduplicated by objectives.
    rank_and_crowd(&mut pool[..pop_size], scratch, 1);
    let mut front: Vec<ParetoSolution> = pool[..pop_size]
        .iter()
        .filter(|i| i.rank == 0)
        .map(|i| ParetoSolution { assignment: i.genes.clone(), objectives: i.objectives })
        .collect();
    front.sort_by(|a, b| a.objectives.mean_jct_s.total_cmp(&b.objectives.mean_jct_s));
    front.dedup_by(|a, b| {
        (a.objectives.mean_jct_s - b.objectives.mean_jct_s).abs() < 1e-9
            && (a.objectives.mean_error - b.objectives.mean_error).abs() < 1e-9
    });

    Nsga2Result { pareto_front: front, generations, evaluations }
}

/// Deterministic per-island RNG stream: island 0 keeps the configured seed,
/// later islands decorrelate with a Weyl increment.
fn island_seed(seed: u64, island: usize) -> u64 {
    seed.wrapping_add((island as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Island-model NSGA-II: `islands` independent subpopulations over the
/// shared read-only problem tables, ring migration of elites every
/// [`Nsga2Config::migration_interval`] generations, and a final non-dominated merge of
/// the island fronts. Results are a pure function of (problem, config,
/// seeds, island count); threads are used only when the host has spare
/// cores and never change the outcome.
fn optimize_islands(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    seeds: &[Vec<usize>],
    workspace: &mut OptimizerWorkspace,
    islands: usize,
) -> Nsga2Result {
    let pop_size = config.population_size.max(4);
    let (base, rem) = (pop_size / islands, pop_size % islands);
    let pops: Vec<usize> = (0..islands).map(|i| base + usize::from(i < rem)).collect();
    // Split the evaluation budget evenly; every island always gets at least
    // its initial population plus one generation.
    let per_island_evals = (config.max_evaluations / islands).max(base * 2);

    let OptimizerWorkspace { islands: slots, elites, tables, .. } = workspace;
    if slots.len() < islands {
        slots.resize_with(islands, IslandSlot::default);
    }
    tables.ensure(config);
    let tables = &*tables;
    let mut rngs: Vec<IslandRng> =
        (0..islands).map(|i| IslandRng::new(island_seed(config.seed, i))).collect();

    // Initial populations: warm-start seeds deal round-robin across islands
    // (seed k → island k % islands), capped at half of each island.
    let mut genebuf: Vec<usize> = Vec::new();
    for (i, slot) in slots.iter_mut().take(islands).enumerate() {
        let my_pop = pops[i];
        let total = my_pop * 2;
        if slot.pool.len() < total {
            slot.pool.resize_with(total, LaneIndividual::default);
        }
        slot.history.clear();
        slot.generations = 0;
        slot.done = false;
        let rng = &mut rngs[i];
        let mut island_seeds = seeds.iter().skip(i).step_by(islands).take(my_pop / 2);
        for ind in slot.pool.iter_mut().take(my_pop) {
            match island_seeds.next() {
                Some(seed) => {
                    repair_into(problem, seed, &mut genebuf);
                    ind.genes.clear();
                    ind.genes.extend(genebuf.iter().map(|&g| g as u16));
                }
                None => random_lanes_into(problem, &mut ind.genes, rng),
            }
            // Island individuals never maintain an EvalState (see
            // `breed_lanes`): all island objectives come from the f32 lanes,
            // and the final front is re-evaluated exactly.
            ind.objectives = problem.evaluate_lanes_packed(&ind.genes);
            ind.rank = 0;
            ind.crowding = 0.0;
        }
        slot.evaluations = my_pop;
        // Tournament selection reads rank/crowding in place — the island
        // pool is never kept totally ordered (see `island_round`).
        rank_and_crowd_sweep(&mut slot.pool[..my_pop], &mut slot.sweep, my_pop);
    }

    let spawn_threads = std::thread::available_parallelism().is_ok_and(|p| p.get() > 1);
    loop {
        if slots[..islands].iter().all(|s| s.done) {
            break;
        }
        if spawn_threads {
            std::thread::scope(|scope| {
                for ((slot, rng), &my_pop) in
                    slots[..islands].iter_mut().zip(rngs.iter_mut()).zip(pops.iter())
                {
                    if !slot.done {
                        scope.spawn(move || {
                            island_round(
                                problem,
                                config,
                                tables,
                                slot,
                                rng,
                                my_pop,
                                per_island_evals,
                            );
                        });
                    }
                }
            });
        } else {
            for ((slot, rng), &my_pop) in
                slots[..islands].iter_mut().zip(rngs.iter_mut()).zip(pops.iter())
            {
                if !slot.done {
                    island_round(problem, config, tables, slot, rng, my_pop, per_island_evals);
                }
            }
        }
        if slots[..islands].iter().all(|s| s.done) {
            break;
        }

        // Ring migration: snapshot every island's elites first, then insert
        // each island's batch into its successor over the worst individuals,
        // so exchange order never influences the result.
        if elites.len() < islands * MIGRATION_ELITES {
            elites.resize_with(islands * MIGRATION_ELITES, LaneIndividual::default);
        }
        for (i, slot) in slots[..islands].iter_mut().enumerate() {
            let my_pop = pops[i];
            let count = MIGRATION_ELITES.min(my_pop);
            if count < my_pop {
                // Partition the island's best `count` to the front; order
                // within the batch is irrelevant (receivers re-rank).
                slot.pool[..my_pop].select_nth_unstable_by(count - 1, selection_order);
            }
            for e in 0..count {
                elites[i * MIGRATION_ELITES + e].copy_from(&slot.pool[e]);
            }
        }
        for (i, slot) in slots[..islands].iter_mut().enumerate() {
            let src = (i + islands - 1) % islands;
            let my_pop = pops[i];
            let count = MIGRATION_ELITES.min(pops[src]).min(my_pop);
            if count < my_pop {
                // Partition the island's worst `count` to the back, where the
                // incoming elites overwrite them.
                slot.pool[..my_pop].select_nth_unstable_by(my_pop - count - 1, selection_order);
            }
            for e in 0..count {
                slot.pool[my_pop - 1 - e].copy_from(&elites[src * MIGRATION_ELITES + e]);
            }
            // Restore rank/crowding for the next round's tournaments.
            rank_and_crowd_sweep(&mut slot.pool[..my_pop], &mut slot.sweep, my_pop);
        }
    }

    // Merge: first front of each island, re-evaluated with the exact f64
    // path (the search ran on f32 lane objectives; callers get exact
    // values), then a global non-domination pass over the union.
    for (slot, &my_pop) in slots[..islands].iter_mut().zip(pops.iter()) {
        rank_and_crowd_sweep(&mut slot.pool[..my_pop], &mut slot.sweep, 1);
    }
    let candidates: Vec<ParetoSolution> = slots[..islands]
        .iter()
        .zip(pops.iter())
        .flat_map(|(slot, &my_pop)| slot.pool[..my_pop].iter().filter(|ind| ind.rank == 0))
        .map(|ind| {
            let assignment: Vec<usize> = ind.genes.iter().map(|&g| g as usize).collect();
            ParetoSolution { objectives: problem.evaluate(&assignment), assignment }
        })
        .collect();
    let mut front: Vec<ParetoSolution> = candidates
        .iter()
        .filter(|a| !candidates.iter().any(|b| b.objectives.dominates(&a.objectives)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.objectives.mean_jct_s.total_cmp(&b.objectives.mean_jct_s));
    front.dedup_by(|a, b| {
        (a.objectives.mean_jct_s - b.objectives.mean_jct_s).abs() < 1e-9
            && (a.objectives.mean_error - b.objectives.mean_error).abs() < 1e-9
    });

    Nsga2Result {
        pareto_front: front,
        generations: slots[..islands].iter().map(|s| s.generations).max().unwrap_or(0),
        evaluations: slots[..islands].iter().map(|s| s.evaluations).sum(),
    }
}

/// NSGA-II environmental-selection order: rank ascending, then crowding
/// distance descending.
fn selection_order<T: Ranked>(a: &T, b: &T) -> std::cmp::Ordering {
    a.rank().cmp(&b.rank()).then_with(|| b.crowding().total_cmp(&a.crowding()))
}

/// Evolve one island for up to [`Nsga2Config::migration_interval`] generations, or until
/// its generation/evaluation budget or tolerance window terminates it.
/// Mirrors the sequential generation loop with the island speed levers:
/// [`breed_lanes`] offspring generation and the sweep-based sort.
fn island_round(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    tables: &OperatorTables,
    slot: &mut IslandSlot,
    rng: &mut IslandRng,
    my_pop: usize,
    max_evaluations: usize,
) {
    for _ in 0..config.migration_interval.max(1) {
        if slot.generations >= config.max_generations {
            slot.done = true;
            return;
        }
        slot.generations += 1;
        let total = my_pop * 2;
        let spare = &mut slot.spare;
        let (parents, kids) = slot.pool[..total].split_at_mut(my_pop);
        let mut k = 0;
        while k < kids.len() {
            let p1 = tournament_lanes(parents, rng);
            let p2 = tournament_lanes(parents, rng);
            if k + 1 < kids.len() {
                let (head, tail) = kids.split_at_mut(k + 1);
                breed_lanes(
                    problem,
                    config,
                    tables,
                    &parents[p1],
                    &parents[p2],
                    &mut head[k],
                    &mut tail[0],
                    rng,
                );
                k += 2;
            } else {
                breed_lanes(
                    problem,
                    config,
                    tables,
                    &parents[p1],
                    &parents[p2],
                    &mut kids[k],
                    spare,
                    rng,
                );
                k += 1;
            }
        }
        slot.evaluations += my_pop;

        rank_and_crowd_sweep(&mut slot.pool[..total], &mut slot.sweep, my_pop);
        // Environmental truncation only needs the best `my_pop` of the merged
        // pool in the parent half, in any order: an O(n) partition replaces
        // the full (rank, crowding) sort — tournaments compare rank/crowding
        // directly, so parent order never matters.
        slot.pool[..total].select_nth_unstable_by(my_pop - 1, selection_order);

        let best_jct = slot.pool[..my_pop]
            .iter()
            .map(|i| i.objectives.mean_jct_s)
            .fold(f64::INFINITY, f64::min);
        let best_err = slot.pool[..my_pop]
            .iter()
            .map(|i| i.objectives.mean_error)
            .fold(f64::INFINITY, f64::min);
        slot.history.push((best_jct, best_err));
        if slot.evaluations >= max_evaluations {
            slot.done = true;
            return;
        }
        if slot.history.len() > config.tolerance_window {
            let w = config.tolerance_window;
            let (old_jct, old_err) = slot.history[slot.history.len() - 1 - w];
            let jct_impr = (old_jct - best_jct) / old_jct.abs().max(1e-9);
            let err_impr = (old_err - best_err) / old_err.abs().max(1e-9);
            if jct_impr < config.tolerance && err_impr < config.tolerance {
                slot.done = true;
                return;
            }
        }
    }
}

/// Fill `genes` with a uniformly random feasible assignment.
fn random_into<R: rand::RngCore>(problem: &SchedulingProblem, genes: &mut Vec<usize>, rng: &mut R) {
    genes.clear();
    for i in 0..problem.num_jobs() {
        let feasible = problem.feasible_qpus(i);
        genes.push(if feasible.is_empty() {
            rng.gen_range(0..problem.num_qpus())
        } else {
            feasible[rng.gen_range(0..feasible.len())]
        });
    }
}

#[cfg(test)]
fn random_assignment(problem: &SchedulingProblem, rng: &mut StdRng) -> Vec<usize> {
    let mut genes = Vec::with_capacity(problem.num_jobs());
    random_into(problem, &mut genes, rng);
    genes
}

/// Fill `genes` from a seed assignment, snapping out-of-range or infeasible
/// genes to the job's first feasible QPU (deterministic repair).
fn repair_into(problem: &SchedulingProblem, seed: &[usize], genes: &mut Vec<usize>) {
    genes.clear();
    for i in 0..problem.num_jobs() {
        let g = seed.get(i).copied().unwrap_or(usize::MAX);
        genes.push(if problem.placement_is_feasible(i, g) {
            g
        } else {
            let feasible = problem.feasible_qpus(i);
            if feasible.is_empty() {
                g.min(problem.num_qpus() - 1)
            } else {
                feasible[0]
            }
        });
    }
}

/// Binary tournament on (rank, crowding distance).
fn tournament<T: Ranked, R: rand::RngCore>(population: &[T], rng: &mut R) -> usize {
    let a = rng.gen_range(0..population.len());
    let b = rng.gen_range(0..population.len());
    let better =
        |x: &T, y: &T| x.rank() < y.rank() || (x.rank() == y.rank() && x.crowding() > y.crowding());
    if better(&population[a], &population[b]) {
        a
    } else {
        b
    }
}

/// Change one gene, applying the O(1) evaluation delta.
fn set_gene(problem: &SchedulingProblem, ind: &mut Individual, job: usize, qpu: usize) {
    let old = ind.genes[job];
    if old != qpu {
        problem.move_job(&mut ind.state, job, old, qpu);
        ind.genes[job] = qpu;
    }
}

/// Produce two children from two parents in place: copy the parents (genes +
/// evaluation state), apply crossover and polynomial mutation as incremental
/// gene moves, and finish each child's objectives from its aggregates.
///
/// Crossover follows the paper's customisation: each child gene is drawn
/// around the two parents with an exponentially distributed offset on the
/// real-valued relaxation, then rounded and snapped to a feasible QPU.
fn breed(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    p1: &Individual,
    p2: &Individual,
    c1: &mut Individual,
    c2: &mut Individual,
    rng: &mut StdRng,
) {
    c1.copy_from(p1);
    c2.copy_from(p2);
    for i in 0..p1.genes.len() {
        if rng.gen_bool(config.crossover_probability) {
            let a = p1.genes[i] as f64;
            let b = p2.genes[i] as f64;
            // Exponentially distributed blending offset.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let offset = -config.crossover_spread * u.ln();
            let direction: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mid = (a + b) / 2.0;
            let child1 = mid + direction * offset * (b - a).abs().max(1.0) * 0.5;
            let child2 = mid - direction * offset * (b - a).abs().max(1.0) * 0.5;
            let g1 = snap_to_feasible(problem, i, child1, rng);
            let g2 = snap_to_feasible(problem, i, child2, rng);
            set_gene(problem, c1, i, g1);
            set_gene(problem, c2, i, g2);
        }
    }
    mutate(problem, c1, config, rng);
    mutate(problem, c2, config, rng);
    c1.objectives = problem.objectives_of(&c1.state);
    c2.objectives = problem.objectives_of(&c2.state);
}

/// Polynomial mutation: perturb the gene within the vicinity of its current
/// value with distribution index `eta`, then snap to a feasible QPU.
fn mutate(
    problem: &SchedulingProblem,
    ind: &mut Individual,
    config: &Nsga2Config,
    rng: &mut StdRng,
) {
    let q = problem.num_qpus() as f64;
    for i in 0..ind.genes.len() {
        if rng.gen_bool(config.mutation_probability) {
            let u: f64 = rng.gen_range(0.0..1.0);
            let delta = if u < 0.5 {
                (2.0 * u).powf(1.0 / (config.mutation_eta + 1.0)) - 1.0
            } else {
                1.0 - (2.0 * (1.0 - u)).powf(1.0 / (config.mutation_eta + 1.0))
            };
            let value = ind.genes[i] as f64 + delta * q;
            let g = snap_to_feasible(problem, i, value, rng);
            set_gene(problem, ind, i, g);
        }
    }
}

/// The island-path offspring generator. Same operator distributions as
/// [`breed`] (exponential-offset crossover, polynomial mutation, feasibility
/// snapping), restructured around the f32 objective lanes instead of the
/// incremental [`EvalState`]:
///
/// - With the default 0.9 crossover probability nearly every gene moves, so
///   per-gene `move_job` deltas degenerate to full-rescan cost; children
///   instead copy genes only and take one branch-free
///   [`SchedulingProblem::evaluate_lanes`] pass each. Island individuals'
///   `EvalState`s are never read — the final front is re-evaluated exactly.
/// - One RNG draw serves each crossover site (decision from the 53-bit
///   uniform, which conditionally rescales back to `[0,1)`; direction and
///   snap tie-breaks from the unused low mantissa bits), and mutation sites
///   are found by geometric-gap skipping ([`mutate_lanes`]) instead of one
///   Bernoulli draw per child gene — instead of three-plus draws per gene.
/// - `ln`/`pow` use the polynomial approximations below instead of `libm`.
///
/// The sequential path keeps [`breed`] untouched: its RNG-to-result mapping
/// is a pinned bit-for-bit contract.
#[allow(clippy::too_many_arguments)]
fn breed_lanes(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    tables: &OperatorTables,
    p1: &LaneIndividual,
    p2: &LaneIndividual,
    c1: &mut LaneIndividual,
    c2: &mut LaneIndividual,
    rng: &mut IslandRng,
) {
    c1.genes.clone_from(&p1.genes);
    c2.genes.clone_from(&p2.genes);
    let p_cross = config.crossover_probability.clamp(0.0, 1.0) as f32;
    let inv_p_cross = if p_cross > 0.0 { 1.0 / p_cross } else { 0.0 };
    let qf = problem.num_qpus() as f32;
    // Equal-length slice views let every per-gene index below skip its
    // bounds check; the nearest-feasible rows ride along via `chunks_exact`
    // instead of a per-gene `snap_row` range check.
    let n = p1.genes.len();
    let (p1g, p2g) = (&p1.genes[..n], &p2.genes[..n]);
    let (c1g, c2g) = (&mut c1.genes[..n], &mut c2.genes[..n]);
    let rows = problem.snap_table().chunks_exact(problem.num_qpus());
    for (i, row) in rows.take(n).enumerate() {
        let bits = rng.next_u64();
        // Top 24 bits drive accept/offset (single-precision is plenty for a
        // driver that indexes a 512-bucket table); the low bits feed the
        // direction and snap tie-breaks, so the streams stay independent.
        let u_raw = (bits >> 40) as f32 * UNIT32;
        if u_raw < p_cross {
            // `u_raw` conditioned on the accept region is uniform on
            // `[0, p_cross)`; rescaling recovers the `[0, 1)` crossover draw,
            // which indexes the tabulated half-exponential offset.
            let offset = OperatorTables::bucket32(&tables.offset, u_raw * inv_p_cross);
            let a = f32::from(p1g[i]);
            let b = f32::from(p2g[i]);
            let mid = (a + b) * 0.5;
            let d0 = offset * (b - a).abs().max(1.0);
            // The direction sign only decides which child lands on which
            // side of `mid`: snap both sides unconditionally (the two chains
            // run in parallel) and let the bit swap the stores — no sign
            // flip on the float path at all.
            let s_hi = snap_with_tie(row, mid + d0, bits >> 1);
            let s_lo = snap_with_tie(row, mid - d0, bits >> 2);
            let (x, y) = if bits & 1 == 0 { (s_hi, s_lo) } else { (s_lo, s_hi) };
            c1g[i] = x;
            c2g[i] = y;
        }
    }
    mutate_lanes(problem, tables, c1, qf, rng);
    mutate_lanes(problem, tables, c2, qf, rng);
    c1.objectives = problem.evaluate_lanes_packed(&c1.genes);
    c2.objectives = problem.evaluate_lanes_packed(&c2.genes);
}

/// Island-path polynomial mutation. Gene-wise Bernoulli(`p_mut`) selection is
/// sampled by geometric gaps — `gap = floor(ln(1 - u) / ln(1 - p_mut))`
/// failures precede each success — so the RNG cost scales with the expected
/// number of *mutated* genes (`n * p_mut`) rather than `n`. Each selected
/// site takes one extra draw for the polynomial magnitude plus the snap
/// tie-break; both the gap and the magnitude come from the precomputed
/// [`OperatorTables`]. The sampled site distribution matches the per-gene
/// Bernoulli loop up to table quantisation; only the RNG-stream consumption
/// pattern differs, which is fine on the island path (no bit-exactness
/// contract).
fn mutate_lanes(
    problem: &SchedulingProblem,
    tables: &OperatorTables,
    child: &mut LaneIndividual,
    qf: f32,
    rng: &mut IslandRng,
) {
    let n = child.genes.len();
    let p_mut = tables.p_mut;
    if p_mut <= 0.0 {
        return;
    }
    // Degenerate everything-mutates case: ln(1 - p) is not finite and the
    // gap table is unusable, but every gene takes a magnitude draw anyway.
    if p_mut >= 1.0 {
        for i in 0..n {
            let mbits = rng.next_u64();
            let u = (mbits >> 40) as f32 * UNIT32;
            let delta = OperatorTables::bucket32(&tables.delta, u);
            let value = f32::from(child.genes[i]) + delta * qf;
            child.genes[i] = snap_with_tie(problem.snap_row(i), value, mbits);
        }
        return;
    }
    let mut i = 0usize;
    loop {
        let gbits = rng.next_u64();
        let g = (gbits >> 40) as f32 * UNIT32;
        // `gap` is the tabulated non-negative geometric variate: the number
        // of unmutated genes preceding the next mutation site.
        let gap = OperatorTables::bucket32(&tables.gap, g);
        if gap >= (n - i) as f32 {
            return;
        }
        // SAFETY: `gap` is a finite non-negative table value below `n - i`.
        i += unsafe { gap.to_int_unchecked::<usize>() };
        let mbits = rng.next_u64();
        let u = (mbits >> 40) as f32 * UNIT32;
        let delta = OperatorTables::bucket32(&tables.delta, u);
        let value = f32::from(child.genes[i]) + delta * qf;
        child.genes[i] = snap_with_tie(problem.snap_row(i), value, mbits);
        i += 1;
        if i >= n {
            return;
        }
    }
}

/// [`snap_to_feasible`] with the equidistant tie broken by a caller-supplied
/// entropy bit instead of a fresh RNG draw (island path). Rounds half-to-even
/// rather than half-away-from-zero — a single `roundsd` instead of the
/// multi-instruction half-away expansion; which way an exact `.5` gene value
/// rounds carries no meaning for the search. The caller hoists the job's
/// nearest-feasible `row` once and reuses it for both children, so each snap
/// is a round, a clamp, one 8-byte load, and a conditional move — float-to-
/// int `as` casts saturate, and indexing by `row.len()` elides the bounds
/// check. The rare no-feasible-QPU row keeps the clamped index as-is (the
/// infeasibility penalty governs such jobs regardless of the gene value).
#[inline]
fn snap_with_tie(row: &[(u32, u32)], value: f32, tie_bits: u64) -> u16 {
    // `max` maps negatives *and* NaN to 0, `min` bounds the float below
    // u16::MAX + 1, so the unchecked cast (a bare cvttss2si) is always in
    // range; the integer `.min` then elides the row bounds check. Values
    // past either clamp snapped to the boundary under the safe saturating
    // cast too — the result is identical, minus ~10 instructions per snap.
    #[allow(clippy::manual_clamp)] // `clamp` would propagate NaN; `max` maps it to 0
    let rf = value.round_ties_even().max(0.0).min(65535.0);
    let r = unsafe { rf.to_int_unchecked::<usize>() }.min(row.len() - 1);
    let (lo, hi) = row[r];
    if lo == NO_FEASIBLE {
        return r as u16;
    }
    (if tie_bits & 1 == 0 { lo } else { hi }) as u16
}

/// `ln(x)` for positive, finite, normal `x`: exponent/mantissa split plus an
/// `atanh`-series for the mantissa (`t = (m-1)/(m+1)`, `|t| ≤ 1/3`).
#[inline]
fn fast_ln(x: f64) -> f64 {
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let series = 1.0
        + t2 * (1.0 / 3.0
            + t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0)))));
    e as f64 * std::f64::consts::LN_2 + 2.0 * t * series
}

/// `e^y` for moderate `y` (the island path only needs `y ∈ (-40, 1]`):
/// split off an integer power of two, Taylor for the `|f| ≤ ln(2)/2` rest.
#[inline]
fn fast_exp(y: f64) -> f64 {
    let n = (y * std::f64::consts::LOG2_E).round();
    let f = y - n * std::f64::consts::LN_2;
    let p = 1.0
        + f * (1.0
            + f * (0.5
                + f * (1.0 / 6.0 + f * (1.0 / 24.0 + f * (1.0 / 120.0 + f * (1.0 / 720.0))))));
    f64::from_bits(((1023 + n as i64) as u64) << 52) * p
}

/// `x^k` for `x ∈ [0, 1]` and a small positive exponent `k`, via
/// `exp(k·ln(x))` on the approximations above (island path). Relative error
/// is ~1e-7 — far below what offspring sampling can distinguish.
#[inline]
fn pow_frac_fast(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 0.0; // 0^k = 0 for the positive exponents the operators use
    }
    if x >= 1.0 {
        return 1.0;
    }
    fast_exp(k * fast_ln(x))
}

/// Round a real-valued gene to the nearest feasible QPU index for the job:
/// one precomputed-table lookup (with a random but seed-deterministic
/// tie-break between two equidistant neighbours). This sits on the innermost
/// operator loop, once or twice per crossed/mutated gene.
fn snap_to_feasible(
    problem: &SchedulingProblem,
    job: usize,
    value: f64,
    rng: &mut StdRng,
) -> usize {
    let rounded = value.round();
    // Saturating float→int cast clamps the real-valued gene into range.
    let r = if rounded <= 0.0 { 0 } else { rounded as usize };
    match problem.nearest_feasible(job, r) {
        None => (rounded.abs() as usize) % problem.num_qpus(),
        Some((lo, hi)) if lo == hi => lo,
        Some((lo, hi)) => {
            if rng.gen_bool(0.5) {
                hi
            } else {
                lo
            }
        }
    }
}

/// Fast non-dominated sorting + crowding-distance assignment (in place),
/// using the workspace's scratch buffers — allocation-free once sized.
/// Peeling stops once at least `needed` individuals are ranked: the rest keep
/// rank `usize::MAX` / crowding 0 (they can never be selected ahead of a
/// ranked individual, so environmental selection is unaffected).
fn rank_and_crowd(population: &mut [Individual], scratch: &mut RankScratch, needed: usize) {
    let n = population.len();
    for ind in population.iter_mut() {
        ind.rank = usize::MAX;
        ind.crowding = 0.0;
    }
    if scratch.dominated_by.len() < n {
        scratch.dominated_by.resize_with(n, Vec::new);
    }
    for list in scratch.dominated_by.iter_mut().take(n) {
        list.clear();
    }
    scratch.domination_count.clear();
    scratch.domination_count.resize(n, 0);
    // One comparison per unordered pair, updating both directions.
    for i in 0..n {
        for j in (i + 1)..n {
            if population[i].objectives.dominates(&population[j].objectives) {
                scratch.dominated_by[i].push(j);
                scratch.domination_count[j] += 1;
            } else if population[j].objectives.dominates(&population[i].objectives) {
                scratch.dominated_by[j].push(i);
                scratch.domination_count[i] += 1;
            }
        }
    }
    scratch.current.clear();
    scratch.current.extend((0..n).filter(|&i| scratch.domination_count[i] == 0));
    let mut rank = 0usize;
    let mut assigned = 0usize;
    while !scratch.current.is_empty() {
        scratch.next.clear();
        for idx in 0..scratch.current.len() {
            let i = scratch.current[idx];
            population[i].rank = rank;
            for d in 0..scratch.dominated_by[i].len() {
                let j = scratch.dominated_by[i][d];
                scratch.domination_count[j] -= 1;
                if scratch.domination_count[j] == 0 {
                    scratch.next.push(j);
                }
            }
        }
        // Crowding distance within this front.
        assign_crowding(population, &scratch.current, &mut scratch.sorted);
        assigned += scratch.current.len();
        if assigned >= needed {
            break;
        }
        std::mem::swap(&mut scratch.current, &mut scratch.next);
        rank += 1;
    }
}

/// Sweep-based non-dominated sorting for the two-objective case, `O(n log n)`
/// instead of the pairwise `O(n²)` peeling — ranks are mathematically
/// identical to [`rank_and_crowd`] (unit-tested against it as the oracle).
///
/// Individuals are processed in (JCT, error, index) order. Within a front,
/// error strictly decreases along that order (two members with equal error
/// or equal JCT would dominate one another), so each front is summarised by
/// its latest member's `(error, JCT)` key — its minimum — and a point is
/// dominated by a front exactly when that key is lexicographically smaller
/// than its own. The keys increase strictly across fronts (the staircases
/// are nested), so the first non-dominating front is a binary search.
///
/// The `needed` cutoff mirrors [`rank_and_crowd`]: crowding is assigned
/// front-by-front until `needed` individuals are covered, and every
/// individual past the cutoff reverts to rank `usize::MAX` / crowding 0.
fn rank_and_crowd_sweep<T: Ranked>(
    population: &mut [T],
    scratch: &mut SweepScratch,
    needed: usize,
) {
    let n = population.len();
    for ind in population.iter_mut() {
        ind.set_rank(usize::MAX);
        ind.set_crowding(0.0);
    }
    let SweepScratch { order, front_key, fronts, sorted } = scratch;
    order.clear();
    order.extend(0..n as u32);
    order.sort_unstable_by(|&a, &b| {
        let oa = population[a as usize].objectives();
        let ob = population[b as usize].objectives();
        oa.mean_jct_s
            .total_cmp(&ob.mean_jct_s)
            .then(oa.mean_error.total_cmp(&ob.mean_error))
            .then(a.cmp(&b))
    });
    front_key.clear();
    for f in fronts.iter_mut() {
        f.clear();
    }
    let mut used_fronts = 0usize;
    for &iu in order.iter() {
        let i = iu as usize;
        let o = population[i].objectives();
        let key = (o.mean_error, o.mean_jct_s);
        let r = front_key[..used_fronts]
            .partition_point(|fk| fk.0 < key.0 || (fk.0 == key.0 && fk.1 < key.1));
        if r == used_fronts {
            if fronts.len() == used_fronts {
                fronts.push(Vec::new());
            }
            front_key.push(key);
            used_fronts += 1;
        } else {
            front_key[r] = key;
        }
        fronts[r].push(i);
        population[i].set_rank(r);
    }
    let mut assigned = 0usize;
    let mut cut = used_fronts;
    for (r, front) in fronts[..used_fronts].iter().enumerate() {
        assigned += front.len();
        if assigned >= needed {
            cut = r + 1;
            break;
        }
    }
    for front in &fronts[..cut] {
        assign_crowding(population, front, sorted);
    }
    for front in &fronts[cut..used_fronts] {
        for &i in front {
            population[i].set_rank(usize::MAX);
        }
    }
}

fn assign_crowding<T: Ranked>(population: &mut [T], front: &[usize], sorted: &mut Vec<usize>) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        population[i].set_crowding(0.0);
    }
    for objective in 0..2 {
        let value = |ind: &T| match objective {
            0 => ind.objectives().mean_jct_s,
            _ => ind.objectives().mean_error,
        };
        sorted.clear();
        sorted.extend_from_slice(front);
        // Unstable sort: in-place (a stable sort allocates a merge buffer on
        // every call) and deterministic for a fixed input order.
        sorted.sort_unstable_by(|&a, &b| value(&population[a]).total_cmp(&value(&population[b])));
        let min = value(&population[sorted[0]]);
        let max = value(&population[*sorted.last().unwrap()]);
        let range = (max - min).max(1e-12);
        population[sorted[0]].set_crowding(f64::INFINITY);
        population[*sorted.last().unwrap()].set_crowding(f64::INFINITY);
        for w in 1..sorted.len().saturating_sub(1) {
            let prev = value(&population[sorted[w - 1]]);
            let next = value(&population[sorted[w + 1]]);
            let c = population[sorted[w]].crowding();
            population[sorted[w]].set_crowding(c + (next - prev) / range);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobRequest, QpuState};
    use rand::Rng;

    fn random_problem(num_jobs: usize, num_qpus: usize, seed: u64) -> SchedulingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let qpus: Vec<QpuState> = (0..num_qpus)
            .map(|i| QpuState {
                name: format!("qpu{i}"),
                num_qubits: 27,
                waiting_time_s: rng.gen_range(0.0..500.0),
                calibration_epoch: 0,
            })
            .collect();
        let jobs: Vec<JobRequest> = (0..num_jobs)
            .map(|i| JobRequest {
                job_id: i as u64,
                qubits: rng.gen_range(2..=20),
                shots: 1000,
                fidelity_per_qpu: (0..num_qpus).map(|_| rng.gen_range(0.4..0.95)).collect(),
                exec_time_per_qpu: (0..num_qpus).map(|_| rng.gen_range(5.0..60.0)).collect(),
            })
            .collect();
        SchedulingProblem::new(jobs, qpus)
    }

    #[test]
    fn pareto_front_is_mutually_non_dominated_and_feasible() {
        let problem = random_problem(40, 6, 1);
        let result = optimize(&problem, &Nsga2Config { max_generations: 30, ..Default::default() });
        assert!(!result.pareto_front.is_empty());
        for a in &result.pareto_front {
            assert!(problem.assignment_is_feasible(&a.assignment));
            for b in &result.pareto_front {
                assert!(
                    !a.objectives.dominates(&b.objectives) || a.objectives == b.objectives,
                    "front contains dominated solutions"
                );
            }
        }
    }

    #[test]
    fn front_spans_the_fidelity_jct_tradeoff() {
        let problem = random_problem(60, 8, 2);
        let result = optimize(&problem, &Nsga2Config::default());
        let front = &result.pareto_front;
        let min_jct = front.iter().map(|s| s.objectives.mean_jct_s).fold(f64::INFINITY, f64::min);
        let max_jct = front.iter().map(|s| s.objectives.mean_jct_s).fold(0.0, f64::max);
        let min_err = front.iter().map(|s| s.objectives.mean_error).fold(f64::INFINITY, f64::min);
        let max_err = front.iter().map(|s| s.objectives.mean_error).fold(0.0, f64::max);
        // A real tradeoff exists: the front is not a single point.
        assert!(front.len() >= 3, "front size = {}", front.len());
        assert!(max_jct > min_jct);
        assert!(max_err > min_err);
    }

    #[test]
    fn nsga2_beats_random_assignment_on_both_objectives() {
        let problem = random_problem(50, 6, 3);
        let result = optimize(&problem, &Nsga2Config::default());
        // Average objectives of random assignments.
        let mut rng = StdRng::seed_from_u64(99);
        let mut rand_jct = 0.0;
        let mut rand_err = 0.0;
        let trials = 50;
        for _ in 0..trials {
            let assignment = random_assignment(&problem, &mut rng);
            let o = problem.evaluate(&assignment);
            rand_jct += o.mean_jct_s;
            rand_err += o.mean_error;
        }
        rand_jct /= trials as f64;
        rand_err /= trials as f64;
        let best_jct = result
            .pareto_front
            .iter()
            .map(|s| s.objectives.mean_jct_s)
            .fold(f64::INFINITY, f64::min);
        let best_err = result
            .pareto_front
            .iter()
            .map(|s| s.objectives.mean_error)
            .fold(f64::INFINITY, f64::min);
        assert!(best_jct < rand_jct, "NSGA-II best JCT {best_jct} vs random {rand_jct}");
        assert!(best_err < rand_err, "NSGA-II best error {best_err} vs random {rand_err}");
    }

    #[test]
    fn termination_respects_evaluation_budget() {
        let problem = random_problem(30, 4, 4);
        let config =
            Nsga2Config { max_evaluations: 500, population_size: 40, ..Default::default() };
        let result = optimize(&problem, &config);
        assert!(result.evaluations <= 500 + config.population_size * 2);
        assert!(result.generations >= 1);
    }

    #[test]
    fn single_qpu_problem_collapses_to_one_solution() {
        let problem = random_problem(10, 1, 5);
        let result = optimize(&problem, &Nsga2Config { max_generations: 10, ..Default::default() });
        assert_eq!(result.pareto_front.len(), 1);
        assert!(result.pareto_front[0].assignment.iter().all(|&q| q == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let problem = random_problem(25, 5, 6);
        let config = Nsga2Config { max_generations: 15, ..Default::default() };
        let a = optimize(&problem, &config);
        let b = optimize(&problem, &config);
        assert_eq!(a.pareto_front.len(), b.pareto_front.len());
        assert_eq!(a.evaluations, b.evaluations);
        for (x, y) in a.pareto_front.iter().zip(&b.pareto_front) {
            assert_eq!(x.assignment, y.assignment);
            assert_eq!(x.objectives.mean_jct_s.to_bits(), y.objectives.mean_jct_s.to_bits());
        }
    }

    #[test]
    fn workspace_reuse_does_not_change_results() {
        let problem = random_problem(25, 5, 6);
        let other = random_problem(40, 3, 7);
        let config = Nsga2Config { max_generations: 15, ..Default::default() };
        let fresh = optimize(&problem, &config);
        // Dirty the workspace on a different problem shape first.
        let mut workspace = OptimizerWorkspace::new();
        let _ = optimize_with(&other, &config, &[], &mut workspace);
        let reused = optimize_with(&problem, &config, &[], &mut workspace);
        assert_eq!(fresh.pareto_front, reused.pareto_front);
        assert_eq!(fresh.evaluations, reused.evaluations);
    }

    #[test]
    fn sweep_ranking_matches_the_pairwise_oracle() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..50 {
            let n = rng.gen_range(1..=64);
            let mut a: Vec<Individual> = (0..n)
                .map(|_| {
                    // Coarse grid so duplicate objective pairs and one-axis
                    // ties are common — the hard cases for front assignment.
                    let jct = rng.gen_range(0..8) as f64;
                    let err = rng.gen_range(0..8) as f64 / 10.0;
                    Individual {
                        objectives: Objectives { mean_jct_s: jct, mean_error: err, mean_cost: 0.0 },
                        ..Individual::default()
                    }
                })
                .collect();
            let mut b = a.clone();
            let needed = rng.gen_range(1..=n);
            let mut naive = RankScratch::default();
            let mut sweep = SweepScratch::default();
            rank_and_crowd(&mut a, &mut naive, needed);
            rank_and_crowd_sweep(&mut b, &mut sweep, needed);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.rank, y.rank,
                    "trial {trial}: rank mismatch at {i} for {:?} (needed {needed})",
                    x.objectives
                );
            }
        }
    }

    #[test]
    fn fast_math_tracks_libm_closely() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20_000 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let exact = u.ln();
            let approx = fast_ln(u);
            assert!(
                (exact - approx).abs() <= exact.abs().max(1.0) * 1e-6,
                "ln({u}) = {exact} vs {approx}"
            );
            let k = 1.0 / (rng.gen_range(1.0..40.0) + 1.0);
            let base: f64 = rng.gen_range(0.0..1.0);
            let exact = base.powf(k);
            let approx = pow_frac_fast(base, k);
            assert!((exact - approx).abs() < 1e-6, "{base}^{k} = {exact} vs {approx}");
        }
        assert_eq!(pow_frac_fast(0.0, 0.05), 0.0);
        assert_eq!(pow_frac_fast(1.0, 0.05), 1.0);
    }

    #[test]
    fn one_island_dispatches_to_the_sequential_path() {
        let problem = random_problem(30, 5, 9);
        let config = Nsga2Config { num_threads: 1, ..Nsga2Config::default() };
        let mut w1 = OptimizerWorkspace::new();
        let mut w2 = OptimizerWorkspace::new();
        let via_dispatch = optimize_with(&problem, &config, &[], &mut w1);
        let direct = optimize_sequential(&problem, &config, &[], &mut w2);
        assert_eq!(via_dispatch, direct);
        // A population too small to split also falls back to sequential.
        let tiny = Nsga2Config { num_threads: 8, population_size: 6, ..Nsga2Config::default() };
        let a = optimize_with(&problem, &tiny, &[], &mut w1);
        let b = optimize_sequential(&problem, &tiny, &[], &mut w2);
        assert_eq!(a, b);
    }

    #[test]
    fn island_mode_is_deterministic_per_seed_and_island_count() {
        let problem = random_problem(40, 6, 10);
        for islands in [2usize, 3, 4] {
            let config = Nsga2Config { num_threads: islands, ..Nsga2Config::default() };
            let mut w1 = OptimizerWorkspace::new();
            let mut w2 = OptimizerWorkspace::new();
            let a = optimize_with(&problem, &config, &[], &mut w1);
            // Dirty the second workspace on another shape first: reuse must
            // not change island results either.
            let other = random_problem(15, 3, 11);
            let _ = optimize_with(&other, &config, &[], &mut w2);
            let b = optimize_with(&problem, &config, &[], &mut w2);
            assert_eq!(a, b, "islands = {islands}");
            for s in &a.pareto_front {
                assert!(problem.assignment_is_feasible(&s.assignment));
            }
        }
        // Different island counts are allowed to differ (different streams).
        let two = optimize(&problem, &Nsga2Config { num_threads: 2, ..Nsga2Config::default() });
        assert!(!two.pareto_front.is_empty());
    }

    #[test]
    fn island_front_is_mutually_non_dominated() {
        let problem = random_problem(50, 8, 12);
        let result = optimize(&problem, &Nsga2Config { num_threads: 4, ..Nsga2Config::default() });
        assert!(result.pareto_front.len() >= 2);
        for a in &result.pareto_front {
            for b in &result.pareto_front {
                assert!(
                    !a.objectives.dominates(&b.objectives) || a.objectives == b.objectives,
                    "island merge left dominated solutions on the front"
                );
            }
        }
    }

    #[test]
    fn island_knobs_are_configurable_with_unchanged_defaults() {
        let defaults = Nsga2Config::default();
        assert_eq!(defaults.migration_interval, MIGRATION_INTERVAL);
        assert_eq!(defaults.min_island_pop, MIN_ISLAND_POP);

        let problem = random_problem(40, 6, 13);
        // A custom migration cadence is deterministic and feasible.
        let custom =
            Nsga2Config { num_threads: 3, migration_interval: 2, ..Nsga2Config::default() };
        let a = optimize(&problem, &custom);
        let b = optimize(&problem, &custom);
        assert_eq!(a, b);
        for s in &a.pareto_front {
            assert!(problem.assignment_is_feasible(&s.assignment));
        }
        // Raising the per-island floor clamps the island count; with a floor
        // of the whole population the dispatch is exactly the sequential path.
        let floor = Nsga2Config {
            num_threads: 8,
            min_island_pop: defaults.population_size,
            ..Nsga2Config::default()
        };
        let mut w1 = OptimizerWorkspace::new();
        let mut w2 = OptimizerWorkspace::new();
        let via_dispatch = optimize_with(&problem, &floor, &[], &mut w1);
        let sequential = optimize_sequential(&problem, &floor, &[], &mut w2);
        assert_eq!(via_dispatch, sequential);
        // A degenerate zero interval is clamped, not an infinite loop.
        let zero = Nsga2Config {
            num_threads: 2,
            migration_interval: 0,
            max_generations: 6,
            ..Nsga2Config::default()
        };
        assert!(!optimize(&problem, &zero).pareto_front.is_empty());
    }

    #[test]
    fn seeded_start_repairs_and_improves_convergence() {
        let problem = random_problem(40, 6, 8);
        let config = Nsga2Config::default();
        let cold = optimize(&problem, &config);
        // Seed with the cold front plus deliberately broken assignments.
        let mut seeds: Vec<Vec<usize>> =
            cold.pareto_front.iter().map(|s| s.assignment.clone()).collect();
        seeds.push(vec![usize::MAX; problem.num_jobs()]); // fully out of range
        seeds.push(vec![0; 3]); // wrong length
        let warm = optimize_seeded(&problem, &config, &seeds);
        assert!(!warm.pareto_front.is_empty());
        for s in &warm.pareto_front {
            assert!(problem.assignment_is_feasible(&s.assignment));
        }
        // Elitism + seeding guarantee the warm run's best objectives are at
        // least as good as the cold run's. (Generation counts are NOT
        // asserted: tolerance-window termination does not guarantee a warm
        // run stops earlier, and such an assertion would be brittle to any
        // RNG-stream change — the convergence effect is measured by the
        // `nsga2_convergence` bench instead.)
        let best = |r: &Nsga2Result| {
            r.pareto_front.iter().map(|s| s.objectives.mean_jct_s).fold(f64::INFINITY, f64::min)
        };
        assert!(best(&warm) <= best(&cold) + 1e-9);
    }
}
