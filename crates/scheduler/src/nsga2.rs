//! NSGA-II multi-objective genetic algorithm (Deb et al. 2002), customised as
//! described in §7: random-integer population initialisation, real-valued
//! crossover simulated with an exponential probability distribution, polynomial
//! mutation perturbing solutions within a parent's vicinity, maximum
//! generation/evaluation thresholds, and sliding-window tolerance termination.
//!
//! # Hot path
//!
//! Offspring are evaluated *incrementally*: every individual carries an
//! [`EvalState`] of per-QPU aggregates, children start as copies of a parent's
//! state, and each gene the genetic operators change applies an O(1)
//! [`SchedulingProblem::move_job`] delta — so a child whose crossover/mutation
//! touched `k` genes costs O(k + Q) instead of a full O(N) re-scan. Thanks to
//! the problem's dyadic estimate grid the deltas are exact, and incremental
//! objectives are bit-for-bit identical to [`SchedulingProblem::evaluate`].
//!
//! All per-generation buffers (the merged parent+offspring pool, domination
//! lists, front queues, sort scratch) live in a reusable
//! [`OptimizerWorkspace`], so a generation performs no heap allocation in
//! steady state, and warm-started callers amortise the buffers across
//! scheduling cycles. [`optimize_with`] additionally accepts seed assignments
//! (e.g. the previous cycle's Pareto front) that are repaired against the
//! current problem and injected into the initial population.

use crate::problem::{EvalState, Objectives, SchedulingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// NSGA-II hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Population size.
    pub population_size: usize,
    /// Maximum number of generations.
    pub max_generations: usize,
    /// Maximum number of objective-function evaluations.
    pub max_evaluations: usize,
    /// Crossover probability per gene.
    pub crossover_probability: f64,
    /// Mutation probability per gene.
    pub mutation_probability: f64,
    /// Mean of the exponential distribution used to simulate real-valued crossover.
    pub crossover_spread: f64,
    /// Polynomial-mutation distribution index (higher = smaller perturbations).
    pub mutation_eta: f64,
    /// Sliding-window tolerance termination: stop when the best mean-JCT and
    /// mean-error improvements over the last `tolerance_window` generations are
    /// both below `tolerance`.
    pub tolerance: f64,
    /// Number of generations in the termination window.
    pub tolerance_window: usize,
    /// Retained for configuration compatibility: fitness evaluation is now
    /// incremental (O(changed genes) per offspring), so no thread pool is
    /// spawned and this field is unused.
    pub num_threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population_size: 60,
            max_generations: 80,
            max_evaluations: 20_000,
            crossover_probability: 0.9,
            mutation_probability: 0.15,
            crossover_spread: 1.0,
            mutation_eta: 20.0,
            tolerance: 1e-3,
            tolerance_window: 10,
            num_threads: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// One solution on the returned Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoSolution {
    /// Job→QPU assignment.
    pub assignment: Vec<usize>,
    /// Objective values of the assignment.
    pub objectives: Objectives,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Result {
    /// The non-dominated front of the final population.
    pub pareto_front: Vec<ParetoSolution>,
    /// Number of generations executed.
    pub generations: usize,
    /// Number of objective-function evaluations performed.
    pub evaluations: usize,
}

const ZERO_OBJECTIVES: Objectives = Objectives { mean_jct_s: 0.0, mean_error: 0.0 };

#[derive(Debug, Clone)]
struct Individual {
    genes: Vec<usize>,
    state: EvalState,
    objectives: Objectives,
    rank: usize,
    crowding: f64,
}

impl Default for Individual {
    fn default() -> Self {
        Individual {
            genes: Vec::new(),
            state: EvalState::default(),
            objectives: ZERO_OBJECTIVES,
            rank: 0,
            crowding: 0.0,
        }
    }
}

impl Individual {
    /// Copy `src` into `self`, reusing buffers (no allocation once sized).
    fn copy_from(&mut self, src: &Individual) {
        self.genes.clone_from(&src.genes);
        self.state.copy_from(&src.state);
        self.objectives = src.objectives;
        self.rank = src.rank;
        self.crowding = src.crowding;
    }
}

/// Scratch buffers for non-dominated sorting and crowding assignment.
#[derive(Debug, Default)]
struct RankScratch {
    dominated_by: Vec<Vec<usize>>,
    domination_count: Vec<usize>,
    current: Vec<usize>,
    next: Vec<usize>,
    sorted: Vec<usize>,
}

/// Reusable scratch state for [`optimize_with`]: the merged parent+offspring
/// pool, an odd-population spare child, the ranking scratch, and the
/// termination history. Create once (e.g. per scheduler) and reuse across
/// cycles — every buffer is fully overwritten per run, so reuse never changes
/// results, it only removes steady-state allocation.
#[derive(Debug, Default)]
pub struct OptimizerWorkspace {
    pool: Vec<Individual>,
    spare: Individual,
    scratch: RankScratch,
    history: Vec<(f64, f64)>,
}

impl OptimizerWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        OptimizerWorkspace::default()
    }
}

/// Run NSGA-II on a scheduling problem and return its Pareto front.
pub fn optimize(problem: &SchedulingProblem, config: &Nsga2Config) -> Nsga2Result {
    let mut workspace = OptimizerWorkspace::new();
    optimize_with(problem, config, &[], &mut workspace)
}

/// Run NSGA-II with seed assignments injected into the initial population
/// (warm start). Seeds are repaired against the problem: out-of-range or
/// capacity-violating genes snap to the job's first feasible QPU.
pub fn optimize_seeded(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    seeds: &[Vec<usize>],
) -> Nsga2Result {
    let mut workspace = OptimizerWorkspace::new();
    optimize_with(problem, config, seeds, &mut workspace)
}

/// The full-control entry point: NSGA-II with warm-start seeds and a caller
/// owned, reusable [`OptimizerWorkspace`]. At most half the population is
/// seeded (the rest stays random for diversity). Deterministic for a fixed
/// `config.seed`, seed list, and problem — regardless of workspace history.
pub fn optimize_with(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    seeds: &[Vec<usize>],
    workspace: &mut OptimizerWorkspace,
) -> Nsga2Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pop_size = config.population_size.max(4);
    let total = pop_size * 2;

    let OptimizerWorkspace { pool, spare, scratch, history } = workspace;
    if pool.len() < total {
        pool.resize_with(total, Individual::default);
    }
    history.clear();

    // Initial population: repaired seeds first (capped at half the
    // population), random feasible integers for the rest.
    let num_seeds = seeds.len().min(pop_size / 2);
    for (k, ind) in pool.iter_mut().take(pop_size).enumerate() {
        if k < num_seeds {
            repair_into(problem, &seeds[k], &mut ind.genes);
        } else {
            random_into(problem, &mut ind.genes, &mut rng);
        }
        problem.init_state(&ind.genes, &mut ind.state);
        ind.objectives = problem.objectives_of(&ind.state);
        ind.rank = 0;
        ind.crowding = 0.0;
    }
    let mut evaluations = pop_size;
    rank_and_crowd(&mut pool[..pop_size], scratch, pop_size);

    let mut generations = 0usize;
    for gen in 0..config.max_generations {
        generations = gen + 1;
        // Offspring generation, bred in place into the pool's upper half.
        let (parents, kids) = pool[..total].split_at_mut(pop_size);
        let mut k = 0;
        while k < kids.len() {
            let p1 = tournament(parents, &mut rng);
            let p2 = tournament(parents, &mut rng);
            if k + 1 < kids.len() {
                let (head, tail) = kids.split_at_mut(k + 1);
                breed(
                    problem,
                    config,
                    &parents[p1],
                    &parents[p2],
                    &mut head[k],
                    &mut tail[0],
                    &mut rng,
                );
                k += 2;
            } else {
                // Odd population: the second child lands in the spare slot.
                breed(problem, config, &parents[p1], &parents[p2], &mut kids[k], spare, &mut rng);
                k += 1;
            }
        }
        evaluations += pop_size;

        // Environmental selection over the merged population: sort the whole
        // pool by (rank, crowding); the best `pop_size` become next parents.
        // Ranking stops once `pop_size` individuals are placed in fronts —
        // the tail is dropped by the truncation either way.
        rank_and_crowd(&mut pool[..total], scratch, pop_size);
        pool[..total].sort_unstable_by(|a, b| {
            a.rank.cmp(&b.rank).then_with(|| b.crowding.total_cmp(&a.crowding))
        });

        // Termination checks over the survivors.
        let best_jct =
            pool[..pop_size].iter().map(|i| i.objectives.mean_jct_s).fold(f64::INFINITY, f64::min);
        let best_err =
            pool[..pop_size].iter().map(|i| i.objectives.mean_error).fold(f64::INFINITY, f64::min);
        history.push((best_jct, best_err));
        if evaluations >= config.max_evaluations {
            break;
        }
        if history.len() > config.tolerance_window {
            let w = config.tolerance_window;
            let (old_jct, old_err) = history[history.len() - 1 - w];
            let jct_impr = (old_jct - best_jct) / old_jct.abs().max(1e-9);
            let err_impr = (old_err - best_err) / old_err.abs().max(1e-9);
            if jct_impr < config.tolerance && err_impr < config.tolerance {
                break;
            }
        }
    }

    // Extract the first non-dominated front, deduplicated by objectives.
    rank_and_crowd(&mut pool[..pop_size], scratch, 1);
    let mut front: Vec<ParetoSolution> = pool[..pop_size]
        .iter()
        .filter(|i| i.rank == 0)
        .map(|i| ParetoSolution { assignment: i.genes.clone(), objectives: i.objectives })
        .collect();
    front.sort_by(|a, b| a.objectives.mean_jct_s.total_cmp(&b.objectives.mean_jct_s));
    front.dedup_by(|a, b| {
        (a.objectives.mean_jct_s - b.objectives.mean_jct_s).abs() < 1e-9
            && (a.objectives.mean_error - b.objectives.mean_error).abs() < 1e-9
    });

    Nsga2Result { pareto_front: front, generations, evaluations }
}

/// Fill `genes` with a uniformly random feasible assignment.
fn random_into(problem: &SchedulingProblem, genes: &mut Vec<usize>, rng: &mut StdRng) {
    genes.clear();
    for i in 0..problem.num_jobs() {
        let feasible = problem.feasible_qpus(i);
        genes.push(if feasible.is_empty() {
            rng.gen_range(0..problem.num_qpus())
        } else {
            feasible[rng.gen_range(0..feasible.len())]
        });
    }
}

#[cfg(test)]
fn random_assignment(problem: &SchedulingProblem, rng: &mut StdRng) -> Vec<usize> {
    let mut genes = Vec::with_capacity(problem.num_jobs());
    random_into(problem, &mut genes, rng);
    genes
}

/// Fill `genes` from a seed assignment, snapping out-of-range or infeasible
/// genes to the job's first feasible QPU (deterministic repair).
fn repair_into(problem: &SchedulingProblem, seed: &[usize], genes: &mut Vec<usize>) {
    genes.clear();
    for i in 0..problem.num_jobs() {
        let g = seed.get(i).copied().unwrap_or(usize::MAX);
        genes.push(if problem.placement_is_feasible(i, g) {
            g
        } else {
            let feasible = problem.feasible_qpus(i);
            if feasible.is_empty() {
                g.min(problem.num_qpus() - 1)
            } else {
                feasible[0]
            }
        });
    }
}

/// Binary tournament on (rank, crowding distance).
fn tournament(population: &[Individual], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..population.len());
    let b = rng.gen_range(0..population.len());
    let better = |x: &Individual, y: &Individual| {
        x.rank < y.rank || (x.rank == y.rank && x.crowding > y.crowding)
    };
    if better(&population[a], &population[b]) {
        a
    } else {
        b
    }
}

/// Change one gene, applying the O(1) evaluation delta.
fn set_gene(problem: &SchedulingProblem, ind: &mut Individual, job: usize, qpu: usize) {
    let old = ind.genes[job];
    if old != qpu {
        problem.move_job(&mut ind.state, job, old, qpu);
        ind.genes[job] = qpu;
    }
}

/// Produce two children from two parents in place: copy the parents (genes +
/// evaluation state), apply crossover and polynomial mutation as incremental
/// gene moves, and finish each child's objectives from its aggregates.
///
/// Crossover follows the paper's customisation: each child gene is drawn
/// around the two parents with an exponentially distributed offset on the
/// real-valued relaxation, then rounded and snapped to a feasible QPU.
fn breed(
    problem: &SchedulingProblem,
    config: &Nsga2Config,
    p1: &Individual,
    p2: &Individual,
    c1: &mut Individual,
    c2: &mut Individual,
    rng: &mut StdRng,
) {
    c1.copy_from(p1);
    c2.copy_from(p2);
    for i in 0..p1.genes.len() {
        if rng.gen_bool(config.crossover_probability) {
            let a = p1.genes[i] as f64;
            let b = p2.genes[i] as f64;
            // Exponentially distributed blending offset.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let offset = -config.crossover_spread * u.ln();
            let direction: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mid = (a + b) / 2.0;
            let child1 = mid + direction * offset * (b - a).abs().max(1.0) * 0.5;
            let child2 = mid - direction * offset * (b - a).abs().max(1.0) * 0.5;
            let g1 = snap_to_feasible(problem, i, child1, rng);
            let g2 = snap_to_feasible(problem, i, child2, rng);
            set_gene(problem, c1, i, g1);
            set_gene(problem, c2, i, g2);
        }
    }
    mutate(problem, c1, config, rng);
    mutate(problem, c2, config, rng);
    c1.objectives = problem.objectives_of(&c1.state);
    c2.objectives = problem.objectives_of(&c2.state);
}

/// Polynomial mutation: perturb the gene within the vicinity of its current
/// value with distribution index `eta`, then snap to a feasible QPU.
fn mutate(
    problem: &SchedulingProblem,
    ind: &mut Individual,
    config: &Nsga2Config,
    rng: &mut StdRng,
) {
    let q = problem.num_qpus() as f64;
    for i in 0..ind.genes.len() {
        if rng.gen_bool(config.mutation_probability) {
            let u: f64 = rng.gen_range(0.0..1.0);
            let delta = if u < 0.5 {
                (2.0 * u).powf(1.0 / (config.mutation_eta + 1.0)) - 1.0
            } else {
                1.0 - (2.0 * (1.0 - u)).powf(1.0 / (config.mutation_eta + 1.0))
            };
            let value = ind.genes[i] as f64 + delta * q;
            let g = snap_to_feasible(problem, i, value, rng);
            set_gene(problem, ind, i, g);
        }
    }
}

/// Round a real-valued gene to the nearest feasible QPU index for the job:
/// one precomputed-table lookup (with a random but seed-deterministic
/// tie-break between two equidistant neighbours). This sits on the innermost
/// operator loop, once or twice per crossed/mutated gene.
fn snap_to_feasible(
    problem: &SchedulingProblem,
    job: usize,
    value: f64,
    rng: &mut StdRng,
) -> usize {
    let rounded = value.round();
    // Saturating float→int cast clamps the real-valued gene into range.
    let r = if rounded <= 0.0 { 0 } else { rounded as usize };
    match problem.nearest_feasible(job, r) {
        None => (rounded.abs() as usize) % problem.num_qpus(),
        Some((lo, hi)) if lo == hi => lo,
        Some((lo, hi)) => {
            if rng.gen_bool(0.5) {
                hi
            } else {
                lo
            }
        }
    }
}

/// Fast non-dominated sorting + crowding-distance assignment (in place),
/// using the workspace's scratch buffers — allocation-free once sized.
/// Peeling stops once at least `needed` individuals are ranked: the rest keep
/// rank `usize::MAX` / crowding 0 (they can never be selected ahead of a
/// ranked individual, so environmental selection is unaffected).
fn rank_and_crowd(population: &mut [Individual], scratch: &mut RankScratch, needed: usize) {
    let n = population.len();
    for ind in population.iter_mut() {
        ind.rank = usize::MAX;
        ind.crowding = 0.0;
    }
    if scratch.dominated_by.len() < n {
        scratch.dominated_by.resize_with(n, Vec::new);
    }
    for list in scratch.dominated_by.iter_mut().take(n) {
        list.clear();
    }
    scratch.domination_count.clear();
    scratch.domination_count.resize(n, 0);
    // One comparison per unordered pair, updating both directions.
    for i in 0..n {
        for j in (i + 1)..n {
            if population[i].objectives.dominates(&population[j].objectives) {
                scratch.dominated_by[i].push(j);
                scratch.domination_count[j] += 1;
            } else if population[j].objectives.dominates(&population[i].objectives) {
                scratch.dominated_by[j].push(i);
                scratch.domination_count[i] += 1;
            }
        }
    }
    scratch.current.clear();
    scratch.current.extend((0..n).filter(|&i| scratch.domination_count[i] == 0));
    let mut rank = 0usize;
    let mut assigned = 0usize;
    while !scratch.current.is_empty() {
        scratch.next.clear();
        for idx in 0..scratch.current.len() {
            let i = scratch.current[idx];
            population[i].rank = rank;
            for d in 0..scratch.dominated_by[i].len() {
                let j = scratch.dominated_by[i][d];
                scratch.domination_count[j] -= 1;
                if scratch.domination_count[j] == 0 {
                    scratch.next.push(j);
                }
            }
        }
        // Crowding distance within this front.
        assign_crowding(population, &scratch.current, &mut scratch.sorted);
        assigned += scratch.current.len();
        if assigned >= needed {
            break;
        }
        std::mem::swap(&mut scratch.current, &mut scratch.next);
        rank += 1;
    }
}

fn assign_crowding(population: &mut [Individual], front: &[usize], sorted: &mut Vec<usize>) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        population[i].crowding = 0.0;
    }
    for objective in 0..2 {
        let value = |ind: &Individual| match objective {
            0 => ind.objectives.mean_jct_s,
            _ => ind.objectives.mean_error,
        };
        sorted.clear();
        sorted.extend_from_slice(front);
        // Unstable sort: in-place (a stable sort allocates a merge buffer on
        // every call) and deterministic for a fixed input order.
        sorted.sort_unstable_by(|&a, &b| value(&population[a]).total_cmp(&value(&population[b])));
        let min = value(&population[sorted[0]]);
        let max = value(&population[*sorted.last().unwrap()]);
        let range = (max - min).max(1e-12);
        population[sorted[0]].crowding = f64::INFINITY;
        population[*sorted.last().unwrap()].crowding = f64::INFINITY;
        for w in 1..sorted.len().saturating_sub(1) {
            let prev = value(&population[sorted[w - 1]]);
            let next = value(&population[sorted[w + 1]]);
            population[sorted[w]].crowding += (next - prev) / range;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobRequest, QpuState};
    use rand::Rng;

    fn random_problem(num_jobs: usize, num_qpus: usize, seed: u64) -> SchedulingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let qpus: Vec<QpuState> = (0..num_qpus)
            .map(|i| QpuState {
                name: format!("qpu{i}"),
                num_qubits: 27,
                waiting_time_s: rng.gen_range(0.0..500.0),
                calibration_epoch: 0,
            })
            .collect();
        let jobs: Vec<JobRequest> = (0..num_jobs)
            .map(|i| JobRequest {
                job_id: i as u64,
                qubits: rng.gen_range(2..=20),
                shots: 1000,
                fidelity_per_qpu: (0..num_qpus).map(|_| rng.gen_range(0.4..0.95)).collect(),
                exec_time_per_qpu: (0..num_qpus).map(|_| rng.gen_range(5.0..60.0)).collect(),
            })
            .collect();
        SchedulingProblem::new(jobs, qpus)
    }

    #[test]
    fn pareto_front_is_mutually_non_dominated_and_feasible() {
        let problem = random_problem(40, 6, 1);
        let result = optimize(&problem, &Nsga2Config { max_generations: 30, ..Default::default() });
        assert!(!result.pareto_front.is_empty());
        for a in &result.pareto_front {
            assert!(problem.assignment_is_feasible(&a.assignment));
            for b in &result.pareto_front {
                assert!(
                    !a.objectives.dominates(&b.objectives) || a.objectives == b.objectives,
                    "front contains dominated solutions"
                );
            }
        }
    }

    #[test]
    fn front_spans_the_fidelity_jct_tradeoff() {
        let problem = random_problem(60, 8, 2);
        let result = optimize(&problem, &Nsga2Config::default());
        let front = &result.pareto_front;
        let min_jct = front.iter().map(|s| s.objectives.mean_jct_s).fold(f64::INFINITY, f64::min);
        let max_jct = front.iter().map(|s| s.objectives.mean_jct_s).fold(0.0, f64::max);
        let min_err = front.iter().map(|s| s.objectives.mean_error).fold(f64::INFINITY, f64::min);
        let max_err = front.iter().map(|s| s.objectives.mean_error).fold(0.0, f64::max);
        // A real tradeoff exists: the front is not a single point.
        assert!(front.len() >= 3, "front size = {}", front.len());
        assert!(max_jct > min_jct);
        assert!(max_err > min_err);
    }

    #[test]
    fn nsga2_beats_random_assignment_on_both_objectives() {
        let problem = random_problem(50, 6, 3);
        let result = optimize(&problem, &Nsga2Config::default());
        // Average objectives of random assignments.
        let mut rng = StdRng::seed_from_u64(99);
        let mut rand_jct = 0.0;
        let mut rand_err = 0.0;
        let trials = 50;
        for _ in 0..trials {
            let assignment = random_assignment(&problem, &mut rng);
            let o = problem.evaluate(&assignment);
            rand_jct += o.mean_jct_s;
            rand_err += o.mean_error;
        }
        rand_jct /= trials as f64;
        rand_err /= trials as f64;
        let best_jct = result
            .pareto_front
            .iter()
            .map(|s| s.objectives.mean_jct_s)
            .fold(f64::INFINITY, f64::min);
        let best_err = result
            .pareto_front
            .iter()
            .map(|s| s.objectives.mean_error)
            .fold(f64::INFINITY, f64::min);
        assert!(best_jct < rand_jct, "NSGA-II best JCT {best_jct} vs random {rand_jct}");
        assert!(best_err < rand_err, "NSGA-II best error {best_err} vs random {rand_err}");
    }

    #[test]
    fn termination_respects_evaluation_budget() {
        let problem = random_problem(30, 4, 4);
        let config =
            Nsga2Config { max_evaluations: 500, population_size: 40, ..Default::default() };
        let result = optimize(&problem, &config);
        assert!(result.evaluations <= 500 + config.population_size * 2);
        assert!(result.generations >= 1);
    }

    #[test]
    fn single_qpu_problem_collapses_to_one_solution() {
        let problem = random_problem(10, 1, 5);
        let result = optimize(&problem, &Nsga2Config { max_generations: 10, ..Default::default() });
        assert_eq!(result.pareto_front.len(), 1);
        assert!(result.pareto_front[0].assignment.iter().all(|&q| q == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let problem = random_problem(25, 5, 6);
        let config = Nsga2Config { max_generations: 15, ..Default::default() };
        let a = optimize(&problem, &config);
        let b = optimize(&problem, &config);
        assert_eq!(a.pareto_front.len(), b.pareto_front.len());
        assert_eq!(a.evaluations, b.evaluations);
        for (x, y) in a.pareto_front.iter().zip(&b.pareto_front) {
            assert_eq!(x.assignment, y.assignment);
            assert_eq!(x.objectives.mean_jct_s.to_bits(), y.objectives.mean_jct_s.to_bits());
        }
    }

    #[test]
    fn workspace_reuse_does_not_change_results() {
        let problem = random_problem(25, 5, 6);
        let other = random_problem(40, 3, 7);
        let config = Nsga2Config { max_generations: 15, ..Default::default() };
        let fresh = optimize(&problem, &config);
        // Dirty the workspace on a different problem shape first.
        let mut workspace = OptimizerWorkspace::new();
        let _ = optimize_with(&other, &config, &[], &mut workspace);
        let reused = optimize_with(&problem, &config, &[], &mut workspace);
        assert_eq!(fresh.pareto_front, reused.pareto_front);
        assert_eq!(fresh.evaluations, reused.evaluations);
    }

    #[test]
    fn seeded_start_repairs_and_improves_convergence() {
        let problem = random_problem(40, 6, 8);
        let config = Nsga2Config::default();
        let cold = optimize(&problem, &config);
        // Seed with the cold front plus deliberately broken assignments.
        let mut seeds: Vec<Vec<usize>> =
            cold.pareto_front.iter().map(|s| s.assignment.clone()).collect();
        seeds.push(vec![usize::MAX; problem.num_jobs()]); // fully out of range
        seeds.push(vec![0; 3]); // wrong length
        let warm = optimize_seeded(&problem, &config, &seeds);
        assert!(!warm.pareto_front.is_empty());
        for s in &warm.pareto_front {
            assert!(problem.assignment_is_feasible(&s.assignment));
        }
        // Elitism + seeding guarantee the warm run's best objectives are at
        // least as good as the cold run's. (Generation counts are NOT
        // asserted: tolerance-window termination does not guarantee a warm
        // run stops earlier, and such an assertion would be brittle to any
        // RNG-stream change — the convergence effect is measured by the
        // `nsga2_convergence` bench instead.)
        let best = |r: &Nsga2Result| {
            r.pareto_front.iter().map(|s| s.objectives.mean_jct_s).fold(f64::INFINITY, f64::min)
        };
        assert!(best(&warm) <= best(&cold) + 1e-9);
    }
}
