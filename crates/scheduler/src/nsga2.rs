//! NSGA-II multi-objective genetic algorithm (Deb et al. 2002), customised as
//! described in §7: random-integer population initialisation, real-valued
//! crossover simulated with an exponential probability distribution, polynomial
//! mutation perturbing solutions within a parent's vicinity, maximum
//! generation/evaluation thresholds, and sliding-window tolerance termination.
//! Fitness evaluation of a generation is parallelised with crossbeam scopes.

use crate::problem::{Objectives, SchedulingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// NSGA-II hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Population size.
    pub population_size: usize,
    /// Maximum number of generations.
    pub max_generations: usize,
    /// Maximum number of objective-function evaluations.
    pub max_evaluations: usize,
    /// Crossover probability per gene.
    pub crossover_probability: f64,
    /// Mutation probability per gene.
    pub mutation_probability: f64,
    /// Mean of the exponential distribution used to simulate real-valued crossover.
    pub crossover_spread: f64,
    /// Polynomial-mutation distribution index (higher = smaller perturbations).
    pub mutation_eta: f64,
    /// Sliding-window tolerance termination: stop when the best mean-JCT and
    /// mean-error improvements over the last `tolerance_window` generations are
    /// both below `tolerance`.
    pub tolerance: f64,
    /// Number of generations in the termination window.
    pub tolerance_window: usize,
    /// Number of worker threads used for fitness evaluation.
    pub num_threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population_size: 60,
            max_generations: 80,
            max_evaluations: 20_000,
            crossover_probability: 0.9,
            mutation_probability: 0.15,
            crossover_spread: 1.0,
            mutation_eta: 20.0,
            tolerance: 1e-3,
            tolerance_window: 10,
            num_threads: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// One solution on the returned Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoSolution {
    /// Job→QPU assignment.
    pub assignment: Vec<usize>,
    /// Objective values of the assignment.
    pub objectives: Objectives,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Result {
    /// The non-dominated front of the final population.
    pub pareto_front: Vec<ParetoSolution>,
    /// Number of generations executed.
    pub generations: usize,
    /// Number of objective-function evaluations performed.
    pub evaluations: usize,
}

#[derive(Debug, Clone)]
struct Individual {
    genes: Vec<usize>,
    objectives: Objectives,
    rank: usize,
    crowding: f64,
}

/// Run NSGA-II on a scheduling problem and return its Pareto front.
pub fn optimize(problem: &SchedulingProblem, config: &Nsga2Config) -> Nsga2Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_jobs = problem.num_jobs();
    let pop_size = config.population_size.max(4);

    // Initial population: random feasible integers per gene.
    let mut population: Vec<Individual> = (0..pop_size)
        .map(|_| {
            let genes = random_assignment(problem, &mut rng);
            Individual {
                genes,
                objectives: Objectives { mean_jct_s: 0.0, mean_error: 0.0 },
                rank: 0,
                crowding: 0.0,
            }
        })
        .collect();
    evaluate_population(problem, &mut population, config.num_threads);
    let mut evaluations = pop_size;

    assign_rank_and_crowding(&mut population);

    let mut history: Vec<(f64, f64)> = Vec::new();
    let mut generations = 0usize;

    for gen in 0..config.max_generations {
        generations = gen + 1;
        // Offspring generation.
        let mut offspring: Vec<Individual> = Vec::with_capacity(pop_size);
        while offspring.len() < pop_size {
            let p1 = tournament(&population, &mut rng);
            let p2 = tournament(&population, &mut rng);
            let (mut c1, mut c2) =
                crossover(problem, &population[p1].genes, &population[p2].genes, config, &mut rng);
            mutate(problem, &mut c1, config, &mut rng);
            mutate(problem, &mut c2, config, &mut rng);
            offspring.push(Individual {
                genes: c1,
                objectives: Objectives { mean_jct_s: 0.0, mean_error: 0.0 },
                rank: 0,
                crowding: 0.0,
            });
            if offspring.len() < pop_size {
                offspring.push(Individual {
                    genes: c2,
                    objectives: Objectives { mean_jct_s: 0.0, mean_error: 0.0 },
                    rank: 0,
                    crowding: 0.0,
                });
            }
        }
        evaluate_population(problem, &mut offspring, config.num_threads);
        evaluations += offspring.len();

        // Environmental selection over the merged population.
        population.extend(offspring);
        assign_rank_and_crowding(&mut population);
        population.sort_by(|a, b| {
            a.rank
                .cmp(&b.rank)
                .then(b.crowding.partial_cmp(&a.crowding).unwrap_or(std::cmp::Ordering::Equal))
        });
        population.truncate(pop_size);

        // Termination checks.
        let best_jct =
            population.iter().map(|i| i.objectives.mean_jct_s).fold(f64::INFINITY, f64::min);
        let best_err =
            population.iter().map(|i| i.objectives.mean_error).fold(f64::INFINITY, f64::min);
        history.push((best_jct, best_err));
        if evaluations >= config.max_evaluations {
            break;
        }
        if history.len() > config.tolerance_window {
            let w = config.tolerance_window;
            let (old_jct, old_err) = history[history.len() - 1 - w];
            let jct_impr = (old_jct - best_jct) / old_jct.abs().max(1e-9);
            let err_impr = (old_err - best_err) / old_err.abs().max(1e-9);
            if jct_impr < config.tolerance && err_impr < config.tolerance {
                break;
            }
        }
        let _ = n_jobs;
    }

    // Extract the first non-dominated front, deduplicated by objectives.
    assign_rank_and_crowding(&mut population);
    let mut front: Vec<ParetoSolution> = population
        .iter()
        .filter(|i| i.rank == 0)
        .map(|i| ParetoSolution { assignment: i.genes.clone(), objectives: i.objectives })
        .collect();
    front.sort_by(|a, b| a.objectives.mean_jct_s.partial_cmp(&b.objectives.mean_jct_s).unwrap());
    front.dedup_by(|a, b| {
        (a.objectives.mean_jct_s - b.objectives.mean_jct_s).abs() < 1e-9
            && (a.objectives.mean_error - b.objectives.mean_error).abs() < 1e-9
    });

    Nsga2Result { pareto_front: front, generations, evaluations }
}

fn random_assignment(problem: &SchedulingProblem, rng: &mut StdRng) -> Vec<usize> {
    (0..problem.num_jobs())
        .map(|i| {
            let feasible = problem.feasible_qpus(i);
            if feasible.is_empty() {
                rng.gen_range(0..problem.num_qpus())
            } else {
                feasible[rng.gen_range(0..feasible.len())]
            }
        })
        .collect()
}

/// Parallel objective evaluation of a population using crossbeam-scoped threads.
fn evaluate_population(
    problem: &SchedulingProblem,
    population: &mut [Individual],
    num_threads: usize,
) {
    let threads = num_threads.max(1).min(population.len().max(1));
    if threads <= 1 || population.len() < 32 {
        for ind in population.iter_mut() {
            ind.objectives = problem.evaluate(&ind.genes);
        }
        return;
    }
    let chunk = population.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for slice in population.chunks_mut(chunk) {
            scope.spawn(move |_| {
                for ind in slice {
                    ind.objectives = problem.evaluate(&ind.genes);
                }
            });
        }
    })
    .expect("fitness evaluation scope failed");
}

/// Binary tournament on (rank, crowding distance).
fn tournament(population: &[Individual], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..population.len());
    let b = rng.gen_range(0..population.len());
    let better = |x: &Individual, y: &Individual| {
        x.rank < y.rank || (x.rank == y.rank && x.crowding > y.crowding)
    };
    if better(&population[a], &population[b]) {
        a
    } else {
        b
    }
}

/// Crossover on the real-valued relaxation of the integer genes: each child gene
/// is drawn around the two parents with an exponentially distributed offset
/// (the paper's customisation), then rounded and clamped to a feasible QPU.
fn crossover(
    problem: &SchedulingProblem,
    p1: &[usize],
    p2: &[usize],
    config: &Nsga2Config,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<usize>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    for i in 0..p1.len() {
        if rng.gen_bool(config.crossover_probability) {
            let a = p1[i] as f64;
            let b = p2[i] as f64;
            // Exponentially distributed blending offset.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let offset = -config.crossover_spread * u.ln();
            let direction: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mid = (a + b) / 2.0;
            let child1 = mid + direction * offset * (b - a).abs().max(1.0) * 0.5;
            let child2 = mid - direction * offset * (b - a).abs().max(1.0) * 0.5;
            c1[i] = snap_to_feasible(problem, i, child1, rng);
            c2[i] = snap_to_feasible(problem, i, child2, rng);
        }
    }
    (c1, c2)
}

/// Polynomial mutation: perturb the gene within the vicinity of its current
/// value with distribution index `eta`, then snap to a feasible QPU.
fn mutate(
    problem: &SchedulingProblem,
    genes: &mut [usize],
    config: &Nsga2Config,
    rng: &mut StdRng,
) {
    let q = problem.num_qpus() as f64;
    for (i, gene) in genes.iter_mut().enumerate() {
        if rng.gen_bool(config.mutation_probability) {
            let u: f64 = rng.gen_range(0.0..1.0);
            let delta = if u < 0.5 {
                (2.0 * u).powf(1.0 / (config.mutation_eta + 1.0)) - 1.0
            } else {
                1.0 - (2.0 * (1.0 - u)).powf(1.0 / (config.mutation_eta + 1.0))
            };
            let value = *gene as f64 + delta * q;
            *gene = snap_to_feasible(problem, i, value, rng);
        }
    }
}

/// Round a real-valued gene to the nearest feasible QPU index for the job.
fn snap_to_feasible(
    problem: &SchedulingProblem,
    job: usize,
    value: f64,
    rng: &mut StdRng,
) -> usize {
    let feasible = problem.feasible_qpus(job);
    if feasible.is_empty() {
        return (value.round().abs() as usize) % problem.num_qpus();
    }
    let rounded = value.round();
    feasible
        .iter()
        .copied()
        .min_by_key(|&q| {
            let d = (q as f64 - rounded).abs();
            // Tie-break randomly but deterministically per call via a tiny jitter.
            ((d * 1000.0) as i64) * 2 + i64::from(rng.gen_bool(0.5))
        })
        .unwrap_or(feasible[0])
}

/// Fast non-dominated sorting + crowding-distance assignment (in place).
fn assign_rank_and_crowding(population: &mut [Individual]) {
    let n = population.len();
    // Non-dominated sorting.
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if population[i].objectives.dominates(&population[j].objectives) {
                dominated_by[i].push(j);
            } else if population[j].objectives.dominates(&population[i].objectives) {
                domination_count[i] += 1;
            }
        }
    }
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            population[i].rank = rank;
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        // Crowding distance within this front.
        assign_crowding(population, &current);
        current = next;
        rank += 1;
    }
}

fn assign_crowding(population: &mut [Individual], front: &[usize]) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        population[i].crowding = 0.0;
    }
    for objective in 0..2 {
        let value = |ind: &Individual| match objective {
            0 => ind.objectives.mean_jct_s,
            _ => ind.objectives.mean_error,
        };
        let mut sorted: Vec<usize> = front.to_vec();
        sorted.sort_by(|&a, &b| value(&population[a]).partial_cmp(&value(&population[b])).unwrap());
        let min = value(&population[sorted[0]]);
        let max = value(&population[*sorted.last().unwrap()]);
        let range = (max - min).max(1e-12);
        population[sorted[0]].crowding = f64::INFINITY;
        population[*sorted.last().unwrap()].crowding = f64::INFINITY;
        for w in 1..sorted.len().saturating_sub(1) {
            let prev = value(&population[sorted[w - 1]]);
            let next = value(&population[sorted[w + 1]]);
            population[sorted[w]].crowding += (next - prev) / range;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobRequest, QpuState};
    use rand::Rng;

    fn random_problem(num_jobs: usize, num_qpus: usize, seed: u64) -> SchedulingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let qpus: Vec<QpuState> = (0..num_qpus)
            .map(|i| QpuState {
                name: format!("qpu{i}"),
                num_qubits: 27,
                waiting_time_s: rng.gen_range(0.0..500.0),
            })
            .collect();
        let jobs: Vec<JobRequest> = (0..num_jobs)
            .map(|i| JobRequest {
                job_id: i as u64,
                qubits: rng.gen_range(2..=20),
                shots: 1000,
                fidelity_per_qpu: (0..num_qpus).map(|_| rng.gen_range(0.4..0.95)).collect(),
                exec_time_per_qpu: (0..num_qpus).map(|_| rng.gen_range(5.0..60.0)).collect(),
            })
            .collect();
        SchedulingProblem::new(jobs, qpus)
    }

    #[test]
    fn pareto_front_is_mutually_non_dominated_and_feasible() {
        let problem = random_problem(40, 6, 1);
        let result = optimize(&problem, &Nsga2Config { max_generations: 30, ..Default::default() });
        assert!(!result.pareto_front.is_empty());
        for a in &result.pareto_front {
            assert!(problem.assignment_is_feasible(&a.assignment));
            for b in &result.pareto_front {
                assert!(
                    !a.objectives.dominates(&b.objectives) || a.objectives == b.objectives,
                    "front contains dominated solutions"
                );
            }
        }
    }

    #[test]
    fn front_spans_the_fidelity_jct_tradeoff() {
        let problem = random_problem(60, 8, 2);
        let result = optimize(&problem, &Nsga2Config::default());
        let front = &result.pareto_front;
        let min_jct = front.iter().map(|s| s.objectives.mean_jct_s).fold(f64::INFINITY, f64::min);
        let max_jct = front.iter().map(|s| s.objectives.mean_jct_s).fold(0.0, f64::max);
        let min_err = front.iter().map(|s| s.objectives.mean_error).fold(f64::INFINITY, f64::min);
        let max_err = front.iter().map(|s| s.objectives.mean_error).fold(0.0, f64::max);
        // A real tradeoff exists: the front is not a single point.
        assert!(front.len() >= 3, "front size = {}", front.len());
        assert!(max_jct > min_jct);
        assert!(max_err > min_err);
    }

    #[test]
    fn nsga2_beats_random_assignment_on_both_objectives() {
        let problem = random_problem(50, 6, 3);
        let result = optimize(&problem, &Nsga2Config::default());
        // Average objectives of random assignments.
        let mut rng = StdRng::seed_from_u64(99);
        let mut rand_jct = 0.0;
        let mut rand_err = 0.0;
        let trials = 50;
        for _ in 0..trials {
            let assignment = random_assignment(&problem, &mut rng);
            let o = problem.evaluate(&assignment);
            rand_jct += o.mean_jct_s;
            rand_err += o.mean_error;
        }
        rand_jct /= trials as f64;
        rand_err /= trials as f64;
        let best_jct = result
            .pareto_front
            .iter()
            .map(|s| s.objectives.mean_jct_s)
            .fold(f64::INFINITY, f64::min);
        let best_err = result
            .pareto_front
            .iter()
            .map(|s| s.objectives.mean_error)
            .fold(f64::INFINITY, f64::min);
        assert!(best_jct < rand_jct, "NSGA-II best JCT {best_jct} vs random {rand_jct}");
        assert!(best_err < rand_err, "NSGA-II best error {best_err} vs random {rand_err}");
    }

    #[test]
    fn termination_respects_evaluation_budget() {
        let problem = random_problem(30, 4, 4);
        let config =
            Nsga2Config { max_evaluations: 500, population_size: 40, ..Default::default() };
        let result = optimize(&problem, &config);
        assert!(result.evaluations <= 500 + config.population_size * 2);
        assert!(result.generations >= 1);
    }

    #[test]
    fn single_qpu_problem_collapses_to_one_solution() {
        let problem = random_problem(10, 1, 5);
        let result = optimize(&problem, &Nsga2Config { max_generations: 10, ..Default::default() });
        assert_eq!(result.pareto_front.len(), 1);
        assert!(result.pareto_front[0].assignment.iter().all(|&q| q == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let problem = random_problem(25, 5, 6);
        let config = Nsga2Config { max_generations: 15, ..Default::default() };
        let a = optimize(&problem, &config);
        let b = optimize(&problem, &config);
        assert_eq!(a.pareto_front.len(), b.pareto_front.len());
        assert_eq!(a.evaluations, b.evaluations);
    }
}
