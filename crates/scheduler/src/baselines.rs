//! Baseline scheduling policies used by the evaluation (§8.1): First-Come-
//! First-Serve onto the user-preferred (highest-fidelity) QPU — the "standard
//! practice in the current quantum cloud" — plus the least-busy policy offered
//! by IBM's runtime and a fidelity-greedy policy.

use crate::problem::SchedulingProblem;
use serde::{Deserialize, Serialize};

/// Single-objective baseline policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselinePolicy {
    /// Every job goes to the feasible QPU with the highest estimated fidelity
    /// (what users do manually today; creates the hotspots of Figure 2c).
    FidelityGreedy,
    /// Every job goes to the feasible QPU with the smallest current waiting
    /// time (IBM's `least_busy`).
    LeastBusy,
    /// Round-robin across feasible QPUs in arrival order.
    RoundRobin,
}

/// Compute a baseline assignment (job index → QPU index) for a problem.
pub fn assign(problem: &SchedulingProblem, policy: BaselinePolicy) -> Vec<usize> {
    // Track the load each QPU accumulates during this cycle so that
    // tie-breaking is stable and round-robin distributes evenly.
    let mut cycle_load = vec![0.0f64; problem.num_qpus()];
    let mut rr_cursor = 0usize;
    problem
        .jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let feasible = problem.feasible_qpus(i);
            if feasible.is_empty() {
                return 0;
            }
            let choice = match policy {
                BaselinePolicy::FidelityGreedy => feasible
                    .iter()
                    .copied()
                    .max_by(|&a, &b| job.fidelity_per_qpu[a].total_cmp(&job.fidelity_per_qpu[b]))
                    .unwrap(),
                BaselinePolicy::LeastBusy => feasible
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let wa = problem.qpus[a].waiting_time_s + cycle_load[a];
                        let wb = problem.qpus[b].waiting_time_s + cycle_load[b];
                        wa.total_cmp(&wb)
                    })
                    .unwrap(),
                BaselinePolicy::RoundRobin => {
                    let pick = feasible[rr_cursor % feasible.len()];
                    rr_cursor += 1;
                    pick
                }
            };
            cycle_load[choice] += job.exec_time_per_qpu[choice];
            choice
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobRequest, QpuState};

    fn problem() -> SchedulingProblem {
        let qpus = vec![
            QpuState {
                name: "best_fid".into(),
                num_qubits: 27,
                waiting_time_s: 500.0,
                calibration_epoch: 0,
            },
            QpuState {
                name: "empty".into(),
                num_qubits: 27,
                waiting_time_s: 0.0,
                calibration_epoch: 0,
            },
            QpuState {
                name: "small".into(),
                num_qubits: 7,
                waiting_time_s: 5.0,
                calibration_epoch: 0,
            },
        ];
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| JobRequest {
                job_id: i,
                qubits: 10,
                shots: 1000,
                fidelity_per_qpu: vec![0.9, 0.6, 0.8],
                exec_time_per_qpu: vec![20.0, 20.0, 20.0],
            })
            .collect();
        SchedulingProblem::new(jobs, qpus)
    }

    #[test]
    fn fidelity_greedy_creates_a_hotspot() {
        let p = problem();
        let assignment = assign(&p, BaselinePolicy::FidelityGreedy);
        // All jobs pile onto QPU 0 despite its long queue (the Fig. 2c behaviour).
        assert!(assignment.iter().all(|&q| q == 0));
        let obj = p.evaluate(&assignment);
        assert!(obj.mean_jct_s > 500.0);
    }

    #[test]
    fn least_busy_spreads_load_between_feasible_qpus() {
        let p = problem();
        let assignment = assign(&p, BaselinePolicy::LeastBusy);
        // Every choice is feasible (10-qubit jobs cannot use the 7-qubit QPU).
        assert!(p.assignment_is_feasible(&assignment));
        assert!(assignment.iter().all(|&q| q != 2));
        // The empty QPU absorbs most jobs, but once its accumulated cycle load
        // exceeds 500 s it would switch — with 6×20 s jobs it never does.
        assert!(assignment.iter().filter(|&&q| q == 1).count() >= 5);
        // Least-busy achieves lower mean JCT than fidelity-greedy here.
        let greedy = p.evaluate(&assign(&p, BaselinePolicy::FidelityGreedy));
        let least = p.evaluate(&assignment);
        assert!(least.mean_jct_s < greedy.mean_jct_s);
        assert!(least.mean_error > greedy.mean_error, "the JCT gain costs fidelity");
    }

    #[test]
    fn round_robin_alternates_between_feasible_qpus() {
        let p = problem();
        let assignment = assign(&p, BaselinePolicy::RoundRobin);
        assert!(p.assignment_is_feasible(&assignment));
        let on0 = assignment.iter().filter(|&&q| q == 0).count();
        let on1 = assignment.iter().filter(|&&q| q == 1).count();
        assert_eq!(on0, 3);
        assert_eq!(on1, 3);
    }
}
