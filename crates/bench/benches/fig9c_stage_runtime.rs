//! Figure 9(c) — Runtime of the three scheduling stages (job pre-processing,
//! optimization, selection) as the quantum cluster grows from 4 to 8 to 16 QPUs.

use qonductor_bench::{banner, mean, synthetic_problem};
use qonductor_scheduler::{HybridScheduler, SchedulerConfig};

fn main() {
    banner(
        "Figure 9(c)",
        "Scheduling-stage runtimes vs cluster size (100-job batches, 10 repetitions)",
    );
    let scheduler = HybridScheduler::new(SchedulerConfig::default());
    let repetitions = 10;
    println!(
        "{:>8} {:>20} {:>18} {:>16}",
        "QPUs", "pre-processing [s]", "optimization [s]", "selection [s]"
    );
    for &num_qpus in &[4usize, 8, 16] {
        let mut pre = Vec::new();
        let mut opt = Vec::new();
        let mut sel = Vec::new();
        for rep in 0..repetitions {
            let (jobs, qpus) = synthetic_problem(100, num_qpus, 100 + rep as u64);
            let outcome = scheduler.schedule(jobs, qpus);
            pre.push(outcome.timings.preprocessing_s);
            opt.push(outcome.timings.optimization_s);
            sel.push(outcome.timings.selection_s);
        }
        println!("{:>8} {:>20.6} {:>18.6} {:>16.6}", num_qpus, mean(&pre), mean(&opt), mean(&sel));
    }
    println!();
    println!("(paper: all stage runtimes stay roughly constant as the cluster grows; only");
    println!(" pre-processing grows slightly because estimates are fetched for more QPUs)");
}
