//! Ablation — scheduling optimizer: NSGA-II (Qonductor) vs random search vs
//! the single-objective greedy baselines (fidelity-greedy, least-busy) on the
//! same scheduling problem.

use qonductor_bench::{banner, synthetic_problem};
use qonductor_scheduler::{
    baseline_assign, optimize, select, BaselinePolicy, Nsga2Config, Preference, SchedulingProblem,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "Ablation: optimizer",
        "NSGA-II vs random search vs greedy baselines (150 jobs, 8 QPUs)",
    );
    let (jobs, qpus) = synthetic_problem(150, 8, 13);
    let problem = SchedulingProblem::new(jobs, qpus);

    // NSGA-II + balanced MCDM.
    let result = optimize(&problem, &Nsga2Config::default());
    let chosen = &result.pareto_front[select(&result.pareto_front, Preference::balanced())];

    // Random search with the same evaluation budget.
    let mut rng = StdRng::seed_from_u64(5);
    let mut best_random = None::<(f64, f64)>;
    for _ in 0..result.evaluations {
        let assignment: Vec<usize> = (0..problem.num_jobs())
            .map(|i| {
                let feasible = problem.feasible_qpus(i);
                feasible[rng.gen_range(0..feasible.len())]
            })
            .collect();
        let o = problem.evaluate(&assignment);
        let score = o.mean_jct_s / 1000.0 + o.mean_error;
        if best_random.map(|(s, _)| score < s).unwrap_or(true) {
            best_random = Some((score, o.mean_jct_s));
        }
    }

    println!("{:<22} {:>12} {:>12}", "policy", "mean JCT [s]", "mean fidelity");
    println!(
        "{:<22} {:>12.1} {:>12.3}",
        "nsga2 + mcdm (balanced)",
        chosen.objectives.mean_jct_s,
        chosen.objectives.mean_fidelity()
    );
    for policy in
        [BaselinePolicy::FidelityGreedy, BaselinePolicy::LeastBusy, BaselinePolicy::RoundRobin]
    {
        let assignment = baseline_assign(&problem, policy);
        let o = problem.evaluate(&assignment);
        println!(
            "{:<22} {:>12.1} {:>12.3}",
            format!("{policy:?}"),
            o.mean_jct_s,
            o.mean_fidelity()
        );
    }
    if let Some((_, jct)) = best_random {
        println!("{:<22} {:>12.1} {:>12}", "random search", jct, "-");
    }
    println!();
    println!(
        "NSGA-II evaluations used: {}, generations: {}",
        result.evaluations, result.generations
    );
    println!(
        "(design claim: the multi-objective optimizer dominates single-objective greedy policies"
    );
    println!(" on the combined fidelity-JCT objective rather than at either extreme)");
}
