//! Figure 9(a) — Mean JCT as the quantum cluster scales from 4 to 8 to 16 QPUs
//! (1500 jobs/hour, Qonductor scheduler).

use qonductor_backend::Fleet;
use qonductor_bench::{banner, pct, simulation_config};
use qonductor_cloudsim::{CloudSimulation, Policy};
use qonductor_scheduler::Preference;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("Figure 9(a)", "Mean JCT vs quantum cluster size (4 / 8 / 16 QPUs, 1500 j/h)");
    let sizes = [4usize, 8, 16];
    let mut results = Vec::new();
    for &n in &sizes {
        let config =
            simulation_config(Policy::Qonductor { preference: Preference::balanced() }, 1500.0, 71);
        let mut rng = StdRng::seed_from_u64(71 ^ n as u64);
        let fleet = Fleet::scaled(n, &mut rng);
        let report = CloudSimulation::new(config, fleet).run();
        results.push((n, report));
    }

    println!("-- mean JCT over time [s] --");
    print!("{:>8}", "t [s]");
    for (n, _) in &results {
        print!(" {:>12}", format!("{n} QPUs"));
    }
    println!();
    let len = results.iter().map(|(_, r)| r.timeline.len()).min().unwrap_or(0);
    for i in 0..len {
        print!("{:>8.0}", results[0].1.timeline[i].t_s);
        for (_, r) in &results {
            print!(" {:>12.1}", r.timeline[i].mean_completion_s);
        }
        println!();
    }

    println!();
    let base = results[0].1.mean_completion_s();
    for (n, r) in &results {
        let improvement = (base - r.mean_completion_s()) / base.max(1e-9);
        println!(
            "{:>2} QPUs: mean JCT {:>10.1} s  (improvement over 4 QPUs: {})",
            n,
            r.mean_completion_s(),
            pct(improvement)
        );
    }
    println!("(paper: 8 QPUs improve JCT by 52.8% over 4; 16 QPUs by 81%)");
}
