//! Figure 2(a) — Impact of circuit cutting: relative increase in classical
//! runtime, quantum runtime, and execution fidelity when 12- and 24-qubit
//! circuits are cut in half and executed as fragments.

use qonductor_backend::{Qpu, QpuModel};
use qonductor_bench::banner;
use qonductor_circuit::generators::{qaoa_maxcut, MaxCutGraph};
use qonductor_mitigation::knitting;
use qonductor_transpiler::Transpiler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn relative_increase(width: u32, qpu: &Qpu) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(u64::from(width));
    let graph = MaxCutGraph::random(width, 3.0 / f64::from(width), &mut rng);
    let circuit = qaoa_maxcut(&graph, &[0.8], &[0.4]);
    let transpiler = Transpiler::default();
    let noise = qpu.noise_model();

    // Uncut execution.
    let uncut = transpiler.transpile_for_qpu(&circuit, qpu);
    let uncut_fidelity = noise.estimated_success_probability(&uncut.circuit).max(1e-6);
    let uncut_quantum_s = uncut.total_execution_s();
    let uncut_classical_s = 0.05; // plain result readout/aggregation

    // Cut execution: two fragments plus quasi-probability variants and
    // classical reconstruction.
    let cut = knitting::cut_in_half(&circuit);
    let recon = knitting::reconstruction_cost(&cut, circuit.shots());
    let mut fragment_fidelity = 1.0;
    let mut fragment_quantum_s = 0.0;
    for fragment in &cut.fragments {
        let t = transpiler.transpile_for_qpu(fragment, qpu);
        fragment_fidelity *= noise.estimated_success_probability(&t.circuit);
        fragment_quantum_s += t.total_execution_s();
    }
    let variants = cut.subcircuit_variants.min(32) as f64;
    let cut_quantum_s = fragment_quantum_s * variants / 2.0;
    let cut_classical_s = uncut_classical_s + recon.cpu_time_s.max(0.05);

    (
        cut_classical_s / uncut_classical_s,
        cut_quantum_s / uncut_quantum_s,
        fragment_fidelity / uncut_fidelity,
    )
}

fn main() {
    banner(
        "Figure 2(a)",
        "Circuit cutting: relative increase (x) in classical runtime, quantum runtime, fidelity",
    );
    let mut rng = StdRng::seed_from_u64(7);
    let qpu = Qpu::new("ibm_cairo", QpuModel::falcon_27(), 1.2, &mut rng);
    println!(
        "{:<12} {:>18} {:>18} {:>14}",
        "circuit", "classical runtime", "quantum runtime", "fidelity"
    );
    for width in [12u32, 24] {
        let (classical, quantum, fidelity) = relative_increase(width, &qpu);
        println!(
            "{:<12} {:>17.1}x {:>17.1}x {:>13.1}x",
            format!("{width} qubits"),
            classical,
            quantum,
            fidelity
        );
    }
    println!();
    println!("(paper, 24 qubits: classical x2.5, quantum x12, fidelity x~450)");
}
