//! Criterion micro-benchmarks of the scheduler's hot paths: objective
//! evaluation (Eq. 1), one full NSGA-II run, and MCDM selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qonductor_bench::synthetic_problem;
use qonductor_scheduler::{optimize, select, Nsga2Config, Preference, SchedulingProblem};

fn bench_objective_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_evaluation");
    for &num_jobs in &[50usize, 200, 800] {
        let (jobs, qpus) = synthetic_problem(num_jobs, 8, 1);
        let problem = SchedulingProblem::new(jobs, qpus);
        let assignment: Vec<usize> = (0..num_jobs).map(|i| i % 8).collect();
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| problem.evaluate(std::hint::black_box(&assignment)))
        });
    }
    group.finish();
}

fn bench_nsga2(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_cycle");
    group.sample_size(10);
    for &num_jobs in &[50usize, 100] {
        let (jobs, qpus) = synthetic_problem(num_jobs, 8, 2);
        let problem = SchedulingProblem::new(jobs, qpus);
        let config =
            Nsga2Config { max_generations: 20, max_evaluations: 2000, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| optimize(std::hint::black_box(&problem), &config))
        });
    }
    group.finish();
}

fn bench_mcdm(c: &mut Criterion) {
    let (jobs, qpus) = synthetic_problem(100, 8, 3);
    let problem = SchedulingProblem::new(jobs, qpus);
    let result = optimize(&problem, &Nsga2Config::default());
    c.bench_function("mcdm_selection", |b| {
        b.iter(|| select(std::hint::black_box(&result.pareto_front), Preference::balanced()))
    });
}

criterion_group!(benches, bench_objective_evaluation, bench_nsga2, bench_mcdm);
criterion_main!(benches);
