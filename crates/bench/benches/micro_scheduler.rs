//! Criterion micro-benchmarks of the scheduler's hot paths: objective
//! evaluation (full O(N) scan vs incremental O(1) delta), one full NSGA-II
//! run (cold vs warm-started with a previous front + reused workspace), and
//! MCDM selection.
//!
//! With `QONDUCTOR_BENCH_JSON=<path>` the harness writes every measurement to
//! `<path>` — CI runs this in quick mode and uploads `BENCH_scheduler.json`
//! as the perf-trajectory artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qonductor_bench::synthetic_problem;
use qonductor_scheduler::{
    optimize, optimize_with, select, EvalState, Nsga2Config, OptimizerWorkspace, Preference,
    SchedulingProblem,
};

const SIZES: [usize; 3] = [50, 200, 800];
const NUM_QPUS: usize = 8;

fn bench_objective_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_evaluation");
    for &num_jobs in &SIZES {
        let (jobs, qpus) = synthetic_problem(num_jobs, NUM_QPUS, 1);
        let problem = SchedulingProblem::new(jobs, qpus);
        let assignment: Vec<usize> = (0..num_jobs).map(|i| i % NUM_QPUS).collect();
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| problem.evaluate(std::hint::black_box(&assignment)))
        });
    }
    group.finish();
}

/// The incremental path: one gene move (delta update) plus the O(Q) objective
/// reduction — what an offspring with a single changed gene costs, versus the
/// full O(N) re-scan above.
fn bench_incremental_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_evaluation");
    for &num_jobs in &SIZES {
        let (jobs, qpus) = synthetic_problem(num_jobs, NUM_QPUS, 1);
        let problem = SchedulingProblem::new(jobs, qpus);
        let assignment: Vec<usize> = (0..num_jobs).map(|i| i % NUM_QPUS).collect();
        let mut state = EvalState::new(NUM_QPUS);
        problem.init_state(&assignment, &mut state);
        let mut current = assignment[0];
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| {
                // Flip job 0 between two QPUs: a one-gene offspring delta.
                let to = if current == 0 { 1 } else { 0 };
                problem.move_job(&mut state, 0, current, to);
                current = to;
                std::hint::black_box(problem.objectives_of(&state))
            })
        });
    }
    group.finish();
}

/// The f32 objective-lane reduction over packed u16 genes — the island
/// path's whole-assignment evaluation, versus the f64 `evaluate` above.
fn bench_objective_lane_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_lane_reduction");
    for &num_jobs in &SIZES {
        let (jobs, qpus) = synthetic_problem(num_jobs, NUM_QPUS, 1);
        let problem = SchedulingProblem::new(jobs, qpus);
        let genes: Vec<u16> = (0..num_jobs).map(|i| (i % NUM_QPUS) as u16).collect();
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| problem.evaluate_lanes_packed(std::hint::black_box(&genes)))
        });
    }
    group.finish();
}

fn nsga2_config() -> Nsga2Config {
    Nsga2Config { max_generations: 20, max_evaluations: 2000, ..Default::default() }
}

/// The acceptance-metric cycle under the *default* configuration — since the
/// island refactor, `num_threads = 4` islands with ring migration.
fn bench_nsga2(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_cycle");
    group.sample_size(10);
    for &num_jobs in &[50usize, 100] {
        let (jobs, qpus) = synthetic_problem(num_jobs, NUM_QPUS, 2);
        let problem = SchedulingProblem::new(jobs, qpus);
        let config = nsga2_config();
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| optimize(std::hint::black_box(&problem), &config))
        });
    }
    group.finish();
}

/// The island path pinned explicitly (4 islands regardless of the default),
/// same generation/evaluation budget as `nsga2_cycle`, plus the sequential
/// reference path for the side-by-side trajectory.
fn bench_nsga2_islands(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_island_cycle");
    group.sample_size(10);
    for &num_jobs in &[50usize, 100] {
        let (jobs, qpus) = synthetic_problem(num_jobs, NUM_QPUS, 2);
        let problem = SchedulingProblem::new(jobs, qpus);
        let config = Nsga2Config { num_threads: 4, ..nsga2_config() };
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| optimize(std::hint::black_box(&problem), &config))
        });
    }
    group.finish();
    let mut group = c.benchmark_group("nsga2_sequential_cycle");
    group.sample_size(10);
    for &num_jobs in &[50usize, 100] {
        let (jobs, qpus) = synthetic_problem(num_jobs, NUM_QPUS, 2);
        let problem = SchedulingProblem::new(jobs, qpus);
        let config = Nsga2Config { num_threads: 1, ..nsga2_config() };
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| optimize(std::hint::black_box(&problem), &config))
        });
    }
    group.finish();
}

/// Warm-started cycles: the population is seeded from a previous run's Pareto
/// front and the workspace is reused, the steady state of a stateful
/// `HybridScheduler` between consecutive batch dispatches.
fn bench_nsga2_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_warm_cycle");
    group.sample_size(10);
    for &num_jobs in &[50usize, 100] {
        let (jobs, qpus) = synthetic_problem(num_jobs, NUM_QPUS, 2);
        let problem = SchedulingProblem::new(jobs, qpus);
        let config = nsga2_config();
        let cold = optimize(&problem, &config);
        let seeds: Vec<Vec<usize>> =
            cold.pareto_front.iter().map(|s| s.assignment.clone()).collect();
        let mut workspace = OptimizerWorkspace::new();
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &num_jobs, |b, _| {
            b.iter(|| {
                optimize_with(std::hint::black_box(&problem), &config, &seeds, &mut workspace)
            })
        });
    }
    group.finish();
}

/// Cold vs warm under the *default* (tolerance-terminated) budget: here the
/// warm start shows its convergence effect — seeded populations plateau
/// within the sliding tolerance window in a fraction of the generations a
/// cold random start needs.
fn bench_nsga2_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_convergence");
    group.sample_size(10);
    let (jobs, qpus) = synthetic_problem(100, NUM_QPUS, 2);
    let problem = SchedulingProblem::new(jobs, qpus);
    let config = Nsga2Config::default();
    group.bench_function("cold/100", |b| {
        b.iter(|| optimize(std::hint::black_box(&problem), &config))
    });
    let cold = optimize(&problem, &config);
    let seeds: Vec<Vec<usize>> = cold.pareto_front.iter().map(|s| s.assignment.clone()).collect();
    let mut workspace = OptimizerWorkspace::new();
    group.bench_function("warm/100", |b| {
        b.iter(|| optimize_with(std::hint::black_box(&problem), &config, &seeds, &mut workspace))
    });
    group.finish();
}

fn bench_mcdm(c: &mut Criterion) {
    let (jobs, qpus) = synthetic_problem(100, NUM_QPUS, 3);
    let problem = SchedulingProblem::new(jobs, qpus);
    let result = optimize(&problem, &Nsga2Config::default());
    c.bench_function("mcdm_selection", |b| {
        b.iter(|| select(std::hint::black_box(&result.pareto_front), Preference::balanced()))
    });
}

criterion_group!(
    benches,
    bench_objective_evaluation,
    bench_incremental_evaluation,
    bench_objective_lane_reduction,
    bench_nsga2,
    bench_nsga2_islands,
    bench_nsga2_warm,
    bench_nsga2_convergence,
    bench_mcdm
);
criterion_main!(benches);
