//! Figure 8(c) — QPU load (total active runtime) per device for workloads of
//! 1500, 3000, and 4500 jobs/hour under the Qonductor scheduler.

use qonductor_bench::{banner, pct, simulation_config};
use qonductor_cloudsim::{CloudSimulation, Policy};
use qonductor_scheduler::Preference;

fn main() {
    banner("Figure 8(c)", "QPU load as total active runtime for increasing workloads");
    let rates = [1500.0, 3000.0, 4500.0];
    let mut per_rate = Vec::new();
    for &rate in &rates {
        let report = CloudSimulation::with_default_fleet(simulation_config(
            Policy::Qonductor { preference: Preference::balanced() },
            rate,
            57,
        ))
        .run();
        per_rate.push(report);
    }

    let names = &per_rate[0].qpu_names;
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "IBM QPU", "1500 j/h [s]", "3000 j/h [s]", "4500 j/h [s]"
    );
    for (i, name) in names.iter().enumerate() {
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>14.0}",
            name, per_rate[0].qpu_busy_s[i], per_rate[1].qpu_busy_s[i], per_rate[2].qpu_busy_s[i]
        );
    }
    println!();
    for (rate, report) in rates.iter().zip(&per_rate) {
        println!(
            "{} j/h: maximum load difference between QPUs = {}",
            rate,
            pct(report.max_load_difference())
        );
    }
    println!("(paper: nearly uniform distribution, max 15.8% load difference at 1500 j/h)");
}
