//! Figure 10(b) — JCT vs fidelity of the solutions chosen by the MCDM selection
//! stage under three different objective priorities (JCT, fidelity, balanced),
//! over a synthetic workload of 100 random quantum jobs.

use qonductor_bench::{banner, pct, synthetic_problem};
use qonductor_scheduler::{HybridScheduler, Nsga2Config, Preference, SchedulerConfig};

fn main() {
    banner(
        "Figure 10(b)",
        "Pareto front + MCDM selections for 100 random jobs under three priorities",
    );
    let (jobs, qpus) = synthetic_problem(100, 8, 7);

    let mut selections = Vec::new();
    for (label, preference) in [
        ("jct", Preference::jct_first()),
        ("balanced", Preference::balanced()),
        ("fidelity", Preference::fidelity_first()),
    ] {
        let scheduler = HybridScheduler::new(SchedulerConfig {
            nsga2: Nsga2Config { seed: 99, ..Nsga2Config::default() },
            preference,
            ..SchedulerConfig::default()
        });
        let outcome = scheduler.schedule(jobs.clone(), qpus.clone());
        if label == "balanced" {
            println!("-- Pareto front (mean fidelity, mean JCT [s]) --");
            for sol in &outcome.pareto_front {
                println!(
                    "  fidelity {:>6.3}   JCT {:>10.1}",
                    sol.objectives.mean_fidelity(),
                    sol.objectives.mean_jct_s
                );
            }
            println!();
        }
        selections.push((label, outcome.chosen));
    }

    println!("-- chosen solutions per priority --");
    println!("{:>10} {:>12} {:>12}", "priority", "fidelity", "JCT [s]");
    for (label, objectives) in &selections {
        println!(
            "{:>10} {:>12.3} {:>12.1}",
            label,
            objectives.mean_fidelity(),
            objectives.mean_jct_s
        );
    }

    let jct = selections.iter().find(|(l, _)| *l == "jct").unwrap().1;
    let fid = selections.iter().find(|(l, _)| *l == "fidelity").unwrap().1;
    let bal = selections.iter().find(|(l, _)| *l == "balanced").unwrap().1;
    println!();
    println!(
        "JCT priority vs fidelity priority : {} lower JCT, {} lower fidelity",
        pct((fid.mean_jct_s - jct.mean_jct_s) / fid.mean_jct_s.max(1e-9)),
        pct((fid.mean_fidelity() - jct.mean_fidelity()) / fid.mean_fidelity().max(1e-9)),
    );
    println!(
        "balanced vs fidelity priority     : {} lower JCT for {} lower fidelity",
        pct((fid.mean_jct_s - bal.mean_jct_s) / fid.mean_jct_s.max(1e-9)),
        pct((fid.mean_fidelity() - bal.mean_fidelity()) / fid.mean_fidelity().max(1e-9)),
    );
    println!(
        "(paper: JCT priority gives 67% lower JCT; fidelity priority gives 16% higher fidelity;"
    );
    println!(" balanced gives 54% lower JCT for 6% lower fidelity)");
}
