//! Sustained-throughput benchmark of the sharded control plane: N shards,
//! each owning its replicated journal, job manager, submission service, and a
//! disjoint sub-fleet of leased QPUs, each driven to backlog drain on its own
//! thread against a fixed offered load (`QONDUCTOR_CONTROLPLANE_JOBS` jobs
//! spread over `QONDUCTOR_CONTROLPLANE_TENANTS` registered tenants — default
//! 10⁵). Shards share nothing after the lease split. When the host has at
//! least one core per shard the threads run concurrently and the reported
//! wall-clock is the true spawn→join time of the whole deployment; on smaller
//! runners the shards are driven one at a time (still on real threads) and
//! the deployment wall is the max of the per-shard drive-loop times, so the
//! committed figures stay comparable on single-core CI.
//!
//! Reported per shard count (1 / 2 / 4): wall-clock control-plane throughput
//! (jobs journaled, admitted through weighted DRR over the *active* tenant
//! set, NSGA-II scheduled, and dispatch-journaled, per second), the p50/p99
//! *simulated* submit→dispatch latency of the backlog drain, and per-shard
//! wall times. A phase-timing breakdown (journal vs admission vs scheduling
//! vs dispatch) is written to `QONDUCTOR_CONTROLPLANE_PHASES` so regressions
//! are attributable to a layer, not just a headline number.
//!
//! With `QONDUCTOR_CONTROLPLANE_JSON=<path>` the harness writes the
//! measurements to `<path>`; CI reruns the identical default workload
//! (`jobs_per_s` is workload-dependent — admission scans shrink as the
//! backlog thins, so only like-for-like runs compare) and gates on the
//! single-shard throughput against the committed `BENCH_controlplane.json`.

use qonductor_backend::Fleet;
use qonductor_core::{JobId, JobSpec, ReplicatedControlPlane, TenantConfig};
use qonductor_scheduler::{HybridScheduler, Nsga2Config, ScheduleTrigger, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const QUEUE_LIMIT: usize = 25;
const INTERVAL_S: f64 = 30.0;
const EXEC_S: f64 = 5.0;
const SEED: u64 = 2025;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn scheduler() -> HybridScheduler {
    HybridScheduler::new(SchedulerConfig {
        nsga2: Nsga2Config {
            population_size: 16,
            max_generations: 6,
            max_evaluations: 600,
            num_threads: 1,
            ..Nsga2Config::default()
        },
        ..SchedulerConfig::default()
    })
}

/// Feasible spec sized to a shard's sub-fleet.
fn spec_for(fleet: &Fleet, qubits: u32) -> JobSpec {
    JobSpec {
        qubits,
        shots: 1000,
        fidelity_per_qpu: fleet
            .members()
            .iter()
            .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
            .collect(),
        exec_time_per_qpu: fleet
            .members()
            .iter()
            .map(|m| if m.qpu.num_qubits() >= qubits { EXEC_S } else { f64::INFINITY })
            .collect(),
        estimate_epoch: fleet.calibration_epoch(),
    }
}

/// Per-phase time split of one shard's drive loop. `journal_s` (quorum KV
/// writes) is nested inside the admission/dispatch/submit walls, and
/// `scheduling_s` (NSGA-II) is nested inside `dispatch_s` — the four numbers
/// attribute where the wall went, they do not sum to it.
#[derive(Clone, Copy, Default)]
struct Phases {
    journal_s: f64,
    admission_s: f64,
    scheduling_s: f64,
    dispatch_s: f64,
}

impl Phases {
    fn add(&mut self, other: &Phases) {
        self.journal_s += other.journal_s;
        self.admission_s += other.admission_s;
        self.scheduling_s += other.scheduling_s;
        self.dispatch_s += other.dispatch_s;
    }
}

struct ShardRun {
    dispatched: usize,
    latencies_s: Vec<f64>,
    wall_s: f64,
    phases: Phases,
}

/// Drive one shard to drain its whole backlog: register `num_tenants`
/// weighted tenants, journal `num_jobs` submissions at t = 0 striped across
/// the tenant population, then loop admit → NSGA-II dispatch → fleet advance
/// → completion journaling until every job has been placed in a batch.
fn run_shard(shard: usize, num_tenants: usize, num_jobs: usize, sub_fleet: &mut Fleet) -> ShardRun {
    let mut plane = ReplicatedControlPlane::new(
        ScheduleTrigger::new(QUEUE_LIMIT, INTERVAL_S),
        1,
        SEED.wrapping_add(shard as u64),
    );
    let nsga2 = scheduler();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xBE5C ^ shard as u64);
    let tenants: Vec<_> = (0..num_tenants)
        .map(|i| {
            plane
                .register_tenant_with(TenantConfig {
                    weight: (i % 3 + 1) as u32,
                    max_in_flight: 1024,
                    max_retries: 0,
                })
                .expect("quorum")
        })
        .collect();
    let journal_ns_at_start = plane.journal_nanos();

    // The measured window covers the whole job path — submit journaling,
    // DRR admission over the active tenant set, scheduling, and
    // dispatch/completion journaling — but not the one-time registration.
    let started = Instant::now();
    // Offered load: the whole backlog journaled up front, striped over the
    // tenant space with a large prime so DRR sees many distinct queues.
    for j in 0..num_jobs {
        let tenant = tenants[(j * 7919) % tenants.len()];
        let qubits = (j % 15 + 2) as u32;
        plane.submit(tenant, spec_for(sub_fleet, qubits), 0.0).expect("quorum");
    }

    let mut submit_s: HashMap<JobId, f64> = HashMap::new();
    let mut latencies_s = Vec::with_capacity(num_jobs);
    let mut dispatched = 0usize;
    let mut t = 0.0f64;
    let mut guard = 0usize;
    let mut admission_ns = 0u64;
    let mut dispatch_ns = 0u64;
    while dispatched < num_jobs {
        guard += 1;
        assert!(guard < num_jobs * 4 + 64, "shard {shard}: backlog drain must converge");
        t += INTERVAL_S;
        let admit_started = Instant::now();
        let admitted = plane.admit(t).expect("quorum");
        admission_ns += admit_started.elapsed().as_nanos() as u64;
        for (_, job_id) in admitted {
            submit_s.insert(job_id, 0.0);
        }
        let dispatch_started = Instant::now();
        let outcome = plane.try_dispatch(t, &nsga2, sub_fleet).expect("quorum");
        dispatch_ns += dispatch_started.elapsed().as_nanos() as u64;
        if let Some(outcome) = outcome {
            for &job_id in &outcome.record.job_ids {
                let submitted = submit_s.remove(&job_id).unwrap_or(0.0);
                latencies_s.push(t - submitted);
            }
            dispatched += outcome.record.job_ids.len();
        }
        sub_fleet.advance_to(t, &mut rng);
        let done = plane.drain_completions(sub_fleet);
        plane.note_completions(&done).expect("quorum");
    }
    let phases = Phases {
        journal_s: (plane.journal_nanos() - journal_ns_at_start) as f64 * 1e-9,
        admission_s: admission_ns as f64 * 1e-9,
        scheduling_s: plane.jobmanager().scheduling_nanos() as f64 * 1e-9,
        dispatch_s: dispatch_ns as f64 * 1e-9,
    };
    ShardRun { dispatched, latencies_s, wall_s: started.elapsed().as_secs_f64(), phases }
}

struct Measurement {
    shards: usize,
    jobs_per_s: f64,
    p50_s: f64,
    p99_s: f64,
    jobs: usize,
    tenants: usize,
    wall_s: f64,
    per_shard_wall_s: Vec<f64>,
    parallel_drive: bool,
    phases: Phases,
}

fn percentile(latencies: &mut [f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    latencies[((latencies.len() - 1) as f64 * q).floor() as usize]
}

fn bench_shards(num_shards: usize, num_tenants: usize, num_jobs: usize) -> Measurement {
    // Fixed total fleet, leased round-robin: shard s owns QPUs i ≡ s (mod N).
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF1EE7);
    let fleet = Fleet::ibm_default(&mut rng);
    let mut sub_fleets: Vec<Fleet> = (0..num_shards)
        .map(|s| {
            Fleet::from_members(
                fleet
                    .members()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % num_shards == s)
                    .map(|(_, m)| m.clone())
                    .collect(),
            )
        })
        .collect();

    let tenants_per_shard = num_tenants / num_shards;
    let jobs_per_shard = num_jobs / num_shards;
    // Shards share nothing after the lease split. With a core per shard the
    // threads run concurrently and the deployment wall is the true
    // spawn→join time; on smaller hosts concurrent threads would only
    // measure timeslice interference, so each shard thread runs to
    // completion before the next starts and the deployment wall is the max
    // of the clean per-shard drive-loop times (what N dedicated cores would
    // see).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel_drive = num_shards > 1 && cores >= num_shards;
    let drive_started = Instant::now();
    let runs: Vec<ShardRun> = std::thread::scope(|scope| {
        if parallel_drive {
            let handles: Vec<_> = sub_fleets
                .iter_mut()
                .enumerate()
                .map(|(shard, sub_fleet)| {
                    scope.spawn(move || {
                        run_shard(shard, tenants_per_shard, jobs_per_shard, sub_fleet)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard thread")).collect()
        } else {
            sub_fleets
                .iter_mut()
                .enumerate()
                .map(|(shard, sub_fleet)| {
                    scope
                        .spawn(move || {
                            run_shard(shard, tenants_per_shard, jobs_per_shard, sub_fleet)
                        })
                        .join()
                        .expect("shard thread")
                })
                .collect()
        }
    });
    let per_shard_wall_s: Vec<f64> = runs.iter().map(|r| r.wall_s).collect();
    let wall_s = if parallel_drive {
        drive_started.elapsed().as_secs_f64()
    } else {
        per_shard_wall_s.iter().copied().fold(0.0f64, f64::max)
    };

    let total_dispatched: usize = runs.iter().map(|r| r.dispatched).sum();
    assert_eq!(total_dispatched, jobs_per_shard * num_shards, "every job dispatches");
    let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies_s.iter().copied()).collect();
    let mut phases = Phases::default();
    for run in &runs {
        phases.add(&run.phases);
    }
    Measurement {
        shards: num_shards,
        jobs_per_s: total_dispatched as f64 / wall_s,
        p50_s: percentile(&mut latencies, 0.50),
        p99_s: percentile(&mut latencies, 0.99),
        jobs: total_dispatched,
        tenants: tenants_per_shard * num_shards,
        wall_s,
        per_shard_wall_s,
        parallel_drive,
        phases,
    }
}

fn json_floats(values: &[f64]) -> String {
    let parts: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", parts.join(", "))
}

fn main() {
    let num_tenants = env_usize("QONDUCTOR_CONTROLPLANE_TENANTS", 100_000);
    let num_jobs = env_usize("QONDUCTOR_CONTROLPLANE_JOBS", 4000);
    let reps = env_usize("QONDUCTOR_CONTROLPLANE_REPS", 5).max(1);

    let mut results = Vec::new();
    for &shards in &SHARD_COUNTS {
        // The drive loop is deterministic, so wall-clock spread across reps
        // is scheduler/container interference; keep the least-interfered rep.
        let m = (0..reps)
            .map(|_| bench_shards(shards, num_tenants, num_jobs))
            .max_by(|a, b| a.jobs_per_s.total_cmp(&b.jobs_per_s))
            .expect("at least one rep");
        println!(
            "controlplane/shards/{}: {:.1} jobs/s, p50/p99 submit→dispatch {:.1}/{:.1} s \
             ({} jobs over {} tenants in {:.3} s wall, {})",
            m.shards,
            m.jobs_per_s,
            m.p50_s,
            m.p99_s,
            m.jobs,
            m.tenants,
            m.wall_s,
            if m.parallel_drive { "concurrent shards" } else { "shards one at a time" }
        );
        println!(
            "  phases: journal {:.3} s, admission {:.3} s, scheduling {:.3} s, dispatch {:.3} s",
            m.phases.journal_s, m.phases.admission_s, m.phases.scheduling_s, m.phases.dispatch_s
        );
        results.push(m);
    }

    let base = results[0].jobs_per_s;
    for m in &results[1..] {
        println!(
            "scaling {}x shards: {:.2}x throughput, p99 {:.1} s vs {:.1} s",
            m.shards,
            m.jobs_per_s / base,
            m.p99_s,
            results[0].p99_s
        );
    }

    if let Ok(path) = std::env::var("QONDUCTOR_CONTROLPLANE_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|m| {
                format!(
                    "    {{\"name\": \"controlplane/shards/{}\", \"jobs_per_s\": {:.1}, \
                     \"p50_submit_to_dispatch_s\": {:.1}, \"p99_submit_to_dispatch_s\": {:.1}, \
                     \"jobs\": {}, \"registered_tenants\": {}, \"wall_s\": {:.3}, \
                     \"per_shard_wall_s\": {}, \"parallel_drive\": {}}}",
                    m.shards,
                    m.jobs_per_s,
                    m.p50_s,
                    m.p99_s,
                    m.jobs,
                    m.tenants,
                    m.wall_s,
                    json_floats(&m.per_shard_wall_s),
                    m.parallel_drive
                )
            })
            .collect();
        let doc = format!(
            "{{\n  \"note\": \"Sharded control-plane sustained-throughput bench: each shard \
             owns its replicated journal, weighted-DRR submission service iterating only the \
             active tenant set (O(active) admission, independent of the registered \
             population), a group-commit journal (one quorum round per admission pass), an \
             NSGA-II scheduler, and a disjoint leased sub-fleet of the fixed 8-QPU default \
             fleet. jobs_per_s is total jobs over the deployment wall-clock: the true \
             spawn-to-join time when the host has a core per shard, otherwise the max of the \
             clean per-shard drive-loop times with shards driven one at a time (what N \
             dedicated cores would see; per_shard_wall_s and parallel_drive record which). \
             The window covers submit journaling + DRR admission + scheduling + dispatch \
             journaling; p50/p99_submit_to_dispatch_s are simulated latencies of draining \
             the fixed offered backlog. A per-phase breakdown (journal vs admission vs \
             scheduling vs dispatch) goes to QONDUCTOR_CONTROLPLANE_PHASES. CI reruns the \
             identical default workload (throughput is workload-dependent: admission scans \
             shrink as the backlog thins) and fails if single-shard throughput regresses \
             more than 20% against the committed figure.\",\n  \
             \"registered_tenants\": {num_tenants},\n  \
             \"total_jobs\": {num_jobs},\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, doc).expect("write controlplane bench json");
        println!("wrote {path}");
    }

    if let Ok(path) = std::env::var("QONDUCTOR_CONTROLPLANE_PHASES") {
        let entries: Vec<String> = results
            .iter()
            .map(|m| {
                format!(
                    "    {{\"name\": \"controlplane/shards/{}\", \"wall_s\": {:.3}, \
                     \"journal_s\": {:.3}, \"admission_s\": {:.3}, \"scheduling_s\": {:.3}, \
                     \"dispatch_s\": {:.3}}}",
                    m.shards,
                    m.wall_s,
                    m.phases.journal_s,
                    m.phases.admission_s,
                    m.phases.scheduling_s,
                    m.phases.dispatch_s
                )
            })
            .collect();
        let doc = format!(
            "{{\n  \"note\": \"Per-phase wall breakdown of the winning rep, summed across \
             shards. journal_s (quorum KV writes) is nested inside the admission/dispatch/\
             submit walls and scheduling_s (NSGA-II) is nested inside dispatch_s — the \
             phases attribute the wall, they do not sum to it.\",\n  \
             \"phases\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, doc).expect("write controlplane phases json");
        println!("wrote {path}");
    }
}
