//! Sustained-throughput benchmark of the sharded control plane: N shards,
//! each owning its replicated journal, job manager, submission service, and a
//! disjoint sub-fleet of leased QPUs, each driven to backlog drain on its own
//! thread against a fixed offered load (`QONDUCTOR_CONTROLPLANE_JOBS` jobs
//! spread over `QONDUCTOR_CONTROLPLANE_TENANTS` registered tenants — default
//! 10⁵). Shards share nothing after the lease split, so the deployment's
//! wall-clock is the max of the per-shard drive-loop times; shards run one at
//! a time so those timings stay clean on single-core CI runners.
//!
//! Reported per shard count (1 / 2 / 4): wall-clock control-plane throughput
//! (jobs journaled, admitted through weighted DRR over the full registered
//! tenant population, NSGA-II scheduled, and dispatch-journaled, per second)
//! and the p99 *simulated* submit→dispatch latency of the backlog drain.
//! With the tenant population and offered load held fixed, both should
//! improve at least linearly in the shard count: each shard admits over
//! `tenants / N` DRR queues and schedules `jobs / N` of the backlog in
//! parallel.
//!
//! With `QONDUCTOR_CONTROLPLANE_JSON=<path>` the harness writes the
//! measurements to `<path>`; CI reruns the identical default workload
//! (`jobs_per_s` is workload-dependent — DRR scans lengthen as the backlog
//! thins, so only like-for-like runs compare) and gates on the single-shard
//! throughput against the committed `BENCH_controlplane.json`.

use qonductor_backend::Fleet;
use qonductor_core::{JobId, JobSpec, ReplicatedControlPlane, TenantConfig};
use qonductor_scheduler::{HybridScheduler, Nsga2Config, ScheduleTrigger, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const QUEUE_LIMIT: usize = 25;
const INTERVAL_S: f64 = 30.0;
const EXEC_S: f64 = 5.0;
const SEED: u64 = 2025;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn scheduler() -> HybridScheduler {
    HybridScheduler::new(SchedulerConfig {
        nsga2: Nsga2Config {
            population_size: 16,
            max_generations: 6,
            max_evaluations: 600,
            num_threads: 1,
            ..Nsga2Config::default()
        },
        ..SchedulerConfig::default()
    })
}

/// Feasible spec sized to a shard's sub-fleet.
fn spec_for(fleet: &Fleet, qubits: u32) -> JobSpec {
    JobSpec {
        qubits,
        shots: 1000,
        fidelity_per_qpu: fleet
            .members()
            .iter()
            .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
            .collect(),
        exec_time_per_qpu: fleet
            .members()
            .iter()
            .map(|m| if m.qpu.num_qubits() >= qubits { EXEC_S } else { f64::INFINITY })
            .collect(),
        estimate_epoch: fleet.calibration_epoch(),
    }
}

struct ShardRun {
    dispatched: usize,
    latencies_s: Vec<f64>,
    wall_s: f64,
}

/// Drive one shard to drain its whole backlog: register `num_tenants`
/// weighted tenants, journal `num_jobs` submissions at t = 0 striped across
/// the tenant population, then loop admit → NSGA-II dispatch → fleet advance
/// → completion journaling until every job has been placed in a batch.
fn run_shard(shard: usize, num_tenants: usize, num_jobs: usize, sub_fleet: &mut Fleet) -> ShardRun {
    let mut plane = ReplicatedControlPlane::new(
        ScheduleTrigger::new(QUEUE_LIMIT, INTERVAL_S),
        1,
        SEED.wrapping_add(shard as u64),
    );
    let nsga2 = scheduler();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xBE5C ^ shard as u64);
    let tenants: Vec<_> = (0..num_tenants)
        .map(|i| {
            plane
                .register_tenant_with(TenantConfig {
                    weight: (i % 3 + 1) as u32,
                    max_in_flight: 1024,
                    max_retries: 0,
                })
                .expect("quorum")
        })
        .collect();

    // The measured window covers the whole job path — submit journaling,
    // DRR admission over the full registered population, scheduling, and
    // dispatch/completion journaling — but not the one-time registration.
    let started = Instant::now();
    // Offered load: the whole backlog journaled up front, striped over the
    // tenant space with a large prime so DRR sees many distinct queues.
    for j in 0..num_jobs {
        let tenant = tenants[(j * 7919) % tenants.len()];
        let qubits = (j % 15 + 2) as u32;
        plane.submit(tenant, spec_for(sub_fleet, qubits), 0.0).expect("quorum");
    }

    let mut submit_s: HashMap<JobId, f64> = HashMap::new();
    let mut latencies_s = Vec::with_capacity(num_jobs);
    let mut dispatched = 0usize;
    let mut t = 0.0f64;
    let mut guard = 0usize;
    while dispatched < num_jobs {
        guard += 1;
        assert!(guard < num_jobs * 4 + 64, "shard {shard}: backlog drain must converge");
        t += INTERVAL_S;
        for (_, job_id) in plane.admit(t).expect("quorum") {
            submit_s.insert(job_id, 0.0);
        }
        if let Some(outcome) = plane.try_dispatch(t, &nsga2, sub_fleet).expect("quorum") {
            for &job_id in &outcome.record.job_ids {
                let submitted = submit_s.remove(&job_id).unwrap_or(0.0);
                latencies_s.push(t - submitted);
            }
            dispatched += outcome.record.job_ids.len();
        }
        sub_fleet.advance_to(t, &mut rng);
        let done = plane.drain_completions(sub_fleet);
        plane.note_completions(&done).expect("quorum");
    }
    ShardRun { dispatched, latencies_s, wall_s: started.elapsed().as_secs_f64() }
}

struct Measurement {
    shards: usize,
    jobs_per_s: f64,
    p99_s: f64,
    jobs: usize,
    tenants: usize,
    wall_s: f64,
}

fn p99(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    latencies[((latencies.len() - 1) as f64 * 0.99).floor() as usize]
}

fn bench_shards(num_shards: usize, num_tenants: usize, num_jobs: usize) -> Measurement {
    // Fixed total fleet, leased round-robin: shard s owns QPUs i ≡ s (mod N).
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF1EE7);
    let fleet = Fleet::ibm_default(&mut rng);
    let mut sub_fleets: Vec<Fleet> = (0..num_shards)
        .map(|s| {
            Fleet::from_members(
                fleet
                    .members()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % num_shards == s)
                    .map(|(_, m)| m.clone())
                    .collect(),
            )
        })
        .collect();

    let tenants_per_shard = num_tenants / num_shards;
    let jobs_per_shard = num_jobs / num_shards;
    // Shards share nothing after the lease split, so an N-shard deployment's
    // wall-clock on N cores is the *max* of the per-shard drive-loop times.
    // Each shard is driven serially here (its own thread, run to completion
    // before the next starts) so the per-shard timings stay clean on small
    // single-core CI runners instead of measuring timeslice interference.
    let runs: Vec<ShardRun> = std::thread::scope(|scope| {
        sub_fleets
            .iter_mut()
            .enumerate()
            .map(|(shard, sub_fleet)| {
                scope
                    .spawn(move || run_shard(shard, tenants_per_shard, jobs_per_shard, sub_fleet))
                    .join()
                    .expect("shard thread")
            })
            .collect()
    });
    let wall_s = runs.iter().map(|r| r.wall_s).fold(0.0f64, f64::max);

    let total_dispatched: usize = runs.iter().map(|r| r.dispatched).sum();
    assert_eq!(total_dispatched, jobs_per_shard * num_shards, "every job dispatches");
    let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies_s.iter().copied()).collect();
    Measurement {
        shards: num_shards,
        jobs_per_s: total_dispatched as f64 / wall_s,
        p99_s: p99(&mut latencies),
        jobs: total_dispatched,
        tenants: tenants_per_shard * num_shards,
        wall_s,
    }
}

fn main() {
    let num_tenants = env_usize("QONDUCTOR_CONTROLPLANE_TENANTS", 100_000);
    let num_jobs = env_usize("QONDUCTOR_CONTROLPLANE_JOBS", 4000);
    let reps = env_usize("QONDUCTOR_CONTROLPLANE_REPS", 5).max(1);

    let mut results = Vec::new();
    for &shards in &SHARD_COUNTS {
        // The drive loop is deterministic, so wall-clock spread across reps
        // is scheduler/container interference; keep the least-interfered rep.
        let m = (0..reps)
            .map(|_| bench_shards(shards, num_tenants, num_jobs))
            .max_by(|a, b| a.jobs_per_s.total_cmp(&b.jobs_per_s))
            .expect("at least one rep");
        println!(
            "controlplane/shards/{}: {:.1} jobs/s, p99 submit→dispatch {:.1} s \
             ({} jobs over {} tenants in {:.2} s wall)",
            m.shards, m.jobs_per_s, m.p99_s, m.jobs, m.tenants, m.wall_s
        );
        results.push(m);
    }

    let base = results[0].jobs_per_s;
    for m in &results[1..] {
        println!(
            "scaling {}x shards: {:.2}x throughput, p99 {:.1} s vs {:.1} s",
            m.shards,
            m.jobs_per_s / base,
            m.p99_s,
            results[0].p99_s
        );
    }

    if let Ok(path) = std::env::var("QONDUCTOR_CONTROLPLANE_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|m| {
                format!(
                    "    {{\"name\": \"controlplane/shards/{}\", \"jobs_per_s\": {:.1}, \
                     \"p99_submit_to_dispatch_s\": {:.1}, \"jobs\": {}, \
                     \"registered_tenants\": {}, \"wall_s\": {:.3}}}",
                    m.shards, m.jobs_per_s, m.p99_s, m.jobs, m.tenants, m.wall_s
                )
            })
            .collect();
        let doc = format!(
            "{{\n  \"note\": \"Sharded control-plane sustained-throughput bench: each shard \
             owns its replicated journal, weighted-DRR submission service over its slice of \
             the registered tenant population, NSGA-II scheduler, and a disjoint leased \
             sub-fleet of the fixed 8-QPU default fleet. jobs_per_s is total jobs over the \
             max per-shard drive-loop wall time (shards share nothing after the lease split, \
             so that max is the N-core deployment's wall-clock; shards run one at a time so \
             per-shard timings stay clean on single-core runners) covering submit journaling \
             + DRR admission + scheduling + dispatch journaling; p99_submit_to_dispatch_s is \
             the simulated p99 latency of draining the fixed offered backlog. CI reruns the \
             identical default workload (throughput is workload-dependent: DRR scans lengthen \
             as the backlog thins) and fails if single-shard throughput regresses more than \
             20% against the committed figure.\",\n  \"registered_tenants\": {num_tenants},\n  \
             \"total_jobs\": {num_jobs},\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, doc).expect("write controlplane bench json");
        println!("wrote {path}");
    }
}
