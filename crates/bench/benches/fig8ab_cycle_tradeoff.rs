//! Figure 8(a)/(b) — Per-scheduling-cycle JCT and fidelity of the scheduled
//! jobs: minimum/maximum Pareto-front values, the chosen (balanced) solution's
//! mean, and its 95th percentile, at 1500 jobs/hour.

use qonductor_bench::{banner, mean, pct, simulation_config};
use qonductor_cloudsim::{CloudSimulation, Policy};
use qonductor_scheduler::Preference;

fn main() {
    banner(
        "Figure 8(a)/(b)",
        "Per-cycle JCT and fidelity: Pareto extremes vs chosen solution (1500 j/h, balanced weights)",
    );
    let report = CloudSimulation::with_default_fleet(simulation_config(
        Policy::Qonductor { preference: Preference::balanced() },
        1500.0,
        31,
    ))
    .run();

    println!("-- (a) JCT of scheduled jobs [s] --");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "cycle", "jobs", "min front", "max front", "chosen mean", "chosen p95"
    );
    for (i, c) in report.cycles.iter().enumerate() {
        println!(
            "{:>6} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            i + 1,
            c.num_jobs,
            c.front_min_jct_s,
            c.front_max_jct_s,
            c.chosen.mean_jct_s,
            c.chosen_p95_jct_s
        );
    }

    println!();
    println!("-- (b) Fidelity of scheduled jobs --");
    println!("{:>6} {:>12} {:>12} {:>12}", "cycle", "min front", "max front", "chosen");
    for (i, c) in report.cycles.iter().enumerate() {
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12.3}",
            i + 1,
            c.front_min_fidelity,
            c.front_max_fidelity,
            c.chosen.mean_fidelity()
        );
    }

    let chosen_jct = mean(&report.cycles.iter().map(|c| c.chosen.mean_jct_s).collect::<Vec<_>>());
    let max_jct = mean(&report.cycles.iter().map(|c| c.front_max_jct_s).collect::<Vec<_>>());
    let chosen_fid =
        mean(&report.cycles.iter().map(|c| c.chosen.mean_fidelity()).collect::<Vec<_>>());
    let max_fid = mean(&report.cycles.iter().map(|c| c.front_max_fidelity).collect::<Vec<_>>());
    println!();
    println!(
        "chosen vs max-Pareto: JCT {} lower, fidelity {} lower",
        pct((max_jct - chosen_jct) / max_jct.max(1e-9)),
        pct((max_fid - chosen_fid) / max_fid.max(1e-9))
    );
    println!("(paper: chosen mean JCT 34% lower than the max front, fidelity only 4% lower than the max)");
}
