//! Figure 9(b) — Scheduler pending-queue size over time as the workload scales
//! from 1500 to 3000 to 4500 jobs/hour.

use qonductor_bench::{banner, simulation_config};
use qonductor_cloudsim::{CloudSimulation, Policy};
use qonductor_scheduler::Preference;

fn main() {
    banner("Figure 9(b)", "Scheduler queue size vs workload (1500 / 3000 / 4500 j/h)");
    let rates = [1500.0, 3000.0, 4500.0];
    let reports: Vec<_> = rates
        .iter()
        .map(|&rate| {
            CloudSimulation::with_default_fleet(simulation_config(
                Policy::Qonductor { preference: Preference::balanced() },
                rate,
                83,
            ))
            .run()
        })
        .collect();

    print!("{:>8}", "t [s]");
    for rate in &rates {
        print!(" {:>12}", format!("{rate} j/h"));
    }
    println!();
    let len = reports.iter().map(|r| r.timeline.len()).min().unwrap_or(0);
    for i in 0..len {
        print!("{:>8.0}", reports[0].timeline[i].t_s);
        for r in &reports {
            print!(" {:>12}", r.timeline[i].scheduler_queue_len);
        }
        println!();
    }

    println!();
    for (rate, r) in rates.iter().zip(&reports) {
        let max_queue = r.timeline.iter().map(|p| p.scheduler_queue_len).max().unwrap_or(0);
        println!(
            "{} j/h: max pending queue {} jobs, scheduling cycles {}",
            rate,
            max_queue,
            r.cycles.len()
        );
    }
    println!("(paper: the scheduler remains stable at up to 3x the current IBM load; the sawtooth");
    println!(
        " drops correspond to queue-size / time-based scheduling triggers emptying the queue)"
    );
}
