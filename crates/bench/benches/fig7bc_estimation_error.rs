//! Figure 7(b)/(c) — CDFs of the fidelity-estimation error and of the
//! execution-time estimation error: Qonductor's regression estimator vs the
//! numerical calibration-product baseline, on a held-out set of job executions.

use qonductor_backend::Fleet;
use qonductor_bench::{banner, bench_scale, pct};
use qonductor_circuit::workload;
use qonductor_circuit::Algorithm;
use qonductor_estimator::{
    dataset::{generate_dataset, split, DatasetConfig},
    numerical, ResourceEstimator,
};
use qonductor_mitigation::MitigationStack;
use qonductor_transpiler::Transpiler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cdf_points(errors: &mut [f64], thresholds: &[f64]) -> Vec<f64> {
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    thresholds
        .iter()
        .map(|t| errors.iter().filter(|e| **e <= *t).count() as f64 / errors.len().max(1) as f64)
        .collect()
}

fn main() {
    banner(
        "Figure 7(b)/(c)",
        "CDF of fidelity / execution-time estimation error: regression vs numerical baseline",
    );
    let mut rng = StdRng::seed_from_u64(5);
    let fleet = Fleet::ibm_default(&mut rng);
    let records_target = ((7000.0 * bench_scale()) as usize).max(800);
    let dataset = generate_dataset(
        &fleet,
        &DatasetConfig { num_records: records_target, num_threads: 8, ..Default::default() },
        17,
    );
    let (train, test) = split(&dataset, 0.8);
    let estimator = ResourceEstimator::train(&train, 2);
    let accuracy = estimator.evaluate(&test);

    // Regression-estimator errors on the held-out set.
    let mut reg_fid_err: Vec<f64> = test
        .iter()
        .map(|r| (estimator.estimate_fidelity(&r.features) - r.fidelity).abs())
        .collect();
    let mut reg_time_err: Vec<f64> = test
        .iter()
        .map(|r| (estimator.estimate_quantum_time_s(&r.features) - r.quantum_time_s).abs())
        .collect();

    // Numerical-baseline errors: re-derive per-record circuits of matching size
    // and estimate via the calibration product (which ignores mitigation).
    let transpiler = Transpiler::default();
    let mut num_fid_err: Vec<f64> = Vec::with_capacity(test.len());
    let mut num_time_err: Vec<f64> = Vec::with_capacity(test.len());
    let mut nrng = StdRng::seed_from_u64(23);
    for r in &test {
        let member = &fleet.members()[nrng.gen_range(0..fleet.len())];
        let width = (r.features.width as u32).clamp(2, member.qpu.num_qubits());
        let alg = Algorithm::ALL[nrng.gen_range(0..Algorithm::ALL.len())];
        let mut circuit = workload::build_algorithm(alg, width, 2, &mut nrng);
        circuit.set_shots(r.features.shots as u32);
        let transpiled = transpiler.transpile_for_qpu(&circuit, &member.qpu);
        let noise = member.qpu.noise_model();
        let fid = numerical::estimate_fidelity(&transpiled.circuit, &noise);
        let time = numerical::estimate_execution_time_s(&transpiled.circuit, &noise);
        num_fid_err.push((fid - r.fidelity).abs());
        num_time_err.push((time - r.quantum_time_s).abs());
    }
    let _ = MitigationStack::none();

    let fid_thresholds = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5];
    let time_thresholds = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0];

    println!("-- (b) CDF of fidelity estimation error --");
    println!("{:>10} {:>12} {:>12}", "error ≤", "Qonductor", "Numerical");
    let reg = cdf_points(&mut reg_fid_err, &fid_thresholds);
    let num = cdf_points(&mut num_fid_err, &fid_thresholds);
    for ((t, r), n) in fid_thresholds.iter().zip(reg).zip(num) {
        println!("{:>10.2} {:>12} {:>12}", t, pct(r), pct(n));
    }

    println!();
    println!("-- (c) CDF of execution-time estimation error --");
    println!("{:>10} {:>12} {:>12}", "error ≤ s", "Qonductor", "Numerical");
    let reg = cdf_points(&mut reg_time_err, &time_thresholds);
    let num = cdf_points(&mut num_time_err, &time_thresholds);
    for ((t, r), n) in time_thresholds.iter().zip(reg).zip(num) {
        println!("{:>10.2} {:>12} {:>12}", t, pct(r), pct(n));
    }

    println!();
    println!(
        "held-out R²: fidelity {:.3}, runtime {:.3}; within-0.1 fidelity fraction {}",
        accuracy.fidelity_r2,
        accuracy.runtime_r2,
        pct(accuracy.fidelity_within_0_1)
    );
    println!(
        "(paper: ~75% of fidelity estimates within 0.1; 80% of runtime estimates within 500 ms;"
    );
    println!(" training R²: 0.976 fidelity / 0.998 runtime)");
}
