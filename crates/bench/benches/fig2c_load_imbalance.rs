//! Figure 2(c) — QPU load imbalance: pending-queue sizes per QPU across seven
//! days when users follow today's fidelity-greedy device selection.

use qonductor_backend::Fleet;
use qonductor_bench::banner;
use qonductor_cloudsim::{estimate, ArrivalConfig, LoadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("Figure 2(c)", "Pending jobs per QPU over 7 days with fidelity-greedy user behaviour");
    let mut rng = StdRng::seed_from_u64(11);
    let mut fleet = Fleet::falcon_six(&mut rng);
    // One compressed hour of arrivals stands in for each day (the imbalance
    // shape is rate-independent; see EXPERIMENTS.md).
    let mut load = LoadGenerator::new(
        ArrivalConfig { mean_rate_per_hour: 400.0, ..Default::default() },
        27,
        0.5,
    );
    let names: Vec<String> = fleet.members().iter().map(|m| m.qpu.name.clone()).collect();
    println!("{:<12} {}", "day", names.join("  "));

    let mut clock = 0.0f64;
    for day in 1..=7 {
        let apps = load.arrivals_in(clock, clock + 3600.0, &mut rng);
        for app in &apps {
            // Users pick the highest-fidelity QPU that fits (greedy behaviour).
            let mut best = None;
            let mut best_fid = -1.0;
            for (idx, member) in fleet.members().iter().enumerate() {
                if member.qpu.num_qubits() < app.circuit.num_qubits() {
                    continue;
                }
                let est = estimate(&app.circuit, &app.mitigation, &member.qpu);
                if est.fidelity > best_fid {
                    best_fid = est.fidelity;
                    best = Some((idx, est.quantum_time_s));
                }
            }
            if let Some((idx, duration)) = best {
                fleet.members_mut()[idx].queue.enqueue(app.app_id, duration.max(0.01));
            }
        }
        clock += 3600.0;
        // QPUs drain at their own pace during the "day".
        fleet.advance_to(clock, &mut rng);
        let queues: Vec<String> =
            fleet.members().iter().map(|m| format!("{:>11}", m.queue.pending_len())).collect();
        println!("day {day:<8} {}", queues.join("  "));
    }

    let pending: Vec<usize> = fleet.members().iter().map(|m| m.queue.pending_len()).collect();
    let max = *pending.iter().max().unwrap_or(&0) as f64;
    let min = *pending.iter().min().unwrap_or(&0) as f64;
    println!();
    println!("final load difference across QPUs: {:.0}x", if min > 0.0 { max / min } else { max });
    println!("(paper: up to ~100x load difference between QPUs)");
}
