//! Figure 6 — Qonductor end-to-end performance vs FCFS over one simulated hour
//! at 1500 applications/hour: (a) mean fidelity, (b) mean completion time,
//! (c) mean QPU utilization.

use qonductor_bench::{banner, pct, simulation_config};
use qonductor_cloudsim::{CloudSimulation, Policy, SimulationReport};
use qonductor_scheduler::Preference;

fn run(policy: Policy) -> SimulationReport {
    CloudSimulation::with_default_fleet(simulation_config(policy, 1500.0, 99)).run()
}

fn main() {
    banner(
        "Figure 6",
        "End-to-end fidelity / completion time / utilization, Qonductor vs FCFS (1500 apps/h)",
    );
    let qonductor = run(Policy::Qonductor { preference: Preference::balanced() });
    let fcfs = run(Policy::Fcfs);

    println!("-- (a)+(b)+(c) time series [t, mean fidelity, mean JCT (s), utilization] --");
    println!(
        "{:>7} | {:>10} {:>12} {:>8} | {:>10} {:>12} {:>8}",
        "t [s]", "Qon fid", "Qon JCT", "Qon util", "FCFS fid", "FCFS JCT", "FCFS util"
    );
    for (q, f) in qonductor.timeline.iter().zip(fcfs.timeline.iter()) {
        println!(
            "{:>7.0} | {:>10.3} {:>12.1} {:>8.2} | {:>10.3} {:>12.1} {:>8.2}",
            q.t_s,
            q.mean_fidelity,
            q.mean_completion_s,
            q.mean_utilization,
            f.mean_fidelity,
            f.mean_completion_s,
            f.mean_utilization
        );
    }

    println!();
    println!("-- summary --");
    let fid_penalty =
        (fcfs.mean_fidelity() - qonductor.mean_fidelity()) / fcfs.mean_fidelity().max(1e-9);
    let jct_gain = (fcfs.mean_completion_s() - qonductor.mean_completion_s())
        / fcfs.mean_completion_s().max(1e-9);
    let util_gain = (qonductor.mean_utilization() - fcfs.mean_utilization())
        / fcfs.mean_utilization().max(1e-9);
    println!(
        "mean fidelity     : Qonductor {:.3} vs FCFS {:.3}  (penalty {})",
        qonductor.mean_fidelity(),
        fcfs.mean_fidelity(),
        pct(fid_penalty)
    );
    println!(
        "mean completion   : Qonductor {:.1} s vs FCFS {:.1} s  (reduction {})",
        qonductor.mean_completion_s(),
        fcfs.mean_completion_s(),
        pct(jct_gain)
    );
    println!(
        "mean utilization  : Qonductor {:.2} vs FCFS {:.2}  (increase {})",
        qonductor.mean_utilization(),
        fcfs.mean_utilization(),
        pct(util_gain)
    );
    println!("(paper: <3% fidelity penalty, ~48% lower completion time, ~66% higher utilization)");
}
