//! Ablation — scheduling triggers: sweep the queue-size limit and the
//! time-based interval (§7 defaults: 100 jobs / 120 s) and report their effect
//! on mean completion time and fidelity.

use qonductor_bench::{banner, simulation_config};
use qonductor_cloudsim::{CloudSimulation, Policy};
use qonductor_scheduler::Preference;

fn main() {
    banner(
        "Ablation: scheduling triggers",
        "Queue-limit / interval sweep at 1500 j/h (paper defaults: 100 jobs, 120 s)",
    );
    println!(
        "{:>12} {:>12} {:>10} {:>14} {:>14} {:>12}",
        "queue limit", "interval [s]", "cycles", "mean JCT [s]", "mean fidelity", "utilization"
    );
    for &(queue_limit, interval_s) in
        &[(25usize, 60.0f64), (100, 120.0), (200, 240.0), (400, 480.0)]
    {
        let mut config =
            simulation_config(Policy::Qonductor { preference: Preference::balanced() }, 1500.0, 61);
        config.trigger_queue_limit = queue_limit;
        config.trigger_interval_s = interval_s;
        let report = CloudSimulation::with_default_fleet(config).run();
        println!(
            "{:>12} {:>12.0} {:>10} {:>14.1} {:>14.3} {:>12.2}",
            queue_limit,
            interval_s,
            report.cycles.len(),
            report.mean_completion_s(),
            report.mean_fidelity(),
            report.mean_utilization()
        );
    }
    println!();
    println!(
        "(design claim: small triggers schedule too eagerly on partial information; very large"
    );
    println!(" triggers delay placement — the paper's 100-job / 120-s defaults sit in between)");
}
