//! Figure 7(a) — Pareto front of the fidelity–runtime tradeoff across the
//! resource plans generated for a 20-qubit QAOA max-cut circuit.

use qonductor_backend::Fleet;
use qonductor_bench::banner;
use qonductor_circuit::generators::{qaoa_maxcut, MaxCutGraph};
use qonductor_estimator::{
    generate_candidate_plans, pareto_front, EstimationBackend, PlanGeneratorConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Figure 7(a)",
        "Resource plans for a 20-qubit QAOA max-cut circuit: estimated fidelity vs runtime",
    );
    let mut rng = StdRng::seed_from_u64(3);
    let fleet = Fleet::ibm_default(&mut rng);
    let graph = MaxCutGraph::random(20, 0.2, &mut rng);
    let circuit = qaoa_maxcut(&graph, &[0.7, 1.1], &[0.3, 0.8]);

    let plans = generate_candidate_plans(
        &circuit,
        &fleet.template_qpus(),
        EstimationBackend::Analytic,
        &PlanGeneratorConfig::default(),
    );
    let front = pareto_front(&plans);

    println!(
        "{:<28} {:>12} {:>14} {:>10}  pareto",
        "plan (stack @ model)", "est. fidelity", "runtime [s]", "cost [$]"
    );
    for plan in &plans {
        let on_front = front
            .iter()
            .any(|p| p.stack_label == plan.stack_label && p.qpu_model == plan.qpu_model);
        println!(
            "{:<28} {:>12.3} {:>14.1} {:>10.2}  {}",
            format!("{} @ {}", plan.stack_label, plan.qpu_model),
            plan.estimated_fidelity,
            plan.total_time_s(),
            plan.cost_usd,
            if on_front { "*" } else { "" }
        );
    }
    println!();
    if front.len() >= 2 {
        let best = &front[0];
        let second = &front[1];
        let runtime_gain = (best.total_time_s() - second.total_time_s()) / best.total_time_s();
        let fid_loss =
            (best.estimated_fidelity - second.estimated_fidelity) / best.estimated_fidelity;
        println!(
            "second-highest-fidelity plan: {:.1}% lower runtime for {:.1}% lower fidelity",
            runtime_gain * 100.0,
            fid_loss * 100.0
        );
        println!("(paper: 34.6% lower runtime for 3.6% lower fidelity)");
    }
}
