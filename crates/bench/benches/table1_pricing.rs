//! Table 1 — IBM Cloud pricing: price per task and per hour for standard VMs,
//! high-end VMs, and QPUs, plus the derived cost ratios that motivate key
//! idea #2 (trade cheap classical resources for expensive quantum time).

use qonductor_bench::banner;
use qonductor_estimator::cost::{table1_rows, PricingTable, ResourceClass};

fn main() {
    banner("Table 1", "IBM Cloud pricing (per task / per hour)");
    let table = PricingTable::default();
    println!("Resource Type | Price/Task     | Price/Hour");
    for row in table1_rows(&table) {
        println!("{row}");
    }
    let qpu_h = table.price(ResourceClass::Qpu).per_hour_usd;
    let hi_h = table.price(ResourceClass::HighEndVm).per_hour_usd;
    let std_h = table.price(ResourceClass::StandardVm).per_hour_usd;
    println!();
    println!("QPU-hour / high-end VM-hour ratio: {:.0}x", qpu_h / hi_h);
    println!("QPU-hour / standard VM-hour ratio: {:.0}x", qpu_h / std_h);
    println!("(paper: QPU-hours cost two orders of magnitude more than VM-hours)");
}
