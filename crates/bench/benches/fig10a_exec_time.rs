//! Figure 10(a) — Mean execution time of the scheduled quantum jobs per
//! scheduling cycle: Pareto-front extremes vs the chosen solution.

use qonductor_bench::{banner, mean, pct, simulation_config};
use qonductor_cloudsim::{CloudSimulation, Policy};
use qonductor_scheduler::Preference;

fn main() {
    banner(
        "Figure 10(a)",
        "Mean execution time of scheduled jobs per cycle (1500 j/h, balanced weights)",
    );
    let report = CloudSimulation::with_default_fleet(simulation_config(
        Policy::Qonductor { preference: Preference::balanced() },
        1500.0,
        41,
    ))
    .run();

    println!("{:>6} {:>14} {:>14} {:>14}", "cycle", "min front [s]", "max front [s]", "chosen [s]");
    for (i, c) in report.cycles.iter().enumerate() {
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>14.2}",
            i + 1,
            c.front_min_exec_s,
            c.front_max_exec_s,
            c.chosen_mean_exec_s
        );
    }
    let chosen = mean(&report.cycles.iter().map(|c| c.chosen_mean_exec_s).collect::<Vec<_>>());
    let max = mean(&report.cycles.iter().map(|c| c.front_max_exec_s).collect::<Vec<_>>());
    println!();
    println!(
        "chosen solution achieves {} lower mean execution time than the maximum Pareto front",
        pct((max - chosen) / max.max(1e-9))
    );
    println!("(paper: 63.4% lower than the maximum Pareto front)");
}
