//! Figure 2(b) — Spatial performance variance: fidelity of a 12-qubit GHZ
//! circuit on the six modelled 27-qubit IBM Falcon devices.

use qonductor_backend::{Fleet, Simulator};
use qonductor_bench::banner;
use qonductor_circuit::generators::ghz;
use qonductor_transpiler::Transpiler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("Figure 2(b)", "Fidelity of a 12-qubit GHZ circuit on six 27-qubit QPUs");
    let mut rng = StdRng::seed_from_u64(42);
    let fleet = Fleet::falcon_six(&mut rng);
    let transpiler = Transpiler::default();
    let simulator = Simulator { trajectories: 96, ..Simulator::default() };
    let circuit = ghz(12);

    let mut results: Vec<(String, f64)> = Vec::new();
    for member in fleet.members() {
        let transpiled = transpiler.transpile_for_qpu(&circuit, &member.qpu);
        let mut exec_rng = StdRng::seed_from_u64(7);
        let run = simulator.execute(&transpiled.circuit, &member.qpu.noise_model(), &mut exec_rng);
        results.push((member.qpu.name.clone(), run.fidelity));
    }

    println!("{:<16} {:>10}", "IBM QPU", "fidelity");
    for (name, fidelity) in &results {
        println!("{:<16} {:>10.2}", name, fidelity);
    }
    let best = results.iter().cloned().fold(("", 0.0_f64), |acc, (n, f)| {
        if f > acc.1 {
            (Box::leak(n.into_boxed_str()), f)
        } else {
            acc
        }
    });
    let worst = results.iter().map(|(_, f)| *f).fold(f64::INFINITY, f64::min);
    println!();
    println!(
        "best-to-worst fidelity spread: {:.0}% (best: {} at {:.2})",
        (best.1 - worst) / worst * 100.0,
        best.0,
        best.1
    );
    println!("(paper: 38% spread, auckland best at 0.72, algiers worst at 0.52)");
}
