//! # qonductor-bench
//!
//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper's evaluation (§8). Each `benches/figXX_*.rs` target is a
//! standalone harness (`harness = false`) that runs the corresponding
//! experiment and prints the same rows/series the paper reports; the
//! `micro_scheduler` target is a conventional Criterion micro-benchmark of the
//! scheduler's hot path.
//!
//! The experiment-to-target mapping is listed in `DESIGN.md` (§5) and the
//! measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.

use qonductor_cloudsim::{ArrivalConfig, Policy, SimulationConfig};
use qonductor_scheduler::{JobRequest, Nsga2Config, Preference, QpuState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Print the standard header for a figure/table harness.
pub fn banner(experiment: &str, description: &str) {
    println!("================================================================");
    println!("{experiment}: {description}");
    println!("================================================================");
}

/// Scale factor for the simulated experiments, controlled with the
/// `QONDUCTOR_BENCH_SCALE` environment variable (1.0 = paper-scale, smaller
/// values shrink the simulated duration for quick runs).
pub fn bench_scale() -> f64 {
    std::env::var("QONDUCTOR_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0 && *v <= 1.0)
        .unwrap_or(0.25)
}

/// The cloud-simulation configuration used by the end-to-end figures
/// (one simulated hour at `rate` jobs/hour, scaled by [`bench_scale`]).
pub fn simulation_config(policy: Policy, rate_per_hour: f64, seed: u64) -> SimulationConfig {
    let scale = bench_scale();
    SimulationConfig {
        duration_s: 3600.0 * scale,
        step_s: 10.0,
        arrival: ArrivalConfig { mean_rate_per_hour: rate_per_hour, ..Default::default() },
        policy,
        trigger_queue_limit: 100,
        trigger_interval_s: 120.0,
        metrics_interval_s: 60.0,
        nsga2: Nsga2Config {
            population_size: 40,
            max_generations: 40,
            max_evaluations: 8000,
            num_threads: 4,
            ..Nsga2Config::default()
        },
        seed,
        ..Default::default()
    }
}

/// Generate a synthetic batch of scheduling jobs and QPU states (used by the
/// scheduler-facing figures 9c and 10b and the ablations).
pub fn synthetic_problem(
    num_jobs: usize,
    num_qpus: usize,
    seed: u64,
) -> (Vec<JobRequest>, Vec<QpuState>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let qpus: Vec<QpuState> = (0..num_qpus)
        .map(|i| QpuState {
            name: format!("qpu{i:02}"),
            num_qubits: 27,
            waiting_time_s: rng.gen_range(0.0..600.0),
            calibration_epoch: 0,
        })
        .collect();
    let jobs: Vec<JobRequest> = (0..num_jobs)
        .map(|i| {
            let base_fid: f64 = rng.gen_range(0.55..0.95);
            JobRequest {
                job_id: i as u64,
                qubits: rng.gen_range(2..=27),
                shots: rng.gen_range(1000..8000),
                fidelity_per_qpu: (0..num_qpus)
                    .map(|_| (base_fid + rng.gen_range(-0.15..0.15)).clamp(0.05, 0.99))
                    .collect(),
                exec_time_per_qpu: (0..num_qpus).map(|_| rng.gen_range(5.0..120.0)).collect(),
            }
        })
        .collect();
    (jobs, qpus)
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The preference used when figures call for "balanced" weights.
pub fn balanced() -> Preference {
    Preference::balanced()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_bounded() {
        let s = bench_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn synthetic_problem_shapes() {
        let (jobs, qpus) = synthetic_problem(20, 4, 1);
        assert_eq!(jobs.len(), 20);
        assert_eq!(qpus.len(), 4);
        assert!(jobs.iter().all(|j| j.fidelity_per_qpu.len() == 4));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
