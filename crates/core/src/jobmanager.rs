//! The batch job manager (§7): the single execution engine shared by the
//! orchestrator and the cloud simulation.
//!
//! Quantum jobs are *submitted* into a pending pool with manager-assigned
//! monotonic ids; a [`ScheduleTrigger`] (queue-size limit or elapsed interval,
//! whichever fires first) gates every invocation of the NSGA-II + MCDM
//! scheduler; each triggered invocation schedules the whole pending pool as
//! one batch and enqueues the chosen placements onto the [`Fleet`]'s per-QPU
//! queues. Baseline policies (FCFS / least-busy) bypass the trigger with
//! [`JobManager::dispatch_direct`] but still share the same submission pool,
//! id space, and enqueue path.

use qonductor_backend::{CompletedJob, Fleet};
use qonductor_scheduler::{
    HybridScheduler, JobRequest, QpuState, ScheduleOutcome, ScheduleTrigger, TriggerReason,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Identifier of a submitted quantum job (monotonic per manager).
pub type JobId = u64;

/// Identifier of a submitting tenant (see [`crate::submission`]).
pub type TenantId = u32;

/// The tenant that jobs submitted outside the submission service belong to
/// (single-caller paths: direct [`JobManager::submit`], the orchestrator's
/// default routing, the single-tenant cloud simulation).
pub const DEFAULT_TENANT: TenantId = 0;

/// Execution-time estimate assigned to QPUs that cannot run a job (used in
/// place of non-finite estimates so the optimizer's arithmetic stays finite).
const INFEASIBLE_EXEC_S: f64 = 1e6;

/// Minimum execution duration enqueued on a QPU queue (guards against
/// zero-length jobs producing zero-time completions).
const MIN_EXEC_S: f64 = 0.001;

/// A job submission: per-QPU estimates for one circuit execution. Ids are
/// assigned by the manager on submit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Qubits the circuit needs.
    pub qubits: u32,
    /// Number of shots.
    pub shots: u32,
    /// Estimated fidelity per fleet QPU (index-aligned; 0 where infeasible).
    pub fidelity_per_qpu: Vec<f64>,
    /// Estimated execution seconds per fleet QPU (index-aligned).
    pub exec_time_per_qpu: Vec<f64>,
}

/// A job waiting in the manager's pending pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingJob {
    /// Manager-assigned id.
    pub job_id: JobId,
    /// Tenant the job belongs to ([`DEFAULT_TENANT`] for single-caller paths).
    pub tenant: TenantId,
    /// Simulated submission time.
    pub submitted_s: f64,
    /// The submission payload.
    pub spec: JobSpec,
}

/// Record of one trigger-gated batch dispatch (the unit of observability:
/// Figures 8a/8b/10a derive from these, and the orchestrator mirrors them
/// into the system monitor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Zero-based index of the batch within this manager's lifetime.
    pub batch_index: usize,
    /// Simulated time of the dispatch.
    pub t_s: f64,
    /// Why the trigger fired.
    pub reason: TriggerReason,
    /// Ids of every job handed to the scheduler, in submission order.
    pub job_ids: Vec<JobId>,
    /// Per-tenant composition of the batch: `(tenant, job count)` pairs in
    /// ascending tenant order, covering exactly the jobs in `job_ids`.
    pub tenant_jobs: Vec<(TenantId, usize)>,
    /// Fleet snapshot (name, size, estimated waiting) taken before enqueueing.
    pub qpus: Vec<QpuState>,
    /// The scheduler's full outcome (placements, Pareto front, timings).
    pub outcome: ScheduleOutcome,
}

/// A completed quantum execution drained from a fleet queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedExecution {
    /// Manager-assigned job id.
    pub job_id: JobId,
    /// Index of the QPU the job ran on.
    pub qpu_index: usize,
    /// The queue's completion record (exact enqueue/start/finish times).
    pub record: CompletedJob,
}

/// The shared batch execution engine.
#[derive(Debug, Clone)]
pub struct JobManager {
    trigger: ScheduleTrigger,
    pending: Vec<PendingJob>,
    next_job_id: JobId,
    batches_dispatched: usize,
}

impl Default for JobManager {
    fn default() -> Self {
        JobManager::new(ScheduleTrigger::default())
    }
}

impl JobManager {
    /// A manager gated by the given trigger.
    pub fn new(trigger: ScheduleTrigger) -> Self {
        JobManager { trigger, pending: Vec::new(), next_job_id: 0, batches_dispatched: 0 }
    }

    /// The gating trigger.
    pub fn trigger(&self) -> &ScheduleTrigger {
        &self.trigger
    }

    /// Number of jobs waiting in the pending pool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pending pool (submission order).
    pub fn pending(&self) -> &[PendingJob] {
        &self.pending
    }

    /// Number of batches dispatched so far.
    pub fn batches_dispatched(&self) -> usize {
        self.batches_dispatched
    }

    /// Submit a job into the pending pool, assigning the next monotonic id.
    /// The job is accounted to the [`DEFAULT_TENANT`].
    pub fn submit(&mut self, spec: JobSpec, now_s: f64) -> JobId {
        self.submit_for_tenant(spec, now_s, DEFAULT_TENANT)
    }

    /// Submit a job on behalf of a tenant (the admission path of the
    /// submission service). Ids stay monotonic across all tenants. The first
    /// pooled submission arms the trigger's interval timer, so a manager
    /// created long after the simulated epoch measures the interval from when
    /// work first appeared, not from time zero.
    pub fn submit_for_tenant(&mut self, spec: JobSpec, now_s: f64, tenant: TenantId) -> JobId {
        self.trigger.arm_if_unarmed(now_s);
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        self.pending.push(PendingJob { job_id, tenant, submitted_s: now_s, spec });
        job_id
    }

    /// Number of pooled jobs submitted at or before `now_s`. Jobs carry
    /// their own submission times, so a causally-ordered caller can ask
    /// about an instant earlier than the latest submission.
    fn pending_submitted_by(&self, now_s: f64) -> usize {
        self.pending.iter().filter(|j| j.submitted_s <= now_s).count()
    }

    /// Whether the trigger would fire now, and why. Only jobs already
    /// submitted by `now_s` count toward the queue-size limit. (Takes `&mut`
    /// because an unarmed trigger arms itself on its first non-empty check.)
    pub fn check_trigger(&mut self, now_s: f64) -> Option<TriggerReason> {
        self.trigger.check(self.pending_submitted_by(now_s), now_s)
    }

    /// Earliest simulated time at which the trigger can fire, or `None` with
    /// an empty pool: the interval expiry (but no earlier than the first
    /// pooled submission), or the instant the `queue_limit`-th job is
    /// submitted, whichever comes first. Event-driven callers advance their
    /// clock here instead of busy-stepping simulated time.
    pub fn next_trigger_s(&self) -> Option<f64> {
        if self.pending.is_empty() {
            return None;
        }
        let mut submitted: Vec<f64> = self.pending.iter().map(|j| j.submitted_s).collect();
        submitted.sort_by(f64::total_cmp);
        // An unarmed trigger arms at the first pooled submission.
        let baseline = self.trigger.last_invocation_s().unwrap_or(submitted[0]);
        let interval_fire = (baseline + self.trigger.interval_s).max(submitted[0]);
        // The queue-size path fires the instant the limit-th job is submitted.
        match submitted.get(self.trigger.queue_limit.saturating_sub(1)) {
            Some(&queue_fire) => Some(interval_fire.min(queue_fire)),
            None => Some(interval_fire),
        }
    }

    /// Run one trigger-gated scheduling cycle: if the trigger fires, schedule
    /// every job submitted by `now_s` as one batch, enqueue the chosen
    /// placements onto the fleet queues, and return the batch record. Jobs
    /// the scheduler rejects are dropped from the pool (reported in the
    /// record); jobs it leaves unplaced — and jobs with later submission
    /// times — stay pending for the next cycle.
    pub fn try_dispatch(
        &mut self,
        now_s: f64,
        scheduler: &HybridScheduler,
        fleet: &mut Fleet,
    ) -> Option<BatchRecord> {
        let reason = self.check_trigger(now_s)?;
        self.trigger.mark_invoked(now_s);

        let qpus: Vec<QpuState> = fleet
            .members()
            .iter()
            .map(|m| QpuState {
                name: m.qpu.name.clone(),
                num_qubits: m.qpu.num_qubits(),
                waiting_time_s: m.queue.estimated_waiting_s(),
            })
            .collect();
        let batch: Vec<&PendingJob> =
            self.pending.iter().filter(|j| j.submitted_s <= now_s).collect();
        let job_ids: Vec<JobId> = batch.iter().map(|j| j.job_id).collect();
        let mut tenant_counts: BTreeMap<TenantId, usize> = BTreeMap::new();
        for job in &batch {
            *tenant_counts.entry(job.tenant).or_insert(0) += 1;
        }
        let tenant_jobs: Vec<(TenantId, usize)> = tenant_counts.into_iter().collect();
        let requests: Vec<JobRequest> = batch
            .iter()
            .map(|j| JobRequest {
                job_id: j.job_id,
                qubits: j.spec.qubits,
                shots: j.spec.shots,
                fidelity_per_qpu: j
                    .spec
                    .fidelity_per_qpu
                    .iter()
                    .map(|&f| if f.is_finite() { f } else { 0.0 })
                    .collect(),
                exec_time_per_qpu: j
                    .spec
                    .exec_time_per_qpu
                    .iter()
                    .map(|&t| if t.is_finite() { t } else { INFEASIBLE_EXEC_S })
                    .collect(),
            })
            .collect();

        let outcome = scheduler.schedule(requests, qpus.clone());

        // One pass over the pool: enqueue placed jobs, drop rejected ones,
        // retain the rest (unplaced or submitted after `now_s`).
        let placement_of: HashMap<JobId, usize> =
            outcome.placements.iter().map(|p| (p.job_id, p.qpu_index)).collect();
        let rejected: HashSet<JobId> = outcome.rejected_jobs.iter().copied().collect();
        self.pending.retain(|job| {
            if let Some(&qpu_index) = placement_of.get(&job.job_id) {
                let duration = sanitized_exec_s(&job.spec, qpu_index);
                fleet.members_mut()[qpu_index].queue.enqueue(job.job_id, duration);
                false
            } else {
                !rejected.contains(&job.job_id)
            }
        });

        let batch_index = self.batches_dispatched;
        self.batches_dispatched += 1;
        Some(BatchRecord { batch_index, t_s: now_s, reason, job_ids, tenant_jobs, qpus, outcome })
    }

    /// Place one pending job directly onto a QPU queue, bypassing the trigger
    /// and the optimizer — the enqueue path of the FCFS / least-busy baseline
    /// policies. Returns `false` (leaving the job pending) if the job is not
    /// in the pool or the target QPU has no finite execution estimate (i.e.
    /// cannot run the job).
    pub fn dispatch_direct(&mut self, job_id: JobId, qpu_index: usize, fleet: &mut Fleet) -> bool {
        let Some(pos) = self.pending.iter().position(|j| j.job_id == job_id) else {
            return false;
        };
        if !self.pending[pos].spec.exec_time_per_qpu[qpu_index].is_finite() {
            return false;
        }
        let job = self.pending.remove(pos);
        let duration = sanitized_exec_s(&job.spec, qpu_index);
        fleet.members_mut()[qpu_index].queue.enqueue(job_id, duration);
        true
    }

    /// Drain completion records from every fleet queue.
    pub fn drain_completions(&mut self, fleet: &mut Fleet) -> Vec<CompletedExecution> {
        let mut completions = Vec::new();
        for (qpu_index, member) in fleet.members_mut().iter_mut().enumerate() {
            for record in member.queue.take_completed() {
                completions.push(CompletedExecution { job_id: record.job_id, qpu_index, record });
            }
        }
        completions
    }

    /// Simulated time of the earliest next job completion across the fleet,
    /// or `None` when no queue has work. Event-driven callers advance time
    /// here instead of draining every queue, so co-batched jobs complete
    /// (and unblock their submitters) as soon as they actually finish.
    pub fn next_event_s(&self, fleet: &Fleet) -> Option<f64> {
        fleet
            .members()
            .iter()
            .filter_map(|m| m.queue.next_completion_s())
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Replay one journaled batch dispatch against this manager's state
    /// without re-running the scheduler or touching a fleet: reset the
    /// interval timer, drop the placed and rejected jobs from the pool, and
    /// count the batch. Mirrors exactly the state delta of
    /// [`JobManager::try_dispatch`], so snapshot + log replay reproduces a
    /// live manager byte for byte.
    pub(crate) fn apply_batch(&mut self, t_s: f64, placed: &[(JobId, usize)], rejected: &[JobId]) {
        self.trigger.mark_invoked(t_s);
        let placed: HashSet<JobId> = placed.iter().map(|(job_id, _)| *job_id).collect();
        let rejected: HashSet<JobId> = rejected.iter().copied().collect();
        self.pending.retain(|job| !placed.contains(&job.job_id) && !rejected.contains(&job.job_id));
        self.batches_dispatched += 1;
    }

    /// Canonical byte-for-byte text encoding of the manager's full state
    /// (trigger configuration and timer, pending pool in submission order,
    /// id counters). Floats are encoded as IEEE-754 bit patterns, so
    /// `decode_state(encode_state())` reproduces the state exactly and equal
    /// encodings imply bit-identical states.
    pub fn encode_state(&self) -> String {
        use crate::replication::wire::{enc_f64, enc_opt_f64, enc_spec};
        let mut out = String::from("jm 1\n");
        out.push_str(&format!(
            "trigger {} {} {}\n",
            self.trigger.queue_limit,
            enc_f64(self.trigger.interval_s),
            enc_opt_f64(self.trigger.last_invocation_s())
        ));
        out.push_str(&format!("ids {} {}\n", self.next_job_id, self.batches_dispatched));
        for job in &self.pending {
            out.push_str(&format!(
                "job {} {} {} {}\n",
                job.job_id,
                job.tenant,
                enc_f64(job.submitted_s),
                enc_spec(&job.spec)
            ));
        }
        out
    }

    /// Decode a state produced by [`JobManager::encode_state`].
    pub fn decode_state(encoded: &str) -> Option<JobManager> {
        use crate::replication::wire::{dec_f64, dec_opt_f64, dec_spec};
        let mut lines = encoded.lines();
        if lines.next()? != "jm 1" {
            return None;
        }
        let mut trigger_line = lines.next()?.split(' ');
        if trigger_line.next()? != "trigger" {
            return None;
        }
        let queue_limit = trigger_line.next()?.parse().ok()?;
        let interval_s = dec_f64(trigger_line.next()?)?;
        let last_invocation_s = dec_opt_f64(trigger_line.next()?)?;
        let mut trigger = ScheduleTrigger::new(queue_limit, interval_s);
        if let Some(last) = last_invocation_s {
            trigger.mark_invoked(last);
        }
        let mut ids_line = lines.next()?.split(' ');
        if ids_line.next()? != "ids" {
            return None;
        }
        let next_job_id = ids_line.next()?.parse().ok()?;
        let batches_dispatched = ids_line.next()?.parse().ok()?;
        let mut pending = Vec::new();
        for line in lines {
            let mut fields = line.split(' ');
            if fields.next()? != "job" {
                return None;
            }
            pending.push(PendingJob {
                job_id: fields.next()?.parse().ok()?,
                tenant: fields.next()?.parse().ok()?,
                submitted_s: dec_f64(fields.next()?)?,
                spec: dec_spec(fields.next()?)?,
            });
        }
        Some(JobManager { trigger, pending, next_job_id, batches_dispatched })
    }
}

/// Execution duration safe to enqueue: finite, and at least [`MIN_EXEC_S`].
/// Non-finite estimates (the "cannot run here" marker) degrade to
/// [`INFEASIBLE_EXEC_S`] so simulated time can never be wedged at infinity.
fn sanitized_exec_s(spec: &JobSpec, qpu_index: usize) -> f64 {
    let exec = spec.exec_time_per_qpu[qpu_index];
    if exec.is_finite() {
        exec.max(MIN_EXEC_S)
    } else {
        INFEASIBLE_EXEC_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qonductor_scheduler::{Nsga2Config, SchedulerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet(seed: u64) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed);
        Fleet::ibm_default(&mut rng)
    }

    fn scheduler() -> HybridScheduler {
        HybridScheduler::new(SchedulerConfig {
            nsga2: Nsga2Config {
                population_size: 16,
                max_generations: 10,
                max_evaluations: 1000,
                num_threads: 1,
                ..Nsga2Config::default()
            },
            ..SchedulerConfig::default()
        })
    }

    fn spec(fleet: &Fleet, qubits: u32, exec_s: f64) -> JobSpec {
        JobSpec {
            qubits,
            shots: 1000,
            fidelity_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
                .collect(),
            exec_time_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { exec_s } else { f64::INFINITY })
                .collect(),
        }
    }

    #[test]
    fn ids_are_monotonic_and_unique() {
        let fleet = small_fleet(1);
        let mut jm = JobManager::default();
        let ids: Vec<JobId> = (0..5).map(|i| jm.submit(spec(&fleet, 5, 10.0), i as f64)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(jm.pending_len(), 5);
    }

    #[test]
    fn queue_size_trigger_dispatches_one_batch() {
        let mut fleet = small_fleet(2);
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 1e12));
        for _ in 0..3 {
            jm.submit(spec(&fleet, 5, 10.0), 0.0);
        }
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).expect("trigger must fire");
        assert_eq!(batch.reason, TriggerReason::QueueSize);
        assert_eq!(batch.job_ids.len(), 3);
        assert_eq!(batch.outcome.placements.len(), 3);
        assert_eq!(jm.pending_len(), 0);
        assert_eq!(jm.batches_dispatched(), 1);
        // The placements actually landed on queues.
        let enqueued: usize = fleet.members().iter().map(|m| m.queue.pending_len()).sum();
        assert_eq!(enqueued, 3);
    }

    #[test]
    fn below_limit_does_not_dispatch() {
        let mut fleet = small_fleet(3);
        let mut jm = JobManager::new(ScheduleTrigger::new(10, 120.0));
        jm.submit(spec(&fleet, 5, 10.0), 0.0);
        assert!(jm.try_dispatch(10.0, &scheduler(), &mut fleet).is_none());
        assert_eq!(jm.pending_len(), 1);
        // …but the interval trigger fires once the period elapses.
        let batch = jm.try_dispatch(120.0, &scheduler(), &mut fleet).expect("interval fires");
        assert_eq!(batch.reason, TriggerReason::Interval);
        // The interval timer reset on dispatch: nothing can fire before 240.
        jm.submit(spec(&fleet, 5, 10.0), 121.0);
        assert_eq!(jm.next_trigger_s(), Some(240.0));
    }

    #[test]
    fn infeasible_jobs_are_rejected_and_dropped() {
        let mut fleet = small_fleet(4);
        let mut jm = JobManager::new(ScheduleTrigger::new(2, 1e12));
        let too_big = jm.submit(spec(&fleet, 64, 10.0), 0.0);
        let ok = jm.submit(spec(&fleet, 5, 10.0), 0.0);
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).unwrap();
        assert!(batch.outcome.rejected_jobs.contains(&too_big));
        assert!(batch.outcome.placements.iter().any(|p| p.job_id == ok));
        assert_eq!(jm.pending_len(), 0, "rejected jobs must not linger in the pool");
    }

    #[test]
    fn trigger_counts_only_causally_submitted_jobs() {
        let mut fleet = small_fleet(7);
        let mut jm = JobManager::new(ScheduleTrigger::new(2, 120.0));
        jm.submit(spec(&fleet, 5, 10.0), 5.0);
        jm.submit(spec(&fleet, 5, 10.0), 300.0); // submitted far in the future
                                                 // At t=10 only one job exists causally: queue-size (2) must not fire.
        assert_eq!(jm.check_trigger(10.0), None);
        // The earliest firing is the interval expiry for the t=5 job (the
        // first submission armed the interval timer at t=5).
        assert_eq!(jm.next_trigger_s(), Some(125.0));
        let batch = jm.try_dispatch(125.0, &scheduler(), &mut fleet).expect("interval fires");
        assert_eq!(batch.reason, TriggerReason::Interval);
        assert_eq!(batch.job_ids.len(), 1, "the future submission stays pooled");
        assert_eq!(jm.pending_len(), 1);
        // Once time reaches the second submission, it becomes schedulable.
        assert_eq!(jm.next_trigger_s(), Some(300.0));
        let batch = jm.try_dispatch(300.0, &scheduler(), &mut fleet).expect("fires at submission");
        assert_eq!(batch.job_ids.len(), 1);
        assert_eq!(jm.pending_len(), 0);
    }

    /// Regression: a manager whose first submission arrives long after the
    /// simulated epoch must not interval-fire immediately — the old trigger
    /// baseline of `0.0` made `now - 0.0 ≥ interval_s` trivially true for any
    /// late-constructed system.
    #[test]
    fn late_first_submission_waits_a_full_interval() {
        let mut fleet = small_fleet(9);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 120.0));
        // System has been "up" (idle) for a long time before the first job.
        assert_eq!(jm.check_trigger(9_000.0), None);
        jm.submit(spec(&fleet, 5, 10.0), 10_000.0);
        // The interval is measured from the first submission, not from t=0.
        assert_eq!(jm.check_trigger(10_000.0), None, "must not fire on arrival");
        assert!(jm.try_dispatch(10_060.0, &scheduler(), &mut fleet).is_none());
        assert_eq!(jm.next_trigger_s(), Some(10_120.0));
        let batch =
            jm.try_dispatch(10_120.0, &scheduler(), &mut fleet).expect("one interval later");
        assert_eq!(batch.reason, TriggerReason::Interval);
        assert_eq!(batch.job_ids.len(), 1);
    }

    #[test]
    fn next_trigger_is_the_queue_limit_th_submission() {
        let fleet = small_fleet(8);
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 1000.0));
        assert_eq!(jm.next_trigger_s(), None);
        jm.submit(spec(&fleet, 5, 10.0), 10.0);
        jm.submit(spec(&fleet, 5, 10.0), 40.0);
        // Two jobs: only the interval path (armed at the first submission,
        // t=10, so it expires at 1010).
        assert_eq!(jm.next_trigger_s(), Some(1010.0));
        jm.submit(spec(&fleet, 5, 10.0), 25.0);
        // Third job submitted at 25 < 40: the limit is reached at t=40.
        assert_eq!(jm.next_trigger_s(), Some(40.0));
    }

    #[test]
    fn direct_dispatch_refuses_infeasible_qpus() {
        let mut fleet = small_fleet(6);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 1e12));
        // 20-qubit job: only the 27-qubit members have finite estimates.
        let id = jm.submit(spec(&fleet, 20, 5.0), 0.0);
        let lagos = fleet.members().iter().position(|m| m.qpu.num_qubits() == 7).unwrap();
        assert!(!jm.dispatch_direct(id, lagos, &mut fleet), "7-qubit QPU cannot run it");
        assert_eq!(jm.pending_len(), 1, "refused job stays pending");
        assert!(jm.next_event_s(&fleet).is_none(), "nothing was enqueued");
        assert!(jm.dispatch_direct(id, 0, &mut fleet));
        let event = jm.next_event_s(&fleet).expect("enqueued job is the next event");
        assert!(event.is_finite() && (event - 5.0).abs() < 1e-9);
    }

    /// State encoding roundtrips bit for bit, including an armed trigger,
    /// a non-empty pool, and non-finite estimate entries.
    #[test]
    fn state_encoding_roundtrips_bit_for_bit() {
        let mut fleet = small_fleet(11);
        let mut jm = JobManager::new(ScheduleTrigger::new(5, 90.0));
        jm.submit(spec(&fleet, 5, 10.0), 3.5);
        jm.submit_for_tenant(spec(&fleet, 20, 0.1 + 0.2), 4.25, 7);
        jm.submit(spec(&fleet, 64, 1.0), 5.0); // infeasible everywhere: ∞ estimates
        let encoded = jm.encode_state();
        let back = JobManager::decode_state(&encoded).expect("decodes");
        assert_eq!(back.encode_state(), encoded);
        assert_eq!(back.pending(), jm.pending());
        assert_eq!(back.trigger(), jm.trigger());
        // The decoded manager behaves identically: same next id, same trigger
        // arming, same dispatch behaviour.
        let mut live = jm.clone();
        let mut restored = back;
        assert_eq!(
            live.submit(spec(&fleet, 5, 1.0), 6.0),
            restored.submit(spec(&fleet, 5, 1.0), 6.0)
        );
        assert_eq!(live.next_trigger_s(), restored.next_trigger_s());
        // Replaying the journaled delta reproduces the post-dispatch state
        // without a fleet or scheduler.
        let record = live.try_dispatch(93.5, &scheduler(), &mut fleet).expect("interval fires");
        let placed: Vec<(JobId, usize)> =
            record.outcome.placements.iter().map(|p| (p.job_id, p.qpu_index)).collect();
        restored.apply_batch(93.5, &placed, &record.outcome.rejected_jobs);
        assert_eq!(restored.encode_state(), live.encode_state());
    }

    #[test]
    fn direct_dispatch_bypasses_the_trigger() {
        let mut fleet = small_fleet(5);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 1e12));
        let id = jm.submit(spec(&fleet, 5, 7.0), 0.0);
        assert!(jm.dispatch_direct(id, 0, &mut fleet));
        assert!(!jm.dispatch_direct(id, 0, &mut fleet), "already dispatched");
        assert_eq!(fleet.members()[0].queue.pending_len(), 1);
        // Completions drain with exact queue times.
        let mut rng = StdRng::seed_from_u64(9);
        let horizon = jm.next_event_s(&fleet).expect("job is enqueued");
        fleet.advance_to(horizon, &mut rng);
        let done = jm.drain_completions(&mut fleet);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].job_id, id);
        assert_eq!(done[0].qpu_index, 0);
        assert!((done[0].record.finish_time_s - 7.0).abs() < 1e-9);
    }
}
