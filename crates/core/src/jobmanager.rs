//! The batch job manager (§7): the single execution engine shared by the
//! orchestrator and the cloud simulation.
//!
//! Quantum jobs are *submitted* into a pending pool with manager-assigned
//! monotonic ids; a [`ScheduleTrigger`] (queue-size limit or elapsed interval,
//! whichever fires first) gates every invocation of the NSGA-II + MCDM
//! scheduler; each triggered invocation schedules the whole pending pool as
//! one batch and enqueues the chosen placements onto the [`Fleet`]'s per-QPU
//! queues. Baseline policies (FCFS / least-busy) bypass the trigger with
//! [`JobManager::dispatch_direct`] but still share the same submission pool,
//! id space, and enqueue path.

use qonductor_backend::{CompletedJob, Fleet};
use qonductor_scheduler::{
    partition_at_boundary, HybridScheduler, JobRequest, PlannedJob, QpuState, ScheduleOutcome,
    ScheduleTrigger, SpeculativeSchedule, TriggerReason,
};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Identifier of a submitted quantum job (monotonic per manager).
pub type JobId = u64;

/// Identifier of a submitting tenant (see [`crate::submission`]).
pub type TenantId = u32;

/// The tenant that jobs submitted outside the submission service belong to
/// (single-caller paths: direct [`JobManager::submit`], the orchestrator's
/// default routing, the single-tenant cloud simulation).
pub const DEFAULT_TENANT: TenantId = 0;

/// Execution-time estimate assigned to QPUs that cannot run a job (used in
/// place of non-finite estimates so the optimizer's arithmetic stays finite).
const INFEASIBLE_EXEC_S: f64 = 1e6;

/// Minimum execution duration enqueued on a QPU queue (guards against
/// zero-length jobs producing zero-time completions).
const MIN_EXEC_S: f64 = 0.001;

/// How the batch engine treats plans that cross a recalibration boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CalibrationPolicy {
    /// Dispatch the whole batch regardless of calibration boundaries (the
    /// pre-§7 behaviour, kept as the baseline for drift studies).
    #[default]
    Naive,
    /// Partition the planned batch timeline at each QPU's next recalibration
    /// boundary (`crossover::partition_at_boundary`, §7): jobs finishing
    /// before the boundary dispatch unchanged; straddling and post-boundary
    /// jobs return to the pending pool, held until the boundary, to be
    /// re-estimated against the new calibration snapshot and re-planned.
    SplitAtBoundary,
}

/// A job submission: per-QPU estimates for one circuit execution. Ids are
/// assigned by the manager on submit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Qubits the circuit needs.
    pub qubits: u32,
    /// Number of shots.
    pub shots: u32,
    /// Estimated fidelity per fleet QPU (index-aligned; 0 where infeasible).
    pub fidelity_per_qpu: Vec<f64>,
    /// Estimated execution seconds per fleet QPU (index-aligned).
    pub exec_time_per_qpu: Vec<f64>,
    /// Fleet calibration epoch ([`Fleet::calibration_epoch`]) the estimates
    /// were computed against; 0 for callers without an epoch clock. The
    /// engine compares it with the live epoch to find stale estimate tables.
    pub estimate_epoch: u64,
}

/// A job waiting in the manager's pending pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingJob {
    /// Manager-assigned id.
    pub job_id: JobId,
    /// Tenant the job belongs to ([`DEFAULT_TENANT`] for single-caller paths).
    pub tenant: TenantId,
    /// Simulated submission time.
    pub submitted_s: f64,
    /// Times this job was pulled out of a batch at a recalibration boundary.
    pub deferrals: u32,
    /// The job is parked until this instant (the boundary that split it out);
    /// 0 for never-deferred jobs. Held jobs do not count toward the trigger
    /// and are excluded from batches, so a split cannot re-fire the trigger
    /// at the same instant and re-plan the same jobs against the same stale
    /// estimates — unless the job's SLO slack goes negative first, in which
    /// case the hold is bypassed (see [`JobManager::schedulable_at`]).
    pub held_until_s: f64,
    /// Absolute SLO deadline (simulated seconds), `f64::INFINITY` for jobs
    /// without one. When `now + slo_margin ≥ deadline_s` the job is urgent:
    /// it fires the trigger early ([`TriggerReason::SloSlack`]) and escapes
    /// any `held_until_s` park.
    pub deadline_s: f64,
    /// The submission payload.
    pub spec: JobSpec,
}

impl PendingJob {
    /// Park this job behind a recalibration boundary: count the deferral and
    /// hold the job until the boundary instant. The two fields are only ever
    /// written together — a deferral without a hold would let the trigger
    /// re-plan the job against the same stale estimates in the same instant,
    /// and a hold without the count would unbound the deferral budget — so
    /// every park site goes through this one method.
    fn park(&mut self, boundary_s: f64) {
        self.deferrals += 1;
        self.held_until_s = boundary_s;
    }
}

/// Record of one trigger-gated batch dispatch (the unit of observability:
/// Figures 8a/8b/10a derive from these, and the orchestrator mirrors them
/// into the system monitor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Zero-based index of the batch within this manager's lifetime.
    pub batch_index: usize,
    /// Simulated time of the dispatch.
    pub t_s: f64,
    /// Why the trigger fired.
    pub reason: TriggerReason,
    /// Ids of every job handed to the scheduler, in submission order.
    pub job_ids: Vec<JobId>,
    /// Per-tenant composition of the batch: `(tenant, job count)` pairs in
    /// ascending tenant order, covering exactly the jobs in `job_ids`.
    pub tenant_jobs: Vec<(TenantId, usize)>,
    /// Fleet snapshot (name, size, estimated waiting, calibration epoch)
    /// taken before enqueueing.
    pub qpus: Vec<QpuState>,
    /// Fleet-wide calibration epoch at dispatch time.
    pub fleet_epoch: u64,
    /// Jobs pulled out of the batch because their planned execution crossed
    /// their QPU's recalibration boundary: `(job id, boundary instant)`.
    /// They stay in the pending pool, held until the boundary, for
    /// re-estimation and re-planning. Empty under
    /// [`CalibrationPolicy::Naive`].
    pub deferred: Vec<(JobId, f64)>,
    /// Whether this batch adopted a plan computed ahead of the trigger
    /// ([`JobManager::plan_ahead`]): the dispatched outcome is the
    /// speculative one, validated against the live pool digest and
    /// calibration epochs — bit-identical to what a live scheduler call at
    /// the fire instant would have produced.
    #[serde(default)]
    pub speculative: bool,
    /// The scheduler's full outcome (placements, Pareto front, timings).
    pub outcome: ScheduleOutcome,
}

impl BatchRecord {
    /// Ids of the jobs actually enqueued by this dispatch (placements minus
    /// the boundary-deferred set).
    pub fn enqueued_job_ids(&self) -> Vec<JobId> {
        let deferred: HashSet<JobId> = self.deferred.iter().map(|(id, _)| *id).collect();
        self.outcome
            .placements
            .iter()
            .map(|p| p.job_id)
            .filter(|id| !deferred.contains(id))
            .collect()
    }
}

/// A completed quantum execution drained from a fleet queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedExecution {
    /// Manager-assigned job id.
    pub job_id: JobId,
    /// Index of the QPU the job ran on.
    pub qpu_index: usize,
    /// The queue's completion record (exact enqueue/start/finish times).
    pub record: CompletedJob,
}

/// A schedule computed ahead of the trigger ([`JobManager::plan_ahead`]),
/// cached until the next firing. The digest fingerprints *every* input the
/// scheduler read — the sanitised requests, the QPU snapshot (waits and
/// calibration epochs included), and the boundary horizons when the penalty
/// is active — so an adopted plan is provably bit-identical to what a live
/// scheduler call at the fire instant would produce. Volatile by design: the
/// cache is not replicated (a failover simply discards it and the next
/// firing schedules live), only its *adoption* is journaled, via
/// [`BatchRecord::speculative`] riding the dispatch event.
#[derive(Debug, Clone)]
struct SpeculativePlan {
    /// Fingerprint of the scheduling inputs the plan was computed from.
    digest: u64,
    /// Calibration epochs of the snapshot (also covered by `digest`; kept
    /// separate so the epoch check survives any digest refactoring).
    epochs: Vec<u64>,
    /// The uncommitted schedule (outcome + would-be warm-start front).
    plan: SpeculativeSchedule,
}

/// The shared batch execution engine.
#[derive(Debug, Clone)]
pub struct JobManager {
    trigger: ScheduleTrigger,
    policy: CalibrationPolicy,
    pending: Vec<PendingJob>,
    next_job_id: JobId,
    batches_dispatched: usize,
    /// Plan-ahead cache (see [`SpeculativePlan`]); excluded from
    /// [`JobManager::encode_state`] because it is a pure performance hint.
    speculative: Option<SpeculativePlan>,
    /// Cumulative wall time spent inside live scheduler calls, for the
    /// bench's phase-timing breakdown. Pure observability: excluded from
    /// `encode_state` and never read by any control-flow decision.
    sched_ns: Cell<u64>,
}

impl Default for JobManager {
    fn default() -> Self {
        JobManager::new(ScheduleTrigger::default())
    }
}

impl JobManager {
    /// A manager gated by the given trigger (calibration-naive dispatch).
    pub fn new(trigger: ScheduleTrigger) -> Self {
        JobManager {
            trigger,
            policy: CalibrationPolicy::default(),
            pending: Vec::new(),
            next_job_id: 0,
            batches_dispatched: 0,
            speculative: None,
            sched_ns: Cell::new(0),
        }
    }

    /// The same manager with the given calibration policy (construction-time
    /// configuration, like the trigger).
    pub fn with_calibration_policy(mut self, policy: CalibrationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// How this engine treats plans that cross a recalibration boundary.
    pub fn calibration_policy(&self) -> CalibrationPolicy {
        self.policy
    }

    /// The gating trigger.
    pub fn trigger(&self) -> &ScheduleTrigger {
        &self.trigger
    }

    /// Number of jobs waiting in the pending pool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pending pool (submission order).
    pub fn pending(&self) -> &[PendingJob] {
        &self.pending
    }

    /// Number of batches dispatched so far.
    pub fn batches_dispatched(&self) -> usize {
        self.batches_dispatched
    }

    /// Cumulative nanoseconds spent in live scheduler calls (phase-timing
    /// observability; adopted speculative plans contribute nothing here).
    pub fn scheduling_nanos(&self) -> u64 {
        self.sched_ns.get()
    }

    /// Submit a job into the pending pool, assigning the next monotonic id.
    /// The job is accounted to the [`DEFAULT_TENANT`].
    pub fn submit(&mut self, spec: JobSpec, now_s: f64) -> JobId {
        self.submit_for_tenant(spec, now_s, DEFAULT_TENANT)
    }

    /// Submit a job on behalf of a tenant (the admission path of the
    /// submission service). Ids stay monotonic across all tenants. The first
    /// pooled submission arms the trigger's interval timer, so a manager
    /// created long after the simulated epoch measures the interval from when
    /// work first appeared, not from time zero.
    pub fn submit_for_tenant(&mut self, spec: JobSpec, now_s: f64, tenant: TenantId) -> JobId {
        self.submit_for_tenant_with_deadline(spec, now_s, tenant, f64::INFINITY)
    }

    /// [`Self::submit_for_tenant`] with an absolute SLO deadline: when the
    /// job's slack against `deadline_s` falls below the trigger's
    /// [`ScheduleTrigger::slo_margin_s`], the trigger fires early rather than
    /// waiting out the interval, and a boundary-parked job escapes its hold.
    pub fn submit_for_tenant_with_deadline(
        &mut self,
        spec: JobSpec,
        now_s: f64,
        tenant: TenantId,
        deadline_s: f64,
    ) -> JobId {
        self.trigger.arm_if_unarmed(now_s);
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        self.pending.push(PendingJob {
            job_id,
            tenant,
            submitted_s: now_s,
            deferrals: 0,
            held_until_s: 0.0,
            deadline_s,
            spec,
        });
        job_id
    }

    /// The instant a pending job becomes schedulable: its submission time,
    /// or the recalibration boundary it is parked behind after a split.
    fn available_s(job: &PendingJob) -> f64 {
        job.submitted_s.max(job.held_until_s)
    }

    /// Whether `job` is urgent at `now_s`: it carries a finite SLO deadline
    /// whose slack has fallen below the trigger's scheduling-latency margin.
    fn urgent_at(&self, job: &PendingJob, now_s: f64) -> bool {
        job.deadline_s.is_finite() && now_s + self.trigger.slo_margin_s >= job.deadline_s
    }

    /// Whether `job` can join a batch at `now_s`: schedulable when available
    /// (submitted, and past any boundary hold) — or, the SLO escape hatch, a
    /// *held* job whose deadline slack has gone below the margin. Waiting out
    /// `held_until_s` would silently blow the deadline, so urgency overrides
    /// the park (the deferral bookkeeping stays intact).
    fn schedulable_at(&self, job: &PendingJob, now_s: f64) -> bool {
        if Self::available_s(job) <= now_s {
            return true;
        }
        job.submitted_s <= now_s && self.urgent_at(job, now_s)
    }

    /// Number of pooled jobs schedulable at or before `now_s`. Jobs carry
    /// their own submission times, so a causally-ordered caller can ask
    /// about an instant earlier than the latest submission; boundary-held
    /// jobs do not count until the boundary passes — unless their SLO slack
    /// has gone negative, in which case the hold is bypassed.
    fn pending_available_by(&self, now_s: f64) -> usize {
        self.pending.iter().filter(|j| self.schedulable_at(j, now_s)).count()
    }

    /// Whether any schedulable job is urgent at `now_s` (feeds the trigger's
    /// SLO lane).
    fn any_urgent_by(&self, now_s: f64) -> bool {
        self.pending.iter().any(|j| j.submitted_s <= now_s && self.urgent_at(j, now_s))
    }

    /// Whether the trigger would fire now, and why. Only jobs already
    /// schedulable by `now_s` count toward the queue-size limit; any
    /// schedulable job whose deadline slack is below the margin fires the
    /// SLO lane. (Takes `&mut` because an unarmed trigger arms itself on its
    /// first non-empty check.)
    pub fn check_trigger(&mut self, now_s: f64) -> Option<TriggerReason> {
        let queue_len = self.pending_available_by(now_s);
        let urgent = self.any_urgent_by(now_s);
        self.trigger.check_with_urgency(queue_len, now_s, urgent)
    }

    /// Earliest simulated time at which the trigger can fire, or `None` with
    /// an empty pool: the interval expiry (but no earlier than the first
    /// schedulable job), the instant the `queue_limit`-th job becomes
    /// schedulable, or the instant a deadline job's slack drops below the SLO
    /// margin, whichever comes first. Boundary-held jobs become schedulable
    /// at their boundary (or when their slack runs out). Event-driven callers
    /// advance their clock here instead of busy-stepping simulated time.
    pub fn next_trigger_s(&self) -> Option<f64> {
        if self.pending.is_empty() {
            return None;
        }
        let mut available: Vec<f64> = self.pending.iter().map(Self::available_s).collect();
        available.sort_by(f64::total_cmp);
        // An unarmed trigger arms at the first pooled submission.
        let baseline = self.trigger.last_invocation_s().unwrap_or(available[0]);
        let interval_fire = (baseline + self.trigger.interval_s).max(available[0]);
        // The queue-size path fires the instant the limit-th job is available.
        let mut fire = match available.get(self.trigger.queue_limit.saturating_sub(1)) {
            Some(&queue_fire) => interval_fire.min(queue_fire),
            None => interval_fire,
        };
        // The SLO lane fires the instant a deadline job's slack hits the
        // margin (no earlier than its submission; holds do not matter — the
        // lane bypasses them).
        for job in &self.pending {
            if job.deadline_s.is_finite() {
                let slo_fire = (job.deadline_s - self.trigger.slo_margin_s).max(job.submitted_s);
                fire = fire.min(slo_fire);
            }
        }
        Some(fire)
    }

    /// Run one trigger-gated scheduling cycle: if the trigger fires, schedule
    /// every job schedulable by `now_s` as one batch, enqueue the chosen
    /// placements onto the fleet queues, and return the batch record. Jobs
    /// the scheduler rejects are dropped from the pool (reported in the
    /// record); jobs it leaves unplaced — and jobs with later submission
    /// times — stay pending for the next cycle.
    ///
    /// Under [`CalibrationPolicy::SplitAtBoundary`] the chosen plan's
    /// per-QPU timeline is partitioned at each device's next recalibration
    /// boundary first (§7): placements finishing before their QPU's boundary
    /// enqueue unchanged, while straddling and post-boundary placements are
    /// pulled out of the batch and parked in the pending pool until the
    /// boundary — reported in [`BatchRecord::deferred`] — so they can be
    /// re-estimated against the post-boundary calibration snapshot and
    /// re-planned by a later cycle.
    pub fn try_dispatch(
        &mut self,
        now_s: f64,
        scheduler: &HybridScheduler,
        fleet: &mut Fleet,
    ) -> Option<BatchRecord> {
        let reason = self.check_trigger(now_s)?;
        self.trigger.mark_invoked(now_s);

        let BatchSnapshot { qpus, job_ids, tenant_jobs, requests, horizon_s, cost_per_shot } =
            self.batch_snapshot(now_s, fleet);

        // Plan-ahead pipelining: if a speculative plan was computed while the
        // previous batch executed and its input fingerprint still matches the
        // live pool and fleet snapshot (same pool digest, same calibration
        // epochs), adopt it — the outcome is bit-identical to a live
        // scheduler call, already paid for. Any mismatch discards the plan.
        let penalized = scheduler.config().boundary_penalty_weight > 0.0;
        let costed = scheduler.config().cost_weight > 0.0;
        let digest =
            snapshot_digest(&qpus, &requests, &horizon_s, penalized, &cost_per_shot, costed);
        let live_epochs: Vec<u64> = qpus.iter().map(|q| q.calibration_epoch).collect();
        let (outcome, speculative) = match self.speculative.take() {
            Some(cached) if cached.digest == digest && cached.epochs == live_epochs => {
                scheduler.adopt(&cached.plan);
                (cached.plan.outcome, true)
            }
            _ => {
                let started = std::time::Instant::now();
                let outcome = scheduler.schedule_with_fleet_context(
                    requests,
                    qpus.clone(),
                    &horizon_s,
                    &cost_per_shot,
                );
                self.sched_ns.set(self.sched_ns.get() + started.elapsed().as_nanos() as u64);
                (outcome, false)
            }
        };

        // Calibration-crossover partition (§7): shift the planned timeline to
        // absolute time and split it at each QPU's next boundary.
        let deferred = match self.policy {
            CalibrationPolicy::Naive => Vec::new(),
            CalibrationPolicy::SplitAtBoundary => {
                // Cover the WHOLE pool, not just the jobs available at
                // `now_s`: the budget lookup below must never miss a planned
                // job and silently treat it as never-deferred.
                let deferrals_of: HashMap<JobId, u32> =
                    self.pending.iter().map(|j| (j.job_id, j.deferrals)).collect();
                split_at_boundaries(
                    &outcome.planned,
                    fleet,
                    now_s,
                    &deferrals_of,
                    scheduler.config().max_deferrals,
                )
            }
        };
        let deferred_ids: HashMap<JobId, f64> = deferred.iter().copied().collect();

        // One pass over the pool: enqueue placed jobs, park deferred ones
        // behind their boundary, drop rejected ones, retain the rest
        // (unplaced or not yet schedulable).
        let placement_of: HashMap<JobId, usize> =
            outcome.placements.iter().map(|p| (p.job_id, p.qpu_index)).collect();
        let rejected: HashSet<JobId> = outcome.rejected_jobs.iter().copied().collect();
        self.pending.retain_mut(|job| {
            if let Some(&boundary_s) = deferred_ids.get(&job.job_id) {
                job.park(boundary_s);
                true
            } else if let Some(&qpu_index) = placement_of.get(&job.job_id) {
                let duration = sanitized_exec_s(&job.spec, qpu_index);
                fleet.members_mut()[qpu_index].queue.enqueue(job.job_id, duration);
                false
            } else {
                !rejected.contains(&job.job_id)
            }
        });

        let batch_index = self.batches_dispatched;
        self.batches_dispatched += 1;
        Some(BatchRecord {
            batch_index,
            t_s: now_s,
            reason,
            job_ids,
            tenant_jobs,
            qpus,
            fleet_epoch: fleet.calibration_epoch(),
            deferred,
            speculative,
            outcome,
        })
    }

    /// Speculatively schedule the batch a trigger firing at `plan_for_s`
    /// would dispatch, from the *current* pool and fleet state, and cache the
    /// plan for the next [`JobManager::try_dispatch`]. The scheduler's warm
    /// memory is left untouched (it is only advanced if the plan is adopted),
    /// so planning ahead never perturbs the non-speculative trajectory. The
    /// trigger is not consulted or armed. Returns `true` if a plan was
    /// cached; an empty projected batch clears the cache instead.
    ///
    /// Intended to run while the previously dispatched batch executes: on the
    /// next firing the plan is validated against the live pool digest and
    /// calibration epochs, and either adopted (the optimization latency has
    /// already been paid, off the dispatch critical path) or discarded.
    pub fn plan_ahead(
        &mut self,
        plan_for_s: f64,
        scheduler: &HybridScheduler,
        fleet: &Fleet,
    ) -> bool {
        self.speculative = None;
        if self.pending_available_by(plan_for_s) == 0 {
            return false;
        }
        let BatchSnapshot { qpus, requests, horizon_s, cost_per_shot, .. } =
            self.batch_snapshot(plan_for_s, fleet);
        let penalized = scheduler.config().boundary_penalty_weight > 0.0;
        let costed = scheduler.config().cost_weight > 0.0;
        let digest =
            snapshot_digest(&qpus, &requests, &horizon_s, penalized, &cost_per_shot, costed);
        let epochs: Vec<u64> = qpus.iter().map(|q| q.calibration_epoch).collect();
        let plan = scheduler.schedule_speculative(requests, qpus, &horizon_s, &cost_per_shot);
        self.speculative = Some(SpeculativePlan { digest, epochs, plan });
        true
    }

    /// Whether a plan-ahead schedule is currently cached.
    pub fn has_speculative_plan(&self) -> bool {
        self.speculative.is_some()
    }

    /// Snapshot everything one scheduling cycle reads at `now_s`: the QPU
    /// states, the schedulable batch (ids, per-tenant composition, sanitised
    /// requests), and the per-QPU recalibration horizons. Shared by the live
    /// dispatch and the plan-ahead path so both fingerprint identical inputs.
    fn batch_snapshot(&self, now_s: f64, fleet: &Fleet) -> BatchSnapshot {
        let qpus: Vec<QpuState> = fleet
            .members()
            .iter()
            .map(|m| QpuState {
                name: m.qpu.name.clone(),
                num_qubits: m.qpu.num_qubits(),
                waiting_time_s: m.queue.estimated_waiting_s(),
                calibration_epoch: m.qpu.clock.epoch,
            })
            .collect();
        // A QPU's effective boundary is whichever comes first: its next
        // recalibration or its next scheduled maintenance window. The planner
        // routes around both with the same partition machinery.
        let horizon_s: Vec<f64> = fleet
            .members()
            .iter()
            .map(|m| {
                let boundary = match m.qpu.next_maintenance_start_after(now_s) {
                    Some(maint_s) => m.qpu.clock.next_boundary_s.min(maint_s),
                    None => m.qpu.clock.next_boundary_s,
                };
                boundary - now_s
            })
            .collect();
        let cost_per_shot: Vec<f64> = fleet.members().iter().map(|m| m.qpu.cost_per_shot).collect();
        // QPUs currently inside a maintenance window are capacity holes:
        // every request sees them as infeasible (fidelity 0, exec ∞-marker),
        // the same mask used for devices too small for a circuit.
        let in_maintenance: Vec<bool> =
            fleet.members().iter().map(|m| m.qpu.in_maintenance(now_s)).collect();
        let batch: Vec<&PendingJob> =
            self.pending.iter().filter(|j| self.schedulable_at(j, now_s)).collect();
        let job_ids: Vec<JobId> = batch.iter().map(|j| j.job_id).collect();
        let mut tenant_counts: BTreeMap<TenantId, usize> = BTreeMap::new();
        for job in &batch {
            *tenant_counts.entry(job.tenant).or_insert(0) += 1;
        }
        let tenant_jobs: Vec<(TenantId, usize)> = tenant_counts.into_iter().collect();
        // Requests are sized to the LIVE fleet, not the spec's estimate
        // table: the autoscaler can provision or retire QPUs while a job is
        // pending, leaving its table shorter (a provisioned QPU defaults to
        // infeasible until re-estimation fills it in) or longer (entries for
        // retired QPUs are dropped) than the fleet.
        let requests: Vec<JobRequest> = batch
            .iter()
            .map(|j| JobRequest {
                job_id: j.job_id,
                qubits: j.spec.qubits,
                shots: j.spec.shots,
                fidelity_per_qpu: (0..qpus.len())
                    .map(|q| {
                        let f = j.spec.fidelity_per_qpu.get(q).copied().unwrap_or(0.0);
                        if in_maintenance.get(q).copied().unwrap_or(false) || !f.is_finite() {
                            0.0
                        } else {
                            f
                        }
                    })
                    .collect(),
                exec_time_per_qpu: (0..qpus.len())
                    .map(|q| {
                        let t = j.spec.exec_time_per_qpu.get(q).copied().unwrap_or(f64::INFINITY);
                        if in_maintenance.get(q).copied().unwrap_or(false) || !t.is_finite() {
                            INFEASIBLE_EXEC_S
                        } else {
                            t
                        }
                    })
                    .collect(),
            })
            .collect();
        BatchSnapshot { qpus, job_ids, tenant_jobs, requests, horizon_s, cost_per_shot }
    }

    /// Place one pending job directly onto a QPU queue, bypassing the trigger
    /// and the optimizer — the enqueue path of the FCFS / least-busy baseline
    /// policies. Returns `false` (leaving the job pending) if the job is not
    /// in the pool or the target QPU has no finite execution estimate (i.e.
    /// cannot run the job).
    pub fn dispatch_direct(&mut self, job_id: JobId, qpu_index: usize, fleet: &mut Fleet) -> bool {
        let Some(pos) = self.pending.iter().position(|j| j.job_id == job_id) else {
            return false;
        };
        if qpu_index >= fleet.members().len()
            || !self.pending[pos]
                .spec
                .exec_time_per_qpu
                .get(qpu_index)
                .copied()
                .is_some_and(f64::is_finite)
        {
            return false;
        }
        let job = self.pending.remove(pos);
        let duration = sanitized_exec_s(&job.spec, qpu_index);
        fleet.members_mut()[qpu_index].queue.enqueue(job_id, duration);
        true
    }

    /// Drain completion records from every fleet queue.
    pub fn drain_completions(&mut self, fleet: &mut Fleet) -> Vec<CompletedExecution> {
        let mut completions = Vec::new();
        for (qpu_index, member) in fleet.members_mut().iter_mut().enumerate() {
            for record in member.queue.take_completed() {
                completions.push(CompletedExecution { job_id: record.job_id, qpu_index, record });
            }
        }
        completions
    }

    /// Simulated time of the earliest next job completion across the fleet,
    /// or `None` when no queue has work. Event-driven callers advance time
    /// here instead of draining every queue, so co-batched jobs complete
    /// (and unblock their submitters) as soon as they actually finish.
    pub fn next_event_s(&self, fleet: &Fleet) -> Option<f64> {
        fleet
            .members()
            .iter()
            .filter_map(|m| m.queue.next_completion_s())
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Jobs in the pending pool whose estimate tables were computed against
    /// an older fleet calibration epoch than `fleet_epoch` — the set a
    /// calibration-aware caller refreshes after a drift cycle.
    pub fn stale_pending(&self, fleet_epoch: u64) -> Vec<JobId> {
        self.pending
            .iter()
            .filter(|j| j.spec.estimate_epoch < fleet_epoch)
            .map(|j| j.job_id)
            .collect()
    }

    /// Replace a pending job's estimate table with one recomputed against a
    /// fresh calibration snapshot (the spec carries its own epoch stamp).
    /// Returns `false` if the job is not pending.
    pub fn reestimate(&mut self, job_id: JobId, spec: JobSpec) -> bool {
        match self.pending.iter_mut().find(|j| j.job_id == job_id) {
            Some(job) => {
                job.spec = spec;
                true
            }
            None => false,
        }
    }

    /// `true` if [`JobManager::dispatch_direct`] would succeed for this
    /// `(job, QPU)` pair — the job is pending and the QPU has a finite
    /// execution estimate. Lets a write-ahead journal validate before
    /// appending the event.
    pub fn can_dispatch_direct(&self, job_id: JobId, qpu_index: usize) -> bool {
        self.pending.iter().find(|j| j.job_id == job_id).is_some_and(|j| {
            j.spec.exec_time_per_qpu.get(qpu_index).copied().is_some_and(f64::is_finite)
        })
    }

    /// Replay one journaled batch dispatch against this manager's state
    /// without re-running the scheduler or touching a fleet: reset the
    /// interval timer, drop the placed and rejected jobs from the pool, park
    /// the boundary-deferred jobs, and count the batch. Mirrors exactly the
    /// state delta of [`JobManager::try_dispatch`], so snapshot + log replay
    /// reproduces a live manager byte for byte.
    pub(crate) fn apply_batch(
        &mut self,
        t_s: f64,
        placed: &[(JobId, usize)],
        rejected: &[JobId],
        deferred: &[(JobId, f64)],
    ) {
        self.trigger.mark_invoked(t_s);
        let deferred: HashMap<JobId, f64> = deferred.iter().copied().collect();
        let placed: HashSet<JobId> = placed.iter().map(|(job_id, _)| *job_id).collect();
        let rejected: HashSet<JobId> = rejected.iter().copied().collect();
        self.pending.retain_mut(|job| {
            if let Some(&boundary_s) = deferred.get(&job.job_id) {
                job.park(boundary_s);
                true
            } else {
                !placed.contains(&job.job_id) && !rejected.contains(&job.job_id)
            }
        });
        self.batches_dispatched += 1;
    }

    /// Replay one journaled direct dispatch: remove the job from the pool
    /// (the state delta of [`JobManager::dispatch_direct`]).
    pub(crate) fn apply_direct(&mut self, job_id: JobId) {
        self.pending.retain(|job| job.job_id != job_id);
    }

    /// Canonical byte-for-byte text encoding of the manager's full state
    /// (trigger configuration and timer, calibration policy, pending pool in
    /// submission order with deferral/hold state, id counters). Floats are
    /// encoded as IEEE-754 bit patterns, so `decode_state(encode_state())`
    /// reproduces the state exactly and equal encodings imply bit-identical
    /// states.
    pub fn encode_state(&self) -> String {
        use crate::replication::wire::{enc_f64, enc_opt_f64, enc_spec};
        let mut out = String::from("jm 3\n");
        out.push_str(&format!(
            "trigger {} {} {} {}\n",
            self.trigger.queue_limit,
            enc_f64(self.trigger.interval_s),
            enc_opt_f64(self.trigger.last_invocation_s()),
            enc_f64(self.trigger.slo_margin_s)
        ));
        out.push_str(&format!(
            "cal {}\n",
            match self.policy {
                CalibrationPolicy::Naive => "naive",
                CalibrationPolicy::SplitAtBoundary => "split",
            }
        ));
        out.push_str(&format!("ids {} {}\n", self.next_job_id, self.batches_dispatched));
        for job in &self.pending {
            out.push_str(&format!(
                "job {} {} {} {} {} {} {}\n",
                job.job_id,
                job.tenant,
                enc_f64(job.submitted_s),
                job.deferrals,
                enc_f64(job.held_until_s),
                enc_f64(job.deadline_s),
                enc_spec(&job.spec)
            ));
        }
        out
    }

    /// Decode a state produced by [`JobManager::encode_state`].
    pub fn decode_state(encoded: &str) -> Option<JobManager> {
        use crate::replication::wire::{dec_f64, dec_opt_f64, dec_spec};
        let mut lines = encoded.lines();
        if lines.next()? != "jm 3" {
            return None;
        }
        let mut trigger_line = lines.next()?.split(' ');
        if trigger_line.next()? != "trigger" {
            return None;
        }
        let queue_limit = trigger_line.next()?.parse().ok()?;
        let interval_s = dec_f64(trigger_line.next()?)?;
        let last_invocation_s = dec_opt_f64(trigger_line.next()?)?;
        let slo_margin_s = dec_f64(trigger_line.next()?)?;
        let mut trigger =
            ScheduleTrigger::new(queue_limit, interval_s).with_slo_margin(slo_margin_s);
        if let Some(last) = last_invocation_s {
            trigger.mark_invoked(last);
        }
        let mut cal_line = lines.next()?.split(' ');
        if cal_line.next()? != "cal" {
            return None;
        }
        let policy = match cal_line.next()? {
            "naive" => CalibrationPolicy::Naive,
            "split" => CalibrationPolicy::SplitAtBoundary,
            _ => return None,
        };
        let mut ids_line = lines.next()?.split(' ');
        if ids_line.next()? != "ids" {
            return None;
        }
        let next_job_id = ids_line.next()?.parse().ok()?;
        let batches_dispatched = ids_line.next()?.parse().ok()?;
        let mut pending = Vec::new();
        for line in lines {
            let mut fields = line.split(' ');
            if fields.next()? != "job" {
                return None;
            }
            pending.push(PendingJob {
                job_id: fields.next()?.parse().ok()?,
                tenant: fields.next()?.parse().ok()?,
                submitted_s: dec_f64(fields.next()?)?,
                deferrals: fields.next()?.parse().ok()?,
                held_until_s: dec_f64(fields.next()?)?,
                deadline_s: dec_f64(fields.next()?)?,
                spec: dec_spec(fields.next()?)?,
            });
            if fields.next().is_some() {
                return None;
            }
        }
        Some(JobManager {
            trigger,
            policy,
            pending,
            next_job_id,
            batches_dispatched,
            speculative: None,
            sched_ns: Cell::new(0),
        })
    }
}

/// Everything one scheduling cycle reads, snapshotted at a single instant
/// (see [`JobManager::batch_snapshot`]).
struct BatchSnapshot {
    qpus: Vec<QpuState>,
    job_ids: Vec<JobId>,
    tenant_jobs: Vec<(TenantId, usize)>,
    requests: Vec<JobRequest>,
    horizon_s: Vec<f64>,
    cost_per_shot: Vec<f64>,
}

/// FNV-1a fingerprint of a scheduling-cycle input snapshot. Covers the full
/// QPU state (name, size, queue wait bits, calibration epoch) and every
/// sanitised request field; the boundary horizons are folded in only when the
/// scheduler's penalty is active (`penalized`), and the per-QPU shot prices
/// only when the cost lane is active (`costed`), since they do not influence
/// the outcome otherwise and would needlessly invalidate plans computed for a
/// slightly different fire instant. Equal digests over these inputs mean the
/// scheduler is a pure function of equal arguments, so an adopted speculative
/// plan is bit-identical to a live call.
fn snapshot_digest(
    qpus: &[QpuState],
    requests: &[JobRequest],
    horizon_s: &[f64],
    penalized: bool,
    cost_per_shot: &[f64],
    costed: bool,
) -> u64 {
    let mut hash = crate::digest::Fnv64::new();
    {
        let mut eat = |bytes: &[u8]| hash.absorb(bytes);
        for q in qpus {
            eat(q.name.as_bytes());
            eat(&q.num_qubits.to_le_bytes());
            eat(&q.waiting_time_s.to_bits().to_le_bytes());
            eat(&q.calibration_epoch.to_le_bytes());
        }
        for r in requests {
            eat(&r.job_id.to_le_bytes());
            eat(&r.qubits.to_le_bytes());
            eat(&r.shots.to_le_bytes());
            for &f in &r.fidelity_per_qpu {
                eat(&f.to_bits().to_le_bytes());
            }
            for &t in &r.exec_time_per_qpu {
                eat(&t.to_bits().to_le_bytes());
            }
        }
        if penalized {
            for &h in horizon_s {
                eat(&h.to_bits().to_le_bytes());
            }
        }
        if costed {
            for &c in cost_per_shot {
                eat(&c.to_bits().to_le_bytes());
            }
        }
    }
    hash.value()
}

/// Partition a batch plan at the fleet's capacity boundaries (§7): the
/// scheduler's relative timeline is shifted to absolute time and each QPU's
/// planned jobs are run through [`partition_at_boundary`] against whichever
/// comes first for that QPU — its next recalibration boundary or the start of
/// its next maintenance window. Returns the `(job id, hold-until)` pairs to
/// defer — straddling and post-boundary placements — except jobs already
/// deferred `max_deferrals` times (`SchedulerConfig::max_deferrals`, paper
/// default 4), which dispatch anyway to avoid starvation behind a persistent
/// backlog. Jobs cut at a recalibration boundary are held until the boundary
/// itself; jobs cut at a maintenance window are held until the window's END,
/// since the capacity hole spans the whole window. `deferrals_of` must cover
/// every planned job; a missing entry would debit no budget.
fn split_at_boundaries(
    planned: &[PlannedJob],
    fleet: &Fleet,
    now_s: f64,
    deferrals_of: &HashMap<JobId, u32>,
    max_deferrals: u32,
) -> Vec<(JobId, f64)> {
    let mut per_qpu: BTreeMap<usize, Vec<PlannedJob>> = BTreeMap::new();
    for job in planned {
        per_qpu
            .entry(job.qpu_index)
            .or_default()
            .push(PlannedJob { start_s: job.start_s + now_s, ..*job });
    }
    let mut deferred = Vec::new();
    for (qpu_index, timeline) in per_qpu {
        let qpu = &fleet.members()[qpu_index].qpu;
        let cal_boundary_s = qpu.clock.next_boundary_s;
        let (boundary_s, hold_until_s) = match qpu.next_maintenance_start_after(now_s) {
            Some(maint_s) if maint_s < cal_boundary_s => {
                (maint_s, qpu.maintenance_end_at(maint_s).unwrap_or(maint_s))
            }
            _ => (cal_boundary_s, cal_boundary_s),
        };
        let partition = partition_at_boundary(&timeline, boundary_s);
        for job in partition.straddling.iter().chain(&partition.after) {
            if deferrals_of.get(&job.job_id).copied().unwrap_or(0) < max_deferrals {
                deferred.push((job.job_id, hold_until_s));
            }
        }
    }
    deferred.sort_unstable_by_key(|&(id, _)| id);
    deferred
}

/// Execution duration safe to enqueue: finite, and at least [`MIN_EXEC_S`].
/// Non-finite estimates (the "cannot run here" marker) degrade to
/// [`INFEASIBLE_EXEC_S`] so simulated time can never be wedged at infinity.
fn sanitized_exec_s(spec: &JobSpec, qpu_index: usize) -> f64 {
    // An estimate table shorter than the fleet (a QPU provisioned after
    // submission) reads as infeasible for the missing tail.
    let exec = spec.exec_time_per_qpu.get(qpu_index).copied().unwrap_or(f64::INFINITY);
    if exec.is_finite() {
        exec.max(MIN_EXEC_S)
    } else {
        INFEASIBLE_EXEC_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qonductor_scheduler::{Nsga2Config, SchedulerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet(seed: u64) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed);
        Fleet::ibm_default(&mut rng)
    }

    fn scheduler() -> HybridScheduler {
        HybridScheduler::new(SchedulerConfig {
            nsga2: Nsga2Config {
                population_size: 16,
                max_generations: 10,
                max_evaluations: 1000,
                num_threads: 1,
                ..Nsga2Config::default()
            },
            ..SchedulerConfig::default()
        })
    }

    fn spec(fleet: &Fleet, qubits: u32, exec_s: f64) -> JobSpec {
        JobSpec {
            qubits,
            shots: 1000,
            fidelity_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
                .collect(),
            exec_time_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { exec_s } else { f64::INFINITY })
                .collect(),
            estimate_epoch: fleet.calibration_epoch(),
        }
    }

    #[test]
    fn ids_are_monotonic_and_unique() {
        let fleet = small_fleet(1);
        let mut jm = JobManager::default();
        let ids: Vec<JobId> = (0..5).map(|i| jm.submit(spec(&fleet, 5, 10.0), i as f64)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(jm.pending_len(), 5);
    }

    #[test]
    fn queue_size_trigger_dispatches_one_batch() {
        let mut fleet = small_fleet(2);
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 1e12));
        for _ in 0..3 {
            jm.submit(spec(&fleet, 5, 10.0), 0.0);
        }
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).expect("trigger must fire");
        assert_eq!(batch.reason, TriggerReason::QueueSize);
        assert_eq!(batch.job_ids.len(), 3);
        assert_eq!(batch.outcome.placements.len(), 3);
        assert_eq!(jm.pending_len(), 0);
        assert_eq!(jm.batches_dispatched(), 1);
        // The placements actually landed on queues.
        let enqueued: usize = fleet.members().iter().map(|m| m.queue.pending_len()).sum();
        assert_eq!(enqueued, 3);
    }

    #[test]
    fn maintenance_masks_qpus_from_dispatch() {
        let mut fleet = small_fleet(21);
        // Every QPU except index 0 is down for maintenance at dispatch time.
        for member in fleet.members_mut().iter_mut().skip(1) {
            member.qpu.add_maintenance_window(0.0, 10_000.0);
        }
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 1e12));
        for _ in 0..3 {
            jm.submit(spec(&fleet, 5, 10.0), 0.0);
        }
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).expect("trigger fires");
        assert_eq!(batch.outcome.placements.len(), 3);
        assert!(
            batch.outcome.placements.iter().all(|p| p.qpu_index == 0),
            "jobs must never land on a QPU inside a maintenance window"
        );
    }

    #[test]
    fn maintenance_boundary_parks_jobs_until_window_end() {
        let mut fleet = small_fleet(22);
        // A window opening mid-execution on every QPU: planned jobs straddle
        // its start and must be parked until the window END, not its start.
        for member in fleet.members_mut().iter_mut() {
            member.qpu.add_maintenance_window(5.0, 500.0);
        }
        let mut jm = JobManager::new(ScheduleTrigger::new(1, 1e12))
            .with_calibration_policy(CalibrationPolicy::SplitAtBoundary);
        let id = jm.submit(spec(&fleet, 5, 10.0), 0.0);
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).expect("trigger fires");
        assert_eq!(batch.deferred, vec![(id, 500.0)]);
        assert_eq!(jm.pending_len(), 1, "deferred job stays pooled");
        assert_eq!(jm.pending()[0].held_until_s, 500.0);
        let enqueued: usize = fleet.members().iter().map(|m| m.queue.pending_len()).sum();
        assert_eq!(enqueued, 0, "nothing may execute into the maintenance hole");
    }

    #[test]
    fn below_limit_does_not_dispatch() {
        let mut fleet = small_fleet(3);
        let mut jm = JobManager::new(ScheduleTrigger::new(10, 120.0));
        jm.submit(spec(&fleet, 5, 10.0), 0.0);
        assert!(jm.try_dispatch(10.0, &scheduler(), &mut fleet).is_none());
        assert_eq!(jm.pending_len(), 1);
        // …but the interval trigger fires once the period elapses.
        let batch = jm.try_dispatch(120.0, &scheduler(), &mut fleet).expect("interval fires");
        assert_eq!(batch.reason, TriggerReason::Interval);
        // The interval timer reset on dispatch: nothing can fire before 240.
        jm.submit(spec(&fleet, 5, 10.0), 121.0);
        assert_eq!(jm.next_trigger_s(), Some(240.0));
    }

    #[test]
    fn infeasible_jobs_are_rejected_and_dropped() {
        let mut fleet = small_fleet(4);
        let mut jm = JobManager::new(ScheduleTrigger::new(2, 1e12));
        let too_big = jm.submit(spec(&fleet, 64, 10.0), 0.0);
        let ok = jm.submit(spec(&fleet, 5, 10.0), 0.0);
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).unwrap();
        assert!(batch.outcome.rejected_jobs.contains(&too_big));
        assert!(batch.outcome.placements.iter().any(|p| p.job_id == ok));
        assert_eq!(jm.pending_len(), 0, "rejected jobs must not linger in the pool");
    }

    #[test]
    fn trigger_counts_only_causally_submitted_jobs() {
        let mut fleet = small_fleet(7);
        let mut jm = JobManager::new(ScheduleTrigger::new(2, 120.0));
        jm.submit(spec(&fleet, 5, 10.0), 5.0);
        jm.submit(spec(&fleet, 5, 10.0), 300.0); // submitted far in the future
                                                 // At t=10 only one job exists causally: queue-size (2) must not fire.
        assert_eq!(jm.check_trigger(10.0), None);
        // The earliest firing is the interval expiry for the t=5 job (the
        // first submission armed the interval timer at t=5).
        assert_eq!(jm.next_trigger_s(), Some(125.0));
        let batch = jm.try_dispatch(125.0, &scheduler(), &mut fleet).expect("interval fires");
        assert_eq!(batch.reason, TriggerReason::Interval);
        assert_eq!(batch.job_ids.len(), 1, "the future submission stays pooled");
        assert_eq!(jm.pending_len(), 1);
        // Once time reaches the second submission, it becomes schedulable.
        assert_eq!(jm.next_trigger_s(), Some(300.0));
        let batch = jm.try_dispatch(300.0, &scheduler(), &mut fleet).expect("fires at submission");
        assert_eq!(batch.job_ids.len(), 1);
        assert_eq!(jm.pending_len(), 0);
    }

    /// The admission-aware trigger: a deadline job fires the SLO lane
    /// `slo_margin_s` before its deadline, long before the interval expiry.
    #[test]
    fn slo_deadline_fires_the_trigger_early() {
        let mut fleet = small_fleet(31);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 1e12).with_slo_margin(2.0));
        let id = jm.submit_for_tenant_with_deadline(spec(&fleet, 5, 10.0), 0.0, 0, 50.0);
        assert_eq!(jm.next_trigger_s(), Some(48.0), "fires at deadline - margin");
        assert_eq!(jm.check_trigger(47.0), None, "slack is still above the margin");
        let batch = jm.try_dispatch(48.0, &scheduler(), &mut fleet).expect("SLO lane fires");
        assert_eq!(batch.reason, TriggerReason::SloSlack);
        assert_eq!(batch.job_ids, vec![id]);
        assert_eq!(jm.pending_len(), 0);
    }

    /// Jobs without a deadline never fire the SLO lane (`INFINITY` sentinel).
    #[test]
    fn deadline_free_jobs_never_fire_the_slo_lane() {
        let fleet = small_fleet(32);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 120.0));
        jm.submit(spec(&fleet, 5, 10.0), 0.0);
        assert_eq!(jm.check_trigger(1e9), Some(TriggerReason::Interval));
        assert_eq!(jm.next_trigger_s(), Some(120.0));
    }

    /// Satellite: a job parked behind a recalibration boundary
    /// (`held_until_s`) whose deadline slack goes negative escapes the park —
    /// it surfaces to the trigger's early-fire check and rejoins the batch
    /// instead of silently blowing its SLO while waiting out the hold.
    #[test]
    fn held_job_with_exhausted_slack_escapes_its_park() {
        let mut fleet = solo_fleet(100.0, 33);
        let mut jm = JobManager::new(ScheduleTrigger::new(2, 1e12).with_slo_margin(2.0))
            .with_calibration_policy(CalibrationPolicy::SplitAtBoundary);
        // 200 s of work each against a boundary at 100: both plans cross the
        // boundary and both jobs park until 100 — but the first one's
        // deadline is at 60.
        let id = jm.submit_for_tenant_with_deadline(spec(&fleet, 5, 200.0), 0.0, 0, 60.0);
        let plain = jm.submit(spec(&fleet, 5, 200.0), 0.0);
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).expect("trigger fires");
        assert_eq!(batch.deferred.len(), 2);
        assert!(jm.pending().iter().all(|j| j.held_until_s == 100.0));
        // Without the SLO escape the next fire would be the boundary at 100;
        // with it, the slack runs out at 58 and the held job resurfaces.
        assert_eq!(jm.next_trigger_s(), Some(58.0));
        assert_eq!(jm.check_trigger(30.0), None, "held and slack still positive");
        let batch = jm.try_dispatch(58.0, &scheduler(), &mut fleet).expect("SLO lane fires");
        assert_eq!(batch.reason, TriggerReason::SloSlack);
        assert!(batch.job_ids.contains(&id), "the held job joined the batch early");
        assert!(!batch.job_ids.contains(&plain), "the deadline-free job stays parked");
    }

    /// Regression: a manager whose first submission arrives long after the
    /// simulated epoch must not interval-fire immediately — the old trigger
    /// baseline of `0.0` made `now - 0.0 ≥ interval_s` trivially true for any
    /// late-constructed system.
    #[test]
    fn late_first_submission_waits_a_full_interval() {
        let mut fleet = small_fleet(9);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 120.0));
        // System has been "up" (idle) for a long time before the first job.
        assert_eq!(jm.check_trigger(9_000.0), None);
        jm.submit(spec(&fleet, 5, 10.0), 10_000.0);
        // The interval is measured from the first submission, not from t=0.
        assert_eq!(jm.check_trigger(10_000.0), None, "must not fire on arrival");
        assert!(jm.try_dispatch(10_060.0, &scheduler(), &mut fleet).is_none());
        assert_eq!(jm.next_trigger_s(), Some(10_120.0));
        let batch =
            jm.try_dispatch(10_120.0, &scheduler(), &mut fleet).expect("one interval later");
        assert_eq!(batch.reason, TriggerReason::Interval);
        assert_eq!(batch.job_ids.len(), 1);
    }

    #[test]
    fn next_trigger_is_the_queue_limit_th_submission() {
        let fleet = small_fleet(8);
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 1000.0));
        assert_eq!(jm.next_trigger_s(), None);
        jm.submit(spec(&fleet, 5, 10.0), 10.0);
        jm.submit(spec(&fleet, 5, 10.0), 40.0);
        // Two jobs: only the interval path (armed at the first submission,
        // t=10, so it expires at 1010).
        assert_eq!(jm.next_trigger_s(), Some(1010.0));
        jm.submit(spec(&fleet, 5, 10.0), 25.0);
        // Third job submitted at 25 < 40: the limit is reached at t=40.
        assert_eq!(jm.next_trigger_s(), Some(40.0));
    }

    #[test]
    fn direct_dispatch_refuses_infeasible_qpus() {
        let mut fleet = small_fleet(6);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 1e12));
        // 20-qubit job: only the 27-qubit members have finite estimates.
        let id = jm.submit(spec(&fleet, 20, 5.0), 0.0);
        let lagos = fleet.members().iter().position(|m| m.qpu.num_qubits() == 7).unwrap();
        assert!(!jm.can_dispatch_direct(id, lagos));
        assert!(!jm.can_dispatch_direct(id, 999), "out-of-range QPU refuses, never panics");
        assert!(jm.can_dispatch_direct(id, 0));
        assert!(!jm.dispatch_direct(id, lagos, &mut fleet), "7-qubit QPU cannot run it");
        assert_eq!(jm.pending_len(), 1, "refused job stays pending");
        assert!(jm.next_event_s(&fleet).is_none(), "nothing was enqueued");
        assert!(jm.dispatch_direct(id, 0, &mut fleet));
        let event = jm.next_event_s(&fleet).expect("enqueued job is the next event");
        assert!(event.is_finite() && (event - 5.0).abs() < 1e-9);
    }

    /// State encoding roundtrips bit for bit, including an armed trigger,
    /// a non-empty pool, and non-finite estimate entries.
    #[test]
    fn state_encoding_roundtrips_bit_for_bit() {
        let mut fleet = small_fleet(11);
        let mut jm = JobManager::new(ScheduleTrigger::new(5, 90.0));
        jm.submit(spec(&fleet, 5, 10.0), 3.5);
        jm.submit_for_tenant(spec(&fleet, 20, 0.1 + 0.2), 4.25, 7);
        jm.submit(spec(&fleet, 64, 1.0), 5.0); // infeasible everywhere: ∞ estimates
        let encoded = jm.encode_state();
        let back = JobManager::decode_state(&encoded).expect("decodes");
        assert_eq!(back.encode_state(), encoded);
        assert_eq!(back.pending(), jm.pending());
        assert_eq!(back.trigger(), jm.trigger());
        // The decoded manager behaves identically: same next id, same trigger
        // arming, same dispatch behaviour.
        let mut live = jm.clone();
        let mut restored = back;
        assert_eq!(
            live.submit(spec(&fleet, 5, 1.0), 6.0),
            restored.submit(spec(&fleet, 5, 1.0), 6.0)
        );
        assert_eq!(live.next_trigger_s(), restored.next_trigger_s());
        // Replaying the journaled delta reproduces the post-dispatch state
        // without a fleet or scheduler.
        let record = live.try_dispatch(93.5, &scheduler(), &mut fleet).expect("interval fires");
        let placed: Vec<(JobId, usize)> =
            record.outcome.placements.iter().map(|p| (p.job_id, p.qpu_index)).collect();
        restored.apply_batch(93.5, &placed, &record.outcome.rejected_jobs, &record.deferred);
        assert_eq!(restored.encode_state(), live.encode_state());
    }

    /// A single-QPU fleet recalibrating every `period_s` seconds: planned
    /// timelines serialize on the one device, so boundary crossings are
    /// exactly predictable.
    fn solo_fleet(period_s: f64, seed: u64) -> Fleet {
        use qonductor_backend::{FleetMember, JobQueue, Qpu, QpuModel};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut qpu = Qpu::new("solo", QpuModel::falcon_27(), 1.0, &mut rng);
        qpu.set_calibration_period(period_s, 0.0);
        Fleet::from_members(vec![FleetMember { qpu, queue: JobQueue::new() }])
    }

    /// §7 split: jobs planned to finish before the boundary dispatch
    /// unchanged; the job whose planned execution crosses it is pulled out,
    /// parked until the boundary, and re-dispatched by a later cycle.
    #[test]
    fn split_at_boundary_defers_the_straddling_job() {
        let mut fleet = solo_fleet(100.0, 3);
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 120.0))
            .with_calibration_policy(CalibrationPolicy::SplitAtBoundary);
        assert_eq!(jm.calibration_policy(), CalibrationPolicy::SplitAtBoundary);
        let ids: Vec<JobId> = (0..3).map(|_| jm.submit(spec(&fleet, 5, 40.0), 0.0)).collect();
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).expect("trigger fires");
        // Serialized on the solo QPU: 0–40, 40–80, 80–120 — the third job
        // straddles the boundary at 100 and must be deferred.
        assert_eq!(batch.deferred, vec![(ids[2], 100.0)]);
        assert_eq!(batch.enqueued_job_ids(), vec![ids[0], ids[1]]);
        assert_eq!(batch.job_ids, ids, "the whole pool was handed to the scheduler");
        assert_eq!(fleet.members()[0].queue.pending_len(), 2, "only the before set enqueued");
        // The deferred job is parked, not rejected: it stays pending with its
        // deferral counted and cannot re-fire the trigger pre-boundary.
        assert_eq!(jm.pending_len(), 1);
        let held = &jm.pending()[0];
        assert_eq!((held.job_id, held.deferrals, held.held_until_s), (ids[2], 1, 100.0));
        assert_eq!(jm.check_trigger(50.0), None, "held jobs do not count toward the trigger");
        // The next firing is the interval expiry at 120 ≥ the boundary.
        assert_eq!(jm.next_trigger_s(), Some(120.0));
        let mut rng = StdRng::seed_from_u64(9);
        fleet.advance_to(120.0, &mut rng);
        assert_eq!(fleet.calibration_epoch(), 1, "the boundary recalibrated the device");
        let batch = jm.try_dispatch(120.0, &scheduler(), &mut fleet).expect("re-dispatch");
        // 120–160 fits before the next boundary at 200: dispatches cleanly.
        assert_eq!(batch.job_ids, vec![ids[2]]);
        assert!(batch.deferred.is_empty());
        assert_eq!(jm.pending_len(), 0);
    }

    /// A batch whose every placement crosses the boundary defers entirely —
    /// and the held pool wakes exactly at the boundary, not busy-looping at
    /// the dispatch instant.
    #[test]
    fn fully_straddling_batch_defers_everything_until_the_boundary() {
        let mut fleet = solo_fleet(100.0, 4);
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 1e12))
            .with_calibration_policy(CalibrationPolicy::SplitAtBoundary);
        let ids: Vec<JobId> = (0..3).map(|_| jm.submit(spec(&fleet, 5, 200.0), 0.0)).collect();
        let batch = jm.try_dispatch(0.0, &scheduler(), &mut fleet).expect("trigger fires");
        assert_eq!(batch.deferred.len(), 3);
        assert!(batch.enqueued_job_ids().is_empty());
        assert_eq!(jm.pending_len(), 3);
        // No same-instant re-fire: the queue-size path next fires when the
        // third held job becomes available again — at the boundary.
        assert_eq!(jm.check_trigger(0.0), None);
        assert_eq!(jm.next_trigger_s(), Some(100.0));
        let _ = ids;
    }

    /// The deferral budget bounds starvation: after
    /// `SchedulerConfig::max_deferrals` splits a job dispatches even though
    /// its plan still crosses a boundary.
    #[test]
    fn deferral_budget_eventually_dispatches_a_perpetually_straddling_job() {
        let mut fleet = solo_fleet(100.0, 5);
        let mut jm = JobManager::new(ScheduleTrigger::new(1, 1e12))
            .with_calibration_policy(CalibrationPolicy::SplitAtBoundary);
        // 500 s of work on a 100 s calibration period: every plan crosses.
        let id = jm.submit(spec(&fleet, 5, 500.0), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut dispatched_at = None;
        for _ in 0..8 {
            let Some(t) = jm.next_trigger_s() else { break };
            fleet.advance_to(t, &mut rng);
            let batch = jm.try_dispatch(t, &scheduler(), &mut fleet).expect("fires");
            if batch.deferred.is_empty() {
                dispatched_at = Some(t);
                break;
            }
        }
        dispatched_at.expect("the deferral budget must force a dispatch");
        assert_eq!(fleet.members()[0].queue.pending_len(), 1, "job {id} was enqueued");
        assert_eq!(jm.pending_len(), 0, "the pool drained");
    }

    /// `max_deferrals` is a live `SchedulerConfig` knob, not a hidden const:
    /// a zero budget disables boundary deferral entirely — the straddling
    /// batch from `fully_straddling_batch_defers_everything_until_the_boundary`
    /// dispatches on the first cycle instead.
    #[test]
    fn zero_deferral_budget_disables_boundary_parking() {
        let mut fleet = solo_fleet(100.0, 4);
        let mut jm = JobManager::new(ScheduleTrigger::new(3, 1e12))
            .with_calibration_policy(CalibrationPolicy::SplitAtBoundary);
        for _ in 0..3 {
            jm.submit(spec(&fleet, 5, 200.0), 0.0);
        }
        let sched =
            HybridScheduler::new(SchedulerConfig { max_deferrals: 0, ..*scheduler().config() });
        let batch = jm.try_dispatch(0.0, &sched, &mut fleet).expect("trigger fires");
        assert!(batch.deferred.is_empty(), "a zero budget parks nothing");
        assert_eq!(batch.enqueued_job_ids().len(), 3);
        assert_eq!(jm.pending_len(), 0);
    }

    /// Re-estimation: stale pending specs are found by epoch comparison and
    /// replaced in place.
    #[test]
    fn stale_pending_jobs_are_found_and_reestimated() {
        let fleet = solo_fleet(100.0, 6);
        let mut jm = JobManager::new(ScheduleTrigger::new(10, 1e12));
        let id = jm.submit(spec(&fleet, 5, 10.0), 0.0); // estimate_epoch = 0
        assert!(jm.stale_pending(0).is_empty(), "epoch 0 estimates are current at epoch 0");
        assert_eq!(jm.stale_pending(1), vec![id]);
        let fresh = JobSpec { estimate_epoch: 1, ..spec(&fleet, 5, 12.0) };
        assert!(jm.reestimate(id, fresh.clone()));
        assert!(jm.stale_pending(1).is_empty());
        assert_eq!(jm.pending()[0].spec, fresh);
        assert!(!jm.reestimate(999, fresh), "unknown jobs are refused");
    }

    /// Plan-ahead pipelining: with nothing changing between planning and the
    /// firing, the cached plan is adopted and the dispatch is bit-identical
    /// to the live-scheduled path (same placements, same post-dispatch
    /// state) — only the `speculative` observability flag differs.
    #[test]
    fn adopted_plan_matches_the_live_dispatch_bit_for_bit() {
        let fleet = small_fleet(21);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 120.0));
        for _ in 0..6 {
            jm.submit(spec(&fleet, 5, 10.0), 0.0);
        }
        let sched = scheduler();

        let mut live_fleet = fleet.clone();
        let mut live_jm = jm.clone();
        let live = live_jm.try_dispatch(120.0, &sched, &mut live_fleet).expect("interval fires");
        assert!(!live.speculative);

        let mut pipe_fleet = fleet.clone();
        assert!(jm.plan_ahead(120.0, &sched, &pipe_fleet), "non-empty pool caches a plan");
        assert!(jm.has_speculative_plan());
        let adopted = jm.try_dispatch(120.0, &sched, &mut pipe_fleet).expect("interval fires");
        assert!(adopted.speculative, "unchanged inputs must adopt the cached plan");
        assert!(!jm.has_speculative_plan(), "the cache is consumed at the firing");

        assert_eq!(adopted.outcome.placements, live.outcome.placements);
        assert_eq!(adopted.outcome.rejected_jobs, live.outcome.rejected_jobs);
        assert_eq!(adopted.outcome.planned, live.outcome.planned);
        assert_eq!(adopted.deferred, live.deferred);
        assert_eq!(jm.encode_state(), live_jm.encode_state());
        for (a, b) in pipe_fleet.members().iter().zip(live_fleet.members()) {
            assert_eq!(a.queue.pending_len(), b.queue.pending_len());
        }
    }

    /// A job arriving between planning and the firing changes the pool
    /// digest: the stale plan is discarded and the cycle schedules live over
    /// the real pool (which includes the newcomer).
    #[test]
    fn plan_is_discarded_when_the_pool_changes() {
        let mut fleet = small_fleet(22);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 120.0));
        for _ in 0..3 {
            jm.submit(spec(&fleet, 5, 10.0), 0.0);
        }
        let sched = scheduler();
        assert!(jm.plan_ahead(120.0, &sched, &fleet));
        let late = jm.submit(spec(&fleet, 5, 10.0), 1.0);
        let batch = jm.try_dispatch(120.0, &sched, &mut fleet).expect("interval fires");
        assert!(!batch.speculative, "a changed pool must invalidate the plan");
        assert!(!jm.has_speculative_plan());
        assert!(batch.job_ids.contains(&late), "the late arrival joins the live batch");
    }

    /// A recalibration between planning and the firing bumps the epochs the
    /// plan was computed against: the plan is discarded even though the job
    /// pool itself is unchanged.
    #[test]
    fn plan_is_discarded_when_calibration_epochs_change() {
        let mut fleet = solo_fleet(100.0, 23);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 120.0));
        jm.submit(spec(&fleet, 5, 10.0), 0.0);
        let sched = scheduler();
        assert!(jm.plan_ahead(120.0, &sched, &fleet), "planned against epoch 0");
        let mut rng = StdRng::seed_from_u64(5);
        fleet.advance_to(120.0, &mut rng);
        assert_eq!(fleet.calibration_epoch(), 1);
        let batch = jm.try_dispatch(120.0, &sched, &mut fleet).expect("interval fires");
        assert!(!batch.speculative, "a recalibration must invalidate the plan");
    }

    /// Warm-start transactionality: adopting a plan commits the same Pareto
    /// front a live cycle would have remembered, and a *discarded* plan
    /// leaves the warm memory untouched — the next cycle behaves exactly as
    /// if the speculation never happened.
    #[test]
    fn speculation_is_transactional_for_warm_start_memory() {
        let nsga2 = Nsga2Config {
            population_size: 16,
            max_generations: 10,
            max_evaluations: 1000,
            num_threads: 1,
            ..Nsga2Config::default()
        };
        let mk = || {
            HybridScheduler::with_warm_start(SchedulerConfig {
                nsga2,
                ..SchedulerConfig::default()
            })
        };
        let fleet = small_fleet(24);
        let mut arms = Vec::new();
        // Arm 0: fully live. Arm 1: cycle 1 adopted from a plan. Arm 2: a
        // speculative plan is computed but invalidated before cycle 2.
        for arm in 0..3u32 {
            let sched = mk();
            let mut f = fleet.clone();
            let mut jm = JobManager::new(ScheduleTrigger::new(100, 60.0));
            for _ in 0..5 {
                jm.submit(spec(&f, 5, 10.0), 0.0);
            }
            if arm == 1 {
                assert!(jm.plan_ahead(60.0, &sched, &f));
            }
            let c1 = jm.try_dispatch(60.0, &sched, &mut f).expect("cycle 1 fires");
            assert_eq!(c1.speculative, arm == 1);
            for _ in 0..4 {
                jm.submit(spec(&f, 5, 10.0), 61.0);
            }
            if arm == 2 {
                // Plan over 4 jobs; the fifth arrival below invalidates it.
                assert!(jm.plan_ahead(120.0, &sched, &f));
            }
            jm.submit(spec(&f, 5, 10.0), 62.0);
            let c2 = jm.try_dispatch(120.0, &sched, &mut f).expect("cycle 2 fires");
            assert!(!c2.speculative);
            arms.push((c1.outcome.placements.clone(), c2.outcome.placements.clone()));
        }
        assert_eq!(arms[0], arms[1], "adoption must commit the same warm front as a live cycle");
        assert_eq!(arms[0], arms[2], "a discarded plan must leave warm memory untouched");
    }

    #[test]
    fn direct_dispatch_bypasses_the_trigger() {
        let mut fleet = small_fleet(5);
        let mut jm = JobManager::new(ScheduleTrigger::new(100, 1e12));
        let id = jm.submit(spec(&fleet, 5, 7.0), 0.0);
        assert!(jm.dispatch_direct(id, 0, &mut fleet));
        assert!(!jm.dispatch_direct(id, 0, &mut fleet), "already dispatched");
        assert_eq!(fleet.members()[0].queue.pending_len(), 1);
        // Completions drain with exact queue times.
        let mut rng = StdRng::seed_from_u64(9);
        let horizon = jm.next_event_s(&fleet).expect("job is enqueued");
        fleet.advance_to(horizon, &mut rng);
        let done = jm.drain_completions(&mut fleet);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].job_id, id);
        assert_eq!(done[0].qpu_index, 0);
        assert!((done[0].record.finish_time_s - 7.0).abs() < 1e-9);
    }
}
