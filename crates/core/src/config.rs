//! Deployment / execution configuration (the Listing-1 YAML analogue): per-step
//! resource requests (GPUs, QPU count, minimum qubits) and execution
//! preferences (objective priority, preferred QPU models).

use qonductor_scheduler::Preference;
use serde::{Deserialize, Serialize};

/// Resource requests of one workflow container/step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ResourceLimits {
    /// Requested GPUs (`nvidia.com/gpu` in Listing 1).
    pub gpus: u32,
    /// Requested vCPUs.
    pub cpus: u32,
    /// Requested memory in GB.
    pub memory_gb: u32,
    /// Requested QPUs (`quantum.ibm.com/qpu` in Listing 1).
    pub qpus: u32,
    /// Minimum QPU size in qubits (`qubits: 20` in Listing 1).
    pub min_qubits: u32,
}

/// Objective priority of the execution (consumed by the scheduler's MCDM stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Priority {
    /// Balance fidelity and JCT (the default).
    #[default]
    Balanced,
    /// Prioritise fidelity.
    Fidelity,
    /// Prioritise low completion time.
    CompletionTime,
}

impl Priority {
    /// The MCDM preference vector of this priority.
    pub fn preference(&self) -> Preference {
        match self {
            Priority::Balanced => Preference::balanced(),
            Priority::Fidelity => Preference::fidelity_first(),
            Priority::CompletionTime => Preference::jct_first(),
        }
    }
}

/// Deployment configuration of a hybrid workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Resource limits of the classical steps.
    pub classical: ResourceLimits,
    /// Resource limits of the quantum steps.
    pub quantum: ResourceLimits,
    /// Objective priority.
    pub priority: Priority,
    /// Preferred QPU models (empty = any).
    pub preferred_models: Vec<String>,
    /// Number of resource plans requested from the estimator.
    pub num_resource_plans: usize,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            classical: ResourceLimits { cpus: 4, memory_gb: 8, ..Default::default() },
            quantum: ResourceLimits { qpus: 1, min_qubits: 0, ..Default::default() },
            priority: Priority::Balanced,
            preferred_models: vec![],
            num_resource_plans: 3,
        }
    }
}

impl DeploymentConfig {
    /// Parse a minimal `key: value` configuration format covering the fields of
    /// Listing 1 (one entry per line; unknown keys are ignored). Supported keys:
    /// `gpus`, `cpus`, `memory_gb`, `qpus`, `qubits`, `priority`
    /// (`balanced`/`fidelity`/`jct`), `model` (repeatable), `plans`.
    pub fn parse(text: &str) -> DeploymentConfig {
        let mut config = DeploymentConfig::default();
        for line in text.lines() {
            let line = line.trim();
            let Some((key, value)) = line.split_once(':') else { continue };
            let key = key.trim().trim_start_matches('-').trim();
            let value = value.trim();
            match key {
                "gpus" => config.classical.gpus = value.parse().unwrap_or(0),
                "cpus" => config.classical.cpus = value.parse().unwrap_or(4),
                "memory_gb" => config.classical.memory_gb = value.parse().unwrap_or(8),
                "qpus" => config.quantum.qpus = value.parse().unwrap_or(1),
                "qubits" => config.quantum.min_qubits = value.parse().unwrap_or(0),
                "plans" => config.num_resource_plans = value.parse().unwrap_or(3),
                "priority" => {
                    config.priority = match value {
                        "fidelity" => Priority::Fidelity,
                        "jct" | "completion_time" => Priority::CompletionTime,
                        _ => Priority::Balanced,
                    }
                }
                "model" => config.preferred_models.push(value.to_string()),
                _ => {}
            }
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_requests_one_qpu() {
        let c = DeploymentConfig::default();
        assert_eq!(c.quantum.qpus, 1);
        assert_eq!(c.num_resource_plans, 3);
        assert_eq!(c.priority, Priority::Balanced);
    }

    #[test]
    fn parse_listing1_style_config() {
        let text = "
            gpus: 1
            cpus: 16
            memory_gb: 64
            qpus: 1
            qubits: 20
            priority: jct
            model: falcon-r5.11
            plans: 5
        ";
        let c = DeploymentConfig::parse(text);
        assert_eq!(c.classical.gpus, 1);
        assert_eq!(c.classical.cpus, 16);
        assert_eq!(c.quantum.min_qubits, 20);
        assert_eq!(c.priority, Priority::CompletionTime);
        assert_eq!(c.preferred_models, vec!["falcon-r5.11".to_string()]);
        assert_eq!(c.num_resource_plans, 5);
    }

    #[test]
    fn unknown_keys_and_garbage_are_ignored() {
        let c = DeploymentConfig::parse("nonsense\nfoo: bar\nqubits: 12");
        assert_eq!(c.quantum.min_qubits, 12);
        assert_eq!(c.classical.gpus, 0);
    }

    #[test]
    fn priorities_map_to_preferences() {
        assert_eq!(Priority::Balanced.preference(), Preference::balanced());
        assert!(Priority::Fidelity.preference().fidelity_weight > 0.5);
        assert!(Priority::CompletionTime.preference().jct_weight > 0.5);
    }
}
