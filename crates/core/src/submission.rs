//! Tenant-aware, non-blocking job submission (the "cloud" entry point of the
//! batch engine): independent clients register as tenants, [`submit`] enqueues
//! a job into the tenant's FIFO queue and returns a [`JobTicket`] immediately,
//! and a weighted-fair admission step ([`admit`]) drains the tenant queues
//! into the [`JobManager`]'s pending pool with deficit round-robin by tenant
//! weight — so many independent clients amortize one NSGA-II run per batch
//! while a chatty tenant cannot monopolize it.
//!
//! Admission respects two caps: a per-tenant in-flight limit (admitted but not
//! yet completed) and the engine's queue-size trigger limit as the pool
//! capacity, which bounds every dispatched batch at the trigger limit. Jobs the
//! scheduler rejects are returned to the *front* of their tenant's queue with a
//! bounded retry budget ([`note_batch`]); once the budget is exhausted the
//! terminal rejection is visible through [`poll`] instead of the job being
//! silently lost.
//!
//! [`submit`]: SubmissionService::submit
//! [`admit`]: SubmissionService::admit
//! [`note_batch`]: SubmissionService::note_batch
//! [`poll`]: SubmissionService::poll

use crate::jobmanager::{BatchRecord, CompletedExecution, JobId, JobManager, JobSpec, TenantId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Identifier of a submitted ticket (monotonic across all tenants).
pub type TicketId = u64;

/// Per-tenant admission configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Deficit-round-robin weight: jobs admitted per round are proportional
    /// to this (minimum 1).
    pub weight: u32,
    /// Maximum number of admitted-but-not-completed jobs (minimum 1).
    pub max_in_flight: usize,
    /// How many times a scheduler-rejected job is re-queued before the
    /// rejection becomes terminal (0 = fail on first rejection).
    pub max_retries: u32,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig { weight: 1, max_in_flight: 256, max_retries: 1 }
    }
}

impl TenantConfig {
    /// A configuration with the given weight and the default caps.
    pub fn weighted(weight: u32) -> Self {
        TenantConfig { weight, ..TenantConfig::default() }
    }
}

/// Handle returned by [`SubmissionService::submit`]; pass it to
/// [`SubmissionService::poll`] to observe the job's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobTicket {
    /// The tenant the job was submitted under.
    pub tenant: TenantId,
    /// Service-assigned ticket id (monotonic across tenants).
    pub ticket: TicketId,
}

/// Observable lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TicketStatus {
    /// Waiting in the tenant's FIFO queue for admission.
    Queued {
        /// Zero-based position from the queue head.
        position: usize,
        /// Scheduler rejections suffered so far (re-queued for retry).
        attempts: u32,
    },
    /// Admitted into the batch engine (pending pool or a QPU queue).
    Admitted {
        /// The engine-assigned job id.
        job_id: JobId,
    },
    /// Execution finished.
    Completed {
        /// The engine-assigned job id.
        job_id: JobId,
        /// Index of the QPU the job ran on.
        qpu_index: usize,
        /// Submission-to-execution-start wait (seconds).
        waiting_s: f64,
        /// Submission-to-finish turnaround (seconds).
        turnaround_s: f64,
    },
    /// Terminally rejected by the scheduler after exhausting the retry budget.
    Rejected {
        /// Total scheduler rejections (always `max_retries + 1`).
        attempts: u32,
    },
}

/// Errors surfaced by the submission API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmissionError {
    /// The tenant was never registered.
    UnknownTenant(TenantId),
}

/// Point-in-time per-tenant accounting (also persisted via the
/// [`crate::monitor::SystemMonitor`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant's DRR weight.
    pub weight: u32,
    /// Tickets ever submitted.
    pub submitted: u64,
    /// Admission events (re-admissions after a rejection count again).
    pub admitted: u64,
    /// Tickets that completed execution.
    pub completed: u64,
    /// Tickets terminally rejected.
    pub rejected: u64,
    /// Tickets currently waiting in the tenant queue.
    pub queued: usize,
    /// Tickets admitted but not yet completed.
    pub in_flight: usize,
    /// Mean submission-to-admission wait over all admission events (seconds).
    pub mean_queue_wait_s: f64,
    /// Mean submission-to-finish turnaround over completed tickets (seconds).
    pub mean_turnaround_s: f64,
}

/// Where a ticket currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TicketState {
    Queued,
    Admitted { job_id: JobId },
    Completed { job_id: JobId, qpu_index: usize, waiting_s: f64, turnaround_s: f64 },
    Rejected,
}

/// Full per-ticket record (the spec is kept so rejected jobs can re-enter the
/// tenant queue without the engine keeping them).
#[derive(Debug, Clone)]
struct TicketRecord {
    tenant: TenantId,
    submitted_s: f64,
    attempts: u32,
    spec: JobSpec,
    state: TicketState,
}

/// Per-tenant queue, DRR state, and counters.
#[derive(Debug, Clone)]
struct TenantState {
    config: TenantConfig,
    queue: VecDeque<TicketId>,
    deficit: u64,
    in_flight: usize,
    submitted: u64,
    admitted: u64,
    completed: u64,
    rejected: u64,
    queue_wait_total_s: f64,
    turnaround_total_s: f64,
}

impl TenantState {
    fn new(config: TenantConfig) -> Self {
        TenantState {
            config: TenantConfig {
                weight: config.weight.max(1),
                max_in_flight: config.max_in_flight.max(1),
                max_retries: config.max_retries,
            },
            queue: VecDeque::new(),
            deficit: 0,
            in_flight: 0,
            submitted: 0,
            admitted: 0,
            completed: 0,
            rejected: 0,
            queue_wait_total_s: 0.0,
            turnaround_total_s: 0.0,
        }
    }

    fn stats(&self) -> TenantStats {
        TenantStats {
            weight: self.config.weight,
            submitted: self.submitted,
            admitted: self.admitted,
            completed: self.completed,
            rejected: self.rejected,
            queued: self.queue.len(),
            in_flight: self.in_flight,
            mean_queue_wait_s: if self.admitted == 0 {
                0.0
            } else {
                self.queue_wait_total_s / self.admitted as f64
            },
            mean_turnaround_s: if self.completed == 0 {
                0.0
            } else {
                self.turnaround_total_s / self.completed as f64
            },
        }
    }
}

/// The tenant-aware submission front-end of the batch engine.
#[derive(Debug, Clone, Default)]
pub struct SubmissionService {
    tenants: BTreeMap<TenantId, TenantState>,
    next_tenant_id: TenantId,
    next_ticket_id: TicketId,
    tickets: HashMap<TicketId, TicketRecord>,
    job_to_ticket: HashMap<JobId, TicketId>,
    /// Rotates the DRR starting tenant so pool-capacity cutoffs do not
    /// systematically favor low tenant ids.
    rr_start: usize,
}

impl SubmissionService {
    /// An empty service with no tenants.
    pub fn new() -> Self {
        SubmissionService::default()
    }

    /// Register a tenant with the given DRR weight (and default caps).
    /// Returns the new tenant's id.
    pub fn register_tenant(&mut self, weight: u32) -> TenantId {
        self.register_tenant_with(TenantConfig::weighted(weight))
    }

    /// Register a tenant with an explicit configuration.
    pub fn register_tenant_with(&mut self, config: TenantConfig) -> TenantId {
        let id = self.next_tenant_id;
        self.next_tenant_id += 1;
        self.tenants.insert(id, TenantState::new(config));
        id
    }

    /// All registered tenant ids, ascending.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// Every tenant's (clamped) admission configuration, ascending by id —
    /// enough to re-register the same tenant population elsewhere, since ids
    /// are assigned sequentially and tenants are never removed.
    pub fn tenant_configs(&self) -> Vec<(TenantId, TenantConfig)> {
        self.tenants.iter().map(|(&id, state)| (id, state.config)).collect()
    }

    /// Non-blocking submission: enqueue a job spec into the tenant's FIFO
    /// queue and return a ticket immediately. The job enters the batch engine
    /// only when a later [`Self::admit`] pass selects it.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        spec: JobSpec,
        now_s: f64,
    ) -> Result<JobTicket, SubmissionError> {
        let state = self.tenants.get_mut(&tenant).ok_or(SubmissionError::UnknownTenant(tenant))?;
        let ticket = self.next_ticket_id;
        self.next_ticket_id += 1;
        state.submitted += 1;
        state.queue.push_back(ticket);
        self.tickets.insert(
            ticket,
            TicketRecord {
                tenant,
                submitted_s: now_s,
                attempts: 0,
                spec,
                state: TicketState::Queued,
            },
        );
        Ok(JobTicket { tenant, ticket })
    }

    /// Observe a ticket's progress. `None` for tickets this service never
    /// issued — including handles whose `tenant` does not match the tenant
    /// the ticket was actually issued to (one tenant's handle can never read
    /// another tenant's job status).
    pub fn poll(&self, ticket: JobTicket) -> Option<TicketStatus> {
        let record = self.tickets.get(&ticket.ticket)?;
        if record.tenant != ticket.tenant {
            return None;
        }
        Some(match record.state {
            TicketState::Queued => TicketStatus::Queued {
                position: self
                    .tenants
                    .get(&record.tenant)
                    .and_then(|t| t.queue.iter().position(|&id| id == ticket.ticket))
                    .unwrap_or(0),
                attempts: record.attempts,
            },
            TicketState::Admitted { job_id } => TicketStatus::Admitted { job_id },
            TicketState::Completed { job_id, qpu_index, waiting_s, turnaround_s } => {
                TicketStatus::Completed { job_id, qpu_index, waiting_s, turnaround_s }
            }
            TicketState::Rejected => TicketStatus::Rejected { attempts: record.attempts },
        })
    }

    /// Weighted-fair admission: drain the tenant queues into the engine's
    /// pending pool by deficit round-robin (quantum = tenant weight, unit job
    /// cost), stopping at the per-tenant in-flight caps and at the engine's
    /// queue-size trigger limit — the pool capacity — so no dispatched batch
    /// can exceed the trigger limit. Unspent deficits carry over to the next
    /// pass, and the round-robin starting tenant rotates per pass, so
    /// capacity cutoffs even out across batches. Returns the admitted
    /// `(ticket, job id)` pairs in admission order.
    ///
    /// Boundary-deferred jobs (parked in the pool until a recalibration
    /// boundary) deliberately *count* toward the capacity: admitting around
    /// them could later produce a batch of held-turned-available plus fresh
    /// jobs larger than the trigger limit. During a hold window admission
    /// therefore backpressures into the tenant queues — bounded by one
    /// calibration period per deferral and the engine's deferral budget.
    pub fn admit(&mut self, now_s: f64, jobmanager: &mut JobManager) -> Vec<(JobTicket, JobId)> {
        let mut admitted = Vec::new();
        let ids: Vec<TenantId> = self.tenants.keys().copied().collect();
        if ids.is_empty() {
            return admitted;
        }
        let capacity = jobmanager.trigger().queue_limit.max(1);
        let start = self.rr_start % ids.len();
        self.rr_start = self.rr_start.wrapping_add(1);
        loop {
            if jobmanager.pending_len() >= capacity {
                break;
            }
            let mut progressed = false;
            for offset in 0..ids.len() {
                let id = ids[(start + offset) % ids.len()];
                let tenant = self.tenants.get_mut(&id).expect("tenant ids are registered");
                if tenant.queue.is_empty() {
                    // Standard DRR: an idle tenant hoards no credit.
                    tenant.deficit = 0;
                    continue;
                }
                if tenant.in_flight >= tenant.config.max_in_flight {
                    // A backlogged tenant skipped only for being at its
                    // in-flight cap keeps its earned service credit — losing
                    // it here would permanently skew long-run weighted shares
                    // every time the cap binds. Clamp to one quantum so the
                    // carried credit cannot compound into an unbounded burst
                    // when the cap lifts.
                    let quantum = u64::from(tenant.config.weight);
                    tenant.deficit = (tenant.deficit + quantum).min(quantum);
                    continue;
                }
                tenant.deficit += u64::from(tenant.config.weight);
                while tenant.deficit > 0
                    && tenant.in_flight < tenant.config.max_in_flight
                    && jobmanager.pending_len() < capacity
                {
                    let Some(ticket) = tenant.queue.pop_front() else { break };
                    let record = self.tickets.get_mut(&ticket).expect("queued tickets exist");
                    let job_id =
                        jobmanager.submit_for_tenant(record.spec.clone(), record.submitted_s, id);
                    record.state = TicketState::Admitted { job_id };
                    self.job_to_ticket.insert(job_id, ticket);
                    tenant.deficit -= 1;
                    tenant.in_flight += 1;
                    tenant.admitted += 1;
                    tenant.queue_wait_total_s += (now_s - record.submitted_s).max(0.0);
                    admitted.push((JobTicket { tenant: id, ticket }, job_id));
                    progressed = true;
                }
                if tenant.queue.is_empty() {
                    tenant.deficit = 0;
                }
            }
            if !progressed {
                break;
            }
        }
        admitted
    }

    /// Account a dispatched batch: jobs the scheduler rejected return to the
    /// *front* of their tenant's queue for re-admission until the tenant's
    /// retry budget is exhausted, at which point the ticket becomes terminally
    /// [`TicketStatus::Rejected`]. Returns the terminally rejected tickets.
    pub fn note_batch(&mut self, batch: &BatchRecord) -> Vec<JobTicket> {
        self.note_rejections(&batch.outcome.rejected_jobs)
    }

    /// [`Self::note_batch`] from the raw rejected job ids — the replay form
    /// used when re-applying a journaled batch dispatch, where only the state
    /// delta (not the full batch record) was persisted.
    pub fn note_rejections(&mut self, rejected_jobs: &[JobId]) -> Vec<JobTicket> {
        let mut terminal = Vec::new();
        for job_id in rejected_jobs {
            let Some(ticket) = self.job_to_ticket.remove(job_id) else { continue };
            let record = self.tickets.get_mut(&ticket).expect("admitted tickets exist");
            let tenant =
                self.tenants.get_mut(&record.tenant).expect("tickets belong to registered tenants");
            tenant.in_flight -= 1;
            record.attempts += 1;
            if record.attempts > tenant.config.max_retries {
                record.state = TicketState::Rejected;
                tenant.rejected += 1;
                terminal.push(JobTicket { tenant: record.tenant, ticket });
            } else {
                record.state = TicketState::Queued;
                tenant.queue.push_front(ticket);
            }
        }
        terminal
    }

    /// Account drained completions: resolves tickets to
    /// [`TicketStatus::Completed`], frees in-flight slots, and returns the
    /// `(ticket, completion)` pairs for completions this service admitted.
    pub fn note_completions(
        &mut self,
        completions: &[CompletedExecution],
    ) -> Vec<(JobTicket, CompletedExecution)> {
        let mut out = Vec::new();
        for &completion in completions {
            let Some(ticket) = self.job_to_ticket.remove(&completion.job_id) else { continue };
            let record = self.tickets.get_mut(&ticket).expect("admitted tickets exist");
            let tenant =
                self.tenants.get_mut(&record.tenant).expect("tickets belong to registered tenants");
            tenant.in_flight -= 1;
            tenant.completed += 1;
            let waiting_s = (completion.record.start_time_s - record.submitted_s).max(0.0);
            let turnaround_s = (completion.record.finish_time_s - record.submitted_s).max(0.0);
            tenant.turnaround_total_s += turnaround_s;
            record.state = TicketState::Completed {
                job_id: completion.job_id,
                qpu_index: completion.qpu_index,
                waiting_s,
                turnaround_s,
            };
            out.push((JobTicket { tenant: record.tenant, ticket }, completion));
        }
        out
    }

    /// Current accounting for one tenant.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.tenants.get(&tenant).map(TenantState::stats)
    }

    /// Current accounting for every tenant, ascending by id.
    pub fn snapshot(&self) -> Vec<(TenantId, TenantStats)> {
        self.tenants.iter().map(|(&id, state)| (id, state.stats())).collect()
    }

    /// Number of tickets waiting in a tenant's queue (0 for unknown tenants).
    pub fn queued_len(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.queue.len())
    }

    /// Total tickets waiting across all tenant queues.
    pub fn total_queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// `true` if `job_id` belongs to a ticket this service admitted and has
    /// not yet resolved (completion or rejection accounting still pending).
    pub fn tracks_job(&self, job_id: JobId) -> bool {
        self.job_to_ticket.contains_key(&job_id)
    }

    /// The ticket of an admitted-but-unresolved engine job, if this service
    /// issued one — how calibration-aware callers map a stale pending job
    /// back to the submission (and its circuit) that produced it.
    pub fn admitted_ticket(&self, job_id: JobId) -> Option<JobTicket> {
        let ticket = *self.job_to_ticket.get(&job_id)?;
        let record = self.tickets.get(&ticket)?;
        Some(JobTicket { tenant: record.tenant, ticket })
    }

    /// Canonical byte-for-byte text encoding of the service's full state:
    /// id counters and round-robin cursor, per-tenant configuration, queue,
    /// DRR deficit and accounting, every ticket record (sorted by id), and
    /// the job→ticket map (sorted by job id). Floats are encoded as IEEE-754
    /// bit patterns, so equal encodings imply bit-identical states.
    pub fn encode_state(&self) -> String {
        use crate::replication::wire::{enc_f64, enc_spec};
        let mut out = String::from("svc 1\n");
        out.push_str(&format!(
            "ids {} {} {}\n",
            self.next_tenant_id, self.next_ticket_id, self.rr_start
        ));
        for (id, tenant) in &self.tenants {
            let queue = if tenant.queue.is_empty() {
                "-".to_string()
            } else {
                tenant.queue.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            };
            out.push_str(&format!(
                "tenant {id} {} {} {} {} {} {} {} {} {} {} {} {queue}\n",
                tenant.config.weight,
                tenant.config.max_in_flight,
                tenant.config.max_retries,
                tenant.deficit,
                tenant.in_flight,
                tenant.submitted,
                tenant.admitted,
                tenant.completed,
                tenant.rejected,
                enc_f64(tenant.queue_wait_total_s),
                enc_f64(tenant.turnaround_total_s),
            ));
        }
        let mut ticket_ids: Vec<TicketId> = self.tickets.keys().copied().collect();
        ticket_ids.sort_unstable();
        for ticket_id in ticket_ids {
            let record = &self.tickets[&ticket_id];
            let state = match record.state {
                TicketState::Queued => "q".to_string(),
                TicketState::Admitted { job_id } => format!("a:{job_id}"),
                TicketState::Completed { job_id, qpu_index, waiting_s, turnaround_s } => {
                    format!(
                        "c:{job_id}:{qpu_index}:{}:{}",
                        enc_f64(waiting_s),
                        enc_f64(turnaround_s)
                    )
                }
                TicketState::Rejected => "r".to_string(),
            };
            out.push_str(&format!(
                "ticket {ticket_id} {} {} {} {state} {}\n",
                record.tenant,
                enc_f64(record.submitted_s),
                record.attempts,
                enc_spec(&record.spec)
            ));
        }
        let mut jobs: Vec<(JobId, TicketId)> =
            self.job_to_ticket.iter().map(|(&job, &ticket)| (job, ticket)).collect();
        jobs.sort_unstable();
        let map = if jobs.is_empty() {
            "-".to_string()
        } else {
            jobs.iter().map(|(job, ticket)| format!("{job}:{ticket}")).collect::<Vec<_>>().join(",")
        };
        out.push_str(&format!("jobmap {map}\n"));
        out
    }

    /// Decode a state produced by [`SubmissionService::encode_state`].
    pub fn decode_state(encoded: &str) -> Option<SubmissionService> {
        use crate::replication::wire::{dec_f64, dec_spec};
        let mut lines = encoded.lines();
        if lines.next()? != "svc 1" {
            return None;
        }
        let mut ids = lines.next()?.split(' ');
        if ids.next()? != "ids" {
            return None;
        }
        let mut service = SubmissionService {
            tenants: BTreeMap::new(),
            next_tenant_id: ids.next()?.parse().ok()?,
            next_ticket_id: ids.next()?.parse().ok()?,
            tickets: HashMap::new(),
            job_to_ticket: HashMap::new(),
            rr_start: ids.next()?.parse().ok()?,
        };
        for line in lines {
            let mut fields = line.split(' ');
            match fields.next()? {
                "tenant" => {
                    let id: TenantId = fields.next()?.parse().ok()?;
                    let mut tenant = TenantState::new(TenantConfig {
                        weight: fields.next()?.parse().ok()?,
                        max_in_flight: fields.next()?.parse().ok()?,
                        max_retries: fields.next()?.parse().ok()?,
                    });
                    tenant.deficit = fields.next()?.parse().ok()?;
                    tenant.in_flight = fields.next()?.parse().ok()?;
                    tenant.submitted = fields.next()?.parse().ok()?;
                    tenant.admitted = fields.next()?.parse().ok()?;
                    tenant.completed = fields.next()?.parse().ok()?;
                    tenant.rejected = fields.next()?.parse().ok()?;
                    tenant.queue_wait_total_s = dec_f64(fields.next()?)?;
                    tenant.turnaround_total_s = dec_f64(fields.next()?)?;
                    let queue = fields.next()?;
                    if queue != "-" {
                        for ticket in queue.split(',') {
                            tenant.queue.push_back(ticket.parse().ok()?);
                        }
                    }
                    service.tenants.insert(id, tenant);
                }
                "ticket" => {
                    let ticket_id: TicketId = fields.next()?.parse().ok()?;
                    let tenant = fields.next()?.parse().ok()?;
                    let submitted_s = dec_f64(fields.next()?)?;
                    let attempts = fields.next()?.parse().ok()?;
                    let state_field = fields.next()?;
                    let state = match state_field.split(':').collect::<Vec<_>>().as_slice() {
                        ["q"] => TicketState::Queued,
                        ["a", job] => TicketState::Admitted { job_id: job.parse().ok()? },
                        ["c", job, qpu, wait, turn] => TicketState::Completed {
                            job_id: job.parse().ok()?,
                            qpu_index: qpu.parse().ok()?,
                            waiting_s: dec_f64(wait)?,
                            turnaround_s: dec_f64(turn)?,
                        },
                        ["r"] => TicketState::Rejected,
                        _ => return None,
                    };
                    let spec = dec_spec(fields.next()?)?;
                    service.tickets.insert(
                        ticket_id,
                        TicketRecord { tenant, submitted_s, attempts, spec, state },
                    );
                }
                "jobmap" => {
                    let map = fields.next()?;
                    if map != "-" {
                        for pair in map.split(',') {
                            let (job, ticket) = pair.split_once(':')?;
                            service.job_to_ticket.insert(job.parse().ok()?, ticket.parse().ok()?);
                        }
                    }
                }
                _ => return None,
            }
        }
        Some(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qonductor_backend::Fleet;
    use qonductor_scheduler::{HybridScheduler, Nsga2Config, ScheduleTrigger, SchedulerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet(seed: u64) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed);
        Fleet::ibm_default(&mut rng)
    }

    fn scheduler() -> HybridScheduler {
        HybridScheduler::new(SchedulerConfig {
            nsga2: Nsga2Config {
                population_size: 16,
                max_generations: 8,
                max_evaluations: 800,
                num_threads: 1,
                ..Nsga2Config::default()
            },
            ..SchedulerConfig::default()
        })
    }

    fn spec(fleet: &Fleet, qubits: u32, exec_s: f64) -> JobSpec {
        JobSpec {
            qubits,
            shots: 1000,
            fidelity_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
                .collect(),
            exec_time_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { exec_s } else { f64::INFINITY })
                .collect(),
            estimate_epoch: fleet.calibration_epoch(),
        }
    }

    #[test]
    fn submit_is_non_blocking_and_polls_queued() {
        let fleet = small_fleet(1);
        let mut svc = SubmissionService::new();
        let tenant = svc.register_tenant(1);
        let t0 = svc.submit(tenant, spec(&fleet, 5, 10.0), 0.0).unwrap();
        let t1 = svc.submit(tenant, spec(&fleet, 5, 10.0), 1.0).unwrap();
        assert_eq!(svc.poll(t0), Some(TicketStatus::Queued { position: 0, attempts: 0 }));
        assert_eq!(svc.poll(t1), Some(TicketStatus::Queued { position: 1, attempts: 0 }));
        assert_eq!(svc.queued_len(tenant), 2);
        assert!(svc.submit(99, spec(&fleet, 5, 10.0), 0.0).is_err());
        assert!(svc.poll(JobTicket { tenant: 0, ticket: 999 }).is_none());
        // A handle with a forged tenant cannot read another tenant's status.
        assert!(svc.poll(JobTicket { tenant: 5, ticket: t0.ticket }).is_none());
    }

    #[test]
    fn admission_respects_weights_and_capacity() {
        let fleet = small_fleet(2);
        let mut svc = SubmissionService::new();
        let heavy = svc.register_tenant(2);
        let light = svc.register_tenant(1);
        for i in 0..20 {
            svc.submit(heavy, spec(&fleet, 5, 10.0), i as f64 * 0.01).unwrap();
            svc.submit(light, spec(&fleet, 5, 10.0), i as f64 * 0.01).unwrap();
        }
        // Pool capacity = trigger queue limit (6): one pass admits 4:2.
        let mut jm = JobManager::new(ScheduleTrigger::new(6, 1e12));
        let admitted = svc.admit(1.0, &mut jm);
        assert_eq!(admitted.len(), 6);
        assert_eq!(jm.pending_len(), 6);
        let heavy_count = admitted.iter().filter(|(t, _)| t.tenant == heavy).count();
        let light_count = admitted.iter().filter(|(t, _)| t.tenant == light).count();
        assert_eq!((heavy_count, light_count), (4, 2));
        // Admitted tickets poll as admitted, with engine job ids.
        for (ticket, job_id) in &admitted {
            assert_eq!(svc.poll(*ticket), Some(TicketStatus::Admitted { job_id: *job_id }));
        }
        // A full pool admits nothing more.
        assert!(svc.admit(2.0, &mut jm).is_empty());
    }

    #[test]
    fn in_flight_cap_limits_admission() {
        let fleet = small_fleet(3);
        let mut svc = SubmissionService::new();
        let tenant =
            svc.register_tenant_with(TenantConfig { weight: 1, max_in_flight: 2, max_retries: 0 });
        for _ in 0..5 {
            svc.submit(tenant, spec(&fleet, 5, 10.0), 0.0).unwrap();
        }
        // Pool capacity (5) exceeds the in-flight cap (2): the cap binds.
        let mut jm = JobManager::new(ScheduleTrigger::new(5, 50.0));
        assert_eq!(svc.admit(0.0, &mut jm).len(), 2, "cap of 2 in flight");
        assert_eq!(svc.queued_len(tenant), 3);
        // Completing the in-flight jobs frees slots for the next pass.
        let mut fleet = fleet;
        let batch = jm.try_dispatch(60.0, &scheduler(), &mut fleet).expect("interval fires");
        svc.note_batch(&batch);
        let mut rng = StdRng::seed_from_u64(9);
        fleet.advance_to(1e5, &mut rng);
        let done = jm.drain_completions(&mut fleet);
        let resolved = svc.note_completions(&done);
        assert_eq!(resolved.len(), 2);
        assert_eq!(svc.admit(1.0, &mut jm).len(), 2);
    }

    /// Regression for the DRR credit-loss bug: a tenant skipped for being at
    /// its in-flight cap must keep its earned service credit — clamped to one
    /// quantum — instead of silently losing it, and must converge back to its
    /// weighted share once the cap lifts.
    #[test]
    fn capped_tenant_keeps_bounded_credit_and_reconverges_to_its_share() {
        let fleet = small_fleet(5);
        let mut svc = SubmissionService::new();
        let heavy =
            svc.register_tenant_with(TenantConfig { weight: 2, max_in_flight: 6, max_retries: 0 });
        let light = svc.register_tenant_with(TenantConfig::weighted(1));
        let mut jm = JobManager::new(ScheduleTrigger::new(6, 1e12));
        let job = spec(&fleet, 5, 1.0);
        let qpu = job.exec_time_per_qpu.iter().position(|e| e.is_finite()).expect("feasible QPU");
        let mut fleet = fleet;

        // Phase 1 — only the heavy tenant is active: one pass fills its
        // in-flight cap, and the dispatched jobs stay in flight.
        for _ in 0..40 {
            svc.submit(heavy, job.clone(), 0.0).unwrap();
        }
        let burst = svc.admit(0.0, &mut jm);
        assert_eq!(burst.len(), 6, "the first pass fills the in-flight cap");
        for &(_, job_id) in &burst {
            assert!(jm.dispatch_direct(job_id, qpu, &mut fleet));
        }

        // While capped, every admission pass grants the quantum but clamps
        // the carried credit at exactly one quantum: not zeroed (the bug),
        // not compounding (unbounded post-cap burst).
        for pass in 1..=4 {
            assert!(svc.admit(pass as f64, &mut jm).is_empty(), "capped tenant admits nothing");
            assert_eq!(
                svc.tenants[&heavy].deficit, 2,
                "pass {pass}: carried credit is exactly one quantum"
            );
        }

        // The cap lifts: completions return the heavy tenant below its cap.
        let mut rng = StdRng::seed_from_u64(7);
        fleet.advance_to(100.0, &mut rng);
        assert_eq!(svc.note_completions(&jm.drain_completions(&mut fleet)).len(), 6);
        for _ in 0..40 {
            svc.submit(light, job.clone(), 100.0).unwrap();
        }

        // Post-lift passes: the carried quantum buys bounded catch-up on the
        // first pass, then steady state settles at the 2:1 weighted share.
        let (mut heavy_admitted, mut light_admitted) = (0usize, 0usize);
        for pass in 0..6 {
            let t = 200.0 + 100.0 * pass as f64;
            let admitted = svc.admit(t, &mut jm);
            assert_eq!(admitted.len(), 6, "uncapped passes fill the pool");
            heavy_admitted += admitted.iter().filter(|(t, _)| t.tenant == heavy).count();
            light_admitted += admitted.iter().filter(|(t, _)| t.tenant == light).count();
            for &(_, job_id) in &admitted {
                assert!(jm.dispatch_direct(job_id, qpu, &mut fleet));
            }
            fleet.advance_to(t + 50.0, &mut rng);
            svc.note_completions(&jm.drain_completions(&mut fleet));
        }
        let share = heavy_admitted as f64 / (heavy_admitted + light_admitted) as f64;
        assert!(
            (share - 2.0 / 3.0).abs() <= 0.0667,
            "heavy share {share:.3} must converge to 2:1 ±10% after the cap lifts \
             ({heavy_admitted}:{light_admitted})"
        );
    }

    #[test]
    fn rejected_jobs_retry_then_terminalize() {
        let mut fleet = small_fleet(4);
        let mut svc = SubmissionService::new();
        let tenant =
            svc.register_tenant_with(TenantConfig { weight: 1, max_in_flight: 16, max_retries: 1 });
        // 64 qubits fits no QPU: the scheduler rejects it every time.
        let doomed = svc.submit(tenant, spec(&fleet, 64, 10.0), 0.0).unwrap();
        let mut jm = JobManager::new(ScheduleTrigger::new(1, 1e12));
        let scheduler = scheduler();

        svc.admit(0.0, &mut jm);
        let batch = jm.try_dispatch(0.0, &scheduler, &mut fleet).expect("trigger fires");
        assert!(svc.note_batch(&batch).is_empty(), "first rejection re-queues");
        assert_eq!(svc.poll(doomed), Some(TicketStatus::Queued { position: 0, attempts: 1 }));

        svc.admit(1.0, &mut jm);
        let batch = jm.try_dispatch(1.0, &scheduler, &mut fleet).expect("trigger fires again");
        let terminal = svc.note_batch(&batch);
        assert_eq!(terminal, vec![doomed]);
        assert_eq!(svc.poll(doomed), Some(TicketStatus::Rejected { attempts: 2 }));
        let stats = svc.tenant_stats(tenant).unwrap();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.admitted, 2, "both admission events are counted");
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.queued, 0);
    }

    /// The state codec roundtrips bit for bit across a mixed lifecycle:
    /// queued, admitted, completed, and terminally rejected tickets, non-zero
    /// DRR deficits, and accumulated float accounting.
    #[test]
    fn state_encoding_roundtrips_bit_for_bit() {
        let mut fleet = small_fleet(6);
        let mut svc = SubmissionService::new();
        let a =
            svc.register_tenant_with(TenantConfig { weight: 3, max_in_flight: 2, max_retries: 0 });
        let b = svc.register_tenant_with(TenantConfig::weighted(1));
        for i in 0..4 {
            svc.submit(a, spec(&fleet, 5, 7.0), 0.1 * i as f64).unwrap();
            svc.submit(b, spec(&fleet, 5, 7.0), 0.1 * i as f64).unwrap();
        }
        svc.submit(a, spec(&fleet, 64, 1.0), 0.5).unwrap(); // will terminally reject
        let mut jm = JobManager::new(ScheduleTrigger::new(5, 40.0));
        let scheduler = scheduler();
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = 1.0;
        for _ in 0..4 {
            svc.admit(t, &mut jm);
            if let Some(batch) = jm.try_dispatch(t, &scheduler, &mut fleet) {
                svc.note_batch(&batch);
            }
            t += 41.0;
            fleet.advance_to(t, &mut rng);
            svc.note_completions(&jm.drain_completions(&mut fleet));
        }
        let encoded = svc.encode_state();
        let back = SubmissionService::decode_state(&encoded).expect("decodes");
        assert_eq!(back.encode_state(), encoded);
        assert_eq!(back.snapshot(), svc.snapshot());
        // The restored service keeps behaving identically.
        let mut live = svc;
        let mut restored = back;
        assert_eq!(
            live.submit(a, spec(&fleet, 5, 2.0), t).unwrap(),
            restored.submit(a, spec(&fleet, 5, 2.0), t).unwrap()
        );
        let mut jm_live = jm.clone();
        let mut jm_restored = jm;
        assert_eq!(live.admit(t, &mut jm_live), restored.admit(t, &mut jm_restored));
        assert_eq!(live.encode_state(), restored.encode_state());
    }

    #[test]
    fn ticket_conservation_across_the_lifecycle() {
        let mut fleet = small_fleet(5);
        let mut svc = SubmissionService::new();
        let a = svc.register_tenant(3);
        let b = svc.register_tenant(1);
        let mut tickets = Vec::new();
        for i in 0..12 {
            tickets.push(svc.submit(a, spec(&fleet, 5, 5.0), i as f64).unwrap());
            tickets.push(svc.submit(b, spec(&fleet, 5, 5.0), i as f64).unwrap());
        }
        let mut jm = JobManager::new(ScheduleTrigger::new(8, 5.0));
        let scheduler = scheduler();
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = 20.0;
        let mut guard = 0;
        while svc.total_queued() > 0 || jm.pending_len() > 0 {
            guard += 1;
            assert!(guard < 200, "drain loop must converge");
            svc.admit(t, &mut jm);
            if let Some(batch) = jm.try_dispatch(t, &scheduler, &mut fleet) {
                svc.note_batch(&batch);
            }
            t += 1.0;
            fleet.advance_to(t, &mut rng);
            svc.note_completions(&jm.drain_completions(&mut fleet));
        }
        fleet.advance_to(1e6, &mut rng);
        svc.note_completions(&jm.drain_completions(&mut fleet));
        for (id, stats) in svc.snapshot() {
            assert_eq!(
                stats.queued as u64 + stats.in_flight as u64 + stats.completed + stats.rejected,
                stats.submitted,
                "tenant {id} loses no tickets"
            );
            assert_eq!(stats.rejected, 0, "all jobs were feasible");
            assert_eq!(stats.completed, 12);
        }
        for ticket in tickets {
            assert!(
                matches!(svc.poll(ticket), Some(TicketStatus::Completed { .. })),
                "every ticket completes"
            );
        }
    }
}
