//! Tenant-aware, non-blocking job submission (the "cloud" entry point of the
//! batch engine): independent clients register as tenants, [`submit`] enqueues
//! a job into the tenant's FIFO queue and returns a [`JobTicket`] immediately,
//! and a weighted-fair admission step ([`admit`]) drains the tenant queues
//! into the [`JobManager`]'s pending pool with deficit round-robin by tenant
//! weight — so many independent clients amortize one NSGA-II run per batch
//! while a chatty tenant cannot monopolize it.
//!
//! Admission respects two caps: a per-tenant in-flight limit (admitted but not
//! yet completed) and the engine's queue-size trigger limit as the pool
//! capacity, which bounds every dispatched batch at the trigger limit. Jobs the
//! scheduler rejects are returned to the *front* of their tenant's queue with a
//! bounded retry budget ([`note_batch`]); once the budget is exhausted the
//! terminal rejection is visible through [`poll`] instead of the job being
//! silently lost.
//!
//! [`submit`]: SubmissionService::submit
//! [`admit`]: SubmissionService::admit
//! [`note_batch`]: SubmissionService::note_batch
//! [`poll`]: SubmissionService::poll

use crate::jobmanager::{BatchRecord, CompletedExecution, JobId, JobManager, JobSpec, TenantId};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Identifier of a submitted ticket (monotonic across all tenants).
pub type TicketId = u64;

/// Per-tenant admission configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Deficit-round-robin weight: jobs admitted per round are proportional
    /// to this (minimum 1).
    pub weight: u32,
    /// Maximum number of admitted-but-not-completed jobs (minimum 1).
    pub max_in_flight: usize,
    /// How many times a scheduler-rejected job is re-queued before the
    /// rejection becomes terminal (0 = fail on first rejection).
    pub max_retries: u32,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig { weight: 1, max_in_flight: 256, max_retries: 1 }
    }
}

impl TenantConfig {
    /// A configuration with the given weight and the default caps.
    pub fn weighted(weight: u32) -> Self {
        TenantConfig { weight, ..TenantConfig::default() }
    }
}

/// A tenant's service-level objective: the absolute guarantee layered on top
/// of the *relative* DRR weight. Jobs submitted under an SLO class carry an
/// absolute deadline (`submitted_s + deadline_s`); when a queued job's
/// deadline would be missed by waiting one more trigger interval it jumps the
/// DRR scan through the escalation lane
/// ([`SubmissionService::pending_escalations`]), and once admitted it arms
/// the trigger's early-fire SLO path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloClass {
    /// Submit-to-completion deadline in seconds (relative to submission
    /// time); `f64::INFINITY` for no deadline.
    pub deadline_s: f64,
    /// Escalation priority: when the bypass lane's budget cannot cover every
    /// urgent job, higher-priority tenants escalate first.
    pub priority: u32,
    /// Maximum tolerated estimated error rate (1.0 = no bound). Advisory to
    /// estimate-aware schedulers; carried here so the class is one value.
    pub max_error: f64,
}

impl Default for SloClass {
    fn default() -> Self {
        SloClass { deadline_s: f64::INFINITY, priority: 0, max_error: 1.0 }
    }
}

impl SloClass {
    /// An SLO class with the given deadline and default priority/error bound.
    pub fn with_deadline(deadline_s: f64) -> Self {
        SloClass { deadline_s, ..SloClass::default() }
    }
}

/// Why a ticket was terminally rejected (satellite of the SLO work: a bare
/// `Rejected` gave operators no way to distinguish "the circuit fits nowhere"
/// from "the retry budget ran out" from "the deadline passed first").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The scheduler bounced the job until the tenant's retry budget ran out.
    RetriesExhausted,
    /// The job's SLO deadline had already passed when the rejection became
    /// terminal.
    DeadlineMissed,
    /// No QPU in the fleet could run the job at all (every per-QPU fidelity
    /// estimate is zero) — the case retry-with-cutting exists to prevent.
    Infeasible,
}

/// Handle returned by [`SubmissionService::submit`]; pass it to
/// [`SubmissionService::poll`] to observe the job's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobTicket {
    /// The tenant the job was submitted under.
    pub tenant: TenantId,
    /// Service-assigned ticket id (monotonic across tenants).
    pub ticket: TicketId,
}

/// Observable lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TicketStatus {
    /// Waiting in the tenant's FIFO queue for admission.
    Queued {
        /// Zero-based position from the queue head.
        position: usize,
        /// Scheduler rejections suffered so far (re-queued for retry).
        attempts: u32,
    },
    /// Admitted into the batch engine (pending pool or a QPU queue).
    Admitted {
        /// The engine-assigned job id.
        job_id: JobId,
    },
    /// Execution finished.
    Completed {
        /// The engine-assigned job id.
        job_id: JobId,
        /// Index of the QPU the job ran on.
        qpu_index: usize,
        /// Submission-to-execution-start wait (seconds).
        waiting_s: f64,
        /// Submission-to-finish turnaround (seconds).
        turnaround_s: f64,
    },
    /// Terminally rejected by the scheduler after exhausting the retry budget.
    Rejected {
        /// Total scheduler rejections (always `max_retries + 1`).
        attempts: u32,
        /// Why the rejection became terminal.
        reason: RejectReason,
    },
}

/// Errors surfaced by the submission API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmissionError {
    /// The tenant was never registered.
    UnknownTenant(TenantId),
}

/// Point-in-time per-tenant accounting (also persisted via the
/// [`crate::monitor::SystemMonitor`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant's DRR weight.
    pub weight: u32,
    /// Tickets ever submitted.
    pub submitted: u64,
    /// Admission events (re-admissions after a rejection count again).
    pub admitted: u64,
    /// Tickets that completed execution.
    pub completed: u64,
    /// Tickets terminally rejected.
    pub rejected: u64,
    /// Tickets currently waiting in the tenant queue.
    pub queued: usize,
    /// Tickets admitted but not yet completed.
    pub in_flight: usize,
    /// Admissions through the SLO escalation lane (a subset of `admitted`).
    pub escalated: u64,
    /// Mean submission-to-admission wait over all admission events (seconds).
    pub mean_queue_wait_s: f64,
    /// Mean submission-to-finish turnaround over completed tickets (seconds).
    pub mean_turnaround_s: f64,
}

/// Where a ticket currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TicketState {
    Queued,
    Admitted { job_id: JobId },
    Completed { job_id: JobId, qpu_index: usize, waiting_s: f64, turnaround_s: f64 },
    Rejected { reason: RejectReason },
}

/// Full per-ticket record (the spec is kept so rejected jobs can re-enter the
/// tenant queue without the engine keeping them).
#[derive(Debug, Clone)]
struct TicketRecord {
    tenant: TenantId,
    submitted_s: f64,
    attempts: u32,
    spec: JobSpec,
    state: TicketState,
}

/// Per-tenant queue, DRR state, and counters.
#[derive(Debug, Clone)]
struct TenantState {
    config: TenantConfig,
    /// The tenant's SLO class, if registered with one
    /// ([`SubmissionService::register_tenant_with_slo`]).
    slo: Option<SloClass>,
    queue: VecDeque<TicketId>,
    deficit: u64,
    in_flight: usize,
    submitted: u64,
    admitted: u64,
    completed: u64,
    rejected: u64,
    escalated: u64,
    queue_wait_total_s: f64,
    turnaround_total_s: f64,
}

impl TenantState {
    /// Weight and in-flight caps are clamped to at least 1 here — the single
    /// construction chokepoint (registration *and* state decode) — because a
    /// weight-0 tenant would earn a zero DRR quantum and its tickets would
    /// sit `Queued` forever.
    fn new(config: TenantConfig) -> Self {
        TenantState {
            config: TenantConfig {
                weight: config.weight.max(1),
                max_in_flight: config.max_in_flight.max(1),
                max_retries: config.max_retries,
            },
            slo: None,
            queue: VecDeque::new(),
            deficit: 0,
            in_flight: 0,
            submitted: 0,
            admitted: 0,
            completed: 0,
            rejected: 0,
            escalated: 0,
            queue_wait_total_s: 0.0,
            turnaround_total_s: 0.0,
        }
    }

    /// The absolute deadline of a job submitted at `submitted_s` under this
    /// tenant's SLO class (`INFINITY` without one).
    fn absolute_deadline(&self, submitted_s: f64) -> f64 {
        match self.slo {
            Some(slo) if slo.deadline_s.is_finite() => submitted_s + slo.deadline_s,
            _ => f64::INFINITY,
        }
    }

    fn stats(&self) -> TenantStats {
        TenantStats {
            weight: self.config.weight,
            submitted: self.submitted,
            admitted: self.admitted,
            completed: self.completed,
            rejected: self.rejected,
            queued: self.queue.len(),
            in_flight: self.in_flight,
            escalated: self.escalated,
            mean_queue_wait_s: if self.admitted == 0 {
                0.0
            } else {
                self.queue_wait_total_s / self.admitted as f64
            },
            mean_turnaround_s: if self.completed == 0 {
                0.0
            } else {
                self.turnaround_total_s / self.completed as f64
            },
        }
    }
}

/// The tenant-aware submission front-end of the batch engine.
///
/// Besides the journaled tenant/ticket state, the service maintains three
/// *derived* indices — never encoded, rebuilt by [`Self::decode_state`] —
/// that make the admission hot path independent of the registered-tenant
/// population:
///
/// - the **active ring** (`active`): tenants with a non-empty queue *or* an
///   unspent DRR deficit — exactly the tenants for which the DRR scan is not
///   a no-op (an inactive tenant has an empty queue and deficit 0, so the
///   scan would only re-zero its deficit);
/// - the **SLO index** (`slo_tenants`): tenants registered with a
///   finite-deadline [`SloClass`] — the only tenants the escalation lane can
///   ever select from;
/// - the **queued total** (`queued_total`): the sum of all queue lengths,
///   kept incrementally so [`Self::total_queued`] is O(1).
///
/// [`Self::indices_consistent`] checks all three against the tenant map.
#[derive(Debug, Clone, Default)]
pub struct SubmissionService {
    tenants: BTreeMap<TenantId, TenantState>,
    next_tenant_id: TenantId,
    next_ticket_id: TicketId,
    tickets: HashMap<TicketId, TicketRecord>,
    job_to_ticket: HashMap<JobId, TicketId>,
    /// Rotates the DRR starting tenant so pool-capacity cutoffs do not
    /// systematically favor low tenant ids.
    rr_start: usize,
    /// Derived: tenant ids in registration order (ids are sequential, so
    /// this is also ascending) — O(1) lookup of the rotating DRR pivot.
    registered_ids: Vec<TenantId>,
    /// Derived: the active ring (non-empty queue or unspent deficit).
    active: BTreeSet<TenantId>,
    /// Derived: tenants carrying a finite-deadline SLO class.
    slo_tenants: BTreeSet<TenantId>,
    /// Derived: total tickets queued across all tenants.
    queued_total: usize,
    /// Tenants visited by DRR admission scans (diagnostic, never encoded).
    admission_visits: Cell<u64>,
    /// Tenants visited by SLO escalation scans (diagnostic, never encoded).
    escalation_visits: Cell<u64>,
}

impl SubmissionService {
    /// An empty service with no tenants.
    pub fn new() -> Self {
        SubmissionService::default()
    }

    /// Register a tenant with the given DRR weight (and default caps).
    /// Returns the new tenant's id.
    pub fn register_tenant(&mut self, weight: u32) -> TenantId {
        self.register_tenant_with(TenantConfig::weighted(weight))
    }

    /// Register a tenant with an explicit configuration. A zero `weight` (or
    /// zero `max_in_flight`) is clamped to 1: a weight-0 tenant would earn a
    /// zero DRR quantum and its tickets would sit `Queued` forever.
    pub fn register_tenant_with(&mut self, config: TenantConfig) -> TenantId {
        let id = self.next_tenant_id;
        self.next_tenant_id += 1;
        self.tenants.insert(id, TenantState::new(config));
        self.registered_ids.push(id);
        id
    }

    /// Register a tenant with an admission configuration *and* an SLO class:
    /// every job the tenant submits carries the absolute deadline
    /// `submitted_s + slo.deadline_s`, enforced by the escalation lane
    /// ([`Self::pending_escalations`]) before admission and by the trigger's
    /// SLO early-fire path after it.
    pub fn register_tenant_with_slo(&mut self, config: TenantConfig, slo: SloClass) -> TenantId {
        let id = self.register_tenant_with(config);
        self.tenants.get_mut(&id).expect("just registered").slo = Some(slo);
        if slo.deadline_s.is_finite() {
            // An infinite deadline can never escalate; keep it off the index
            // so the escalation scan stays proportional to tenants that can.
            self.slo_tenants.insert(id);
        }
        id
    }

    /// A tenant's SLO class, if it registered with one.
    pub fn tenant_slo(&self, tenant: TenantId) -> Option<SloClass> {
        self.tenants.get(&tenant).and_then(|t| t.slo)
    }

    /// All registered tenant ids, ascending.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// Every tenant's (clamped) admission configuration, ascending by id —
    /// enough to re-register the same tenant population elsewhere, since ids
    /// are assigned sequentially and tenants are never removed.
    pub fn tenant_configs(&self) -> Vec<(TenantId, TenantConfig)> {
        self.tenants.iter().map(|(&id, state)| (id, state.config)).collect()
    }

    /// Non-blocking submission: enqueue a job spec into the tenant's FIFO
    /// queue and return a ticket immediately. The job enters the batch engine
    /// only when a later [`Self::admit`] pass selects it.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        spec: JobSpec,
        now_s: f64,
    ) -> Result<JobTicket, SubmissionError> {
        let state = self.tenants.get_mut(&tenant).ok_or(SubmissionError::UnknownTenant(tenant))?;
        let ticket = self.next_ticket_id;
        self.next_ticket_id += 1;
        state.submitted += 1;
        state.queue.push_back(ticket);
        self.queued_total += 1;
        self.active.insert(tenant);
        self.tickets.insert(
            ticket,
            TicketRecord {
                tenant,
                submitted_s: now_s,
                attempts: 0,
                spec,
                state: TicketState::Queued,
            },
        );
        Ok(JobTicket { tenant, ticket })
    }

    /// Observe a ticket's progress. `None` for tickets this service never
    /// issued — including handles whose `tenant` does not match the tenant
    /// the ticket was actually issued to (one tenant's handle can never read
    /// another tenant's job status).
    pub fn poll(&self, ticket: JobTicket) -> Option<TicketStatus> {
        let record = self.tickets.get(&ticket.ticket)?;
        if record.tenant != ticket.tenant {
            return None;
        }
        Some(match record.state {
            TicketState::Queued => TicketStatus::Queued {
                position: self
                    .tenants
                    .get(&record.tenant)
                    .and_then(|t| t.queue.iter().position(|&id| id == ticket.ticket))
                    .unwrap_or(0),
                attempts: record.attempts,
            },
            TicketState::Admitted { job_id } => TicketStatus::Admitted { job_id },
            TicketState::Completed { job_id, qpu_index, waiting_s, turnaround_s } => {
                TicketStatus::Completed { job_id, qpu_index, waiting_s, turnaround_s }
            }
            TicketState::Rejected { reason } => {
                TicketStatus::Rejected { attempts: record.attempts, reason }
            }
        })
    }

    /// Weighted-fair admission: drain the tenant queues into the engine's
    /// pending pool by deficit round-robin (quantum = tenant weight, unit job
    /// cost), stopping at the per-tenant in-flight caps and at the engine's
    /// queue-size trigger limit — the pool capacity — so no dispatched batch
    /// can exceed the trigger limit. Unspent deficits carry over to the next
    /// pass, and the round-robin starting tenant rotates per pass, so
    /// capacity cutoffs even out across batches. Returns the admitted
    /// `(ticket, job id)` pairs in admission order.
    ///
    /// Boundary-deferred jobs (parked in the pool until a recalibration
    /// boundary) deliberately *count* toward the capacity: admitting around
    /// them could later produce a batch of held-turned-available plus fresh
    /// jobs larger than the trigger limit. During a hold window admission
    /// therefore backpressures into the tenant queues — bounded by one
    /// calibration period per deferral and the engine's deferral budget.
    /// The scan is O(active), not O(registered): each round visits only the
    /// active ring, in the same cyclic ascending-id order the full scan used
    /// (pivot = the rotating `rr_start` cursor mapped onto the registered-id
    /// list). An inactive tenant — empty queue, zero deficit — was always a
    /// no-op visit, so skipping it leaves every journaled outcome, deficit,
    /// and the `rr_start` rotation byte-identical to the full scan.
    pub fn admit(&mut self, now_s: f64, jobmanager: &mut JobManager) -> Vec<(JobTicket, JobId)> {
        let mut admitted = Vec::new();
        if self.registered_ids.is_empty() {
            return admitted;
        }
        let capacity = jobmanager.trigger().queue_limit.max(1);
        let pivot = self.registered_ids[self.rr_start % self.registered_ids.len()];
        self.rr_start = self.rr_start.wrapping_add(1);
        loop {
            if jobmanager.pending_len() >= capacity {
                break;
            }
            // Tenants drained this round leave the ring mid-iteration, so
            // each round walks a snapshot of it — still cyclic from the
            // pivot, ascending ids with wrap-around.
            let round: Vec<TenantId> =
                self.active.range(pivot..).chain(self.active.range(..pivot)).copied().collect();
            let mut progressed = false;
            for id in round {
                self.admission_visits.set(self.admission_visits.get() + 1);
                let tenant = self.tenants.get_mut(&id).expect("active tenants are registered");
                if tenant.queue.is_empty() {
                    // Standard DRR: an idle tenant hoards no credit. (Only
                    // an escalation-drained tenant can still be on the ring
                    // with an empty queue — its leftover deficit dies here.)
                    tenant.deficit = 0;
                    self.active.remove(&id);
                    continue;
                }
                if tenant.in_flight >= tenant.config.max_in_flight {
                    // A backlogged tenant skipped only for being at its
                    // in-flight cap keeps its earned service credit — losing
                    // it here would permanently skew long-run weighted shares
                    // every time the cap binds. Clamp to one quantum so the
                    // carried credit cannot compound into an unbounded burst
                    // when the cap lifts.
                    let quantum = u64::from(tenant.config.weight);
                    tenant.deficit = (tenant.deficit + quantum).min(quantum);
                    continue;
                }
                tenant.deficit += u64::from(tenant.config.weight);
                while tenant.deficit > 0
                    && tenant.in_flight < tenant.config.max_in_flight
                    && jobmanager.pending_len() < capacity
                {
                    let Some(ticket) = tenant.queue.pop_front() else { break };
                    self.queued_total -= 1;
                    let record = self.tickets.get_mut(&ticket).expect("queued tickets exist");
                    let job_id = jobmanager.submit_for_tenant_with_deadline(
                        record.spec.clone(),
                        record.submitted_s,
                        id,
                        tenant.absolute_deadline(record.submitted_s),
                    );
                    record.state = TicketState::Admitted { job_id };
                    self.job_to_ticket.insert(job_id, ticket);
                    tenant.deficit -= 1;
                    tenant.in_flight += 1;
                    tenant.admitted += 1;
                    tenant.queue_wait_total_s += (now_s - record.submitted_s).max(0.0);
                    admitted.push((JobTicket { tenant: id, ticket }, job_id));
                    progressed = true;
                }
                if tenant.queue.is_empty() {
                    tenant.deficit = 0;
                    self.active.remove(&id);
                }
            }
            if !progressed {
                break;
            }
        }
        admitted
    }

    /// The SLO bypass lane, read side: queued tickets whose absolute deadline
    /// would be blown by waiting `horizon_s` more seconds for the next
    /// regular admission (`now_s + horizon_s ≥ deadline`), in deterministic
    /// escalation order — descending SLO priority, then ascending ticket id —
    /// bounded by `budget` slots and each tenant's in-flight cap. Read-only:
    /// the caller journals one `SloEscalated` event per returned ticket and
    /// then applies each with [`Self::apply_escalation`], so failover replays
    /// the exact escalation stream.
    pub fn pending_escalations(&self, now_s: f64, horizon_s: f64, budget: usize) -> Vec<JobTicket> {
        // SLO-free workloads pay nothing: without a finite-deadline SLO class
        // anywhere, no ticket can ever be due, so the scan does zero work.
        if self.slo_tenants.is_empty() {
            return Vec::new();
        }
        let mut candidates: Vec<(u32, TicketId, TenantId)> = Vec::new();
        for &id in &self.slo_tenants {
            self.escalation_visits.set(self.escalation_visits.get() + 1);
            let tenant = &self.tenants[&id];
            let slo = tenant.slo.expect("indexed tenants carry an SLO class");
            for &ticket in &tenant.queue {
                let record = &self.tickets[&ticket];
                if now_s + horizon_s >= tenant.absolute_deadline(record.submitted_s) {
                    candidates.push((slo.priority, ticket, id));
                }
            }
        }
        // Descending priority, ascending ticket id within a priority class.
        candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        // In-flight occupancy only for tenants that actually have a due
        // ticket — not the full tenant map.
        let mut in_flight: HashMap<TenantId, usize> = HashMap::new();
        for &(_, _, tenant_id) in &candidates {
            in_flight.entry(tenant_id).or_insert_with(|| self.tenants[&tenant_id].in_flight);
        }
        let mut escalations = Vec::new();
        for (_, ticket, tenant_id) in candidates {
            if escalations.len() >= budget {
                break;
            }
            let used = in_flight.get_mut(&tenant_id).expect("tenant exists");
            if *used >= self.tenants[&tenant_id].config.max_in_flight {
                continue;
            }
            *used += 1;
            escalations.push(JobTicket { tenant: tenant_id, ticket });
        }
        escalations
    }

    /// The SLO bypass lane, write side: admit one escalated ticket into the
    /// engine ahead of the DRR scan. Validates everything
    /// [`Self::pending_escalations`] promised (queued ticket, SLO tenant,
    /// free in-flight slot) and returns `None` without touching any state if
    /// a precondition no longer holds — so a journaled escalation replays
    /// idempotently. No DRR deficit is debited: escalation is the *absolute*
    /// lane, deliberately outside the weighted-share accounting.
    pub fn apply_escalation(
        &mut self,
        ticket: JobTicket,
        now_s: f64,
        jobmanager: &mut JobManager,
    ) -> Option<JobId> {
        let record = self.tickets.get(&ticket.ticket)?;
        if record.tenant != ticket.tenant || record.state != TicketState::Queued {
            return None;
        }
        let tenant = self.tenants.get_mut(&ticket.tenant)?;
        tenant.slo?;
        if tenant.in_flight >= tenant.config.max_in_flight {
            return None;
        }
        let pos = tenant.queue.iter().position(|&t| t == ticket.ticket)?;
        tenant.queue.remove(pos);
        self.queued_total -= 1;
        // Escalation admits outside the DRR scan, so it can drain a queue
        // while a deficit is still unspent — the tenant then *stays* on the
        // active ring until the next admission pass zeroes the credit.
        if tenant.queue.is_empty() && tenant.deficit == 0 {
            self.active.remove(&ticket.tenant);
        }
        let deadline_s = tenant.absolute_deadline(record.submitted_s);
        let record = self.tickets.get_mut(&ticket.ticket).expect("checked above");
        let job_id = jobmanager.submit_for_tenant_with_deadline(
            record.spec.clone(),
            record.submitted_s,
            ticket.tenant,
            deadline_s,
        );
        record.state = TicketState::Admitted { job_id };
        self.job_to_ticket.insert(job_id, ticket.ticket);
        let tenant = self.tenants.get_mut(&ticket.tenant).expect("checked above");
        tenant.in_flight += 1;
        tenant.admitted += 1;
        tenant.escalated += 1;
        tenant.queue_wait_total_s += (now_s - record.submitted_s).max(0.0);
        Some(job_id)
    }

    /// Account a dispatched batch: jobs the scheduler rejected return to the
    /// *front* of their tenant's queue for re-admission until the tenant's
    /// retry budget is exhausted, at which point the ticket becomes terminally
    /// [`TicketStatus::Rejected`]. Returns the terminally rejected tickets.
    pub fn note_batch(&mut self, batch: &BatchRecord) -> Vec<JobTicket> {
        self.note_rejections(batch.t_s, &batch.outcome.rejected_jobs)
    }

    /// [`Self::note_batch`] from the raw rejected job ids — the replay form
    /// used when re-applying a journaled batch dispatch, where only the state
    /// delta (not the full batch record) was persisted. `now_s` is the batch
    /// dispatch instant, used to classify terminal rejections: a spec no QPU
    /// can run is [`RejectReason::Infeasible`], a ticket whose SLO deadline
    /// already passed is [`RejectReason::DeadlineMissed`], anything else is
    /// [`RejectReason::RetriesExhausted`]. The classification reads only
    /// journaled state, so replay reproduces it byte for byte.
    pub fn note_rejections(&mut self, now_s: f64, rejected_jobs: &[JobId]) -> Vec<JobTicket> {
        let mut terminal = Vec::new();
        for job_id in rejected_jobs {
            let Some(ticket) = self.job_to_ticket.remove(job_id) else { continue };
            let record = self.tickets.get_mut(&ticket).expect("admitted tickets exist");
            let tenant =
                self.tenants.get_mut(&record.tenant).expect("tickets belong to registered tenants");
            tenant.in_flight -= 1;
            record.attempts += 1;
            if record.attempts > tenant.config.max_retries {
                let reason = if record.spec.fidelity_per_qpu.iter().all(|&f| f <= 0.0 || f.is_nan())
                {
                    RejectReason::Infeasible
                } else if now_s >= tenant.absolute_deadline(record.submitted_s) {
                    RejectReason::DeadlineMissed
                } else {
                    RejectReason::RetriesExhausted
                };
                record.state = TicketState::Rejected { reason };
                tenant.rejected += 1;
                terminal.push(JobTicket { tenant: record.tenant, ticket });
            } else {
                record.state = TicketState::Queued;
                tenant.queue.push_front(ticket);
                self.queued_total += 1;
                self.active.insert(record.tenant);
            }
        }
        terminal
    }

    /// Account drained completions: resolves tickets to
    /// [`TicketStatus::Completed`], frees in-flight slots, and returns the
    /// `(ticket, completion)` pairs for completions this service admitted.
    pub fn note_completions(
        &mut self,
        completions: &[CompletedExecution],
    ) -> Vec<(JobTicket, CompletedExecution)> {
        let mut out = Vec::new();
        for &completion in completions {
            let Some(ticket) = self.job_to_ticket.remove(&completion.job_id) else { continue };
            let record = self.tickets.get_mut(&ticket).expect("admitted tickets exist");
            let tenant =
                self.tenants.get_mut(&record.tenant).expect("tickets belong to registered tenants");
            tenant.in_flight -= 1;
            tenant.completed += 1;
            let waiting_s = (completion.record.start_time_s - record.submitted_s).max(0.0);
            let turnaround_s = (completion.record.finish_time_s - record.submitted_s).max(0.0);
            tenant.turnaround_total_s += turnaround_s;
            record.state = TicketState::Completed {
                job_id: completion.job_id,
                qpu_index: completion.qpu_index,
                waiting_s,
                turnaround_s,
            };
            out.push((JobTicket { tenant: record.tenant, ticket }, completion));
        }
        out
    }

    /// Current accounting for one tenant.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.tenants.get(&tenant).map(TenantState::stats)
    }

    /// Current accounting for every tenant, ascending by id.
    pub fn snapshot(&self) -> Vec<(TenantId, TenantStats)> {
        self.tenants.iter().map(|(&id, state)| (id, state.stats())).collect()
    }

    /// Number of tickets waiting in a tenant's queue (0 for unknown tenants).
    pub fn queued_len(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.queue.len())
    }

    /// Total tickets waiting across all tenant queues — O(1), maintained
    /// incrementally (checked against the queues by
    /// [`Self::indices_consistent`]).
    pub fn total_queued(&self) -> usize {
        self.queued_total
    }

    /// Number of registered tenants — O(1), the hot-path replacement for
    /// `tenant_ids().is_empty()` (which allocates the full id list).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenants visited by DRR admission scans since construction (or decode).
    /// Diagnostic: lets tests assert the scan is O(active), not O(registered).
    pub fn admission_visits(&self) -> u64 {
        self.admission_visits.get()
    }

    /// Tenants visited by SLO escalation scans since construction (or
    /// decode). Diagnostic: an SLO-free workload must leave this at zero.
    pub fn escalation_visits(&self) -> u64 {
        self.escalation_visits.get()
    }

    /// Verify every derived index against the journaled state it is derived
    /// from: the active ring holds exactly the tenants with a non-empty
    /// queue or unspent deficit, the SLO index exactly the tenants with a
    /// finite-deadline class, the registered-id list mirrors the tenant map
    /// in order, and the queued total equals the sum of queue lengths.
    pub fn indices_consistent(&self) -> bool {
        let active_ok = self
            .tenants
            .iter()
            .all(|(id, t)| self.active.contains(id) == (!t.queue.is_empty() || t.deficit > 0))
            && self.active.iter().all(|id| self.tenants.contains_key(id));
        let slo_ok = self.tenants.iter().all(|(id, t)| {
            self.slo_tenants.contains(id)
                == matches!(t.slo, Some(slo) if slo.deadline_s.is_finite())
        }) && self.slo_tenants.iter().all(|id| self.tenants.contains_key(id));
        let ids_ok = self.registered_ids.len() == self.tenants.len()
            && self.registered_ids.iter().zip(self.tenants.keys()).all(|(a, b)| a == b);
        let queued_ok =
            self.queued_total == self.tenants.values().map(|t| t.queue.len()).sum::<usize>();
        active_ok && slo_ok && ids_ok && queued_ok
    }

    /// `true` if `job_id` belongs to a ticket this service admitted and has
    /// not yet resolved (completion or rejection accounting still pending).
    pub fn tracks_job(&self, job_id: JobId) -> bool {
        self.job_to_ticket.contains_key(&job_id)
    }

    /// The ticket of an admitted-but-unresolved engine job, if this service
    /// issued one — how calibration-aware callers map a stale pending job
    /// back to the submission (and its circuit) that produced it.
    pub fn admitted_ticket(&self, job_id: JobId) -> Option<JobTicket> {
        let ticket = *self.job_to_ticket.get(&job_id)?;
        let record = self.tickets.get(&ticket)?;
        Some(JobTicket { tenant: record.tenant, ticket })
    }

    /// Canonical byte-for-byte text encoding of the service's full state:
    /// id counters and round-robin cursor, per-tenant configuration, queue,
    /// DRR deficit and accounting, every ticket record (sorted by id), and
    /// the job→ticket map (sorted by job id). Floats are encoded as IEEE-754
    /// bit patterns, so equal encodings imply bit-identical states.
    pub fn encode_state(&self) -> String {
        use crate::replication::wire::{enc_f64, enc_spec};
        let mut out = String::from("svc 2\n");
        out.push_str(&format!(
            "ids {} {} {}\n",
            self.next_tenant_id, self.next_ticket_id, self.rr_start
        ));
        for (id, tenant) in &self.tenants {
            let queue = if tenant.queue.is_empty() {
                "-".to_string()
            } else {
                tenant.queue.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            };
            let slo = match tenant.slo {
                None => "-".to_string(),
                Some(slo) => format!(
                    "{}:{}:{}",
                    enc_f64(slo.deadline_s),
                    slo.priority,
                    enc_f64(slo.max_error)
                ),
            };
            out.push_str(&format!(
                "tenant {id} {} {} {} {slo} {} {} {} {} {} {} {} {} {} {queue}\n",
                tenant.config.weight,
                tenant.config.max_in_flight,
                tenant.config.max_retries,
                tenant.deficit,
                tenant.in_flight,
                tenant.submitted,
                tenant.admitted,
                tenant.completed,
                tenant.rejected,
                tenant.escalated,
                enc_f64(tenant.queue_wait_total_s),
                enc_f64(tenant.turnaround_total_s),
            ));
        }
        let mut ticket_ids: Vec<TicketId> = self.tickets.keys().copied().collect();
        ticket_ids.sort_unstable();
        for ticket_id in ticket_ids {
            let record = &self.tickets[&ticket_id];
            let state = match record.state {
                TicketState::Queued => "q".to_string(),
                TicketState::Admitted { job_id } => format!("a:{job_id}"),
                TicketState::Completed { job_id, qpu_index, waiting_s, turnaround_s } => {
                    format!(
                        "c:{job_id}:{qpu_index}:{}:{}",
                        enc_f64(waiting_s),
                        enc_f64(turnaround_s)
                    )
                }
                TicketState::Rejected { reason } => match reason {
                    RejectReason::RetriesExhausted => "r:x".to_string(),
                    RejectReason::DeadlineMissed => "r:d".to_string(),
                    RejectReason::Infeasible => "r:i".to_string(),
                },
            };
            out.push_str(&format!(
                "ticket {ticket_id} {} {} {} {state} {}\n",
                record.tenant,
                enc_f64(record.submitted_s),
                record.attempts,
                enc_spec(&record.spec)
            ));
        }
        let mut jobs: Vec<(JobId, TicketId)> =
            self.job_to_ticket.iter().map(|(&job, &ticket)| (job, ticket)).collect();
        jobs.sort_unstable();
        let map = if jobs.is_empty() {
            "-".to_string()
        } else {
            jobs.iter().map(|(job, ticket)| format!("{job}:{ticket}")).collect::<Vec<_>>().join(",")
        };
        out.push_str(&format!("jobmap {map}\n"));
        out
    }

    /// Decode a state produced by [`SubmissionService::encode_state`].
    pub fn decode_state(encoded: &str) -> Option<SubmissionService> {
        use crate::replication::wire::{dec_f64, dec_spec};
        let mut lines = encoded.lines();
        if lines.next()? != "svc 2" {
            return None;
        }
        let mut ids = lines.next()?.split(' ');
        if ids.next()? != "ids" {
            return None;
        }
        let mut service = SubmissionService {
            tenants: BTreeMap::new(),
            next_tenant_id: ids.next()?.parse().ok()?,
            next_ticket_id: ids.next()?.parse().ok()?,
            tickets: HashMap::new(),
            job_to_ticket: HashMap::new(),
            rr_start: ids.next()?.parse().ok()?,
            ..SubmissionService::default()
        };
        for line in lines {
            let mut fields = line.split(' ');
            match fields.next()? {
                "tenant" => {
                    let id: TenantId = fields.next()?.parse().ok()?;
                    let mut tenant = TenantState::new(TenantConfig {
                        weight: fields.next()?.parse().ok()?,
                        max_in_flight: fields.next()?.parse().ok()?,
                        max_retries: fields.next()?.parse().ok()?,
                    });
                    tenant.slo = match fields.next()? {
                        "-" => None,
                        slo_field => match slo_field.split(':').collect::<Vec<_>>().as_slice() {
                            [deadline, priority, max_error] => Some(SloClass {
                                deadline_s: dec_f64(deadline)?,
                                priority: priority.parse().ok()?,
                                max_error: dec_f64(max_error)?,
                            }),
                            _ => return None,
                        },
                    };
                    tenant.deficit = fields.next()?.parse().ok()?;
                    tenant.in_flight = fields.next()?.parse().ok()?;
                    tenant.submitted = fields.next()?.parse().ok()?;
                    tenant.admitted = fields.next()?.parse().ok()?;
                    tenant.completed = fields.next()?.parse().ok()?;
                    tenant.rejected = fields.next()?.parse().ok()?;
                    tenant.escalated = fields.next()?.parse().ok()?;
                    tenant.queue_wait_total_s = dec_f64(fields.next()?)?;
                    tenant.turnaround_total_s = dec_f64(fields.next()?)?;
                    let queue = fields.next()?;
                    if queue != "-" {
                        for ticket in queue.split(',') {
                            tenant.queue.push_back(ticket.parse().ok()?);
                        }
                    }
                    service.tenants.insert(id, tenant);
                }
                "ticket" => {
                    let ticket_id: TicketId = fields.next()?.parse().ok()?;
                    let tenant = fields.next()?.parse().ok()?;
                    let submitted_s = dec_f64(fields.next()?)?;
                    let attempts = fields.next()?.parse().ok()?;
                    let state_field = fields.next()?;
                    let state = match state_field.split(':').collect::<Vec<_>>().as_slice() {
                        ["q"] => TicketState::Queued,
                        ["a", job] => TicketState::Admitted { job_id: job.parse().ok()? },
                        ["c", job, qpu, wait, turn] => TicketState::Completed {
                            job_id: job.parse().ok()?,
                            qpu_index: qpu.parse().ok()?,
                            waiting_s: dec_f64(wait)?,
                            turnaround_s: dec_f64(turn)?,
                        },
                        ["r", "x"] => {
                            TicketState::Rejected { reason: RejectReason::RetriesExhausted }
                        }
                        ["r", "d"] => {
                            TicketState::Rejected { reason: RejectReason::DeadlineMissed }
                        }
                        ["r", "i"] => TicketState::Rejected { reason: RejectReason::Infeasible },
                        _ => return None,
                    };
                    let spec = dec_spec(fields.next()?)?;
                    service.tickets.insert(
                        ticket_id,
                        TicketRecord { tenant, submitted_s, attempts, spec, state },
                    );
                }
                "jobmap" => {
                    let map = fields.next()?;
                    if map != "-" {
                        for pair in map.split(',') {
                            let (job, ticket) = pair.split_once(':')?;
                            service.job_to_ticket.insert(job.parse().ok()?, ticket.parse().ok()?);
                        }
                    }
                }
                _ => return None,
            }
        }
        // Rebuild the derived indices from the decoded journal state — they
        // are never encoded, so replay exercises exactly this path.
        for (&id, tenant) in &service.tenants {
            service.registered_ids.push(id);
            if !tenant.queue.is_empty() || tenant.deficit > 0 {
                service.active.insert(id);
            }
            if matches!(tenant.slo, Some(slo) if slo.deadline_s.is_finite()) {
                service.slo_tenants.insert(id);
            }
            service.queued_total += tenant.queue.len();
        }
        Some(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qonductor_backend::Fleet;
    use qonductor_scheduler::{HybridScheduler, Nsga2Config, ScheduleTrigger, SchedulerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet(seed: u64) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed);
        Fleet::ibm_default(&mut rng)
    }

    fn scheduler() -> HybridScheduler {
        HybridScheduler::new(SchedulerConfig {
            nsga2: Nsga2Config {
                population_size: 16,
                max_generations: 8,
                max_evaluations: 800,
                num_threads: 1,
                ..Nsga2Config::default()
            },
            ..SchedulerConfig::default()
        })
    }

    fn spec(fleet: &Fleet, qubits: u32, exec_s: f64) -> JobSpec {
        JobSpec {
            qubits,
            shots: 1000,
            fidelity_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
                .collect(),
            exec_time_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { exec_s } else { f64::INFINITY })
                .collect(),
            estimate_epoch: fleet.calibration_epoch(),
        }
    }

    #[test]
    fn submit_is_non_blocking_and_polls_queued() {
        let fleet = small_fleet(1);
        let mut svc = SubmissionService::new();
        let tenant = svc.register_tenant(1);
        let t0 = svc.submit(tenant, spec(&fleet, 5, 10.0), 0.0).unwrap();
        let t1 = svc.submit(tenant, spec(&fleet, 5, 10.0), 1.0).unwrap();
        assert_eq!(svc.poll(t0), Some(TicketStatus::Queued { position: 0, attempts: 0 }));
        assert_eq!(svc.poll(t1), Some(TicketStatus::Queued { position: 1, attempts: 0 }));
        assert_eq!(svc.queued_len(tenant), 2);
        assert!(svc.submit(99, spec(&fleet, 5, 10.0), 0.0).is_err());
        assert!(svc.poll(JobTicket { tenant: 0, ticket: 999 }).is_none());
        // A handle with a forged tenant cannot read another tenant's status.
        assert!(svc.poll(JobTicket { tenant: 5, ticket: t0.ticket }).is_none());
    }

    #[test]
    fn admission_respects_weights_and_capacity() {
        let fleet = small_fleet(2);
        let mut svc = SubmissionService::new();
        let heavy = svc.register_tenant(2);
        let light = svc.register_tenant(1);
        for i in 0..20 {
            svc.submit(heavy, spec(&fleet, 5, 10.0), i as f64 * 0.01).unwrap();
            svc.submit(light, spec(&fleet, 5, 10.0), i as f64 * 0.01).unwrap();
        }
        // Pool capacity = trigger queue limit (6): one pass admits 4:2.
        let mut jm = JobManager::new(ScheduleTrigger::new(6, 1e12));
        let admitted = svc.admit(1.0, &mut jm);
        assert_eq!(admitted.len(), 6);
        assert_eq!(jm.pending_len(), 6);
        let heavy_count = admitted.iter().filter(|(t, _)| t.tenant == heavy).count();
        let light_count = admitted.iter().filter(|(t, _)| t.tenant == light).count();
        assert_eq!((heavy_count, light_count), (4, 2));
        // Admitted tickets poll as admitted, with engine job ids.
        for (ticket, job_id) in &admitted {
            assert_eq!(svc.poll(*ticket), Some(TicketStatus::Admitted { job_id: *job_id }));
        }
        // A full pool admits nothing more.
        assert!(svc.admit(2.0, &mut jm).is_empty());
    }

    #[test]
    fn in_flight_cap_limits_admission() {
        let fleet = small_fleet(3);
        let mut svc = SubmissionService::new();
        let tenant =
            svc.register_tenant_with(TenantConfig { weight: 1, max_in_flight: 2, max_retries: 0 });
        for _ in 0..5 {
            svc.submit(tenant, spec(&fleet, 5, 10.0), 0.0).unwrap();
        }
        // Pool capacity (5) exceeds the in-flight cap (2): the cap binds.
        let mut jm = JobManager::new(ScheduleTrigger::new(5, 50.0));
        assert_eq!(svc.admit(0.0, &mut jm).len(), 2, "cap of 2 in flight");
        assert_eq!(svc.queued_len(tenant), 3);
        // Completing the in-flight jobs frees slots for the next pass.
        let mut fleet = fleet;
        let batch = jm.try_dispatch(60.0, &scheduler(), &mut fleet).expect("interval fires");
        svc.note_batch(&batch);
        let mut rng = StdRng::seed_from_u64(9);
        fleet.advance_to(1e5, &mut rng);
        let done = jm.drain_completions(&mut fleet);
        let resolved = svc.note_completions(&done);
        assert_eq!(resolved.len(), 2);
        assert_eq!(svc.admit(1.0, &mut jm).len(), 2);
    }

    /// Regression for the DRR credit-loss bug: a tenant skipped for being at
    /// its in-flight cap must keep its earned service credit — clamped to one
    /// quantum — instead of silently losing it, and must converge back to its
    /// weighted share once the cap lifts.
    #[test]
    fn capped_tenant_keeps_bounded_credit_and_reconverges_to_its_share() {
        let fleet = small_fleet(5);
        let mut svc = SubmissionService::new();
        let heavy =
            svc.register_tenant_with(TenantConfig { weight: 2, max_in_flight: 6, max_retries: 0 });
        let light = svc.register_tenant_with(TenantConfig::weighted(1));
        let mut jm = JobManager::new(ScheduleTrigger::new(6, 1e12));
        let job = spec(&fleet, 5, 1.0);
        let qpu = job.exec_time_per_qpu.iter().position(|e| e.is_finite()).expect("feasible QPU");
        let mut fleet = fleet;

        // Phase 1 — only the heavy tenant is active: one pass fills its
        // in-flight cap, and the dispatched jobs stay in flight.
        for _ in 0..40 {
            svc.submit(heavy, job.clone(), 0.0).unwrap();
        }
        let burst = svc.admit(0.0, &mut jm);
        assert_eq!(burst.len(), 6, "the first pass fills the in-flight cap");
        for &(_, job_id) in &burst {
            assert!(jm.dispatch_direct(job_id, qpu, &mut fleet));
        }

        // While capped, every admission pass grants the quantum but clamps
        // the carried credit at exactly one quantum: not zeroed (the bug),
        // not compounding (unbounded post-cap burst).
        for pass in 1..=4 {
            assert!(svc.admit(pass as f64, &mut jm).is_empty(), "capped tenant admits nothing");
            assert_eq!(
                svc.tenants[&heavy].deficit, 2,
                "pass {pass}: carried credit is exactly one quantum"
            );
        }

        // The cap lifts: completions return the heavy tenant below its cap.
        let mut rng = StdRng::seed_from_u64(7);
        fleet.advance_to(100.0, &mut rng);
        assert_eq!(svc.note_completions(&jm.drain_completions(&mut fleet)).len(), 6);
        for _ in 0..40 {
            svc.submit(light, job.clone(), 100.0).unwrap();
        }

        // Post-lift passes: the carried quantum buys bounded catch-up on the
        // first pass, then steady state settles at the 2:1 weighted share.
        let (mut heavy_admitted, mut light_admitted) = (0usize, 0usize);
        for pass in 0..6 {
            let t = 200.0 + 100.0 * pass as f64;
            let admitted = svc.admit(t, &mut jm);
            assert_eq!(admitted.len(), 6, "uncapped passes fill the pool");
            heavy_admitted += admitted.iter().filter(|(t, _)| t.tenant == heavy).count();
            light_admitted += admitted.iter().filter(|(t, _)| t.tenant == light).count();
            for &(_, job_id) in &admitted {
                assert!(jm.dispatch_direct(job_id, qpu, &mut fleet));
            }
            fleet.advance_to(t + 50.0, &mut rng);
            svc.note_completions(&jm.drain_completions(&mut fleet));
        }
        let share = heavy_admitted as f64 / (heavy_admitted + light_admitted) as f64;
        assert!(
            (share - 2.0 / 3.0).abs() <= 0.0667,
            "heavy share {share:.3} must converge to 2:1 ±10% after the cap lifts \
             ({heavy_admitted}:{light_admitted})"
        );
    }

    #[test]
    fn rejected_jobs_retry_then_terminalize() {
        let mut fleet = small_fleet(4);
        let mut svc = SubmissionService::new();
        let tenant =
            svc.register_tenant_with(TenantConfig { weight: 1, max_in_flight: 16, max_retries: 1 });
        // 64 qubits fits no QPU: the scheduler rejects it every time.
        let doomed = svc.submit(tenant, spec(&fleet, 64, 10.0), 0.0).unwrap();
        let mut jm = JobManager::new(ScheduleTrigger::new(1, 1e12));
        let scheduler = scheduler();

        svc.admit(0.0, &mut jm);
        let batch = jm.try_dispatch(0.0, &scheduler, &mut fleet).expect("trigger fires");
        assert!(svc.note_batch(&batch).is_empty(), "first rejection re-queues");
        assert_eq!(svc.poll(doomed), Some(TicketStatus::Queued { position: 0, attempts: 1 }));

        svc.admit(1.0, &mut jm);
        let batch = jm.try_dispatch(1.0, &scheduler, &mut fleet).expect("trigger fires again");
        let terminal = svc.note_batch(&batch);
        assert_eq!(terminal, vec![doomed]);
        // 64 qubits fits no QPU: the terminal reason is Infeasible, not a
        // bare retries-exhausted.
        assert_eq!(
            svc.poll(doomed),
            Some(TicketStatus::Rejected { attempts: 2, reason: RejectReason::Infeasible })
        );
        let stats = svc.tenant_stats(tenant).unwrap();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.admitted, 2, "both admission events are counted");
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.queued, 0);
    }

    /// Satellite regression: `register_tenant(0)` used to yield a zero DRR
    /// quantum — the tenant's deficit never grew, so its tickets sat `Queued`
    /// forever. Registration clamps the weight to 1; the tenant makes
    /// progress.
    #[test]
    fn weight_zero_tenant_is_clamped_and_makes_progress() {
        let fleet = small_fleet(7);
        let mut svc = SubmissionService::new();
        let zero = svc.register_tenant(0);
        assert_eq!(svc.tenant_stats(zero).unwrap().weight, 1, "weight 0 clamps to 1");
        let configs = svc.tenant_configs();
        assert_eq!(configs[0].1.weight, 1);
        let ticket = svc.submit(zero, spec(&fleet, 5, 10.0), 0.0).unwrap();
        let mut jm = JobManager::new(ScheduleTrigger::new(4, 1e12));
        let admitted = svc.admit(1.0, &mut jm);
        assert_eq!(admitted.len(), 1, "the clamped tenant is admitted, not starved");
        assert!(matches!(svc.poll(ticket), Some(TicketStatus::Admitted { .. })));
        // Zero max_in_flight clamps the same way (it would also starve).
        let capped =
            svc.register_tenant_with(TenantConfig { weight: 0, max_in_flight: 0, max_retries: 0 });
        svc.submit(capped, spec(&fleet, 5, 10.0), 2.0).unwrap();
        assert_eq!(svc.admit(2.0, &mut jm).len(), 1, "max_in_flight 0 clamps to 1");
    }

    /// The SLO escalation lane: an urgent queued job jumps the DRR scan ahead
    /// of a heavier tenant's backlog, exactly once (no double-admit), with
    /// the `escalated` counter tracking it.
    #[test]
    fn escalation_jumps_the_drr_scan_without_double_admit() {
        let fleet = small_fleet(8);
        let mut svc = SubmissionService::new();
        let bulk = svc.register_tenant(8);
        let slo =
            svc.register_tenant_with_slo(TenantConfig::weighted(1), SloClass::with_deadline(30.0));
        assert_eq!(svc.tenant_slo(slo).map(|s| s.deadline_s), Some(30.0));
        assert_eq!(svc.tenant_slo(bulk), None);
        for i in 0..10 {
            svc.submit(bulk, spec(&fleet, 5, 5.0), i as f64 * 0.01).unwrap();
        }
        let urgent = svc.submit(slo, spec(&fleet, 5, 5.0), 1.0).unwrap();
        let mut jm = JobManager::new(ScheduleTrigger::new(4, 1e12));

        // Far from the deadline nothing escalates.
        assert!(svc.pending_escalations(2.0, 10.0, 4).is_empty());
        // At t=25 a 10 s horizon blows the deadline at 31: the ticket is due.
        let due = svc.pending_escalations(25.0, 10.0, 4);
        assert_eq!(due, vec![urgent]);
        let job_id = svc.apply_escalation(urgent, 25.0, &mut jm).expect("escalates");
        assert_eq!(svc.poll(urgent), Some(TicketStatus::Admitted { job_id }));
        assert_eq!(svc.tenant_stats(slo).unwrap().escalated, 1);
        // The escalated job carries its absolute deadline into the engine.
        assert_eq!(jm.pending().last().unwrap().deadline_s, 31.0);
        // No double admission: the ticket is no longer queued, so neither the
        // lane nor the DRR scan can pick it again.
        assert!(svc.pending_escalations(25.0, 10.0, 4).is_empty());
        assert!(svc.apply_escalation(urgent, 25.0, &mut jm).is_none(), "replay is a no-op");
        let before = jm.pending_len();
        let admitted = svc.admit(26.0, &mut jm);
        assert!(admitted.iter().all(|(t, _)| t.tenant == bulk), "only bulk jobs remain queued");
        assert_eq!(jm.pending_len(), before + admitted.len());
        // Conservation: every ticket is in exactly one place.
        let s = svc.tenant_stats(slo).unwrap();
        assert_eq!(s.queued as u64 + s.in_flight as u64 + s.completed + s.rejected, s.submitted);
    }

    /// Escalation order is deterministic — higher priority first, ticket id
    /// within a class — and bounded by the budget and in-flight caps.
    #[test]
    fn escalation_order_is_priority_then_ticket_id_and_respects_caps() {
        let fleet = small_fleet(9);
        let mut svc = SubmissionService::new();
        let gold = svc.register_tenant_with_slo(
            TenantConfig { weight: 1, max_in_flight: 1, max_retries: 0 },
            SloClass { deadline_s: 10.0, priority: 2, max_error: 0.05 },
        );
        let silver =
            svc.register_tenant_with_slo(TenantConfig::weighted(1), SloClass::with_deadline(10.0));
        let g0 = svc.submit(gold, spec(&fleet, 5, 5.0), 0.0).unwrap();
        let g1 = svc.submit(gold, spec(&fleet, 5, 5.0), 0.0).unwrap();
        let s0 = svc.submit(silver, spec(&fleet, 5, 5.0), 0.0).unwrap();
        // All three are overdue; gold outranks silver, but gold's in-flight
        // cap (1) admits only its first ticket; the budget (2) then takes the
        // silver one.
        let due = svc.pending_escalations(100.0, 10.0, 2);
        assert_eq!(due, vec![g0, s0]);
        let _ = g1;
    }

    /// Typed terminal rejections: a rejected job whose deadline has passed is
    /// `DeadlineMissed`; a feasible job that merely ran out of retries is
    /// `RetriesExhausted`.
    #[test]
    fn terminal_reject_reasons_distinguish_deadline_from_retries() {
        let fleet = small_fleet(10);
        let mut svc = SubmissionService::new();
        let slo = svc.register_tenant_with_slo(
            TenantConfig { weight: 1, max_in_flight: 4, max_retries: 0 },
            SloClass::with_deadline(5.0),
        );
        let plain =
            svc.register_tenant_with(TenantConfig { weight: 1, max_in_flight: 4, max_retries: 0 });
        let late = svc.submit(slo, spec(&fleet, 5, 5.0), 0.0).unwrap();
        let unlucky = svc.submit(plain, spec(&fleet, 5, 5.0), 0.0).unwrap();
        let mut jm = JobManager::new(ScheduleTrigger::new(2, 1e12));
        let admitted = svc.admit(1.0, &mut jm);
        assert_eq!(admitted.len(), 2);
        // Both jobs bounce at t=20 (past the SLO deadline at 5). The specs
        // are feasible, so the reasons split on the deadline.
        let rejected: Vec<JobId> = admitted.iter().map(|&(_, job)| job).collect();
        let terminal = svc.note_rejections(20.0, &rejected);
        assert_eq!(terminal.len(), 2);
        assert_eq!(
            svc.poll(late),
            Some(TicketStatus::Rejected { attempts: 1, reason: RejectReason::DeadlineMissed })
        );
        assert_eq!(
            svc.poll(unlucky),
            Some(TicketStatus::Rejected { attempts: 1, reason: RejectReason::RetriesExhausted })
        );
    }

    /// The state codec roundtrips bit for bit across a mixed lifecycle:
    /// queued, admitted, completed, and terminally rejected tickets, non-zero
    /// DRR deficits, and accumulated float accounting.
    #[test]
    fn state_encoding_roundtrips_bit_for_bit() {
        let mut fleet = small_fleet(6);
        let mut svc = SubmissionService::new();
        let a =
            svc.register_tenant_with(TenantConfig { weight: 3, max_in_flight: 2, max_retries: 0 });
        let b = svc.register_tenant_with(TenantConfig::weighted(1));
        for i in 0..4 {
            svc.submit(a, spec(&fleet, 5, 7.0), 0.1 * i as f64).unwrap();
            svc.submit(b, spec(&fleet, 5, 7.0), 0.1 * i as f64).unwrap();
        }
        svc.submit(a, spec(&fleet, 64, 1.0), 0.5).unwrap(); // will terminally reject
        let mut jm = JobManager::new(ScheduleTrigger::new(5, 40.0));
        let scheduler = scheduler();
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = 1.0;
        for _ in 0..4 {
            svc.admit(t, &mut jm);
            if let Some(batch) = jm.try_dispatch(t, &scheduler, &mut fleet) {
                svc.note_batch(&batch);
            }
            t += 41.0;
            fleet.advance_to(t, &mut rng);
            svc.note_completions(&jm.drain_completions(&mut fleet));
        }
        let encoded = svc.encode_state();
        let back = SubmissionService::decode_state(&encoded).expect("decodes");
        assert_eq!(back.encode_state(), encoded);
        assert_eq!(back.snapshot(), svc.snapshot());
        // The restored service keeps behaving identically.
        let mut live = svc;
        let mut restored = back;
        assert_eq!(
            live.submit(a, spec(&fleet, 5, 2.0), t).unwrap(),
            restored.submit(a, spec(&fleet, 5, 2.0), t).unwrap()
        );
        let mut jm_live = jm.clone();
        let mut jm_restored = jm;
        assert_eq!(live.admit(t, &mut jm_live), restored.admit(t, &mut jm_restored));
        assert_eq!(live.encode_state(), restored.encode_state());
    }

    #[test]
    fn ticket_conservation_across_the_lifecycle() {
        let mut fleet = small_fleet(5);
        let mut svc = SubmissionService::new();
        let a = svc.register_tenant(3);
        let b = svc.register_tenant(1);
        let mut tickets = Vec::new();
        for i in 0..12 {
            tickets.push(svc.submit(a, spec(&fleet, 5, 5.0), i as f64).unwrap());
            tickets.push(svc.submit(b, spec(&fleet, 5, 5.0), i as f64).unwrap());
        }
        let mut jm = JobManager::new(ScheduleTrigger::new(8, 5.0));
        let scheduler = scheduler();
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = 20.0;
        let mut guard = 0;
        while svc.total_queued() > 0 || jm.pending_len() > 0 {
            guard += 1;
            assert!(guard < 200, "drain loop must converge");
            svc.admit(t, &mut jm);
            if let Some(batch) = jm.try_dispatch(t, &scheduler, &mut fleet) {
                svc.note_batch(&batch);
            }
            t += 1.0;
            fleet.advance_to(t, &mut rng);
            svc.note_completions(&jm.drain_completions(&mut fleet));
        }
        fleet.advance_to(1e6, &mut rng);
        svc.note_completions(&jm.drain_completions(&mut fleet));
        for (id, stats) in svc.snapshot() {
            assert_eq!(
                stats.queued as u64 + stats.in_flight as u64 + stats.completed + stats.rejected,
                stats.submitted,
                "tenant {id} loses no tickets"
            );
            assert_eq!(stats.rejected, 0, "all jobs were feasible");
            assert_eq!(stats.completed, 12);
        }
        for ticket in tickets {
            assert!(
                matches!(svc.poll(ticket), Some(TicketStatus::Completed { .. })),
                "every ticket completes"
            );
        }
    }

    /// The DRR scan is O(active): with 10,000 registered tenants of which
    /// only 3 ever submit, an admission pass visits a handful of tenants —
    /// not the population — and admits exactly what the full scan would.
    #[test]
    fn admission_scan_is_o_active_not_o_registered() {
        let fleet = small_fleet(12);
        let mut svc = SubmissionService::new();
        let mut tenants = Vec::new();
        for i in 0..10_000u32 {
            tenants.push(svc.register_tenant(i % 3 + 1));
        }
        for &t in &[tenants[17], tenants[4_200], tenants[9_999]] {
            svc.submit(t, spec(&fleet, 5, 10.0), 0.0).unwrap();
            svc.submit(t, spec(&fleet, 5, 10.0), 0.0).unwrap();
        }
        assert_eq!(svc.total_queued(), 6);
        let mut jm = JobManager::new(ScheduleTrigger::new(16, 1e12));
        let admitted = svc.admit(1.0, &mut jm);
        assert_eq!(admitted.len(), 6, "every queued ticket is admitted");
        assert!(
            svc.admission_visits() <= 12,
            "visited {} tenants for 3 active ones — the scan is O(registered) again",
            svc.admission_visits()
        );
        assert_eq!(svc.total_queued(), 0);
        assert!(svc.indices_consistent());
        // A fully idle population costs one empty round, not a full scan.
        let before = svc.admission_visits();
        assert!(svc.admit(2.0, &mut jm).is_empty());
        assert_eq!(svc.admission_visits(), before, "an idle pass visits nobody");
    }

    /// Satellite regression: without a single SLO-classed tenant the
    /// escalation pass must do *zero* scan work — no candidate allocation,
    /// no tenant visits — instead of walking every registered tenant.
    #[test]
    fn slo_free_workloads_skip_the_escalation_scan_entirely() {
        let fleet = small_fleet(13);
        let mut svc = SubmissionService::new();
        for i in 0..500u32 {
            let t = svc.register_tenant(i % 2 + 1);
            svc.submit(t, spec(&fleet, 5, 10.0), 0.0).unwrap();
        }
        assert!(svc.pending_escalations(1e9, 1e9, usize::MAX).is_empty());
        assert_eq!(svc.escalation_visits(), 0, "no SLO class registered — zero scan work");
        // Registering one finite-deadline class bounds the scan to the index.
        let slo =
            svc.register_tenant_with_slo(TenantConfig::weighted(1), SloClass::with_deadline(5.0));
        let urgent = svc.submit(slo, spec(&fleet, 5, 10.0), 0.0).unwrap();
        assert_eq!(svc.pending_escalations(100.0, 10.0, 8), vec![urgent]);
        assert_eq!(svc.escalation_visits(), 1, "the scan visits only the SLO index");
        // An infinite deadline can never escalate and stays off the index.
        svc.register_tenant_with_slo(TenantConfig::weighted(1), SloClass::default());
        svc.pending_escalations(100.0, 10.0, 8);
        assert_eq!(svc.escalation_visits(), 2);
        assert!(svc.indices_consistent());
    }

    /// The derived indices survive the full lifecycle — including the
    /// escalation corner where a drained queue leaves an unspent deficit on
    /// the ring — and the codec rebuilds them from scratch.
    #[test]
    fn derived_indices_track_the_lifecycle_and_rebuild_on_decode() {
        let fleet = small_fleet(14);
        let mut svc = SubmissionService::new();
        let bulk = svc.register_tenant(4);
        let slo =
            svc.register_tenant_with_slo(TenantConfig::weighted(1), SloClass::with_deadline(10.0));
        for i in 0..6 {
            svc.submit(bulk, spec(&fleet, 5, 5.0), i as f64 * 0.1).unwrap();
        }
        let urgent = svc.submit(slo, spec(&fleet, 5, 5.0), 0.0).unwrap();
        assert!(svc.indices_consistent());
        let mut jm = JobManager::new(ScheduleTrigger::new(4, 1e12));
        // Escalate the SLO tenant's only ticket: its queue drains outside the
        // DRR scan, which must not corrupt the ring.
        svc.apply_escalation(urgent, 100.0, &mut jm).expect("escalates");
        assert!(svc.indices_consistent());
        svc.admit(101.0, &mut jm);
        assert!(svc.indices_consistent());
        // Bounce a job back and terminalize another: both queue paths.
        let rejected: Vec<JobId> = jm.pending().iter().map(|p| p.job_id).collect();
        svc.note_rejections(102.0, &rejected);
        assert!(svc.indices_consistent());
        let encoded = svc.encode_state();
        let rebuilt = SubmissionService::decode_state(&encoded).expect("decodes");
        assert!(rebuilt.indices_consistent(), "decode rebuilds every derived index");
        assert_eq!(rebuilt.total_queued(), svc.total_queued());
        assert_eq!(rebuilt.encode_state(), encoded);
    }
}
