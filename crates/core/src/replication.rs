//! Consensus-backed replication of the control-plane job state (§4): every
//! mutation of the [`JobManager`] pending pool and the [`SubmissionService`]
//! tenant queues flows through one journaled choke point — the
//! [`ReplicatedControlPlane`] — which appends a typed [`ControlPlaneEvent`] to
//! a quorum-replicated log *before* applying it locally. A fresh control-plane
//! replica rebuilds the exact state (`snapshot + log replay`) after a
//! failover, so a leader crash loses no pending jobs: every pre-crash
//! [`JobTicket`] still resolves through [`ReplicatedControlPlane::poll`].
//!
//! The workspace's offline serde shim erases wire formats, so the journal
//! brings its own text codec. Floats are encoded as IEEE-754 bit patterns in
//! hex ([`wire::enc_f64`]), which makes snapshot + replay reconstruction
//! **byte-for-byte** identical to the uninterrupted state — compare
//! [`ReplicatedControlPlane::state_digest`] before a crash and after
//! [`ReplicatedControlPlane::failover`] to prove it.

use crate::digest::{fnv128, Fnv128, FNV128_OFFSET};
use crate::jobmanager::{
    CalibrationPolicy, CompletedExecution, JobId, JobManager, JobSpec, PendingJob, TenantId,
};
use crate::submission::{
    JobTicket, SloClass, SubmissionError, SubmissionService, TenantConfig, TicketStatus,
};
use qonductor_backend::{CompletedJob, Fleet, ResourceClass};
use qonductor_consensus::{LogEntry, ReplicatedKvStore, ReplicatedLog, StoreElection, StoreError};
use qonductor_scheduler::{HybridScheduler, ScheduleTrigger};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::time::Instant;

/// Bit-exact text codecs shared by the journal and the state snapshots.
pub(crate) mod wire {
    use crate::jobmanager::JobSpec;

    /// Encode an `f64` as its IEEE-754 bit pattern in hex (bit-exact, `-0.0`,
    /// `NaN` payloads and all).
    pub(crate) fn enc_f64(value: f64) -> String {
        format!("{:016x}", value.to_bits())
    }

    /// Decode [`enc_f64`] output.
    pub(crate) fn dec_f64(field: &str) -> Option<f64> {
        u64::from_str_radix(field, 16).ok().map(f64::from_bits)
    }

    /// Encode an optional `f64` (`-` for `None`).
    pub(crate) fn enc_opt_f64(value: Option<f64>) -> String {
        value.map_or_else(|| "-".to_string(), enc_f64)
    }

    /// Decode [`enc_opt_f64`] output.
    pub(crate) fn dec_opt_f64(field: &str) -> Option<Option<f64>> {
        if field == "-" {
            Some(None)
        } else {
            dec_f64(field).map(Some)
        }
    }

    /// Encode a job spec as `qubits|shots|epoch|f_bits,..|t_bits,..` (no
    /// spaces, so a spec is a single field of a space-separated record).
    pub(crate) fn enc_spec(spec: &JobSpec) -> String {
        let join =
            |values: &[f64]| values.iter().map(|&v| enc_f64(v)).collect::<Vec<_>>().join(",");
        format!(
            "{}|{}|{}|{}|{}",
            spec.qubits,
            spec.shots,
            spec.estimate_epoch,
            join(&spec.fidelity_per_qpu),
            join(&spec.exec_time_per_qpu)
        )
    }

    /// Decode [`enc_spec`] output.
    pub(crate) fn dec_spec(field: &str) -> Option<JobSpec> {
        let mut parts = field.split('|');
        let qubits = parts.next()?.parse().ok()?;
        let shots = parts.next()?.parse().ok()?;
        let estimate_epoch = parts.next()?.parse().ok()?;
        let split = |segment: &str| -> Option<Vec<f64>> {
            if segment.is_empty() {
                return Some(Vec::new());
            }
            segment.split(',').map(dec_f64).collect()
        };
        let fidelity_per_qpu = split(parts.next()?)?;
        let exec_time_per_qpu = split(parts.next()?)?;
        if parts.next().is_some() {
            return None;
        }
        Some(JobSpec { qubits, shots, fidelity_per_qpu, exec_time_per_qpu, estimate_epoch })
    }
}

/// One journaled control-plane state transition. Replaying the sequence of
/// events (from a snapshot baseline) deterministically reproduces the
/// [`JobManager`] + [`SubmissionService`] pair, because every non-journaled
/// computation they perform (deficit-round-robin admission, ticket/job id
/// assignment) is a pure function of the state the journal already covers.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlPlaneEvent {
    /// A tenant registered with the submission service.
    TenantRegistered {
        /// The tenant's admission configuration.
        config: TenantConfig,
        /// The tenant's SLO class, if registered with one — journaled so a
        /// failover replays the registration (and every later escalation
        /// decision derived from it) byte-for-byte.
        slo: Option<SloClass>,
    },
    /// A queued ticket jumped the DRR scan through the SLO bypass lane: its
    /// deadline would be missed by waiting one more trigger interval. The
    /// admission itself is a deterministic function of the ticket + instant,
    /// so the pair pins the escalation for byte-exact failover replay.
    SloEscalated {
        /// Simulated time of the escalation.
        now_s: f64,
        /// The escalated ticket.
        ticket: JobTicket,
    },
    /// The autoscaler grew elastic capacity: a QPU at `qpu_index` of
    /// `class` joined the fleet. Journaled *before* the fleet mutates
    /// (write-ahead), so replay reconstructs the exact elastic set.
    QpuProvisioned {
        /// Simulated time of the scaling decision.
        now_s: f64,
        /// Fleet index the elastic QPU occupies.
        qpu_index: usize,
        /// Resource class of the provisioned capacity.
        class: ResourceClass,
    },
    /// The autoscaler shrank elastic capacity: the QPU at `qpu_index` left
    /// the fleet.
    QpuRetired {
        /// Simulated time of the scaling decision.
        now_s: f64,
        /// Fleet index the retired QPU occupied.
        qpu_index: usize,
    },
    /// A job entered a tenant's FIFO queue.
    JobSubmitted {
        /// The submitting tenant.
        tenant: TenantId,
        /// The job payload.
        spec: JobSpec,
        /// Simulated submission time.
        now_s: f64,
    },
    /// One weighted-fair admission pass ran (its outcome is a deterministic
    /// function of the state, so only the instant is journaled).
    AdmissionPass {
        /// Simulated time of the pass.
        now_s: f64,
    },
    /// The trigger fired and a batch was dispatched: `placed` jobs left the
    /// pool onto QPU queues (minus the `deferred` set), `rejected` jobs were
    /// bounced by the scheduler, and `deferred` jobs were pulled out at a
    /// recalibration boundary — they stay pending, parked until the boundary
    /// (the typed split decision, replayed byte-for-byte on failover).
    BatchDispatched {
        /// Simulated dispatch time.
        t_s: f64,
        /// `(job id, QPU index)` placements, in scheduler outcome order.
        placed: Vec<(JobId, usize)>,
        /// Scheduler-rejected job ids.
        rejected: Vec<JobId>,
        /// `(job id, boundary)` calibration-crossover deferrals (§7).
        deferred: Vec<(JobId, f64)>,
        /// Whether the batch adopted a plan-ahead speculative schedule
        /// (observability only: the placements above already pin the outcome,
        /// which is bit-identical to the live-scheduled path by construction).
        speculative: bool,
    },
    /// A pending job's estimate table was recomputed against a fresh
    /// calibration snapshot (the new spec carries its epoch stamp).
    JobReestimated {
        /// The engine-assigned job id.
        job_id: JobId,
        /// The recomputed estimates.
        spec: JobSpec,
    },
    /// A job was placed directly onto a QPU queue, bypassing the trigger and
    /// the optimizer (the FCFS / least-busy baseline path).
    DirectDispatched {
        /// The engine-assigned job id.
        job_id: JobId,
        /// Index of the QPU it was enqueued on.
        qpu_index: usize,
    },
    /// A dispatched job finished executing on a QPU.
    JobCompleted {
        /// The engine-assigned job id.
        job_id: JobId,
        /// Index of the QPU the job ran on.
        qpu_index: usize,
        /// Simulated enqueue time on the QPU queue.
        enqueue_s: f64,
        /// Simulated execution start time.
        start_s: f64,
        /// Simulated finish time.
        finish_s: f64,
    },
    /// This control-plane shard was granted a lease on one fleet QPU by the
    /// shared fleet allocator. Journaled on the *granting* shard (the shard
    /// that will submit to the QPU) **before** the lease is used, so a crash
    /// between grant and first use replays the grant — capacity is neither
    /// leaked (the rebuilt shard still holds the lease) nor double-granted
    /// (the allocator is rebuilt from the per-shard lease sets and rejects
    /// overlaps).
    LeaseGranted {
        /// Index of the leased QPU in the shared fleet.
        qpu_index: usize,
    },
    /// This shard returned a QPU lease to the shared fleet allocator.
    LeaseReleased {
        /// Index of the released QPU in the shared fleet.
        qpu_index: usize,
    },
}

impl LogEntry for ControlPlaneEvent {
    fn encode(&self) -> String {
        use wire::{enc_f64, enc_spec};
        match self {
            ControlPlaneEvent::TenantRegistered { config, slo } => {
                let base = format!(
                    "treg {} {} {}",
                    config.weight, config.max_in_flight, config.max_retries
                );
                match slo {
                    // SLO-free registrations keep the historical three-field
                    // format, so pre-SLO journals still decode.
                    None => base,
                    Some(slo) => format!(
                        "{base} {}:{}:{}",
                        enc_f64(slo.deadline_s),
                        slo.priority,
                        enc_f64(slo.max_error)
                    ),
                }
            }
            ControlPlaneEvent::SloEscalated { now_s, ticket } => {
                format!("sesc {} {}:{}", enc_f64(*now_s), ticket.tenant, ticket.ticket)
            }
            ControlPlaneEvent::QpuProvisioned { now_s, qpu_index, class } => {
                let class = match class {
                    ResourceClass::Superconducting => "sc",
                    ResourceClass::IonTrap => "ion",
                    ResourceClass::Simulator => "sim",
                };
                format!("qprv {} {qpu_index} {class}", enc_f64(*now_s))
            }
            ControlPlaneEvent::QpuRetired { now_s, qpu_index } => {
                format!("qret {} {qpu_index}", enc_f64(*now_s))
            }
            ControlPlaneEvent::JobSubmitted { tenant, spec, now_s } => {
                format!("subm {tenant} {} {}", enc_f64(*now_s), enc_spec(spec))
            }
            ControlPlaneEvent::AdmissionPass { now_s } => format!("admt {}", enc_f64(*now_s)),
            ControlPlaneEvent::BatchDispatched { t_s, placed, rejected, deferred, speculative } => {
                let placed = if placed.is_empty() {
                    "-".to_string()
                } else {
                    placed
                        .iter()
                        .map(|(job, qpu)| format!("{job}:{qpu}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let rejected = if rejected.is_empty() {
                    "-".to_string()
                } else {
                    rejected.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
                };
                let deferred = if deferred.is_empty() {
                    "-".to_string()
                } else {
                    deferred
                        .iter()
                        .map(|(job, boundary)| format!("{job}:{}", enc_f64(*boundary)))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let spec_flag = if *speculative { "s" } else { "l" };
                format!("disp {} {placed} {rejected} {deferred} {spec_flag}", enc_f64(*t_s))
            }
            ControlPlaneEvent::JobReestimated { job_id, spec } => {
                format!("rest {job_id} {}", enc_spec(spec))
            }
            ControlPlaneEvent::DirectDispatched { job_id, qpu_index } => {
                format!("dird {job_id} {qpu_index}")
            }
            ControlPlaneEvent::JobCompleted { job_id, qpu_index, enqueue_s, start_s, finish_s } => {
                format!(
                    "done {job_id} {qpu_index} {} {} {}",
                    enc_f64(*enqueue_s),
                    enc_f64(*start_s),
                    enc_f64(*finish_s)
                )
            }
            ControlPlaneEvent::LeaseGranted { qpu_index } => format!("lgr {qpu_index}"),
            ControlPlaneEvent::LeaseReleased { qpu_index } => format!("lrl {qpu_index}"),
        }
    }

    fn decode(line: &str) -> Option<Self> {
        use wire::{dec_f64, dec_spec};
        let mut fields = line.split(' ');
        let event = match fields.next()? {
            "treg" => {
                let config = TenantConfig {
                    weight: fields.next()?.parse().ok()?,
                    max_in_flight: fields.next()?.parse().ok()?,
                    max_retries: fields.next()?.parse().ok()?,
                };
                let slo = match fields.next() {
                    None => None,
                    Some(field) => match field.split(':').collect::<Vec<_>>()[..] {
                        [deadline, priority, max_error] => Some(SloClass {
                            deadline_s: dec_f64(deadline)?,
                            priority: priority.parse().ok()?,
                            max_error: dec_f64(max_error)?,
                        }),
                        _ => return None,
                    },
                };
                ControlPlaneEvent::TenantRegistered { config, slo }
            }
            "sesc" => {
                let now_s = dec_f64(fields.next()?)?;
                let (tenant, ticket) = fields.next()?.split_once(':')?;
                ControlPlaneEvent::SloEscalated {
                    now_s,
                    ticket: JobTicket {
                        tenant: tenant.parse().ok()?,
                        ticket: ticket.parse().ok()?,
                    },
                }
            }
            "qprv" => ControlPlaneEvent::QpuProvisioned {
                now_s: dec_f64(fields.next()?)?,
                qpu_index: fields.next()?.parse().ok()?,
                class: match fields.next()? {
                    "sc" => ResourceClass::Superconducting,
                    "ion" => ResourceClass::IonTrap,
                    "sim" => ResourceClass::Simulator,
                    _ => return None,
                },
            },
            "qret" => ControlPlaneEvent::QpuRetired {
                now_s: dec_f64(fields.next()?)?,
                qpu_index: fields.next()?.parse().ok()?,
            },
            "subm" => ControlPlaneEvent::JobSubmitted {
                tenant: fields.next()?.parse().ok()?,
                now_s: dec_f64(fields.next()?)?,
                spec: dec_spec(fields.next()?)?,
            },
            "admt" => ControlPlaneEvent::AdmissionPass { now_s: dec_f64(fields.next()?)? },
            "disp" => {
                let t_s = dec_f64(fields.next()?)?;
                let placed_field = fields.next()?;
                let placed = if placed_field == "-" {
                    Vec::new()
                } else {
                    placed_field
                        .split(',')
                        .map(|pair| {
                            let (job, qpu) = pair.split_once(':')?;
                            Some((job.parse().ok()?, qpu.parse().ok()?))
                        })
                        .collect::<Option<Vec<_>>>()?
                };
                let rejected_field = fields.next()?;
                let rejected = if rejected_field == "-" {
                    Vec::new()
                } else {
                    rejected_field
                        .split(',')
                        .map(|id| id.parse().ok())
                        .collect::<Option<Vec<_>>>()?
                };
                let deferred_field = fields.next()?;
                let deferred = if deferred_field == "-" {
                    Vec::new()
                } else {
                    deferred_field
                        .split(',')
                        .map(|pair| {
                            let (job, boundary) = pair.split_once(':')?;
                            Some((job.parse().ok()?, dec_f64(boundary)?))
                        })
                        .collect::<Option<Vec<_>>>()?
                };
                let speculative = match fields.next()? {
                    "s" => true,
                    "l" => false,
                    _ => return None,
                };
                ControlPlaneEvent::BatchDispatched { t_s, placed, rejected, deferred, speculative }
            }
            "rest" => ControlPlaneEvent::JobReestimated {
                job_id: fields.next()?.parse().ok()?,
                spec: dec_spec(fields.next()?)?,
            },
            "dird" => ControlPlaneEvent::DirectDispatched {
                job_id: fields.next()?.parse().ok()?,
                qpu_index: fields.next()?.parse().ok()?,
            },
            "done" => ControlPlaneEvent::JobCompleted {
                job_id: fields.next()?.parse().ok()?,
                qpu_index: fields.next()?.parse().ok()?,
                enqueue_s: dec_f64(fields.next()?)?,
                start_s: dec_f64(fields.next()?)?,
                finish_s: dec_f64(fields.next()?)?,
            },
            "lgr" => ControlPlaneEvent::LeaseGranted { qpu_index: fields.next()?.parse().ok()? },
            "lrl" => ControlPlaneEvent::LeaseReleased { qpu_index: fields.next()?.parse().ok()? },
            _ => return None,
        };
        if fields.next().is_some() {
            return None;
        }
        Some(event)
    }
}

/// Errors surfaced by the replicated control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationError {
    /// The replicated store rejected the journal write (e.g. no quorum).
    Store(StoreError),
    /// The submission-side validation failed (e.g. unknown tenant).
    Submission(SubmissionError),
}

impl From<StoreError> for ReplicationError {
    fn from(e: StoreError) -> Self {
        ReplicationError::Store(e)
    }
}

impl From<SubmissionError> for ReplicationError {
    fn from(e: SubmissionError) -> Self {
        ReplicationError::Submission(e)
    }
}

/// Errors surfaced by [`ReplicatedControlPlane::failover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverError {
    /// No leader could be elected (a majority of control replicas is down).
    NoLeader,
    /// The store holds no snapshot to rebuild from.
    MissingSnapshot,
    /// The snapshot or a journal entry failed to decode.
    CorruptState,
}

/// The result of one journaled, trigger-gated batch dispatch.
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// The engine's batch record (placements, Pareto front, timings).
    pub record: crate::jobmanager::BatchRecord,
    /// Tickets whose retry budget is now exhausted (terminally rejected).
    pub terminal_rejections: Vec<JobTicket>,
}

/// The journaled control plane: a [`JobManager`] + [`SubmissionService`] pair
/// whose every state transition is appended to a quorum-replicated log before
/// it is applied, with leadership decided *inside* the store: the leader
/// lease is a CAS'd key in the same quorum KV that holds the journal
/// ([`StoreElection`]), so election and data share one fault domain — there
/// is no window where an election cluster has a leader the data replicas
/// cannot serve.
///
/// Write-ahead discipline: journal first, apply second — so the replicated
/// log can only ever be *ahead* of the volatile state, never behind, and a
/// crash between the two replays the tail event idempotently on recovery.
/// ([`Self::try_dispatch`] is the one post-hoc journal: the scheduler outcome
/// must be computed to be journaled, so it pre-checks quorum instead.)
///
/// In a sharded deployment ([`crate::sharding::ShardedControlPlane`]) each
/// shard is one `ReplicatedControlPlane` that additionally journals the QPU
/// leases it holds from the shared fleet allocator
/// ([`crate::fleetlease::FleetAllocator`]); [`Self::leases`] is rebuilt by
/// `snapshot + log replay` exactly like the engine state.
#[derive(Debug)]
pub struct ReplicatedControlPlane {
    election: StoreElection,
    log: ReplicatedLog<ControlPlaneEvent>,
    jobmanager: JobManager,
    submissions: SubmissionService,
    /// Fleet QPU indices this shard currently leases (journaled state).
    leases: BTreeSet<usize>,
    /// Fleet QPU indices holding autoscaler-provisioned elastic capacity
    /// (journaled state, rebuilt on failover like the lease set).
    elastic: BTreeSet<usize>,
    /// Group-commit journaling: when set (the default), an `admit` or
    /// completion-accounting cycle stages its events and commits them in one
    /// quorum round via [`ReplicatedLog::append_all`]; when cleared, every
    /// event pays its own quorum round (the historical path, kept live so CI
    /// can assert both paths write byte-identical journals).
    group_commit: bool,
    /// FNV-1a-128 of the full-encode payload installed at the last snapshot
    /// (genesis included) — the anchor of the incremental state digest.
    digest_checkpoint: Cell<u128>,
    /// Rolling FNV-1a-128 over every journaled event line since that
    /// checkpoint. `(checkpoint, rolling)` together identify the state:
    /// same anchor bytes + same journaled suffix ⇒ same replayed state.
    digest_rolling: Cell<u128>,
    /// Cumulative wall time spent inside quorum journal writes (phase-timing
    /// observability; never read by control flow).
    journal_ns: Cell<u64>,
}

impl ReplicatedControlPlane {
    /// A control plane whose engine is gated by `trigger` (calibration-naive
    /// dispatch), journaling to a fresh store of `2f + 1` replicas, with
    /// `2f + 1` electable control nodes whose leader lease lives in that same
    /// store. Installs a genesis snapshot so a replica can always rebuild,
    /// and elects the initial leader. (`_seed` is retained for API
    /// compatibility with the old message-passing election; the in-store
    /// election is deterministic.)
    pub fn new(trigger: ScheduleTrigger, fault_tolerance: usize, _seed: u64) -> Self {
        Self::with_policy(trigger, CalibrationPolicy::default(), fault_tolerance, _seed)
    }

    /// [`Self::new`] with an explicit calibration policy for the batch engine
    /// (the policy is part of the genesis snapshot, so rebuilt replicas split
    /// batches exactly like the original).
    pub fn with_policy(
        trigger: ScheduleTrigger,
        policy: CalibrationPolicy,
        fault_tolerance: usize,
        _seed: u64,
    ) -> Self {
        let store = ReplicatedKvStore::new(fault_tolerance);
        let log = ReplicatedLog::new(store.clone(), "ctl");
        let mut election = StoreElection::new(store, "ctl", 2 * fault_tolerance + 1);
        election.run_until_leader(2_000);
        let plane = ReplicatedControlPlane {
            election,
            log,
            jobmanager: JobManager::new(trigger).with_calibration_policy(policy),
            submissions: SubmissionService::new(),
            leases: BTreeSet::new(),
            elastic: BTreeSet::new(),
            group_commit: true,
            digest_checkpoint: Cell::new(FNV128_OFFSET),
            digest_rolling: Cell::new(FNV128_OFFSET),
            journal_ns: Cell::new(0),
        };
        let genesis = plane.encode_state();
        plane.log.install_snapshot(&genesis, 0).expect("fresh store has a quorum");
        plane.digest_checkpoint.set(fnv128(genesis.as_bytes()));
        plane
    }

    /// Toggle group-commit journaling (see [`Self::group_commit`]). Both
    /// settings write byte-identical journals; only the number of quorum
    /// rounds per cycle differs.
    pub fn set_group_commit(&mut self, enabled: bool) {
        self.group_commit = enabled;
    }

    /// Whether admission/completion cycles batch their journal writes.
    pub fn group_commit(&self) -> bool {
        self.group_commit
    }

    /// Cumulative nanoseconds spent in quorum journal writes (phase-timing
    /// observability).
    pub fn journal_nanos(&self) -> u64 {
        self.journal_ns.get()
    }

    /// Journal one event: a timed quorum append, folded into the rolling
    /// digest only once durably committed (a failed append must not advance
    /// the digest — the state it fingerprints never changed).
    fn journal(&self, event: &ControlPlaneEvent) -> Result<u64, StoreError> {
        let started = Instant::now();
        let result = self.log.append(event);
        self.journal_ns.set(self.journal_ns.get() + started.elapsed().as_nanos() as u64);
        if result.is_ok() {
            self.absorb(std::slice::from_ref(event));
        }
        result
    }

    /// Journal a staged batch atomically in one quorum round
    /// ([`ReplicatedLog::append_all`]): either every event commits or none
    /// does, and the rolling digest advances only in the former case. The
    /// absorbed bytes are each event's encoded line plus `'\n'`, exactly what
    /// [`Self::journal`] absorbs per event, so batched and per-event paths
    /// roll to the same digest.
    fn journal_all(&self, events: &[ControlPlaneEvent]) -> Result<u64, StoreError> {
        let started = Instant::now();
        let result = self.log.append_all(events);
        self.journal_ns.set(self.journal_ns.get() + started.elapsed().as_nanos() as u64);
        if result.is_ok() {
            self.absorb(events);
        }
        result
    }

    /// Fold committed events into the rolling digest.
    fn absorb(&self, events: &[ControlPlaneEvent]) {
        let mut rolling = Fnv128::from_state(self.digest_rolling.get());
        for event in events {
            rolling.absorb(event.encode().as_bytes());
            rolling.absorb(b"\n");
        }
        self.digest_rolling.set(rolling.value());
    }

    /// The batch engine (read-only; every mutation goes through the journal).
    pub fn jobmanager(&self) -> &JobManager {
        &self.jobmanager
    }

    /// The submission service (read-only; every mutation goes through the
    /// journal).
    pub fn submissions(&self) -> &SubmissionService {
        &self.submissions
    }

    /// The in-store leader election (the leader lease lives in the same
    /// quorum KV as the journal).
    pub fn election(&self) -> &StoreElection {
        &self.election
    }

    /// The journal.
    pub fn log(&self) -> &ReplicatedLog<ControlPlaneEvent> {
        &self.log
    }

    /// The replicated store backing the journal (crash/recover replicas here
    /// to fault-inject the storage tier).
    pub fn store(&self) -> &ReplicatedKvStore {
        self.log.store()
    }

    /// The current control-plane leader, if one holds a live lease in the
    /// store.
    pub fn leader(&self) -> Option<usize> {
        self.election.leader()
    }

    /// Register a tenant with the given weight (journaled).
    pub fn register_tenant(&mut self, weight: u32) -> Result<TenantId, ReplicationError> {
        self.register_tenant_with(TenantConfig::weighted(weight))
    }

    /// Register a tenant with an explicit configuration (journaled).
    pub fn register_tenant_with(
        &mut self,
        config: TenantConfig,
    ) -> Result<TenantId, ReplicationError> {
        self.journal(&ControlPlaneEvent::TenantRegistered { config, slo: None })?;
        Ok(self.submissions.register_tenant_with(config))
    }

    /// Register a tenant with an SLO class (journaled — the class rides the
    /// registration event so failover replays every later escalation decision
    /// derived from it).
    pub fn register_tenant_with_slo(
        &mut self,
        config: TenantConfig,
        slo: SloClass,
    ) -> Result<TenantId, ReplicationError> {
        self.journal(&ControlPlaneEvent::TenantRegistered { config, slo: Some(slo) })?;
        Ok(self.submissions.register_tenant_with_slo(config, slo))
    }

    /// Non-blocking submission into the tenant's FIFO queue (journaled).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        spec: JobSpec,
        now_s: f64,
    ) -> Result<JobTicket, ReplicationError> {
        if self.submissions.tenant_stats(tenant).is_none() {
            return Err(SubmissionError::UnknownTenant(tenant).into());
        }
        self.journal(&ControlPlaneEvent::JobSubmitted { tenant, spec: spec.clone(), now_s })?;
        Ok(self.submissions.submit(tenant, spec, now_s).expect("tenant checked above"))
    }

    /// Observe a ticket's progress (read-only, served locally).
    pub fn poll(&self, ticket: JobTicket) -> Option<TicketStatus> {
        self.submissions.poll(ticket)
    }

    /// One weighted-fair admission pass into the engine's pending pool
    /// (journaled — the pass itself is deterministic given the state, so only
    /// its instant is logged). A pass with every tenant queue empty is
    /// skipped entirely — no journal entry *and* no local pass (the skip must
    /// cover both sides: even an empty pass would advance the round-robin
    /// cursor, and a journal/local mismatch would desynchronize replay) — so
    /// idle periods do not grow the journal or the failover replay backlog.
    /// The SLO bypass lane runs *before* the DRR pass: queued tickets whose
    /// deadline would be missed by waiting one more trigger interval jump the
    /// scan, each journaled as a typed [`ControlPlaneEvent::SloEscalated`]
    /// event (write-ahead) so failover replays the exact escalation sequence.
    ///
    /// Under group commit the whole cycle — every escalation plus the
    /// optional `AdmissionPass` — is staged and committed in ONE quorum round
    /// before anything is applied locally. The journal bytes, keys, and
    /// ordering are identical to the per-event path; a crash between stage
    /// and commit leaves the log at its pre-batch state, so replay lands on
    /// the pre-batch bytes (the chaos matrix proves this). The DRR guard is
    /// decidable before applying: every ticket the escalation scan yields is
    /// pre-validated (queued, SLO-classed, within its tenant's in-flight
    /// budget, counted cumulatively per tenant) so each applies successfully
    /// and removes exactly one queued ticket — the post-escalation queue
    /// depth is `total_queued() - escalations.len()`, no application needed.
    pub fn admit(&mut self, now_s: f64) -> Result<Vec<(JobTicket, JobId)>, ReplicationError> {
        if self.submissions.tenant_count() == 0 || self.submissions.total_queued() == 0 {
            return Ok(Vec::new());
        }
        let mut admitted = Vec::new();
        let trigger = *self.jobmanager.trigger();
        let horizon_s = trigger.interval_s + trigger.slo_margin_s;
        let budget = trigger.queue_limit.saturating_sub(self.jobmanager.pending_len());
        let escalations = self.submissions.pending_escalations(now_s, horizon_s, budget);
        if self.group_commit {
            let mut staged: Vec<ControlPlaneEvent> = escalations
                .iter()
                .map(|&ticket| ControlPlaneEvent::SloEscalated { now_s, ticket })
                .collect();
            let run_pass = self.submissions.total_queued() > escalations.len();
            if run_pass {
                staged.push(ControlPlaneEvent::AdmissionPass { now_s });
            }
            self.journal_all(&staged)?;
            for ticket in escalations {
                if let Some(job_id) =
                    self.submissions.apply_escalation(ticket, now_s, &mut self.jobmanager)
                {
                    admitted.push((ticket, job_id));
                }
            }
            debug_assert_eq!(
                run_pass,
                self.submissions.total_queued() > 0,
                "escalation tickets are pre-validated: each must drain exactly one queued ticket"
            );
            if run_pass {
                admitted.extend(self.submissions.admit(now_s, &mut self.jobmanager));
            }
        } else {
            for ticket in escalations {
                self.journal(&ControlPlaneEvent::SloEscalated { now_s, ticket })?;
                if let Some(job_id) =
                    self.submissions.apply_escalation(ticket, now_s, &mut self.jobmanager)
                {
                    admitted.push((ticket, job_id));
                }
            }
            // The escalations may have drained every queue; the skip guard
            // applies to the DRR pass exactly as it would on an idle call.
            if self.submissions.total_queued() > 0 {
                self.journal(&ControlPlaneEvent::AdmissionPass { now_s })?;
                admitted.extend(self.submissions.admit(now_s, &mut self.jobmanager));
            }
        }
        Ok(admitted)
    }

    /// One trigger-gated scheduling cycle: dispatch the pool as a batch onto
    /// the fleet queues, journal the state delta (placements + rejections),
    /// and account the batch with the submission service. Returns `Ok(None)`
    /// when the trigger does not fire. Fails *before* dispatching if the
    /// journal has no quorum, so volatile state never runs ahead of the log.
    ///
    /// The quorum pre-check and the post-scheduling append are not one atomic
    /// step: fault injection that crashes store replicas from *another
    /// thread* mid-call can defeat the pre-check and panic the post-hoc
    /// append with jobs already enqueued. Crash/recover replicas between
    /// control-plane calls (as every suite here does), not concurrently with
    /// them.
    pub fn try_dispatch(
        &mut self,
        now_s: f64,
        scheduler: &HybridScheduler,
        fleet: &mut Fleet,
    ) -> Result<Option<DispatchOutcome>, ReplicationError> {
        if !self.log.store().has_quorum() {
            return Err(StoreError::NoQuorum.into());
        }
        let Some(record) = self.jobmanager.try_dispatch(now_s, scheduler, fleet) else {
            return Ok(None);
        };
        let placed: Vec<(JobId, usize)> =
            record.outcome.placements.iter().map(|p| (p.job_id, p.qpu_index)).collect();
        self.journal(&ControlPlaneEvent::BatchDispatched {
            t_s: now_s,
            placed,
            rejected: record.outcome.rejected_jobs.clone(),
            deferred: record.deferred.clone(),
            speculative: record.speculative,
        })
        .expect("quorum pre-checked");
        let terminal_rejections = self.submissions.note_batch(&record);
        Ok(Some(DispatchOutcome { record, terminal_rejections }))
    }

    /// Speculatively schedule the batch a trigger firing at `plan_for_s`
    /// would dispatch (plan-ahead pipelining). The plan is a volatile hint
    /// cached inside the job manager — it is *not* journaled, because it
    /// changes no replicated state: only its *adoption* is observable, and
    /// that rides the next `BatchDispatched` event. A failover simply drops
    /// the cache and the next cycle schedules live, with a bit-identical
    /// outcome. Returns whether a plan was cached.
    pub fn plan_ahead(
        &mut self,
        plan_for_s: f64,
        scheduler: &HybridScheduler,
        fleet: &Fleet,
    ) -> bool {
        self.jobmanager.plan_ahead(plan_for_s, scheduler, fleet)
    }

    /// Place one pending job directly onto a QPU queue, bypassing the
    /// trigger and the optimizer (journaled — the baseline path of the cloud
    /// simulation). Returns `Ok(false)`, journaling nothing, if the job is
    /// not pending or the QPU cannot run it.
    pub fn dispatch_direct(
        &mut self,
        job_id: JobId,
        qpu_index: usize,
        fleet: &mut Fleet,
    ) -> Result<bool, ReplicationError> {
        if !self.jobmanager.can_dispatch_direct(job_id, qpu_index) {
            return Ok(false);
        }
        self.journal(&ControlPlaneEvent::DirectDispatched { job_id, qpu_index })?;
        let dispatched = self.jobmanager.dispatch_direct(job_id, qpu_index, fleet);
        debug_assert!(dispatched, "dispatch pre-validated");
        Ok(dispatched)
    }

    /// Pending jobs whose estimate tables are stale against `fleet_epoch`
    /// (served locally; see [`JobManager::stale_pending`]).
    pub fn stale_pending(&self, fleet_epoch: u64) -> Vec<JobId> {
        self.jobmanager.stale_pending(fleet_epoch)
    }

    /// A pending job by id (read-only), for callers recomputing estimates.
    pub fn pending_job(&self, job_id: JobId) -> Option<&PendingJob> {
        self.jobmanager.pending().iter().find(|j| j.job_id == job_id)
    }

    /// Replace a pending job's estimate table with one recomputed against a
    /// fresh calibration snapshot (journaled, so failover replays the
    /// re-estimation and the rebuilt pool carries the same estimates).
    /// Returns `Ok(false)`, journaling nothing, if the job is not pending.
    pub fn reestimate_job(
        &mut self,
        job_id: JobId,
        spec: JobSpec,
    ) -> Result<bool, ReplicationError> {
        if self.pending_job(job_id).is_none() {
            return Ok(false);
        }
        self.journal(&ControlPlaneEvent::JobReestimated { job_id, spec: spec.clone() })?;
        Ok(self.jobmanager.reestimate(job_id, spec))
    }

    /// Drain completion records from the fleet queues (data-plane state; no
    /// journal entry until [`Self::note_completions`] resolves tickets).
    pub fn drain_completions(&mut self, fleet: &mut Fleet) -> Vec<CompletedExecution> {
        self.jobmanager.drain_completions(fleet)
    }

    /// Account drained completions (journaled per resolved ticket — one
    /// atomic quorum round for the whole drain under group commit) and return
    /// the `(ticket, completion)` pairs this control plane admitted.
    pub fn note_completions(
        &mut self,
        completions: &[CompletedExecution],
    ) -> Result<Vec<(JobTicket, CompletedExecution)>, ReplicationError> {
        let events: Vec<ControlPlaneEvent> = completions
            .iter()
            .filter(|completion| self.submissions.tracks_job(completion.job_id))
            .map(|completion| ControlPlaneEvent::JobCompleted {
                job_id: completion.job_id,
                qpu_index: completion.qpu_index,
                enqueue_s: completion.record.enqueue_time_s,
                start_s: completion.record.start_time_s,
                finish_s: completion.record.finish_time_s,
            })
            .collect();
        if self.group_commit {
            self.journal_all(&events)?;
        } else {
            for event in &events {
                self.journal(event)?;
            }
        }
        Ok(self.submissions.note_completions(completions))
    }

    /// Take a lease on one fleet QPU (journaled *before* the lease is used:
    /// write-ahead, so a crash between grant and first use replays the grant
    /// and the capacity is neither leaked nor double-granted). Returns
    /// `Ok(false)`, journaling nothing, if this shard already holds the
    /// lease.
    pub fn lease_qpu(&mut self, qpu_index: usize) -> Result<bool, ReplicationError> {
        if self.leases.contains(&qpu_index) {
            return Ok(false);
        }
        self.journal(&ControlPlaneEvent::LeaseGranted { qpu_index })?;
        self.leases.insert(qpu_index);
        Ok(true)
    }

    /// Return a QPU lease to the shared allocator (journaled). Returns
    /// `Ok(false)`, journaling nothing, if this shard does not hold the
    /// lease.
    pub fn release_qpu(&mut self, qpu_index: usize) -> Result<bool, ReplicationError> {
        if !self.leases.contains(&qpu_index) {
            return Ok(false);
        }
        self.journal(&ControlPlaneEvent::LeaseReleased { qpu_index })?;
        self.leases.remove(&qpu_index);
        Ok(true)
    }

    /// Fleet QPU indices this shard currently leases.
    pub fn leases(&self) -> &BTreeSet<usize> {
        &self.leases
    }

    /// Record an autoscaler grow decision: the QPU at `qpu_index` is elastic
    /// capacity of `class` (journaled write-ahead, *before* the caller
    /// mutates the fleet, so a crash between journal and fleet mutation
    /// replays the provisioning). Returns `Ok(false)`, journaling nothing, if
    /// the index is already tracked as elastic.
    pub fn provision_qpu(
        &mut self,
        now_s: f64,
        qpu_index: usize,
        class: ResourceClass,
    ) -> Result<bool, ReplicationError> {
        if self.elastic.contains(&qpu_index) {
            return Ok(false);
        }
        self.journal(&ControlPlaneEvent::QpuProvisioned { now_s, qpu_index, class })?;
        self.elastic.insert(qpu_index);
        Ok(true)
    }

    /// Record an autoscaler shrink decision: the elastic QPU at `qpu_index`
    /// leaves the fleet (journaled). Returns `Ok(false)`, journaling nothing,
    /// if the index is not tracked as elastic.
    pub fn retire_qpu(&mut self, now_s: f64, qpu_index: usize) -> Result<bool, ReplicationError> {
        if !self.elastic.contains(&qpu_index) {
            return Ok(false);
        }
        self.journal(&ControlPlaneEvent::QpuRetired { now_s, qpu_index })?;
        self.elastic.remove(&qpu_index);
        Ok(true)
    }

    /// Fleet QPU indices currently holding autoscaler-provisioned elastic
    /// capacity.
    pub fn elastic(&self) -> &BTreeSet<usize> {
        &self.elastic
    }

    /// Earliest next completion across the fleet (delegates to the engine).
    pub fn next_event_s(&self, fleet: &Fleet) -> Option<f64> {
        self.jobmanager.next_event_s(fleet)
    }

    /// Earliest simulated time the trigger can fire (delegates to the
    /// engine).
    pub fn next_trigger_s(&self) -> Option<f64> {
        self.jobmanager.next_trigger_s()
    }

    /// Checkpoint: install a snapshot of the current state and compact the
    /// journal up to it. Returns the first journal index not covered. The
    /// incremental digest re-anchors here: the checkpoint becomes the hash of
    /// the installed payload and the rolling hash resets, so planes that
    /// snapshot on the same schedule keep comparable digests.
    pub fn snapshot(&self) -> Result<u64, ReplicationError> {
        let upto = self.log.len();
        let payload = self.encode_state();
        self.log.install_snapshot(&payload, upto)?;
        self.digest_checkpoint.set(fnv128(payload.as_bytes()));
        self.digest_rolling.set(FNV128_OFFSET);
        Ok(upto)
    }

    /// O(1) incremental fingerprint of the control-plane state:
    /// `fnv128 <checkpoint> <rolling>`, where the checkpoint hashes the
    /// full-encode payload installed at the last snapshot and the rolling
    /// hash absorbs every event journaled since. Two planes that snapshot on
    /// the same schedule and journal the same bytes report equal digests;
    /// equal digests fingerprint equal replayed states. This replaces the
    /// former full `encode_state()` re-encode on every comparison — suites
    /// that assert *byte* exactness compare [`Self::encode_state`] directly
    /// (the oracle), not this fingerprint.
    pub fn state_digest(&self) -> String {
        format!("fnv128 {:032x} {:032x}", self.digest_checkpoint.get(), self.digest_rolling.get())
    }

    /// Crash the elected leader: its lease becomes invalid and the *volatile*
    /// control-plane state (engine, submission service, lease set) dies with
    /// it. The replicated journal (and any installed snapshot) survives on
    /// the store replicas. State is unusable until [`Self::failover`]
    /// rebuilds it.
    pub fn crash_leader(&mut self) {
        if let Some(leader) = self.election.leader() {
            self.election.crash(leader);
        }
        self.jobmanager = JobManager::default();
        self.submissions = SubmissionService::new();
        self.leases = BTreeSet::new();
        self.elastic = BTreeSet::new();
        // The digest dies with the volatile state (a crashed plane
        // fingerprints nothing); failover recomputes it from the store.
        self.digest_checkpoint.set(FNV128_OFFSET);
        self.digest_rolling.set(FNV128_OFFSET);
    }

    /// Fail over to a recovered replica: elect a new leader (a CAS on the
    /// lease key — impossible without the store quorum, by design), rebuild
    /// the engine + submission service + lease set deterministically from
    /// `snapshot + log replay`, install the rebuilt state as live, and let
    /// crashed nodes rejoin as followers. Returns clones of the rebuilt
    /// engine pair for inspection.
    pub fn failover(&mut self) -> Result<(JobManager, SubmissionService), FailoverError> {
        self.election.run_until_leader(5_000).ok_or(FailoverError::NoLeader)?;
        let (jobmanager, submissions, leases, elastic, (checkpoint, rolling)) =
            self.rebuild_parts()?;
        self.jobmanager = jobmanager.clone();
        self.submissions = submissions.clone();
        self.leases = leases;
        self.elastic = elastic;
        // Recomputed from the store, these equal the pre-crash cells: the
        // checkpoint hashes the same installed payload, and the rolling hash
        // absorbs the same retained entries re-encoded through the same
        // round-tripping codec.
        self.digest_checkpoint.set(checkpoint);
        self.digest_rolling.set(rolling);
        for id in 0..self.election.len() {
            if self.election.is_crashed(id) {
                self.election.recover(id);
            }
        }
        Ok((jobmanager, submissions))
    }

    /// Rebuild a `(JobManager, SubmissionService)` pair from the replicated
    /// store without touching the live state: restore the latest snapshot,
    /// then replay every retained journal entry after it, in order. (The
    /// journaled lease set is rebuilt the same way; see [`Self::leases`] on a
    /// failed-over plane.)
    pub fn rebuild(&self) -> Result<(JobManager, SubmissionService), FailoverError> {
        let (jobmanager, submissions, _, _, _) = self.rebuild_parts()?;
        Ok((jobmanager, submissions))
    }

    #[allow(clippy::type_complexity)]
    fn rebuild_parts(
        &self,
    ) -> Result<
        (JobManager, SubmissionService, BTreeSet<usize>, BTreeSet<usize>, (u128, u128)),
        FailoverError,
    > {
        let (from, payload) = self.log.snapshot().ok_or(FailoverError::MissingSnapshot)?;
        let (mut jobmanager, mut submissions, mut leases, mut elastic) =
            decode_combined_state(&payload).ok_or(FailoverError::CorruptState)?;
        let checkpoint = fnv128(payload.as_bytes());
        let mut rolling = Fnv128::new();
        for (_, event) in self.log.entries_from(from) {
            apply_event(&mut jobmanager, &mut submissions, &mut leases, &mut elastic, &event);
            rolling.absorb(event.encode().as_bytes());
            rolling.absorb(b"\n");
        }
        Ok((jobmanager, submissions, leases, elastic, (checkpoint, rolling.value())))
    }

    /// Number of journal entries a failover right now would replay on top of
    /// the latest snapshot.
    pub fn replay_backlog(&self) -> u64 {
        let baseline = self.log.snapshot().map_or(0, |(index, _)| index);
        self.log.len().saturating_sub(baseline)
    }

    /// Canonical byte-for-byte encoding of the full control-plane state
    /// (engine + submission service + lease/elastic sets) — the *oracle* the
    /// byte-exactness suites compare. Two states are identical iff their
    /// encodings are equal as strings; [`Self::state_digest`] is the cheap
    /// incremental fingerprint of the same state.
    pub fn encode_state(&self) -> String {
        let mut state =
            format!("{}\n{}", self.jobmanager.encode_state(), self.submissions.encode_state());
        // Lease-free / elastic-free planes (every pre-sharding, pre-autoscale
        // deployment) keep their historical digest format: the optional
        // sections appear only when non-empty.
        if !self.leases.is_empty() {
            let held = self.leases.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
            state.push_str(&format!("\nlease {held}"));
        }
        if !self.elastic.is_empty() {
            let held = self.elastic.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
            state.push_str(&format!("\nelastic {held}"));
        }
        state
    }
}

/// Split a combined snapshot payload into the engine state, the
/// submission-service state, and the (possibly absent) lease and elastic
/// sections, and decode them all.
#[allow(clippy::type_complexity)]
fn decode_combined_state(
    payload: &str,
) -> Option<(JobManager, SubmissionService, BTreeSet<usize>, BTreeSet<usize>)> {
    // Optional trailing sections in encode order: lease, then elastic.
    let (payload, elastic) = match payload.find("\nelastic ") {
        Some(at) => {
            let (rest, part) = payload.split_at(at);
            let held = part.trim_start_matches('\n').strip_prefix("elastic ")?;
            (rest, held.split(',').map(str::parse).collect::<Result<_, _>>().ok()?)
        }
        None => (payload, BTreeSet::new()),
    };
    let (payload, leases) = match payload.find("\nlease ") {
        Some(at) => {
            let (rest, lease_part) = payload.split_at(at);
            let held = lease_part.trim_start_matches('\n').strip_prefix("lease ")?;
            (rest, held.split(',').map(str::parse).collect::<Result<_, _>>().ok()?)
        }
        None => (payload, BTreeSet::new()),
    };
    let split = payload.find("\nsvc ")?;
    let (jm_part, svc_part) = payload.split_at(split);
    let jobmanager = JobManager::decode_state(jm_part)?;
    let submissions = SubmissionService::decode_state(svc_part.trim_start_matches('\n'))?;
    Some((jobmanager, submissions, leases, elastic))
}

/// Apply one journaled event to a rebuilding state pair. Every arm is
/// idempotent-or-deterministic: replaying the exact journal sequence from the
/// snapshot baseline reproduces the live state byte for byte.
fn apply_event(
    jobmanager: &mut JobManager,
    submissions: &mut SubmissionService,
    leases: &mut BTreeSet<usize>,
    elastic: &mut BTreeSet<usize>,
    event: &ControlPlaneEvent,
) {
    match event {
        ControlPlaneEvent::TenantRegistered { config, slo } => match slo {
            Some(slo) => {
                submissions.register_tenant_with_slo(*config, *slo);
            }
            None => {
                submissions.register_tenant_with(*config);
            }
        },
        ControlPlaneEvent::SloEscalated { now_s, ticket } => {
            submissions.apply_escalation(*ticket, *now_s, jobmanager);
        }
        ControlPlaneEvent::QpuProvisioned { qpu_index, .. } => {
            elastic.insert(*qpu_index);
        }
        ControlPlaneEvent::QpuRetired { qpu_index, .. } => {
            elastic.remove(qpu_index);
        }
        ControlPlaneEvent::JobSubmitted { tenant, spec, now_s } => {
            let _ = submissions.submit(*tenant, spec.clone(), *now_s);
        }
        ControlPlaneEvent::AdmissionPass { now_s } => {
            submissions.admit(*now_s, jobmanager);
        }
        ControlPlaneEvent::BatchDispatched { t_s, placed, rejected, deferred, .. } => {
            // `speculative` is observability metadata: an adopted plan's
            // placements are bit-identical to the live path, so replay
            // applies the same state delta either way.
            jobmanager.apply_batch(*t_s, placed, rejected, deferred);
            submissions.note_rejections(*t_s, rejected);
        }
        ControlPlaneEvent::JobReestimated { job_id, spec } => {
            jobmanager.reestimate(*job_id, spec.clone());
        }
        ControlPlaneEvent::DirectDispatched { job_id, .. } => {
            jobmanager.apply_direct(*job_id);
        }
        ControlPlaneEvent::JobCompleted { job_id, qpu_index, enqueue_s, start_s, finish_s } => {
            submissions.note_completions(&[CompletedExecution {
                job_id: *job_id,
                qpu_index: *qpu_index,
                record: CompletedJob {
                    job_id: *job_id,
                    enqueue_time_s: *enqueue_s,
                    start_time_s: *start_s,
                    finish_time_s: *finish_s,
                },
            }]);
        }
        ControlPlaneEvent::LeaseGranted { qpu_index } => {
            leases.insert(*qpu_index);
        }
        ControlPlaneEvent::LeaseReleased { qpu_index } => {
            leases.remove(qpu_index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qonductor_scheduler::{Nsga2Config, SchedulerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet(seed: u64) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed);
        Fleet::ibm_default(&mut rng)
    }

    fn scheduler() -> HybridScheduler {
        HybridScheduler::new(SchedulerConfig {
            nsga2: Nsga2Config {
                population_size: 16,
                max_generations: 8,
                max_evaluations: 800,
                num_threads: 1,
                ..Nsga2Config::default()
            },
            ..SchedulerConfig::default()
        })
    }

    fn spec(fleet: &Fleet, qubits: u32, exec_s: f64) -> JobSpec {
        JobSpec {
            qubits,
            shots: 1000,
            fidelity_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
                .collect(),
            exec_time_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { exec_s } else { f64::INFINITY })
                .collect(),
            estimate_epoch: fleet.calibration_epoch(),
        }
    }

    #[test]
    fn event_codec_roundtrips() {
        let events = vec![
            ControlPlaneEvent::TenantRegistered {
                config: TenantConfig { weight: 3, max_in_flight: usize::MAX, max_retries: 2 },
                slo: None,
            },
            ControlPlaneEvent::TenantRegistered {
                config: TenantConfig { weight: 2, max_in_flight: 8, max_retries: 1 },
                slo: Some(crate::submission::SloClass {
                    deadline_s: 60.0,
                    priority: 3,
                    max_error: 0.02,
                }),
            },
            ControlPlaneEvent::SloEscalated {
                now_s: 42.5,
                ticket: JobTicket { tenant: 3, ticket: 17 },
            },
            ControlPlaneEvent::QpuProvisioned {
                now_s: 300.0,
                qpu_index: 9,
                class: ResourceClass::Simulator,
            },
            ControlPlaneEvent::QpuProvisioned {
                now_s: 301.0,
                qpu_index: 10,
                class: ResourceClass::IonTrap,
            },
            ControlPlaneEvent::QpuRetired { now_s: 900.0, qpu_index: 9 },
            ControlPlaneEvent::JobSubmitted {
                tenant: 7,
                spec: JobSpec {
                    qubits: 5,
                    shots: 1024,
                    fidelity_per_qpu: vec![0.9, 0.0, f64::NAN],
                    exec_time_per_qpu: vec![4.25, f64::INFINITY, -0.0],
                    estimate_epoch: 17,
                },
                now_s: 123.456,
            },
            ControlPlaneEvent::AdmissionPass { now_s: 0.1 + 0.2 },
            ControlPlaneEvent::BatchDispatched {
                t_s: 99.5,
                placed: vec![(0, 3), (2, 1)],
                rejected: vec![1, 4],
                deferred: vec![(5, 3600.0), (6, 7200.0)],
                speculative: true,
            },
            ControlPlaneEvent::BatchDispatched {
                t_s: 1.0,
                placed: vec![],
                rejected: vec![],
                deferred: vec![],
                speculative: false,
            },
            ControlPlaneEvent::JobReestimated {
                job_id: 9,
                spec: JobSpec {
                    qubits: 3,
                    shots: 256,
                    fidelity_per_qpu: vec![0.75],
                    exec_time_per_qpu: vec![2.0],
                    estimate_epoch: 4,
                },
            },
            ControlPlaneEvent::DirectDispatched { job_id: 11, qpu_index: 2 },
            ControlPlaneEvent::JobCompleted {
                job_id: 12,
                qpu_index: 4,
                enqueue_s: 1.0,
                start_s: 2.5,
                finish_s: 7.125,
            },
            ControlPlaneEvent::LeaseGranted { qpu_index: 6 },
            ControlPlaneEvent::LeaseReleased { qpu_index: 6 },
        ];
        for event in events {
            let line = event.encode();
            assert!(!line.contains('\n'));
            let back = ControlPlaneEvent::decode(&line).expect("decodes");
            // NaN != NaN under PartialEq: compare the re-encoded line, which
            // is bit-exact.
            assert_eq!(back.encode(), line, "{event:?}");
        }
        assert!(ControlPlaneEvent::decode("bogus 1 2").is_none());
        assert!(ControlPlaneEvent::decode("subm 1").is_none());
        assert!(ControlPlaneEvent::decode("admt 0000000000000000 trailing").is_none());
        assert!(ControlPlaneEvent::decode("treg 1 2 3 not-an-slo").is_none());
        assert!(ControlPlaneEvent::decode("sesc 0000000000000000").is_none());
        assert!(ControlPlaneEvent::decode("qprv 0000000000000000 2 tape").is_none());
        assert!(ControlPlaneEvent::decode("qret 0000000000000000 2 trailing").is_none());
    }

    #[test]
    fn lifecycle_is_journaled_and_rebuilds_bit_for_bit() {
        let mut fleet = small_fleet(11);
        let scheduler = scheduler();
        let mut plane = ReplicatedControlPlane::new(ScheduleTrigger::new(3, 1e12), 1, 5);
        assert!(plane.leader().is_some());
        let tenant = plane.register_tenant(2).unwrap();
        let tickets: Vec<JobTicket> =
            (0..3).map(|i| plane.submit(tenant, spec(&fleet, 5, 6.0), i as f64).unwrap()).collect();
        plane.admit(3.0).unwrap();
        let outcome =
            plane.try_dispatch(3.0, &scheduler, &mut fleet).unwrap().expect("trigger fires");
        assert_eq!(outcome.record.job_ids.len(), 3);
        assert!(outcome.terminal_rejections.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        fleet.advance_to(1e5, &mut rng);
        let done = plane.drain_completions(&mut fleet);
        plane.note_completions(&done).unwrap();
        for &ticket in &tickets {
            assert!(matches!(plane.poll(ticket), Some(TicketStatus::Completed { .. })));
        }

        // An independent rebuild from the store matches the live state byte
        // for byte (the encode_state oracle, not just the fingerprint).
        let digest = plane.state_digest();
        let oracle = plane.encode_state();
        let (jm, svc) = plane.rebuild().expect("rebuild succeeds");
        assert_eq!(format!("{}\n{}", jm.encode_state(), svc.encode_state()), oracle);

        // Crash + failover: the recovered pair is identical too.
        let old_leader = plane.leader().unwrap();
        plane.crash_leader();
        assert_ne!(plane.state_digest(), digest, "volatile state died with the leader");
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest);
        assert_eq!(plane.encode_state(), oracle, "replayed bytes, not just matching hashes");
        assert_ne!(plane.leader(), Some(old_leader));
        for &ticket in &tickets {
            assert!(matches!(plane.poll(ticket), Some(TicketStatus::Completed { .. })));
        }
    }

    #[test]
    fn snapshot_compacts_and_failover_replays_the_suffix() {
        let mut fleet = small_fleet(12);
        let scheduler = scheduler();
        let mut plane = ReplicatedControlPlane::new(ScheduleTrigger::new(2, 1e12), 1, 6);
        let tenant = plane.register_tenant(1).unwrap();
        for i in 0..2 {
            plane.submit(tenant, spec(&fleet, 5, 4.0), i as f64).unwrap();
        }
        plane.admit(2.0).unwrap();
        plane.try_dispatch(2.0, &scheduler, &mut fleet).unwrap().expect("dispatch");
        let upto = plane.snapshot().unwrap();
        assert_eq!(plane.replay_backlog(), 0);
        assert_eq!(plane.log().retained_len(), 0, "journal compacted");

        // Post-snapshot activity replays on top of the snapshot.
        let t2 = plane.submit(tenant, spec(&fleet, 5, 4.0), 3.0).unwrap();
        plane.admit(3.0).unwrap();
        assert!(plane.replay_backlog() >= 2);
        assert!(plane.log().len() > upto);
        let digest = plane.state_digest();
        plane.crash_leader();
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest);
        assert!(matches!(plane.poll(t2), Some(TicketStatus::Admitted { .. })));
    }

    #[test]
    fn writes_fail_without_store_quorum_and_resume_after_recovery() {
        let fleet = small_fleet(13);
        let mut plane = ReplicatedControlPlane::new(ScheduleTrigger::new(4, 1e12), 1, 7);
        let tenant = plane.register_tenant(1).unwrap();
        plane.store().crash_replica(0);
        plane.submit(tenant, spec(&fleet, 5, 4.0), 0.0).unwrap();
        plane.store().crash_replica(1);
        assert_eq!(
            plane.submit(tenant, spec(&fleet, 5, 4.0), 1.0),
            Err(ReplicationError::Store(StoreError::NoQuorum))
        );
        assert_eq!(plane.admit(1.0), Err(ReplicationError::Store(StoreError::NoQuorum)));
        plane.store().recover_replica(0);
        plane.submit(tenant, spec(&fleet, 5, 4.0), 2.0).unwrap();
        assert_eq!(plane.submissions().queued_len(tenant), 2);
    }

    /// Calibration-crossover state is journaled: a batch split at a
    /// recalibration boundary, a post-boundary re-estimation, and a direct
    /// dispatch all replay byte-for-byte through a leader crash + failover.
    #[test]
    fn split_and_reestimate_decisions_survive_failover_byte_for_byte() {
        use qonductor_backend::{FleetMember, JobQueue, Qpu, QpuModel};
        let mut rng = StdRng::seed_from_u64(21);
        let mut qpu = Qpu::new("solo", QpuModel::falcon_27(), 1.0, &mut rng);
        qpu.set_calibration_period(100.0, 0.0);
        let mut fleet = Fleet::from_members(vec![FleetMember { qpu, queue: JobQueue::new() }]);
        let scheduler = scheduler();
        let mut plane = ReplicatedControlPlane::with_policy(
            ScheduleTrigger::new(3, 120.0),
            CalibrationPolicy::SplitAtBoundary,
            1,
            9,
        );
        let tenant = plane.register_tenant(1).unwrap();
        for i in 0..3 {
            plane.submit(tenant, spec(&fleet, 5, 40.0), i as f64 * 0.1).unwrap();
        }
        plane.admit(0.5).unwrap();
        let outcome = plane.try_dispatch(0.5, &scheduler, &mut fleet).unwrap().expect("fires");
        // Serialized on the solo QPU, the third job crosses the boundary at
        // 100 and is deferred (not rejected: no retry budget burned).
        assert_eq!(outcome.record.deferred.len(), 1);
        assert!(outcome.terminal_rejections.is_empty());
        let (deferred_id, boundary) = outcome.record.deferred[0];
        assert_eq!(boundary, 100.0);
        let deferred_ticket =
            plane.submissions().admitted_ticket(deferred_id).expect("still admitted");
        assert!(matches!(plane.poll(deferred_ticket), Some(TicketStatus::Admitted { .. })));

        // The boundary passes; the deferred job's estimates go stale and are
        // refreshed (journaled).
        fleet.advance_to(120.0, &mut rng);
        let epoch = fleet.calibration_epoch();
        assert_eq!(plane.stale_pending(epoch), vec![deferred_id]);
        let fresh = JobSpec { estimate_epoch: epoch, ..spec(&fleet, 5, 41.0) };
        assert!(plane.reestimate_job(deferred_id, fresh).unwrap());
        assert!(plane.stale_pending(epoch).is_empty());

        // Crash + failover: the rebuilt state (deferral counters, hold
        // times, refreshed estimates) is byte-identical.
        let digest = plane.state_digest();
        plane.crash_leader();
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest);
        assert_eq!(plane.jobmanager().pending()[0].deferrals, 1);
        assert_eq!(plane.jobmanager().pending()[0].held_until_s, 100.0);

        // The re-planned job dispatches cleanly post-boundary and the direct
        // path is journaled too.
        let outcome = plane.try_dispatch(120.6, &scheduler, &mut fleet).unwrap().expect("fires");
        assert!(outcome.record.deferred.is_empty());
        assert_eq!(outcome.record.job_ids, vec![deferred_id]);
        let t4 = plane.submit(tenant, spec(&fleet, 5, 2.0), 121.0).unwrap();
        plane.admit(121.0).unwrap();
        let job4 = match plane.poll(t4).unwrap() {
            TicketStatus::Admitted { job_id } => job_id,
            status => panic!("expected admission, got {status:?}"),
        };
        assert!(plane.dispatch_direct(job4, 0, &mut fleet).unwrap());
        let digest = plane.state_digest();
        plane.crash_leader();
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest, "direct dispatch replayed");
    }

    /// The mid-lease crash the sharded fleet allocator must survive: the
    /// leader dies *between* the lease-journal-append and any use of the
    /// lease. Replay must restore the lease exactly — not leaked (the rebuilt
    /// shard still holds it) and not double-granted (releases replay too, and
    /// re-granting a held lease journals nothing).
    #[test]
    fn lease_grants_survive_a_crash_between_append_and_use() {
        let mut plane = ReplicatedControlPlane::new(ScheduleTrigger::default(), 1, 3);
        assert!(plane.lease_qpu(2).unwrap());
        assert!(plane.lease_qpu(5).unwrap());
        assert!(!plane.lease_qpu(2).unwrap(), "re-granting a held lease journals nothing");
        let journaled = plane.log().len();
        let digest = plane.state_digest();
        assert!(
            plane.encode_state().contains("\nlease 2,5"),
            "the lease set is part of the encoded state"
        );

        // Crash immediately: the grants were journaled but never used.
        plane.crash_leader();
        assert!(plane.leases().is_empty(), "volatile lease state died with the leader");
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest, "replay restored the exact lease set");
        assert_eq!(plane.leases().iter().copied().collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(plane.log().len(), journaled, "failover appends nothing");

        // Releases are journaled and replay symmetrically — including a
        // crash between the release-append and anything observing it.
        assert!(plane.release_qpu(2).unwrap());
        assert!(!plane.release_qpu(2).unwrap(), "double release journals nothing");
        let digest = plane.state_digest();
        plane.crash_leader();
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest);
        assert_eq!(plane.leases().iter().copied().collect::<Vec<_>>(), vec![5]);

        // A snapshot folds the lease set into the baseline: replay from the
        // compacted journal still reproduces it.
        plane.snapshot().unwrap();
        assert!(plane.lease_qpu(0).unwrap());
        let digest = plane.state_digest();
        plane.crash_leader();
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest);
        assert_eq!(plane.leases().iter().copied().collect::<Vec<_>>(), vec![0, 5]);
    }

    /// SLO escalations and elastic provisioning are journaled: a leader crash
    /// after an escalated admission plus a grow/shrink cycle replays both
    /// event streams byte-for-byte — the rebuilt digest, elastic set, and
    /// escalation counters are identical.
    #[test]
    fn slo_escalations_and_elastic_capacity_survive_failover() {
        let fleet = small_fleet(15);
        let mut plane = ReplicatedControlPlane::new(
            ScheduleTrigger::new(100, 30.0).with_slo_margin(2.0),
            1,
            10,
        );
        let bulk = plane.register_tenant(5).unwrap();
        let slo = plane
            .register_tenant_with_slo(TenantConfig::weighted(1), SloClass::with_deadline(20.0))
            .unwrap();
        for i in 0..4 {
            plane.submit(bulk, spec(&fleet, 5, 5.0), i as f64 * 0.1).unwrap();
        }
        let urgent = plane.submit(slo, spec(&fleet, 5, 5.0), 1.0).unwrap();
        // At t=2 the interval+margin horizon (32 s) overshoots the absolute
        // deadline at 21: the ticket jumps the DRR scan through the lane.
        let admitted = plane.admit(2.0).unwrap();
        assert_eq!(admitted.first().map(|&(t, _)| t), Some(urgent), "escalation admits first");
        assert_eq!(plane.submissions().tenant_stats(slo).unwrap().escalated, 1);

        // Elastic capacity: grow/shrink journal with idempotence guards.
        assert!(plane.provision_qpu(2.0, 7, ResourceClass::Simulator).unwrap());
        assert!(!plane.provision_qpu(2.5, 7, ResourceClass::Simulator).unwrap());
        assert!(plane.provision_qpu(3.0, 8, ResourceClass::Simulator).unwrap());
        assert!(plane.retire_qpu(4.0, 8).unwrap());
        assert!(!plane.retire_qpu(4.0, 8).unwrap(), "double retire journals nothing");

        let digest = plane.state_digest();
        assert!(
            plane.encode_state().contains("\nelastic 7"),
            "the elastic set is part of the encoded state"
        );
        plane.crash_leader();
        assert!(plane.elastic().is_empty(), "volatile elastic state died with the leader");
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest, "escalations + scaling replay byte-for-byte");
        assert_eq!(plane.elastic().iter().copied().collect::<Vec<_>>(), vec![7]);
        assert_eq!(plane.submissions().tenant_stats(slo).unwrap().escalated, 1);
        assert!(matches!(plane.poll(urgent), Some(TicketStatus::Admitted { .. })));

        // A snapshot folds both sets into the baseline.
        plane.snapshot().unwrap();
        let digest = plane.state_digest();
        plane.crash_leader();
        plane.failover().expect("failover succeeds");
        assert_eq!(plane.state_digest(), digest);
    }

    /// Election-in-store: leadership lives in the same quorum KV as the
    /// journal, so losing the store majority blocks failover itself — the
    /// split-brain window where an election cluster disagrees with the data
    /// replicas cannot exist.
    #[test]
    fn failover_is_impossible_without_the_store_quorum() {
        let mut plane = ReplicatedControlPlane::new(ScheduleTrigger::default(), 1, 4);
        assert!(plane.leader().is_some());
        plane.crash_leader();
        plane.store().crash_replica(0);
        plane.store().crash_replica(1);
        assert!(matches!(plane.failover(), Err(FailoverError::NoLeader)));
        plane.store().recover_replica(0);
        plane.failover().expect("failover resumes with the quorum");
        assert!(plane.leader().is_some());
    }

    #[test]
    fn unknown_tenant_is_rejected_without_journaling() {
        let fleet = small_fleet(14);
        let mut plane = ReplicatedControlPlane::new(ScheduleTrigger::default(), 1, 8);
        let before = plane.log().len();
        assert_eq!(
            plane.submit(99, spec(&fleet, 5, 4.0), 0.0),
            Err(ReplicationError::Submission(SubmissionError::UnknownTenant(99)))
        );
        assert_eq!(plane.log().len(), before, "failed submissions leave no journal entry");
    }
}
