//! The sharded control plane: tenants are partitioned by hash across N
//! independent [`ReplicatedControlPlane`] shards, each owning its own
//! journal, [`JobManager`], [`SubmissionService`], and `ScheduleTrigger`, and
//! leasing exclusive QPU capacity from the shared [`FleetAllocator`].
//!
//! The single `ReplicatedControlPlane` is a global serialization point: one
//! journal quorum carries every submission, and one DRR admission pass walks
//! every registered tenant (O(T) per pass). Sharding divides both by N —
//! each shard journals and admits only its `T/N` tenants — which is what
//! lets throughput scale ~linearly in shard count at 10⁵–10⁶ registered
//! tenants (see `BENCH_controlplane.json`).
//!
//! Invariants:
//! - **Routing is pure.** [`shard_of_global`] maps a global tenant id to its
//!   shard by FNV-1a hash; callers can precompute where the *next* tenant
//!   will land ([`ShardedControlPlane::next_shard`]).
//! - **Leases are journaled on the granting shard.** A shard journals
//!   `LeaseGranted` *before* using the QPU, so its `failover()` replays the
//!   lease set byte-for-byte and [`FleetAllocator::rebuild`] over the
//!   per-shard sets proves capacity is neither leaked nor double-granted.
//! - **Specs are masked to the lease.** A submission routed to a shard has
//!   its estimate table masked to the shard's leased QPUs (fidelity 0, exec
//!   ∞ elsewhere), so the shard's scheduler can only place jobs on capacity
//!   the shard owns. A shard leasing the whole fleet (the single-shard
//!   default) keeps specs untouched — bit-identical to the unsharded plane.
//! - **Completions route by lease owner.** Per-shard job ids collide across
//!   shards, so drained completions are attributed to the shard leasing the
//!   QPU they ran on — which is exactly the shard that dispatched them.

use crate::fleetlease::{FleetAllocator, LeaseConflict, ReleaseError};
use crate::jobmanager::{CalibrationPolicy, CompletedExecution, JobId, JobSpec, TenantId};
use crate::replication::{
    DispatchOutcome, FailoverError, ReplicatedControlPlane, ReplicationError,
};
use crate::submission::{JobTicket, TenantConfig, TenantStats, TicketStatus};
use qonductor_backend::Fleet;
use qonductor_scheduler::{HybridScheduler, ScheduleTrigger};
use std::collections::HashMap;

/// A ticket qualified by the shard that issued it: per-shard ticket and job
/// ids are only unique within their shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalTicket {
    /// The shard the job was routed to.
    pub shard: usize,
    /// The shard-local ticket.
    pub ticket: JobTicket,
}

impl GlobalTicket {
    /// Canonical text encoding `shard:tenant:ticket` — what a client stores
    /// to poll across sessions. `decode(encode(t)) == t` exactly.
    pub fn encode(&self) -> String {
        format!("{}:{}:{}", self.shard, self.ticket.tenant, self.ticket.ticket)
    }

    /// Decode a ticket produced by [`GlobalTicket::encode`]. Returns `None`
    /// on any malformed input (wrong field count, non-numeric fields,
    /// trailing garbage).
    pub fn decode(encoded: &str) -> Option<GlobalTicket> {
        let mut fields = encoded.split(':');
        let shard = fields.next()?.parse().ok()?;
        let tenant = fields.next()?.parse().ok()?;
        let ticket = fields.next()?.parse().ok()?;
        if fields.next().is_some() {
            return None;
        }
        Some(GlobalTicket { shard, ticket: JobTicket { tenant, ticket } })
    }
}

/// Pure shard router: FNV-1a over the global tenant id's little-endian
/// bytes, mod the shard count. Deterministic and stateless, so any layer
/// (submission routing, scenario builders, benches) computes the same
/// placement.
pub fn shard_of_global(global: TenantId, num_shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in global.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash % num_shards as u64) as usize
}

/// N control-plane shards behind one façade (see the module docs).
#[derive(Debug)]
pub struct ShardedControlPlane {
    shards: Vec<ReplicatedControlPlane>,
    allocator: FleetAllocator,
    /// Next global tenant id (global ids are assigned sequentially).
    next_global: TenantId,
    /// `placement[global] = (shard, local id)`.
    placement: Vec<(usize, TenantId)>,
    /// Reverse map: `(shard, local id) → global id`.
    global_of: HashMap<(usize, TenantId), TenantId>,
}

impl ShardedControlPlane {
    /// A sharded plane of `num_shards` shards over a `num_qpus` fleet. Each
    /// shard gets its own journal store of `2f + 1` replicas, an independent
    /// copy of `trigger`, and the calibration `policy`; QPU `i` is leased to
    /// shard `i % num_shards` (round-robin), journaled on the holding shard.
    pub fn new(
        num_shards: usize,
        num_qpus: usize,
        trigger: ScheduleTrigger,
        policy: CalibrationPolicy,
        fault_tolerance: usize,
        seed: u64,
    ) -> Self {
        assert!(num_shards > 0, "a sharded plane needs at least one shard");
        let shards: Vec<ReplicatedControlPlane> = (0..num_shards)
            .map(|s| {
                ReplicatedControlPlane::with_policy(
                    trigger,
                    policy,
                    fault_tolerance,
                    seed.wrapping_add(s as u64),
                )
            })
            .collect();
        let mut plane = ShardedControlPlane {
            shards,
            allocator: FleetAllocator::new(num_qpus),
            next_global: 0,
            placement: Vec::new(),
            global_of: HashMap::new(),
        };
        for qpu_index in 0..num_qpus {
            let shard = qpu_index % num_shards;
            plane.lease_qpu(shard, qpu_index).expect("fresh stores have quorums");
        }
        plane
    }

    /// Attach provider spans to the shared allocator (federated
    /// deployments): `spans[p] = (provider name, qpu count)` concatenated in
    /// flat-index order. Pure configuration — nothing is journaled, and
    /// failover re-attaches the spans to the rebuilt allocator.
    pub fn with_provider_spans(mut self, spans: Vec<(String, usize)>) -> Self {
        self.allocator = self.allocator.with_provider_spans(spans);
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of QPUs in the shared fleet.
    pub fn num_qpus(&self) -> usize {
        self.allocator.num_qpus()
    }

    /// One shard, read-only.
    pub fn shard(&self, index: usize) -> &ReplicatedControlPlane {
        &self.shards[index]
    }

    /// All shards, read-only.
    pub fn shards(&self) -> &[ReplicatedControlPlane] {
        &self.shards
    }

    /// All shards, mutable — for callers driving shards from parallel
    /// threads over disjoint sub-fleets (the throughput bench). The lease
    /// partition is what makes that safe: shards share no QPU.
    pub fn shards_mut(&mut self) -> &mut [ReplicatedControlPlane] {
        &mut self.shards
    }

    /// The live lease bookkeeping.
    pub fn allocator(&self) -> &FleetAllocator {
        &self.allocator
    }

    /// The shard the *next* registered tenant will land on (registration
    /// assigns global ids sequentially; the router is pure).
    pub fn next_shard(&self) -> usize {
        shard_of_global(self.next_global, self.num_shards())
    }

    /// Where a registered global tenant lives: `(shard, shard-local id)`.
    pub fn placement_of(&self, global: TenantId) -> Option<(usize, TenantId)> {
        self.placement.get(global as usize).copied()
    }

    /// The global id of a shard-local tenant.
    pub fn global_of(&self, shard: usize, local: TenantId) -> Option<TenantId> {
        self.global_of.get(&(shard, local)).copied()
    }

    /// Register a tenant (journaled on its home shard). Returns the global
    /// tenant id.
    pub fn register_tenant(&mut self, weight: u32) -> Result<TenantId, ReplicationError> {
        self.register_tenant_with(TenantConfig::weighted(weight))
    }

    /// [`Self::register_tenant`] with an explicit configuration.
    pub fn register_tenant_with(
        &mut self,
        config: TenantConfig,
    ) -> Result<TenantId, ReplicationError> {
        self.register_tenant_inner(config, None)
    }

    /// [`Self::register_tenant_with`] plus an SLO class: the class is
    /// journaled on the tenant's home shard (it rides the registration
    /// event), so the shard's escalation lane and failover replay see it.
    pub fn register_tenant_with_slo(
        &mut self,
        config: TenantConfig,
        slo: crate::submission::SloClass,
    ) -> Result<TenantId, ReplicationError> {
        self.register_tenant_inner(config, Some(slo))
    }

    fn register_tenant_inner(
        &mut self,
        config: TenantConfig,
        slo: Option<crate::submission::SloClass>,
    ) -> Result<TenantId, ReplicationError> {
        let global = self.next_global;
        let shard = shard_of_global(global, self.num_shards());
        let local = match slo {
            Some(slo) => self.shards[shard].register_tenant_with_slo(config, slo)?,
            None => self.shards[shard].register_tenant_with(config)?,
        };
        self.next_global += 1;
        self.placement.push((shard, local));
        self.global_of.insert((shard, local), global);
        Ok(global)
    }

    /// Every registered tenant's `(global id, config)`, in global-id order —
    /// what a rebuild-with-different-shape constructor re-registers.
    pub fn tenant_configs_global(&self) -> Vec<(TenantId, TenantConfig)> {
        self.placement
            .iter()
            .enumerate()
            .map(|(global, &(shard, local))| {
                let config = self.shards[shard]
                    .submissions()
                    .tenant_configs()
                    .into_iter()
                    .find(|(id, _)| *id == local)
                    .map(|(_, config)| config)
                    .expect("placement tracks registered tenants");
                (global as TenantId, config)
            })
            .collect()
    }

    /// Submit a job for a global tenant: route to its shard, mask the spec
    /// to the shard's leased QPUs, journal on that shard. The returned
    /// ticket is shard-qualified.
    pub fn submit(
        &mut self,
        global: TenantId,
        spec: JobSpec,
        now_s: f64,
    ) -> Result<GlobalTicket, ReplicationError> {
        let (shard, local) = self
            .placement_of(global)
            .ok_or(ReplicationError::Submission(crate::SubmissionError::UnknownTenant(global)))?;
        let masked = self.mask_spec(shard, spec);
        let ticket = self.shards[shard].submit(local, masked, now_s)?;
        Ok(GlobalTicket { shard, ticket })
    }

    /// Observe a ticket's progress on its shard.
    pub fn poll(&self, ticket: GlobalTicket) -> Option<TicketStatus> {
        self.shards.get(ticket.shard)?.poll(ticket.ticket)
    }

    /// One weighted-fair admission pass per shard (each shard walks only its
    /// own *active* tenants — the O(T/N) win), stepped on real threads when
    /// there is more than one shard: admission touches nothing but the
    /// shard's own journaled state (the shared fleet enters only at
    /// dispatch), so the shards are data-disjoint and `thread::scope` hands
    /// each a `&mut` slice element. Results merge in shard order, so the
    /// returned sequence is identical to the serial walk. Returns all
    /// admitted tickets, shard-qualified.
    pub fn admit(&mut self, now_s: f64) -> Result<Vec<(GlobalTicket, JobId)>, ReplicationError> {
        let per_shard: Vec<Result<Vec<(JobTicket, JobId)>, ReplicationError>> =
            if self.shards.len() > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .map(|plane| scope.spawn(move || plane.admit(now_s)))
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
                })
            } else {
                self.shards.iter_mut().map(|plane| plane.admit(now_s)).collect()
            };
        let mut admitted = Vec::new();
        for (shard, result) in per_shard.into_iter().enumerate() {
            for (ticket, job_id) in result? {
                admitted.push((GlobalTicket { shard, ticket }, job_id));
            }
        }
        Ok(admitted)
    }

    /// One trigger-gated scheduling cycle per shard. Each shard schedules
    /// against the full fleet topology but its masked specs only place jobs
    /// on QPUs it leases. Returns `(shard, outcome)` for every shard whose
    /// trigger fired.
    pub fn try_dispatch(
        &mut self,
        now_s: f64,
        scheduler: &HybridScheduler,
        fleet: &mut Fleet,
    ) -> Result<Vec<(usize, DispatchOutcome)>, ReplicationError> {
        let mut outcomes = Vec::new();
        for (shard, plane) in self.shards.iter_mut().enumerate() {
            if let Some(outcome) = plane.try_dispatch(now_s, scheduler, fleet)? {
                outcomes.push((shard, outcome));
            }
        }
        Ok(outcomes)
    }

    /// Plan-ahead pipelining per shard: each shard speculatively schedules
    /// for its own next trigger instant (volatile, never journaled).
    pub fn plan_ahead_all(&mut self, scheduler: &HybridScheduler, fleet: &Fleet) {
        for plane in &mut self.shards {
            if let Some(fire_s) = plane.next_trigger_s() {
                plane.plan_ahead(fire_s, scheduler, fleet);
            }
        }
    }

    /// Drain fleet completions once and account each on the shard leasing
    /// the QPU it ran on (per-shard job ids collide; the lease owner is the
    /// dispatching shard). Returns shard-qualified `(ticket, completion)`
    /// pairs.
    pub fn drain_and_note(
        &mut self,
        fleet: &mut Fleet,
    ) -> Result<Vec<(GlobalTicket, CompletedExecution)>, ReplicationError> {
        let drained = self.shards[0].drain_completions(fleet);
        let mut per_shard: Vec<Vec<CompletedExecution>> = vec![Vec::new(); self.shards.len()];
        for completion in drained {
            let owner = self.allocator.owner(completion.qpu_index).unwrap_or(0);
            per_shard[owner].push(completion);
        }
        let mut resolved = Vec::new();
        for (shard, completions) in per_shard.iter().enumerate() {
            if completions.is_empty() {
                continue;
            }
            for (ticket, completion) in self.shards[shard].note_completions(completions)? {
                resolved.push((GlobalTicket { shard, ticket }, completion));
            }
        }
        Ok(resolved)
    }

    /// Earliest next completion across the fleet (fleet state is shared, so
    /// any shard's engine computes the same answer).
    pub fn next_event_s(&self, fleet: &Fleet) -> Option<f64> {
        self.shards[0].next_event_s(fleet)
    }

    /// Earliest instant any shard's trigger can fire.
    pub fn next_trigger_s(&self) -> Option<f64> {
        self.shards.iter().filter_map(|s| s.next_trigger_s()).min_by(f64::total_cmp)
    }

    /// Pending jobs with stale estimates across all shards, shard-qualified.
    pub fn stale_pending_all(&self, fleet_epoch: u64) -> Vec<(usize, JobId)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(shard, plane)| {
                plane.stale_pending(fleet_epoch).into_iter().map(move |job| (shard, job))
            })
            .collect()
    }

    /// A shard's pending job by id.
    pub fn pending_job(&self, shard: usize, job_id: JobId) -> Option<&crate::PendingJob> {
        self.shards[shard].pending_job(job_id)
    }

    /// The shard-qualified ticket admitted as `job_id` on `shard`.
    pub fn admitted_ticket(&self, shard: usize, job_id: JobId) -> Option<GlobalTicket> {
        let ticket = self.shards[shard].submissions().admitted_ticket(job_id)?;
        Some(GlobalTicket { shard, ticket })
    }

    /// Re-estimate a shard's pending job (the fresh spec is re-masked to the
    /// shard's leases before journaling, like a submission).
    pub fn reestimate_job(
        &mut self,
        shard: usize,
        job_id: JobId,
        spec: JobSpec,
    ) -> Result<bool, ReplicationError> {
        let masked = self.mask_spec(shard, spec);
        self.shards[shard].reestimate_job(job_id, masked)
    }

    /// A global tenant's admission statistics.
    pub fn tenant_stats(&self, global: TenantId) -> Option<TenantStats> {
        let (shard, local) = self.placement_of(global)?;
        self.shards[shard].submissions().tenant_stats(local)
    }

    /// Every tenant's statistics keyed by *global* id, in global-id order.
    pub fn snapshot_stats(&self) -> Vec<(TenantId, TenantStats)> {
        self.placement
            .iter()
            .enumerate()
            .filter_map(|(global, &(shard, local))| {
                let stats = self.shards[shard].submissions().tenant_stats(local)?;
                Some((global as TenantId, stats))
            })
            .collect()
    }

    /// Grant `qpu_index` to `shard`: the allocator checks exclusivity, then
    /// the shard journals the grant (write-ahead) before any use.
    pub fn lease_qpu(&mut self, shard: usize, qpu_index: usize) -> Result<bool, ReplicationError> {
        if self.allocator.owner(qpu_index).is_some_and(|owner| owner != shard) {
            return Ok(false);
        }
        if !self.shards[shard].lease_qpu(qpu_index)? {
            return Ok(false);
        }
        let granted = self.allocator.try_grant(shard, qpu_index);
        debug_assert!(granted, "allocator agreed above");
        Ok(true)
    }

    /// Release `shard`'s lease on `qpu_index`. The outer `Result` is journal
    /// plumbing; the inner one is the domain answer — `Ok(())` on release, or
    /// the typed refusal: [`ReleaseError::NotOwner`] for an ownership
    /// mismatch, [`ReleaseError::QueueBusy`] while the QPU's queue still
    /// holds the shard's dispatched work (releasing mid-execution would
    /// re-route those completions to the next lease holder).
    pub fn release_qpu(
        &mut self,
        shard: usize,
        qpu_index: usize,
        fleet: &Fleet,
    ) -> Result<Result<(), ReleaseError>, ReplicationError> {
        let pending_jobs = fleet.members()[qpu_index].queue.pending_len();
        if let Err(refusal) = self.allocator.check_release(shard, qpu_index, pending_jobs) {
            return Ok(Err(refusal));
        }
        if !self.shards[shard].release_qpu(qpu_index)? {
            // Ownership was verified against the live allocator, so the
            // journaled lease set disagreeing means the lease is not ours.
            return Ok(Err(ReleaseError::NotOwner {
                qpu_index,
                requested_by: shard,
                held_by: self.allocator.owner(qpu_index),
            }));
        }
        let released = self.allocator.release(shard, qpu_index, pending_jobs);
        debug_assert!(released.is_ok(), "allocator ownership checked above");
        Ok(Ok(()))
    }

    /// Checkpoint every shard (snapshot + journal compaction). Returns the
    /// per-shard first-uncovered indices.
    pub fn snapshot_all(&self) -> Result<Vec<u64>, ReplicationError> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// Per-shard state digests (incremental fingerprints), in shard order.
    /// Per-shard equality is the failover-exactness criterion; suites that
    /// assert byte exactness compare each shard's
    /// [`ReplicatedControlPlane::encode_state`] oracle directly.
    pub fn state_digests(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.state_digest()).collect()
    }

    /// All shards' digests joined into one string (shard-separated), for
    /// whole-plane equality checks.
    pub fn combined_digest(&self) -> String {
        self.state_digests().join("\n--shard--\n")
    }

    /// Per-shard byte-for-byte encoded states, in shard order — the
    /// `encode_state` oracle for cross-run comparisons where the incremental
    /// digests are not comparable (different snapshot schedules).
    pub fn encoded_states(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.encode_state()).collect()
    }

    /// Crash one shard's leader (volatile state dies; journal survives).
    pub fn crash_leader(&mut self, shard: usize) {
        self.shards[shard].crash_leader();
    }

    /// Fail over one shard, then re-derive the allocator from every shard's
    /// journaled lease set — proving the replay neither leaked nor
    /// double-granted capacity.
    pub fn failover(&mut self, shard: usize) -> Result<(), FailoverError> {
        self.shards[shard].failover()?;
        self.allocator = self.rebuild_allocator().map_err(|_| FailoverError::CorruptState)?;
        Ok(())
    }

    /// Crash every shard's leader.
    pub fn crash_all_leaders(&mut self) {
        for shard in 0..self.shards.len() {
            self.crash_leader(shard);
        }
    }

    /// Fail over every shard (see [`Self::failover`]).
    pub fn failover_all(&mut self) -> Result<(), FailoverError> {
        for plane in &mut self.shards {
            plane.failover()?;
        }
        self.allocator = self.rebuild_allocator().map_err(|_| FailoverError::CorruptState)?;
        Ok(())
    }

    /// Reconstruct the allocator from the shards' journaled lease sets,
    /// failing on any double grant. Provider spans are static configuration
    /// (membership is index-derived, never journaled), so they are carried
    /// over from the live allocator — the rebuilt provider attribution is
    /// byte-identical to the pre-crash one.
    pub fn rebuild_allocator(&self) -> Result<FleetAllocator, LeaseConflict> {
        let sets: Vec<_> = self.shards.iter().map(|s| s.leases().clone()).collect();
        let spans: Vec<(String, usize)> =
            self.allocator.provider_spans().iter().map(|s| (s.name.clone(), s.len)).collect();
        Ok(FleetAllocator::rebuild(&sets, self.allocator.num_qpus())?.with_provider_spans(spans))
    }

    /// Mask a full-fleet spec to a shard's leased QPUs: non-leased entries
    /// get fidelity 0 and infinite execution time, the same "cannot run
    /// here" encoding the estimator uses for infeasible devices. A shard
    /// leasing the whole fleet passes specs through untouched, keeping the
    /// single-shard plane bit-identical to the unsharded one.
    fn mask_spec(&self, shard: usize, mut spec: JobSpec) -> JobSpec {
        let leased = self.shards[shard].leases();
        if leased.len() >= spec.fidelity_per_qpu.len() {
            return spec;
        }
        for qpu in 0..spec.fidelity_per_qpu.len() {
            if !leased.contains(&qpu) {
                spec.fidelity_per_qpu[qpu] = 0.0;
                spec.exec_time_per_qpu[qpu] = f64::INFINITY;
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qonductor_scheduler::{Nsga2Config, SchedulerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet(seed: u64) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed);
        Fleet::ibm_default(&mut rng)
    }

    fn scheduler() -> HybridScheduler {
        HybridScheduler::new(SchedulerConfig {
            nsga2: Nsga2Config {
                population_size: 16,
                max_generations: 8,
                max_evaluations: 800,
                num_threads: 1,
                ..Nsga2Config::default()
            },
            ..SchedulerConfig::default()
        })
    }

    fn spec(fleet: &Fleet, qubits: u32, exec_s: f64) -> JobSpec {
        JobSpec {
            qubits,
            shots: 1000,
            fidelity_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { 0.9 } else { 0.0 })
                .collect(),
            exec_time_per_qpu: fleet
                .members()
                .iter()
                .map(|m| if m.qpu.num_qubits() >= qubits { exec_s } else { f64::INFINITY })
                .collect(),
            estimate_epoch: fleet.calibration_epoch(),
        }
    }

    fn plane(num_shards: usize, num_qpus: usize) -> ShardedControlPlane {
        ShardedControlPlane::new(
            num_shards,
            num_qpus,
            ScheduleTrigger::new(1, 30.0),
            CalibrationPolicy::Naive,
            1,
            7,
        )
    }

    #[test]
    fn the_shard_router_is_pure_and_covers_every_shard() {
        for tenant in 0..64u32 {
            let first = shard_of_global(tenant, 4);
            assert_eq!(first, shard_of_global(tenant, 4), "routing is deterministic");
            assert!(first < 4);
        }
        let hit: std::collections::BTreeSet<usize> =
            (0..64u32).map(|t| shard_of_global(t, 4)).collect();
        assert_eq!(hit.len(), 4, "64 sequential tenants should touch all 4 shards");
        assert_eq!(shard_of_global(9, 1), 0, "a single shard absorbs everything");
    }

    #[test]
    fn construction_partitions_the_fleet_round_robin() {
        let plane = plane(3, 8);
        for qpu in 0..8 {
            assert_eq!(plane.allocator().owner(qpu), Some(qpu % 3));
        }
        for shard in 0..3 {
            let journaled = plane.shard(shard).leases();
            let live: std::collections::BTreeSet<usize> =
                plane.allocator().leased_by(shard).into_iter().collect();
            assert_eq!(journaled, &live, "journaled and live lease sets agree");
        }
        assert!(plane.rebuild_allocator().is_ok());
    }

    #[test]
    fn registration_routes_by_the_pure_router_and_round_trips_ids() {
        let mut plane = plane(4, 8);
        for _ in 0..32 {
            let expected_shard = plane.next_shard();
            let global = plane.register_tenant(1).unwrap();
            let (shard, local) = plane.placement_of(global).unwrap();
            assert_eq!(shard, expected_shard);
            assert_eq!(shard, shard_of_global(global, 4));
            assert_eq!(plane.global_of(shard, local), Some(global));
        }
        let configs = plane.tenant_configs_global();
        assert_eq!(configs.len(), 32);
        assert!(configs.iter().enumerate().all(|(i, (id, _))| *id == i as TenantId));
    }

    #[test]
    fn submissions_are_masked_to_the_shard_lease() {
        let mut plane = plane(2, 8);
        let fleet = small_fleet(3);
        let tenant = plane.register_tenant(1).unwrap();
        let (shard, _) = plane.placement_of(tenant).unwrap();
        let ticket = plane.submit(tenant, spec(&fleet, 5, 30.0), 0.0).unwrap();
        assert_eq!(ticket.shard, shard);
        let admitted = plane.admit(1.0).unwrap();
        assert_eq!(admitted.len(), 1);
        let (_, job_id) = admitted[0];
        let pending = plane.pending_job(shard, job_id).unwrap();
        let leased = plane.shard(shard).leases();
        for (qpu, (&fid, &exec)) in pending
            .spec
            .fidelity_per_qpu
            .iter()
            .zip(pending.spec.exec_time_per_qpu.iter())
            .enumerate()
        {
            if !leased.contains(&qpu) {
                assert_eq!(fid, 0.0, "non-leased QPU {qpu} must be masked out");
                assert!(exec.is_infinite());
            }
        }
        assert!(
            leased.iter().any(|&q| pending.spec.fidelity_per_qpu[q] > 0.0),
            "the job must stay feasible on the shard's own lease"
        );
    }

    /// An SLO class registered through the sharded front door lands on the
    /// tenant's home shard: the escalation lane fires there, and the shard's
    /// crash + failover replays it byte-for-byte.
    #[test]
    fn slo_classes_route_to_the_home_shard_and_survive_its_failover() {
        use crate::submission::SloClass;
        let mut plane = ShardedControlPlane::new(
            2,
            8,
            ScheduleTrigger::new(100, 30.0),
            CalibrationPolicy::Naive,
            1,
            7,
        );
        let fleet = small_fleet(3);
        let tenant = plane
            .register_tenant_with_slo(TenantConfig::weighted(1), SloClass::with_deadline(20.0))
            .unwrap();
        let (shard, local) = plane.placement_of(tenant).unwrap();
        assert_eq!(
            plane.shard(shard).submissions().tenant_slo(local).map(|s| s.deadline_s),
            Some(20.0)
        );
        let ticket = plane.submit(tenant, spec(&fleet, 5, 10.0), 1.0).unwrap();
        // interval+margin horizon (32 s) overshoots the deadline at 21: the
        // shard-local escalation lane admits it despite queue_limit 100.
        let admitted = plane.admit(2.0).unwrap();
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].0, ticket);
        assert_eq!(plane.shard(shard).submissions().tenant_stats(local).unwrap().escalated, 1);
        let digest = plane.shard(shard).state_digest();
        plane.shards_mut()[shard].crash_leader();
        plane.shards_mut()[shard].failover().expect("failover succeeds");
        assert_eq!(plane.shard(shard).state_digest(), digest, "escalation replays on the shard");
    }

    #[test]
    fn a_single_shard_plane_matches_the_unsharded_plane_byte_for_byte() {
        let trigger = ScheduleTrigger::new(1, 30.0);
        let mut sharded = ShardedControlPlane::new(1, 8, trigger, CalibrationPolicy::Naive, 1, 7);
        let mut flat = ReplicatedControlPlane::with_policy(trigger, CalibrationPolicy::Naive, 1, 7);
        let mut fleet_a = small_fleet(3);
        let mut fleet_b = small_fleet(3);
        let scheduler = scheduler();

        let t_sharded = sharded.register_tenant(2).unwrap();
        let t_flat = flat.register_tenant(2).unwrap();
        for i in 0..3 {
            sharded.submit(t_sharded, spec(&fleet_a, 5, 30.0 + i as f64), 1.0).unwrap();
            flat.submit(t_flat, spec(&fleet_b, 5, 30.0 + i as f64), 1.0).unwrap();
        }
        sharded.admit(2.0).unwrap();
        flat.admit(2.0).unwrap();
        let out_a = sharded.try_dispatch(31.0, &scheduler, &mut fleet_a).unwrap();
        let out_b = flat.try_dispatch(31.0, &scheduler, &mut fleet_b).unwrap();
        assert_eq!(out_a.len(), 1);
        assert!(out_b.is_some());

        // Compare the encode_state oracle (real bytes — the hash digests
        // would differ here because the sharded plane journals lease
        // events). The unsharded encoding has no lease section; strip the
        // sharded plane's full-fleet lease line before comparing.
        let encoded = sharded.shard(0).encode_state();
        let encoded =
            encoded.lines().filter(|l| !l.starts_with("lease ")).collect::<Vec<_>>().join("\n");
        assert_eq!(encoded, flat.encode_state());
    }

    #[test]
    fn completions_route_to_the_leasing_shard() {
        let mut plane = plane(2, 8);
        let mut fleet = small_fleet(3);
        let scheduler = scheduler();
        let mut tenants = Vec::new();
        for _ in 0..4 {
            tenants.push(plane.register_tenant(1).unwrap());
        }
        let mut tickets = Vec::new();
        for &tenant in &tenants {
            tickets.push(plane.submit(tenant, spec(&fleet, 5, 25.0), 1.0).unwrap());
        }
        plane.admit(2.0).unwrap();
        let outcomes = plane.try_dispatch(31.0, &scheduler, &mut fleet).unwrap();
        assert!(!outcomes.is_empty(), "at least one shard dispatched");

        let horizon = plane.next_event_s(&fleet).expect("work is running");
        let mut rng = StdRng::seed_from_u64(9);
        fleet.advance_to(horizon + 1.0, &mut rng);
        let resolved = plane.drain_and_note(&mut fleet).unwrap();
        assert!(!resolved.is_empty());
        for (ticket, completion) in &resolved {
            assert_eq!(
                plane.allocator().owner(completion.qpu_index),
                Some(ticket.shard),
                "a completion must be credited to the shard leasing its QPU"
            );
            assert!(
                matches!(plane.poll(*ticket), Some(TicketStatus::Completed { .. })),
                "the shard that dispatched the job resolves its ticket"
            );
        }
    }

    #[test]
    fn per_shard_failover_is_byte_exact_and_rebuilds_the_allocator() {
        let mut plane = plane(2, 8);
        let fleet = small_fleet(3);
        let mut tenants = Vec::new();
        for weight in [2u32, 1, 2, 1] {
            tenants.push(plane.register_tenant(weight).unwrap());
        }
        for &tenant in &tenants {
            plane.submit(tenant, spec(&fleet, 5, 20.0), 1.0).unwrap();
        }
        plane.admit(2.0).unwrap();

        let before = plane.state_digests();
        plane.crash_all_leaders();
        plane.failover_all().unwrap();
        assert_eq!(plane.state_digests(), before, "each shard replays to its exact digest");

        let rebuilt = plane.rebuild_allocator().unwrap();
        assert_eq!(&rebuilt, plane.allocator(), "the live allocator matches the journals");
    }

    #[test]
    fn releases_are_refused_while_the_qpu_queue_is_busy() {
        let mut plane = plane(2, 8);
        let mut fleet = small_fleet(3);
        let scheduler = scheduler();
        let tenant = plane.register_tenant(1).unwrap();
        let (shard, _) = plane.placement_of(tenant).unwrap();
        plane.submit(tenant, spec(&fleet, 5, 40.0), 1.0).unwrap();
        plane.admit(2.0).unwrap();
        let outcomes = plane.try_dispatch(31.0, &scheduler, &mut fleet).unwrap();
        assert!(outcomes.iter().any(|(s, _)| *s == shard), "the home shard dispatched");

        let busy_qpu = fleet
            .members()
            .iter()
            .position(|m| m.queue.pending_len() > 0)
            .expect("the dispatched job occupies a queue");
        assert_eq!(plane.allocator().owner(busy_qpu), Some(shard));
        let pending_jobs = fleet.members()[busy_qpu].queue.pending_len();
        assert_eq!(
            plane.release_qpu(shard, busy_qpu, &fleet).unwrap(),
            Err(ReleaseError::QueueBusy { qpu_index: busy_qpu, pending_jobs }),
            "a lease with in-flight work refuses release with the typed reason"
        );
        let other = (shard + 1) % 2;
        assert_eq!(
            plane.release_qpu(other, busy_qpu, &fleet).unwrap(),
            Err(ReleaseError::NotOwner {
                qpu_index: busy_qpu,
                requested_by: other,
                held_by: Some(shard)
            }),
            "a non-owner release reports the actual holder"
        );

        // Drain the work; the release then goes through and the QPU can move.
        let horizon = plane.next_event_s(&fleet).expect("work is running");
        let mut rng = StdRng::seed_from_u64(9);
        fleet.advance_to(horizon + 1.0, &mut rng);
        plane.drain_and_note(&mut fleet).unwrap();
        assert_eq!(plane.release_qpu(shard, busy_qpu, &fleet).unwrap(), Ok(()));
        assert_eq!(plane.allocator().owner(busy_qpu), None);
        assert!(plane.lease_qpu(other, busy_qpu).unwrap());
        assert_eq!(plane.allocator().owner(busy_qpu), Some(other));
        assert!(plane.rebuild_allocator().is_ok(), "journals stay conflict-free after a move");
    }

    #[test]
    fn the_router_balances_a_large_tenant_population() {
        // Satellite check: FNV-1a over 10⁵ sequential tenant ids must spread
        // evenly — the heaviest shard may not carry more than 1.1× the
        // lightest (the hash is uniform; sequential ids are the worst
        // realistic input since registration assigns them in order).
        const TENANTS: u32 = 100_000;
        for num_shards in [2usize, 4, 8, 16] {
            let mut load = vec![0u32; num_shards];
            for tenant in 0..TENANTS {
                load[shard_of_global(tenant, num_shards)] += 1;
            }
            let max = *load.iter().max().unwrap();
            let min = *load.iter().min().unwrap();
            assert!(min > 0, "no shard may be starved at {num_shards} shards");
            let ratio = f64::from(max) / f64::from(min);
            assert!(
                ratio < 1.1,
                "shard load imbalance {ratio:.3} at {num_shards} shards (max {max}, min {min})"
            );
        }
    }

    #[test]
    fn global_tickets_roundtrip_through_their_text_encoding() {
        let tickets = [
            GlobalTicket { shard: 0, ticket: JobTicket { tenant: 0, ticket: 0 } },
            GlobalTicket { shard: 7, ticket: JobTicket { tenant: 42, ticket: 9_001 } },
            GlobalTicket {
                shard: usize::MAX,
                ticket: JobTicket { tenant: u32::MAX, ticket: u64::MAX },
            },
        ];
        for ticket in tickets {
            let encoded = ticket.encode();
            assert_eq!(GlobalTicket::decode(&encoded), Some(ticket), "roundtrip of {encoded}");
        }
        for bad in ["", "1", "1:2", "1:2:3:4", "x:2:3", "1:-2:3", "1:2:3 "] {
            assert_eq!(GlobalTicket::decode(bad), None, "malformed input {bad:?} must be rejected");
        }
    }

    #[test]
    fn provider_spans_survive_failover_byte_for_byte() {
        let mut plane =
            plane(2, 8).with_provider_spans(vec![("ibm".to_string(), 6), ("ionq".to_string(), 2)]);
        let fleet = small_fleet(3);
        let tenant = plane.register_tenant(1).unwrap();
        plane.submit(tenant, spec(&fleet, 5, 20.0), 1.0).unwrap();
        plane.admit(2.0).unwrap();

        let before = plane.allocator().clone();
        assert_eq!(before.provider_of(5), Some("ibm"));
        assert_eq!(before.provider_of(6), Some("ionq"));
        plane.crash_all_leaders();
        plane.failover_all().unwrap();
        assert_eq!(
            plane.allocator(),
            &before,
            "rebuilt allocator (leases + spans) must match the pre-crash one exactly"
        );
        for shard in 0..2 {
            assert_eq!(
                plane.allocator().leased_by_provider(shard),
                before.leased_by_provider(shard)
            );
        }
    }
}
