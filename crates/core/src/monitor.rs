//! The system monitor (§4): a typed facade over the replicated key-value store
//! that persists the complete system state — worker/QPU static and dynamic
//! information, workflow execution status, and results.

use crate::jobmanager::TenantId;
use crate::submission::TenantStats;
use qonductor_consensus::{ReplicatedKvStore, StoreError};
use qonductor_scheduler::TriggerReason;
use serde::{Deserialize, Serialize};

/// Execution status of a workflow run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkflowStatus {
    /// Accepted but not yet scheduled.
    Pending,
    /// Currently executing.
    Running,
    /// Finished successfully.
    Completed,
    /// Failed (e.g. no feasible QPU).
    Failed,
}

impl WorkflowStatus {
    fn as_str(&self) -> &'static str {
        match self {
            WorkflowStatus::Pending => "pending",
            WorkflowStatus::Running => "running",
            WorkflowStatus::Completed => "completed",
            WorkflowStatus::Failed => "failed",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "pending" => Some(WorkflowStatus::Pending),
            "running" => Some(WorkflowStatus::Running),
            "completed" => Some(WorkflowStatus::Completed),
            "failed" => Some(WorkflowStatus::Failed),
            _ => None,
        }
    }
}

/// Typed system-monitor facade over the replicated datastore.
#[derive(Debug, Clone)]
pub struct SystemMonitor {
    store: ReplicatedKvStore,
}

impl Default for SystemMonitor {
    fn default() -> Self {
        Self::new(1)
    }
}

impl SystemMonitor {
    /// Create a monitor replicated over `2f + 1` replicas (default `f = 1`).
    pub fn new(fault_tolerance: usize) -> Self {
        SystemMonitor { store: ReplicatedKvStore::new(fault_tolerance) }
    }

    /// The underlying replicated store.
    pub fn store(&self) -> &ReplicatedKvStore {
        &self.store
    }

    /// Record a QPU's static information.
    pub fn record_qpu_static(
        &self,
        name: &str,
        num_qubits: u32,
        model: &str,
    ) -> Result<(), StoreError> {
        self.store.put(format!("qpu/{name}/static"), format!("{num_qubits},{model}"))
    }

    /// Record a QPU's dynamic information (queue length, estimated waiting time,
    /// calibration cycle).
    pub fn record_qpu_dynamic(
        &self,
        name: &str,
        queue_len: usize,
        waiting_s: f64,
        calibration_cycle: u64,
    ) -> Result<(), StoreError> {
        self.store.put(
            format!("qpu/{name}/dynamic"),
            format!("{queue_len},{waiting_s:.3},{calibration_cycle}"),
        )
    }

    /// All QPU names known to the monitor.
    pub fn qpu_names(&self) -> Vec<String> {
        self.store
            .keys_with_prefix("qpu/")
            .into_iter()
            .filter_map(|k| k.split('/').nth(1).map(|s| s.to_string()))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// The recorded waiting time of a QPU (seconds), if known.
    pub fn qpu_waiting_s(&self, name: &str) -> Option<f64> {
        let value = self.store.get(&format!("qpu/{name}/dynamic")).ok()?;
        value.split(',').nth(1)?.parse().ok()
    }

    /// The last recorded calibration cycle (epoch) of a QPU, if known.
    pub fn qpu_calibration_cycle(&self, name: &str) -> Option<u64> {
        let value = self.store.get(&format!("qpu/{name}/dynamic")).ok()?;
        value.split(',').nth(2)?.parse().ok()
    }

    /// Update a workflow run's execution status.
    pub fn set_workflow_status(
        &self,
        run_id: u64,
        status: WorkflowStatus,
    ) -> Result<(), StoreError> {
        self.store.put(format!("workflow/{run_id}/status"), status.as_str())
    }

    /// Read a workflow run's execution status.
    pub fn workflow_status(&self, run_id: u64) -> Option<WorkflowStatus> {
        self.store
            .get(&format!("workflow/{run_id}/status"))
            .ok()
            .and_then(|s| WorkflowStatus::from_str(&s))
    }

    /// Store a workflow run's (serialised) result payload.
    pub fn set_workflow_result(&self, run_id: u64, payload: &str) -> Result<(), StoreError> {
        self.store.put(format!("workflow/{run_id}/result"), payload)
    }

    /// Read a workflow run's result payload.
    pub fn workflow_result(&self, run_id: u64) -> Option<String> {
        self.store.get(&format!("workflow/{run_id}/result")).ok()
    }

    /// Record one dispatched scheduling batch (trigger reason, time, size,
    /// per-tenant composition).
    pub fn record_schedule_batch(
        &self,
        batch_index: usize,
        t_s: f64,
        reason: TriggerReason,
        num_jobs: usize,
        tenant_jobs: &[(TenantId, usize)],
    ) -> Result<(), StoreError> {
        let reason = match reason {
            TriggerReason::QueueSize => "queue_size",
            TriggerReason::SloSlack => "slo_slack",
            TriggerReason::Interval => "interval",
        };
        let composition = tenant_jobs
            .iter()
            .map(|(tenant, count)| format!("{tenant}:{count}"))
            .collect::<Vec<_>>()
            .join("|");
        self.store.put(
            format!("scheduler/batch/{batch_index:08}"),
            format!("{t_s:.3},{reason},{num_jobs},{composition}"),
        )
    }

    /// All recorded scheduling batches, in dispatch order.
    pub fn schedule_batches(&self) -> Vec<BatchObservation> {
        let mut keys = self.store.keys_with_prefix("scheduler/batch/");
        keys.sort();
        keys.into_iter()
            .filter_map(|key| {
                let index: usize = key.rsplit('/').next()?.parse().ok()?;
                let value = self.store.get(&key).ok()?;
                let mut parts = value.split(',');
                Some(BatchObservation {
                    batch_index: index,
                    t_s: parts.next()?.parse().ok()?,
                    reason: match parts.next()? {
                        "queue_size" => TriggerReason::QueueSize,
                        "slo_slack" => TriggerReason::SloSlack,
                        "interval" => TriggerReason::Interval,
                        _ => return None,
                    },
                    num_jobs: parts.next()?.parse().ok()?,
                    tenant_jobs: parts.next().map(parse_tenant_composition).unwrap_or_default(),
                })
            })
            .collect()
    }

    /// Write one epoch-stamped job-id record (`t_s,epoch,id|id|…`) — the
    /// shared codec of the calibration-split and re-estimation observations.
    fn put_epoch_record(
        &self,
        prefix: &str,
        index: usize,
        t_s: f64,
        fleet_epoch: u64,
        job_ids: &[u64],
    ) -> Result<(), StoreError> {
        let jobs = job_ids.iter().map(u64::to_string).collect::<Vec<_>>().join("|");
        self.store.put(format!("{prefix}{index:08}"), format!("{t_s:.3},{fleet_epoch},{jobs}"))
    }

    /// Read back every [`Self::put_epoch_record`] under `prefix`, in index
    /// order, as `(index, t_s, fleet_epoch, job ids)` tuples.
    fn epoch_records(&self, prefix: &str) -> Vec<(usize, f64, u64, Vec<u64>)> {
        let mut keys = self.store.keys_with_prefix(prefix);
        keys.sort();
        keys.into_iter()
            .filter_map(|key| {
                let index: usize = key.rsplit('/').next()?.parse().ok()?;
                let value = self.store.get(&key).ok()?;
                let mut parts = value.split(',');
                let t_s = parts.next()?.parse().ok()?;
                let fleet_epoch = parts.next()?.parse().ok()?;
                let job_ids = parts
                    .next()
                    .map(|jobs| jobs.split('|').filter_map(|id| id.parse().ok()).collect())
                    .unwrap_or_default();
                Some((index, t_s, fleet_epoch, job_ids))
            })
            .collect()
    }

    /// Record one calibration-crossover split (§7): a dispatched batch whose
    /// plan crossed a recalibration boundary, with the deferred job ids.
    pub fn record_calibration_split(
        &self,
        batch_index: usize,
        t_s: f64,
        fleet_epoch: u64,
        deferred_jobs: &[u64],
    ) -> Result<(), StoreError> {
        self.put_epoch_record("scheduler/split/", batch_index, t_s, fleet_epoch, deferred_jobs)
    }

    /// All recorded calibration splits, in dispatch order.
    pub fn calibration_splits(&self) -> Vec<SplitObservation> {
        self.epoch_records("scheduler/split/")
            .into_iter()
            .map(|(batch_index, t_s, fleet_epoch, deferred_jobs)| SplitObservation {
                batch_index,
                t_s,
                fleet_epoch,
                deferred_jobs,
            })
            .collect()
    }

    /// Record one post-boundary re-estimation pass: the jobs whose estimate
    /// tables were recomputed against the new fleet calibration epoch.
    pub fn record_reestimation(
        &self,
        pass_index: usize,
        t_s: f64,
        fleet_epoch: u64,
        job_ids: &[u64],
    ) -> Result<(), StoreError> {
        self.put_epoch_record("scheduler/reestimate/", pass_index, t_s, fleet_epoch, job_ids)
    }

    /// All recorded re-estimation passes, in pass order.
    pub fn reestimations(&self) -> Vec<ReestimationObservation> {
        self.epoch_records("scheduler/reestimate/")
            .into_iter()
            .map(|(pass_index, t_s, fleet_epoch, job_ids)| ReestimationObservation {
                pass_index,
                t_s,
                fleet_epoch,
                job_ids,
            })
            .collect()
    }

    /// Persist a tenant's submission-service accounting.
    pub fn record_tenant_stats(
        &self,
        tenant: TenantId,
        stats: &TenantStats,
    ) -> Result<(), StoreError> {
        self.store.put(
            format!("tenant/{tenant:08}/stats"),
            format!(
                "{},{},{},{},{},{},{},{:.3},{:.3},{}",
                stats.weight,
                stats.submitted,
                stats.admitted,
                stats.completed,
                stats.rejected,
                stats.queued,
                stats.in_flight,
                stats.mean_queue_wait_s,
                stats.mean_turnaround_s,
                stats.escalated
            ),
        )
    }

    /// Read back a tenant's persisted accounting.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        let value = self.store.get(&format!("tenant/{tenant:08}/stats")).ok()?;
        let mut parts = value.split(',');
        Some(TenantStats {
            weight: parts.next()?.parse().ok()?,
            submitted: parts.next()?.parse().ok()?,
            admitted: parts.next()?.parse().ok()?,
            completed: parts.next()?.parse().ok()?,
            rejected: parts.next()?.parse().ok()?,
            queued: parts.next()?.parse().ok()?,
            in_flight: parts.next()?.parse().ok()?,
            mean_queue_wait_s: parts.next()?.parse().ok()?,
            mean_turnaround_s: parts.next()?.parse().ok()?,
            // Records written before SLO escalation existed omit the field.
            escalated: parts.next().and_then(|s| s.parse().ok()).unwrap_or(0),
        })
    }

    /// All tenant ids with persisted accounting, ascending.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self
            .store
            .keys_with_prefix("tenant/")
            .into_iter()
            .filter_map(|k| k.split('/').nth(1)?.parse().ok())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Parse a `tenant:count|tenant:count` composition field (empty ⇒ empty vec).
fn parse_tenant_composition(field: &str) -> Vec<(TenantId, usize)> {
    field
        .split('|')
        .filter_map(|pair| {
            let (tenant, count) = pair.split_once(':')?;
            Some((tenant.parse().ok()?, count.parse().ok()?))
        })
        .collect()
}

/// A calibration-crossover split as observed through the monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitObservation {
    /// Index of the batch whose plan crossed a boundary.
    pub batch_index: usize,
    /// Simulated time of the dispatch.
    pub t_s: f64,
    /// Fleet-wide calibration epoch at dispatch.
    pub fleet_epoch: u64,
    /// Jobs deferred past the boundary for re-estimation.
    pub deferred_jobs: Vec<u64>,
}

/// A post-boundary re-estimation pass as observed through the monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReestimationObservation {
    /// Zero-based pass index.
    pub pass_index: usize,
    /// Simulated time of the pass.
    pub t_s: f64,
    /// Fleet-wide calibration epoch the estimates were refreshed to.
    pub fleet_epoch: u64,
    /// Jobs whose estimate tables were recomputed.
    pub job_ids: Vec<u64>,
}

/// A scheduling batch as observed through the monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchObservation {
    /// Zero-based dispatch index.
    pub batch_index: usize,
    /// Simulated time of the dispatch.
    pub t_s: f64,
    /// Why the scheduling trigger fired.
    pub reason: TriggerReason,
    /// Number of jobs handed to the scheduler in the batch.
    pub num_jobs: usize,
    /// Per-tenant composition (`(tenant, job count)`, ascending tenant order;
    /// empty for records written before multi-tenant submission existed).
    pub tenant_jobs: Vec<(TenantId, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpu_records_roundtrip() {
        let monitor = SystemMonitor::default();
        monitor.record_qpu_static("ibm_cairo", 27, "falcon-r5.11").unwrap();
        monitor.record_qpu_dynamic("ibm_cairo", 12, 340.5, 3).unwrap();
        monitor.record_qpu_static("ibm_lagos", 7, "falcon-r5.11h").unwrap();
        let names = monitor.qpu_names();
        assert_eq!(names, vec!["ibm_cairo".to_string(), "ibm_lagos".to_string()]);
        assert!((monitor.qpu_waiting_s("ibm_cairo").unwrap() - 340.5).abs() < 1e-9);
        assert!(monitor.qpu_waiting_s("ibm_unknown").is_none());
    }

    #[test]
    fn workflow_status_lifecycle() {
        let monitor = SystemMonitor::default();
        assert!(monitor.workflow_status(7).is_none());
        monitor.set_workflow_status(7, WorkflowStatus::Pending).unwrap();
        monitor.set_workflow_status(7, WorkflowStatus::Running).unwrap();
        assert_eq!(monitor.workflow_status(7), Some(WorkflowStatus::Running));
        monitor.set_workflow_status(7, WorkflowStatus::Completed).unwrap();
        assert_eq!(monitor.workflow_status(7), Some(WorkflowStatus::Completed));
    }

    #[test]
    fn results_survive_replica_failure() {
        let monitor = SystemMonitor::new(1);
        monitor.set_workflow_result(1, "fidelity=0.93").unwrap();
        monitor.store().crash_replica(0);
        assert_eq!(monitor.workflow_result(1).unwrap(), "fidelity=0.93");
        monitor.set_workflow_result(2, "fidelity=0.88").unwrap();
        assert_eq!(monitor.workflow_result(2).unwrap(), "fidelity=0.88");
    }

    #[test]
    fn status_parsing_rejects_unknown_values() {
        assert_eq!(WorkflowStatus::from_str("running"), Some(WorkflowStatus::Running));
        assert_eq!(WorkflowStatus::from_str("bogus"), None);
    }

    #[test]
    fn schedule_batches_roundtrip_in_order() {
        let monitor = SystemMonitor::default();
        assert!(monitor.schedule_batches().is_empty());
        monitor.record_schedule_batch(0, 120.0, TriggerReason::Interval, 3, &[(0, 3)]).unwrap();
        monitor
            .record_schedule_batch(1, 150.5, TriggerReason::QueueSize, 100, &[(0, 60), (2, 40)])
            .unwrap();
        let batches = monitor.schedule_batches();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].batch_index, 0);
        assert_eq!(batches[0].reason, TriggerReason::Interval);
        assert_eq!(batches[0].num_jobs, 3);
        assert_eq!(batches[0].tenant_jobs, vec![(0, 3)]);
        assert!((batches[0].t_s - 120.0).abs() < 1e-9);
        assert_eq!(batches[1].reason, TriggerReason::QueueSize);
        assert_eq!(batches[1].num_jobs, 100);
        assert_eq!(batches[1].tenant_jobs, vec![(0, 60), (2, 40)]);
    }

    #[test]
    fn calibration_split_and_reestimation_roundtrip() {
        let monitor = SystemMonitor::default();
        assert!(monitor.calibration_splits().is_empty());
        assert!(monitor.reestimations().is_empty());
        monitor.record_calibration_split(3, 3590.5, 8, &[12, 15]).unwrap();
        monitor.record_calibration_split(5, 7190.0, 16, &[20]).unwrap();
        monitor.record_reestimation(0, 3600.0, 16, &[12, 15]).unwrap();
        let splits = monitor.calibration_splits();
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].batch_index, 3);
        assert_eq!(splits[0].fleet_epoch, 8);
        assert_eq!(splits[0].deferred_jobs, vec![12, 15]);
        assert!((splits[1].t_s - 7190.0).abs() < 1e-9);
        let passes = monitor.reestimations();
        assert_eq!(passes.len(), 1);
        assert_eq!(passes[0].job_ids, vec![12, 15]);
        assert_eq!(passes[0].fleet_epoch, 16);
    }

    #[test]
    fn tenant_stats_roundtrip() {
        let monitor = SystemMonitor::default();
        assert!(monitor.tenant_stats(3).is_none());
        assert!(monitor.tenant_ids().is_empty());
        let stats = crate::submission::TenantStats {
            weight: 2,
            submitted: 40,
            admitted: 31,
            completed: 25,
            rejected: 1,
            queued: 10,
            in_flight: 4,
            mean_queue_wait_s: 12.5,
            mean_turnaround_s: 98.25,
            escalated: 3,
        };
        monitor.record_tenant_stats(3, &stats).unwrap();
        monitor.record_tenant_stats(1, &stats).unwrap();
        assert_eq!(monitor.tenant_ids(), vec![1, 3]);
        let back = monitor.tenant_stats(3).unwrap();
        assert_eq!(back.weight, 2);
        assert_eq!(back.submitted, 40);
        assert_eq!(back.admitted, 31);
        assert_eq!(back.completed, 25);
        assert_eq!(back.rejected, 1);
        assert_eq!(back.queued, 10);
        assert_eq!(back.in_flight, 4);
        assert!((back.mean_queue_wait_s - 12.5).abs() < 1e-9);
        assert!((back.mean_turnaround_s - 98.25).abs() < 1e-9);
        assert_eq!(back.escalated, 3);
    }
}
