//! Hybrid workflow images and the workflow registry (§5): the workflow manager
//! packages the workflow graph, hybrid code, and execution configuration into a
//! *hybrid workflow image* persisted in the registry, from which users can
//! deploy or invoke it repeatedly.

use crate::config::DeploymentConfig;
use crate::workflow::Workflow;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a hybrid workflow image.
pub type ImageId = u64;

/// A packaged hybrid workflow image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridWorkflowImage {
    /// Image identifier assigned by the registry.
    pub id: ImageId,
    /// Human-readable name (defaults to the workflow name).
    pub name: String,
    /// The workflow graph.
    pub workflow: Workflow,
    /// The deployment configuration packaged with the image.
    pub config: DeploymentConfig,
}

/// The workflow registry: a shared repository of ready-to-execute images.
#[derive(Debug, Clone, Default)]
pub struct WorkflowRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    images: BTreeMap<ImageId, HybridWorkflowImage>,
    next_id: ImageId,
}

impl WorkflowRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a workflow image; returns its assigned id.
    ///
    /// # Panics
    /// Panics if the workflow graph is cyclic (invalid images are never stored).
    pub fn register(&self, workflow: Workflow, config: DeploymentConfig) -> ImageId {
        assert!(workflow.is_valid(), "cannot register a cyclic workflow");
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        let image = HybridWorkflowImage { id, name: workflow.name.clone(), workflow, config };
        inner.images.insert(id, image);
        id
    }

    /// Fetch an image by id.
    pub fn get(&self, id: ImageId) -> Option<HybridWorkflowImage> {
        self.inner.read().images.get(&id).cloned()
    }

    /// List all registered images (id, name) pairs in id order.
    pub fn list(&self) -> Vec<(ImageId, String)> {
        self.inner.read().images.values().map(|img| (img.id, img.name.clone())).collect()
    }

    /// Remove an image; returns `true` if it existed.
    pub fn remove(&self, id: ImageId) -> bool {
        self.inner.write().images.remove(&id).is_some()
    }

    /// Number of registered images.
    pub fn len(&self) -> usize {
        self.inner.read().images.len()
    }

    /// `true` if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::mitigated_execution_workflow;
    use qonductor_circuit::generators::ghz;
    use qonductor_mitigation::MitigationStack;
    use qonductor_scheduler::ClassicalRequest;

    fn demo_workflow(name: &str) -> Workflow {
        mitigated_execution_workflow(
            name,
            ghz(4),
            MitigationStack::listing2(),
            ClassicalRequest::small(),
        )
    }

    #[test]
    fn register_get_list_remove_roundtrip() {
        let registry = WorkflowRegistry::new();
        assert!(registry.is_empty());
        let a = registry.register(demo_workflow("qaoa"), DeploymentConfig::default());
        let b = registry.register(demo_workflow("vqe"), DeploymentConfig::default());
        assert_ne!(a, b);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.get(a).unwrap().name, "qaoa");
        let listing = registry.list();
        assert_eq!(listing.len(), 2);
        assert!(registry.remove(a));
        assert!(!registry.remove(a));
        assert!(registry.get(a).is_none());
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn registry_clones_share_state() {
        let registry = WorkflowRegistry::new();
        let clone = registry.clone();
        let id = clone.register(demo_workflow("shared"), DeploymentConfig::default());
        assert!(registry.get(id).is_some());
    }

    #[test]
    fn ids_are_monotonically_increasing_and_stable_after_removal() {
        let registry = WorkflowRegistry::new();
        let a = registry.register(demo_workflow("a"), DeploymentConfig::default());
        registry.remove(a);
        let b = registry.register(demo_workflow("b"), DeploymentConfig::default());
        assert!(b > a, "ids must never be reused");
    }

    #[test]
    #[should_panic]
    fn cyclic_workflow_rejected() {
        use crate::workflow::{ClassicalKind, ClassicalStep, Step, Workflow};
        let mut wf = Workflow::new("cyclic");
        let step = |n: &str| {
            Step::Classical(ClassicalStep {
                name: n.into(),
                kind: ClassicalKind::Computation,
                request: ClassicalRequest::small(),
                estimated_duration_s: 1.0,
            })
        };
        let a = wf.add_step(step("a"));
        let b = wf.add_step(step("b"));
        wf.add_edge(a, b);
        wf.add_edge(b, a);
        WorkflowRegistry::new().register(wf, DeploymentConfig::default());
    }
}
