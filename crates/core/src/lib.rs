//! # qonductor-core
//!
//! The Qonductor control plane and data plane (§4, §5): the hardware-agnostic
//! user API of Table 2 (`create_workflow`, `deploy`, `invoke`,
//! `workflow_results`, image listing, resource estimation, scheduling), the
//! workflow manager (hybrid DAGs of classical and quantum steps), the workflow
//! registry (hybrid workflow images), deployment configuration (Listing 1
//! analogue), the replicated system monitor, the consensus-backed replication
//! of the job state (every `JobManager`/`SubmissionService` transition is
//! journaled through [`replication::ReplicatedControlPlane`], so a
//! control-plane failover loses no pending jobs), and the orchestrator that
//! wires the resource estimator, hybrid scheduler, QPU fleet, and classical
//! nodes into an end-to-end execution engine.

#![warn(missing_docs)]

pub mod autoscaler;
pub mod config;
pub mod digest;
pub mod federation;
pub mod fleetlease;
pub mod jobmanager;
pub mod monitor;
pub mod orchestrator;
pub mod registry;
pub mod replication;
pub mod sharding;
pub mod submission;
pub mod workflow;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScalingDecision, ScalingStrategy};
pub use config::{DeploymentConfig, Priority, ResourceLimits};
pub use federation::{
    CostOptimized, FederatedFleet, LeastLoaded, PlacementStrategy, Provider, ProviderCapacity,
    QuantumAware,
};
pub use fleetlease::{FleetAllocator, LeaseConflict, ProviderSpan, ReleaseError};
pub use jobmanager::{
    BatchRecord, CalibrationPolicy, CompletedExecution, JobId, JobManager, JobSpec, PendingJob,
    TenantId, DEFAULT_TENANT,
};
pub use monitor::{
    BatchObservation, ReestimationObservation, SplitObservation, SystemMonitor, WorkflowStatus,
};
pub use orchestrator::{
    ClassicalStepResult, Orchestrator, OrchestratorError, QuantumStepResult, RunId, WorkflowResult,
};
pub use registry::{HybridWorkflowImage, ImageId, WorkflowRegistry};
pub use replication::{
    ControlPlaneEvent, DispatchOutcome, FailoverError, ReplicatedControlPlane, ReplicationError,
};
pub use sharding::{shard_of_global, GlobalTicket, ShardedControlPlane};
pub use submission::{
    JobTicket, RejectReason, SloClass, SubmissionError, SubmissionService, TenantConfig,
    TenantStats, TicketId, TicketStatus,
};
pub use workflow::{
    mitigated_execution_workflow, ClassicalKind, ClassicalStep, QuantumStep, Step, Workflow,
};
