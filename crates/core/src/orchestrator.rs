//! The Qonductor orchestrator: the user-facing API of Table 2
//! (`create_workflow`, `deploy`, `invoke`, `workflow_results`, …) wired to the
//! control-plane components — workflow manager/registry, resource estimator,
//! hybrid scheduler, job manager — and the worker-node resources (the QPU
//! fleet and classical nodes).
//!
//! The orchestrator executes workflows against the *modelled* hybrid cluster
//! (simulated time): quantum steps are submitted into the shared batch
//! [`JobManager`], whose [`qonductor_scheduler::ScheduleTrigger`] gates every
//! NSGA-II + MCDM scheduler invocation and dispatches whole batches onto the
//! fleet queues; classical steps are placed with the filter–score scheduler;
//! results (per-step fidelity, waiting, execution and completion times,
//! dollar cost) and every dispatched batch are persisted in the system
//! monitor. Submitting several workflows with [`Orchestrator::invoke_many`]
//! lets their quantum steps share a single scheduler invocation.

use crate::config::{DeploymentConfig, Priority};
use crate::jobmanager::{CalibrationPolicy, JobId, JobSpec, TenantId, DEFAULT_TENANT};
use crate::monitor::{SystemMonitor, WorkflowStatus};
use crate::registry::{HybridWorkflowImage, ImageId, WorkflowRegistry};
use crate::replication::ReplicatedControlPlane;
use crate::sharding::{GlobalTicket, ShardedControlPlane};
use crate::submission::{TenantConfig, TenantStats};
use crate::workflow::{Step, Workflow};
use parking_lot::Mutex;
use qonductor_backend::Fleet;
use qonductor_circuit::Circuit;
use qonductor_estimator::{
    generate_plans, EstimationBackend, PlanGeneratorConfig, PricingTable, ResourcePlan,
};
use qonductor_mitigation::MitigationStack;
use qonductor_scheduler::{
    place, ClassicalNode, HybridScheduler, ScheduleTrigger, SchedulerConfig, ScoringPolicy,
};
use qonductor_transpiler::Transpiler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a workflow invocation.
pub type RunId = u64;

/// Errors surfaced by the orchestrator API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrchestratorError {
    /// The referenced workflow image does not exist.
    ImageNotFound(ImageId),
    /// The referenced run does not exist.
    RunNotFound(RunId),
    /// No QPU in the cluster satisfies the workflow's qubit requirement.
    NoFeasibleQpu {
        /// Qubits required by the largest quantum step.
        required_qubits: u32,
    },
    /// No classical node satisfies a classical step's resource request.
    NoFeasibleClassicalNode,
    /// Resource estimation produced no feasible plan for the workflow's
    /// quantum steps (e.g. every template QPU is excluded by the deployment
    /// configuration).
    NoFeasiblePlan,
    /// The referenced submission tenant was never registered.
    UnknownTenant(TenantId),
    /// The replicated control plane cannot serve the request (no leader could
    /// be elected, or the journal has no store quorum). Surfaced by the
    /// explicit control-plane operations ([`Orchestrator::failover`],
    /// [`Orchestrator::snapshot_control`]); the invoke path itself assumes a
    /// standing quorum and panics if one is lost mid-flight (see
    /// [`Orchestrator::with_control`]).
    ControlPlaneUnavailable,
}

/// Execution record of one quantum step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumStepResult {
    /// Step name.
    pub step: String,
    /// Device the step ran on.
    pub qpu: String,
    /// Achieved fidelity.
    pub fidelity: f64,
    /// Waiting time from submission to execution start (seconds): time in
    /// the batch engine's pending pool waiting for the scheduling trigger,
    /// plus time in the QPU queue.
    pub waiting_s: f64,
    /// Quantum execution time (seconds).
    pub execution_s: f64,
}

/// Execution record of one classical step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassicalStepResult {
    /// Step name.
    pub step: String,
    /// Node the step ran on.
    pub node: String,
    /// Execution time (seconds).
    pub execution_s: f64,
}

/// The result of a completed workflow invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowResult {
    /// Invocation id.
    pub run_id: RunId,
    /// Image the run was invoked from.
    pub image_id: ImageId,
    /// The resource plan the run used.
    pub plan: ResourcePlan,
    /// Quantum step records.
    pub quantum_steps: Vec<QuantumStepResult>,
    /// Classical step records.
    pub classical_steps: Vec<ClassicalStepResult>,
    /// End-to-end completion time (seconds of simulated time).
    pub completion_s: f64,
    /// Estimated dollar cost of the run (Table 1 pricing).
    pub cost_usd: f64,
}

impl WorkflowResult {
    /// Mean fidelity over the quantum steps (1.0 if there are none).
    pub fn mean_fidelity(&self) -> f64 {
        if self.quantum_steps.is_empty() {
            return 1.0;
        }
        self.quantum_steps.iter().map(|s| s.fidelity).sum::<f64>() / self.quantum_steps.len() as f64
    }
}

struct OrchestratorState {
    fleet: Fleet,
    classical_nodes: Vec<ClassicalNode>,
    /// The journaled batch engine + submission service, partitioned across
    /// one or more shards (a single shard by default — behaviourally the
    /// unsharded plane): every mutation of job state flows through the owning
    /// shard's quorum-replicated log, so [`Orchestrator::failover`] can
    /// rebuild every shard without losing pending jobs.
    control: ShardedControlPlane,
    clock_s: f64,
    next_run_id: RunId,
    results: Vec<WorkflowResult>,
    /// Post-boundary re-estimation passes recorded so far (monitor key space).
    reestimation_passes: usize,
    rng: StdRng,
}

/// The Qonductor orchestrator (control plane + worker resources).
pub struct Orchestrator {
    registry: WorkflowRegistry,
    monitor: SystemMonitor,
    scheduler: HybridScheduler,
    transpiler: Transpiler,
    pricing: PricingTable,
    /// Seed for the control-plane stores (kept so [`Orchestrator::with_trigger`]
    /// and [`Orchestrator::with_shards`] rebuild deterministically).
    control_seed: u64,
    /// The control plane's scheduling trigger (kept so
    /// [`Orchestrator::with_shards`] rebuilds with the configured trigger and
    /// vice versa).
    control_trigger: ScheduleTrigger,
    /// Number of control-plane shards.
    control_shards: usize,
    /// Plan-ahead pipelining: after each dispatched batch, speculatively
    /// schedule the next trigger firing against the post-dispatch pool so
    /// the optimizer cycle overlaps batch execution.
    pipeline_planning: bool,
    state: Mutex<OrchestratorState>,
}

impl Orchestrator {
    /// Create an orchestrator over a QPU fleet and a set of classical nodes.
    pub fn new(fleet: Fleet, classical_nodes: Vec<ClassicalNode>, seed: u64) -> Self {
        let monitor = SystemMonitor::default();
        for member in fleet.members() {
            let _ = monitor.record_qpu_static(
                &member.qpu.name,
                member.qpu.num_qubits(),
                &member.qpu.model.name,
            );
        }
        let trigger = ScheduleTrigger::default();
        let control = default_control_plane(1, fleet.len(), trigger, seed);
        Orchestrator {
            registry: WorkflowRegistry::new(),
            monitor,
            // Warm-started: each batch cycle seeds NSGA-II from the previous
            // cycle's Pareto front and reuses the optimizer workspace.
            scheduler: HybridScheduler::with_warm_start(SchedulerConfig::default()),
            transpiler: Transpiler::default(),
            pricing: PricingTable::default(),
            control_seed: seed,
            control_trigger: trigger,
            control_shards: 1,
            pipeline_planning: false,
            state: Mutex::new(OrchestratorState {
                fleet,
                classical_nodes,
                control,
                clock_s: 0.0,
                next_run_id: 0,
                results: Vec::new(),
                reestimation_passes: 0,
                rng: StdRng::seed_from_u64(seed),
            }),
        }
    }

    /// Replace the batch engine's scheduling trigger (paper defaults: 100
    /// pending jobs / 120 s). Construction-time only: replacing the engine
    /// after workflows ran would discard pending jobs and restart the job-id
    /// space. Tenants registered before the call carry over (with their
    /// configuration and ids) into the rebuilt control plane.
    ///
    /// # Panics
    /// Panics if any workflow has already been invoked.
    pub fn with_trigger(mut self, trigger: ScheduleTrigger) -> Self {
        self.control_trigger = trigger;
        self.rebuild_control("with_trigger");
        self
    }

    /// Partition the control plane across `num_shards` shards: each shard
    /// owns its own journal, batch engine, submission service, and trigger,
    /// and leases an exclusive slice of the QPU fleet (QPU `i` → shard
    /// `i % num_shards`). Tenants are routed to shards by the pure
    /// [`crate::sharding::shard_of_global`] hash. Construction-time only,
    /// like [`Self::with_trigger`]; previously registered tenants carry over
    /// (same global ids) into the rebuilt plane.
    ///
    /// # Panics
    /// Panics if any workflow has already been invoked.
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.control_shards = num_shards;
        self.rebuild_control("with_shards");
        self
    }

    /// Rebuild the control plane from the current trigger/shard settings,
    /// replaying tenant registrations so global ids are preserved.
    fn rebuild_control(&self, caller: &str) {
        let mut state = self.state.lock();
        assert!(
            state.next_run_id == 0
                && state.control.shards().iter().all(|s| s.jobmanager().pending_len() == 0),
            "{caller} must be called before any workflow is invoked"
        );
        let mut control = default_control_plane(
            self.control_shards,
            state.fleet.len(),
            self.control_trigger,
            self.control_seed,
        );
        // Re-register every pre-existing tenant beyond the default one
        // (global ids are sequential and never removed, so replaying the
        // configurations in ascending order reproduces the id space).
        for (id, config) in state.control.tenant_configs_global() {
            if id == DEFAULT_TENANT {
                continue;
            }
            let new_id =
                control.register_tenant_with(config).expect("fresh control plane has a quorum");
            debug_assert_eq!(new_id, id);
        }
        state.control = control;
    }

    /// Enable plan-ahead pipelining: after every dispatched batch the engine
    /// speculatively schedules the batch the *next* trigger firing would
    /// dispatch, so the optimizer cycle overlaps batch execution instead of
    /// sitting on the dispatch critical path. The plan is adopted only if
    /// the pool, QPU queues, and calibration epochs are unchanged at the
    /// firing (validated by input digest), so dispatches are bit-identical
    /// with or without pipelining.
    pub fn with_pipeline_planning(mut self) -> Self {
        self.pipeline_planning = true;
        self
    }

    /// An orchestrator over the default 8-QPU IBM-like fleet and a small
    /// classical cluster (two standard VMs and one accelerated VM).
    pub fn with_default_cluster(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fleet = Fleet::ibm_default(&mut rng);
        let nodes = vec![
            ClassicalNode::standard_vm("vm-0"),
            ClassicalNode::standard_vm("vm-1"),
            ClassicalNode::high_end_vm("gpu-0"),
        ];
        Orchestrator::new(fleet, nodes, seed)
    }

    /// The workflow registry (Table 2: "Register a workflow image", "List
    /// available hybrid workflow images").
    pub fn registry(&self) -> &WorkflowRegistry {
        &self.registry
    }

    /// The system monitor.
    pub fn monitor(&self) -> &SystemMonitor {
        &self.monitor
    }

    /// Register a submission tenant with the given fairness weight. Workflows
    /// invoked via [`Self::invoke_many_as`] under this tenant compete for
    /// batch slots through the weighted-fair admission step; plain
    /// [`Self::invoke`] / [`Self::invoke_many`] run as the default tenant.
    pub fn register_tenant(&self, weight: u32) -> TenantId {
        self.state
            .lock()
            .control
            .register_tenant(weight)
            .expect("control-plane journal has a quorum")
    }

    /// A tenant's current submission accounting (admissions, completions,
    /// rejections, mean queue wait and turnaround). The id is the *global*
    /// tenant id returned by [`Self::register_tenant`].
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.state.lock().control.tenant_stats(tenant)
    }

    /// Run a closure against the replicated control plane (fault-injection
    /// hooks for tests: crash/recover store replicas, inspect the journal and
    /// election cluster).
    ///
    /// Crash at most a *minority* of store replicas while invocations are in
    /// flight: the invoke path journals through the control plane with a
    /// standing-quorum assumption and panics (rather than returning
    /// [`OrchestratorError::ControlPlaneUnavailable`]) if an in-flight
    /// journal write finds no quorum.
    pub fn with_control<R>(&self, f: impl FnOnce(&ReplicatedControlPlane) -> R) -> R {
        f(self.state.lock().control.shard(0))
    }

    /// Like [`Self::with_control`] but over the whole sharded plane (lease
    /// allocator, per-shard journals, tenant placement).
    pub fn with_sharded_control<R>(&self, f: impl FnOnce(&ShardedControlPlane) -> R) -> R {
        f(&self.state.lock().control)
    }

    /// Canonical byte-for-byte encoding of the control plane's job state
    /// (batch engine + submission service, every shard); equal digests imply
    /// bit-identical states.
    pub fn control_digest(&self) -> String {
        self.state.lock().control.combined_digest()
    }

    /// Checkpoint the control plane: install a snapshot of the current job
    /// state in each shard's replicated store and compact its journal up to
    /// it. Returns shard 0's snapshot index.
    pub fn snapshot_control(&self) -> Result<u64, OrchestratorError> {
        self.state
            .lock()
            .control
            .snapshot_all()
            .map(|upto| upto[0])
            .map_err(|_| OrchestratorError::ControlPlaneUnavailable)
    }

    /// Fault-inject a control-plane failover on every shard: crash each
    /// shard's elected leader (its volatile job state dies with it), elect a
    /// new leader inside the shard's store, and rebuild the batch engine +
    /// submission service deterministically from the replicated
    /// `snapshot + log replay`. No pending job is lost: every ticket issued
    /// before the crash still resolves afterwards.
    pub fn failover(&self) -> Result<(), OrchestratorError> {
        let mut state = self.state.lock();
        state.control.crash_all_leaders();
        state.control.failover_all().map_err(|_| OrchestratorError::ControlPlaneUnavailable)
    }

    /// Table 2 — *Create a workflow with hybrid code*: package a workflow and
    /// its deployment configuration into a hybrid workflow image.
    pub fn create_workflow(&self, workflow: Workflow, config: DeploymentConfig) -> ImageId {
        self.registry.register(workflow, config)
    }

    /// Table 2 — *List available hybrid workflow images*.
    pub fn list_images(&self) -> Vec<(ImageId, String)> {
        self.registry.list()
    }

    /// Table 2 — *Deploy a workflow*: validate the image against the cluster
    /// (does any QPU fit the largest quantum step?) without executing it.
    pub fn deploy(&self, image_id: ImageId) -> Result<(), OrchestratorError> {
        let image = self.image(image_id)?;
        let required = image.workflow.max_qubits().max(image.config.quantum.min_qubits);
        let state = self.state.lock();
        if required > 0 && state.fleet.max_qubits() < required {
            return Err(OrchestratorError::NoFeasibleQpu { required_qubits: required });
        }
        Ok(())
    }

    /// Table 2 — *Estimate the hybrid resources required*: generate resource
    /// plans for an image (fidelity/runtime/cost tradeoffs over template QPUs
    /// and mitigation stacks).
    pub fn estimate_resources(
        &self,
        image_id: ImageId,
    ) -> Result<Vec<ResourcePlan>, OrchestratorError> {
        let image = self.image(image_id)?;
        let state = self.state.lock();
        Ok(self.estimate_resources_inner(&state, &image))
    }

    /// Plan generation against an already-locked state.
    fn estimate_resources_inner(
        &self,
        state: &OrchestratorState,
        image: &HybridWorkflowImage,
    ) -> Vec<ResourcePlan> {
        let templates: Vec<_> = state
            .fleet
            .template_qpus()
            .into_iter()
            .filter(|t| {
                image.config.preferred_models.is_empty()
                    || image.config.preferred_models.contains(&t.model.name)
            })
            .filter(|t| t.num_qubits() >= image.config.quantum.min_qubits)
            .collect();
        let plan_config = PlanGeneratorConfig {
            num_plans: image.config.num_resource_plans,
            pricing: self.pricing,
            accelerators_available: state.classical_nodes.iter().any(|n| n.accelerators_free() > 0),
        };
        let mut plans = Vec::new();
        for step in image.workflow.steps() {
            if let Step::Quantum(q) = step {
                plans.extend(generate_plans(
                    &q.circuit,
                    &templates,
                    EstimationBackend::Analytic,
                    &plan_config,
                ));
            }
        }
        plans
    }

    /// Table 2 — *Invoke a workflow*: execute the image end-to-end on the
    /// hybrid cluster and return the run id. The run's status and results are
    /// persisted in the system monitor. Quantum steps go through the shared
    /// batch engine: the run's jobs wait in the pending pool until the
    /// scheduling trigger fires (for a lone invocation, the interval trigger).
    pub fn invoke(&self, image_id: ImageId) -> Result<RunId, OrchestratorError> {
        self.invoke_many(&[image_id]).pop().expect("one result per image")
    }

    /// Invoke several workflows as one submission wave: their quantum steps
    /// enter the batch engine's pending pool together, so one trigger firing
    /// schedules them in a single NSGA-II invocation (multi-workflow
    /// batching, §7). Returns one result per input image, in order.
    pub fn invoke_many(&self, image_ids: &[ImageId]) -> Vec<Result<RunId, OrchestratorError>> {
        self.invoke_many_as(DEFAULT_TENANT, image_ids)
    }

    /// [`Self::invoke_many`] on behalf of a registered submission tenant: the
    /// wave's quantum jobs ride the tenant's FIFO queue and the weighted-fair
    /// admission step before reaching the batch engine's pending pool.
    pub fn invoke_many_as(
        &self,
        tenant: TenantId,
        image_ids: &[ImageId],
    ) -> Vec<Result<RunId, OrchestratorError>> {
        let mut state = self.state.lock();
        let state = &mut *state;
        if state.control.tenant_stats(tenant).is_none() {
            return image_ids
                .iter()
                .map(|_| Err(OrchestratorError::UnknownTenant(tenant)))
                .collect();
        }
        // Plan-time calibration freshness: apply any recalibration boundary
        // the clock has already crossed *before* resource plans are generated
        // and priorities picked, so `pick_plan` and the per-step estimates
        // read the current epoch's calibration, never a stale snapshot left
        // over from the previous invocation wave.
        state.fleet.sync_calibrations(state.clock_s, &mut state.rng);

        // One slot per input: either an early error or an index into `runs`.
        let mut slots: Vec<Result<usize, OrchestratorError>> = Vec::with_capacity(image_ids.len());
        let mut runs: Vec<ActiveRun> = Vec::new();

        for &image_id in image_ids {
            let image = match self.image(image_id) {
                Ok(image) => image,
                Err(e) => {
                    slots.push(Err(e));
                    continue;
                }
            };
            let run_id = state.next_run_id;
            state.next_run_id += 1;
            let _ = self.monitor.set_workflow_status(run_id, WorkflowStatus::Pending);

            let has_quantum = image.workflow.steps().iter().any(|s| matches!(s, Step::Quantum(_)));
            let plan = if has_quantum {
                let plans = self.estimate_resources_inner(state, &image);
                match pick_plan(&plans, image.config.priority) {
                    Some(plan) => plan.clone(),
                    None => {
                        let _ = self.monitor.set_workflow_status(run_id, WorkflowStatus::Failed);
                        slots.push(Err(OrchestratorError::NoFeasiblePlan));
                        continue;
                    }
                }
            } else {
                classical_only_plan()
            };

            let _ = self.monitor.set_workflow_status(run_id, WorkflowStatus::Running);
            let order =
                image.workflow.topological_order().expect("registry guarantees acyclic workflows");
            slots.push(Ok(runs.len()));
            runs.push(ActiveRun {
                run_id,
                image,
                plan,
                order,
                cursor: 0,
                start_s: state.clock_s,
                clock_s: state.clock_s,
                awaiting_job: false,
                quantum_steps: Vec::new(),
                classical_steps: Vec::new(),
                quantum_time_total: 0.0,
                classical_time_total: 0.0,
                failed: None,
            });
        }

        // Alternate submission waves and engine drives until every run has
        // either finished all its steps or failed. Tickets are shard-qualified
        // ([`GlobalTicket`]): per-shard ticket ids collide across shards.
        let mut awaiting: HashMap<GlobalTicket, AwaitedStep> = HashMap::new();
        loop {
            for run_index in 0..runs.len() {
                self.progress_run(state, &mut runs, run_index, tenant, &mut awaiting);
            }
            if awaiting.is_empty() {
                break;
            }
            self.drive_engine(state, &mut runs, &mut awaiting);
        }

        // Persist per-tenant submission accounting alongside the results.
        for (id, stats) in state.control.snapshot_stats() {
            let _ = self.monitor.record_tenant_stats(id, &stats);
        }

        // Finalize: persist results and map runs back to input order.
        slots
            .into_iter()
            .map(|slot| {
                let run = &mut runs[slot?];
                if let Some(e) = run.failed.take() {
                    let _ = self.monitor.set_workflow_status(run.run_id, WorkflowStatus::Failed);
                    return Err(e);
                }
                let result = run.finish(&self.pricing);
                let _ = self.monitor.set_workflow_status(run.run_id, WorkflowStatus::Completed);
                let _ = self.monitor.set_workflow_result(
                    run.run_id,
                    &format!(
                        "fidelity={:.4},completion_s={:.3},cost_usd={:.2}",
                        result.mean_fidelity(),
                        result.completion_s,
                        result.cost_usd
                    ),
                );
                let run_id = run.run_id;
                state.results.push(result);
                Ok(run_id)
            })
            .collect()
    }

    /// Execute a run's steps in topological order until it blocks on a
    /// quantum result, fails, or finishes. Classical steps advance the run's
    /// local clock immediately; a quantum step is submitted into the tenant's
    /// queue (non-blocking) and the run parks until [`Self::drive_engine`]
    /// admits, schedules, and delivers it.
    fn progress_run(
        &self,
        state: &mut OrchestratorState,
        runs: &mut [ActiveRun],
        run_index: usize,
        tenant: TenantId,
        awaiting: &mut HashMap<GlobalTicket, AwaitedStep>,
    ) {
        let run = &mut runs[run_index];
        if run.failed.is_some() || run.awaiting_job {
            return;
        }
        while run.cursor < run.order.len() {
            let step_index = run.order[run.cursor];
            match &run.image.workflow.steps()[step_index] {
                Step::Classical(step) => {
                    let Some(node_index) =
                        place(&state.classical_nodes, &step.request, ScoringPolicy::LeastAllocated)
                    else {
                        run.failed = Some(OrchestratorError::NoFeasibleClassicalNode);
                        return;
                    };
                    let duration = step.estimated_duration_s;
                    run.clock_s += duration;
                    run.classical_time_total += duration;
                    run.classical_steps.push(ClassicalStepResult {
                        step: step.name.clone(),
                        node: state.classical_nodes[node_index].name.clone(),
                        execution_s: duration,
                    });
                    run.cursor += 1;
                }
                Step::Quantum(step) => {
                    let stack = if step.mitigation.is_empty() {
                        run.plan.stack.clone()
                    } else {
                        step.mitigation.clone()
                    };
                    // Estimates are computed against the *engine clock's*
                    // epoch (never the run-local clock, which classical
                    // steps can push arbitrarily far ahead — recalibrating
                    // to a future instant would consume boundaries other
                    // runs' plans must still split at). If the engine clock
                    // crosses a boundary before this job dispatches, the
                    // drive loop's re-estimation pass refreshes it.
                    let (fidelity_per_qpu, exec_time_per_qpu) =
                        self.step_estimates(&state.fleet, &step.circuit, &stack);
                    if fidelity_per_qpu.iter().all(|&f| f <= 0.0) {
                        run.failed = Some(OrchestratorError::NoFeasibleQpu {
                            required_qubits: step.circuit.num_qubits(),
                        });
                        return;
                    }
                    let spec = JobSpec {
                        qubits: step.circuit.num_qubits(),
                        shots: step.circuit.shots(),
                        fidelity_per_qpu: fidelity_per_qpu.clone(),
                        exec_time_per_qpu,
                        estimate_epoch: state.fleet.calibration_epoch(),
                    };
                    let ticket = state
                        .control
                        .submit(tenant, spec, run.clock_s)
                        .expect("tenant validated at wave entry; journal has a quorum");
                    awaiting.insert(
                        ticket,
                        AwaitedStep {
                            run_index,
                            step_name: step.name.clone(),
                            required_qubits: step.circuit.num_qubits(),
                            submitted_s: run.clock_s,
                            fidelity_per_qpu,
                            circuit: step.circuit.clone(),
                            stack,
                        },
                    );
                    run.awaiting_job = true;
                    run.cursor += 1;
                    return;
                }
            }
        }
    }

    /// Drive the batch engine in event order until at least one awaited job
    /// completes (or a batch terminally rejects one): run the weighted-fair
    /// admission pass, advance simulated time to the earliest of the next
    /// queued completion and the next trigger firing, deliver any completions
    /// at that instant — freed runs return to the submission wave before
    /// anything else is dispatched — and otherwise dispatch the pool as one
    /// batch when the trigger is due. Every dispatched batch is recorded in
    /// the system monitor with its per-tenant composition.
    fn drive_engine(
        &self,
        state: &mut OrchestratorState,
        runs: &mut [ActiveRun],
        awaiting: &mut HashMap<GlobalTicket, AwaitedStep>,
    ) {
        let mut rounds = 0usize;
        while !awaiting.is_empty() {
            rounds += 1;
            assert!(rounds < 10_000, "batch engine failed to converge");

            // Weighted-fair admission: drain tenant queues into the pending
            // pool (up to the trigger's queue limit) before looking for the
            // next event, so freshly submitted or re-queued jobs count. The
            // pass is journaled through the replicated control plane.
            state.control.admit(state.clock_s).expect("control-plane journal has a quorum");

            // Next simulated instant anything can happen: a queued job
            // completing, or the trigger firing (interval expiry, or the
            // queue-limit-th pooled submission) — whichever comes first.
            // Queued completions at the same instant are delivered before
            // dispatching, so freed runs can submit their next steps in time
            // to join the upcoming batch.
            let next_event = state.control.next_event_s(&state.fleet);
            let next_trigger = state.control.next_trigger_s();
            let target = match (next_event, next_trigger) {
                (Some(e), Some(t)) => e.min(t),
                (Some(e), None) => e,
                (None, Some(t)) => t,
                (None, None) => unreachable!("awaited jobs are queued, pooled, or enqueued"),
            }
            .max(state.clock_s);
            state.fleet.advance_to(target, &mut state.rng);
            state.clock_s = target;

            // Re-estimate every pending job whose estimate table predates
            // the current fleet epoch (jobs a split parked behind the
            // boundary, jobs admitted from a pre-boundary tenant-queue
            // backlog, and any still-pooled job), journaling each refresh so
            // failover replays it byte-for-byte. Cheap when nothing is
            // stale, so it runs every round rather than only on rounds whose
            // own advance crossed a boundary.
            let epoch = state.fleet.calibration_epoch();
            self.reestimate_stale_pending(state, awaiting, epoch);

            // Deliver completions up to this instant (journaled per ticket on
            // the shard that leases the QPU the job ran on).
            let mut delivered = 0usize;
            for (ticket, completion) in state
                .control
                .drain_and_note(&mut state.fleet)
                .expect("control-plane journal has a quorum")
            {
                let Some(step) = awaiting.remove(&ticket) else { continue };
                let run = &mut runs[step.run_index];
                let jitter = 1.0 + state.rng.gen_range(-0.02..0.02);
                run.quantum_steps.push(QuantumStepResult {
                    step: step.step_name,
                    qpu: state.fleet.members()[completion.qpu_index].qpu.name.clone(),
                    fidelity: (step.fidelity_per_qpu[completion.qpu_index] * jitter)
                        .clamp(0.0, 1.0),
                    // Waiting from submission: pool wait (for the trigger)
                    // plus queue wait, matching the cloud simulation's
                    // definition over the same engine.
                    waiting_s: completion.record.start_time_s - step.submitted_s,
                    execution_s: completion.record.execution_s(),
                });
                run.quantum_time_total += completion.record.execution_s();
                run.clock_s = run.clock_s.max(completion.record.finish_time_s);
                run.awaiting_job = false;
                delivered += 1;
            }
            if delivered > 0 {
                // Hand control back so unblocked runs can submit their next
                // steps (possibly joining the next batch) before driving on.
                self.record_fleet_dynamics(state);
                return;
            }

            // No completions at this instant: dispatch on every shard whose
            // trigger is due (the queues are already advanced to the dispatch
            // time). Each dispatch is journaled as one event on its shard.
            let outcomes = state
                .control
                .try_dispatch(state.clock_s, &self.scheduler, &mut state.fleet)
                .expect("control-plane journal has a quorum");
            let dispatched = !outcomes.is_empty();
            let mut any_rejected = false;
            for (shard, outcome) in outcomes {
                let batch = &outcome.record;
                let _ = self.monitor.record_schedule_batch(
                    batch.batch_index,
                    batch.t_s,
                    batch.reason,
                    batch.job_ids.len(),
                    &batch.tenant_jobs,
                );
                // Surface calibration-crossover splits: which jobs were
                // pulled out of the batch and parked behind the boundary.
                if !batch.deferred.is_empty() {
                    let deferred_ids: Vec<JobId> =
                        batch.deferred.iter().map(|(id, _)| *id).collect();
                    let _ = self.monitor.record_calibration_split(
                        batch.batch_index,
                        batch.t_s,
                        batch.fleet_epoch,
                        &deferred_ids,
                    );
                }
                // Scheduler-rejected jobs return to their tenant queue for
                // re-admission until the retry budget runs out; only the
                // terminal rejections fail their runs.
                for ticket in outcome.terminal_rejections {
                    if let Some(step) = awaiting.remove(&GlobalTicket { shard, ticket }) {
                        runs[step.run_index].failed = Some(OrchestratorError::NoFeasibleQpu {
                            required_qubits: step.required_qubits,
                        });
                        runs[step.run_index].awaiting_job = false;
                        any_rejected = true;
                    }
                }
            }
            if dispatched {
                self.record_fleet_dynamics(state);
                // Plan-ahead pipelining: with the batches on the QPU queues,
                // each shard speculatively schedules what its *next* trigger
                // firing would dispatch from the post-dispatch pool. If
                // nothing changes before the firing the cached plan is
                // adopted and the optimizer cycle has already been paid for
                // off the dispatch critical path; any change discards it.
                if self.pipeline_planning {
                    state.control.plan_ahead_all(&self.scheduler, &state.fleet);
                }
            }
            if any_rejected && awaiting.is_empty() {
                return;
            }
        }
    }

    /// Re-estimate every pending job whose estimate table predates the
    /// current fleet calibration epoch: recompute the per-QPU
    /// fidelity/execution estimates from the step's circuit and mitigation
    /// stack against the *new* calibration snapshots, journal each refresh
    /// through the control plane, and record the pass in the system monitor.
    fn reestimate_stale_pending(
        &self,
        state: &mut OrchestratorState,
        awaiting: &mut HashMap<GlobalTicket, AwaitedStep>,
        epoch: u64,
    ) {
        let mut refreshed: Vec<JobId> = Vec::new();
        for (shard, job_id) in state.control.stale_pending_all(epoch) {
            let Some(ticket) = state.control.admitted_ticket(shard, job_id) else {
                continue;
            };
            let Some(step) = awaiting.get_mut(&ticket) else { continue };
            let (fidelity_per_qpu, exec_time_per_qpu) =
                self.step_estimates(&state.fleet, &step.circuit, &step.stack);
            let spec = JobSpec {
                qubits: step.circuit.num_qubits(),
                shots: step.circuit.shots(),
                fidelity_per_qpu: fidelity_per_qpu.clone(),
                exec_time_per_qpu,
                estimate_epoch: epoch,
            };
            // The step's result fidelity is read from these estimates at
            // delivery: keep them in lock-step with what the engine now
            // schedules against (the plane re-masks the spec to the shard's
            // lease before journaling, like a submission).
            step.fidelity_per_qpu = fidelity_per_qpu;
            if state
                .control
                .reestimate_job(shard, job_id, spec)
                .expect("control-plane journal has a quorum")
            {
                refreshed.push(job_id);
            }
        }
        if !refreshed.is_empty() {
            let pass = state.reestimation_passes;
            state.reestimation_passes += 1;
            let _ = self.monitor.record_reestimation(pass, state.clock_s, epoch, &refreshed);
        }
    }

    /// Refresh the monitor's dynamic per-QPU records (queue depth, waiting
    /// estimate, calibration cycle) from the current fleet state.
    fn record_fleet_dynamics(&self, state: &OrchestratorState) {
        for member in state.fleet.members() {
            let _ = self.monitor.record_qpu_dynamic(
                &member.qpu.name,
                member.queue.pending_len(),
                member.queue.estimated_waiting_s(),
                member.qpu.clock.epoch,
            );
        }
    }

    /// Per-QPU fidelity and execution-time estimates for one circuit under a
    /// mitigation stack (transpilation + ESP + mitigation uplift). QPUs that
    /// cannot fit the circuit get zero fidelity and an effectively-infinite
    /// execution time.
    fn step_estimates(
        &self,
        fleet: &Fleet,
        circuit: &Circuit,
        stack: &MitigationStack,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut fidelity_per_qpu = Vec::with_capacity(fleet.len());
        let mut exec_time_per_qpu = Vec::with_capacity(fleet.len());
        for member in fleet.members() {
            if member.qpu.num_qubits() < circuit.num_qubits() {
                // The engine's "cannot run here" marker (it sanitizes this to
                // a finite penalty for the optimizer and refuses it in
                // direct dispatch); cloudsim uses the same representation.
                fidelity_per_qpu.push(0.0);
                exec_time_per_qpu.push(f64::INFINITY);
                continue;
            }
            let noise = member.qpu.noise_model();
            let transpiled = self.transpiler.transpile_for_qpu(circuit, &member.qpu);
            let cost = stack.cost(&transpiled.circuit, &noise);
            let base = noise.estimated_success_probability(&transpiled.circuit);
            fidelity_per_qpu.push(cost.mitigated_fidelity(base));
            exec_time_per_qpu.push(transpiled.total_execution_s() * cost.quantum_time_factor);
        }
        (fidelity_per_qpu, exec_time_per_qpu)
    }

    /// Table 2 — *Get the workflow results*.
    pub fn workflow_results(&self, run_id: RunId) -> Result<WorkflowResult, OrchestratorError> {
        self.state
            .lock()
            .results
            .iter()
            .find(|r| r.run_id == run_id)
            .cloned()
            .ok_or(OrchestratorError::RunNotFound(run_id))
    }

    /// Execution status of a run (from the system monitor).
    pub fn workflow_status(&self, run_id: RunId) -> Option<WorkflowStatus> {
        self.monitor.workflow_status(run_id)
    }

    fn image(&self, image_id: ImageId) -> Result<HybridWorkflowImage, OrchestratorError> {
        self.registry.get(image_id).ok_or(OrchestratorError::ImageNotFound(image_id))
    }
}

/// Execution state of one in-flight workflow invocation.
struct ActiveRun {
    run_id: RunId,
    image: HybridWorkflowImage,
    plan: ResourcePlan,
    /// Topological step order.
    order: Vec<usize>,
    /// Next position in `order`.
    cursor: usize,
    /// Simulated time the run started.
    start_s: f64,
    /// Run-local simulated time (advances past classical steps and to each
    /// quantum completion).
    clock_s: f64,
    /// Whether the run is parked on a submitted quantum job.
    awaiting_job: bool,
    quantum_steps: Vec<QuantumStepResult>,
    classical_steps: Vec<ClassicalStepResult>,
    quantum_time_total: f64,
    classical_time_total: f64,
    failed: Option<OrchestratorError>,
}

impl ActiveRun {
    /// Build the final result record of a completed run.
    fn finish(&mut self, pricing: &PricingTable) -> WorkflowResult {
        let cost_usd = pricing.hybrid_job_cost_usd(
            self.quantum_time_total,
            self.classical_time_total,
            self.plan.uses_accelerator,
        );
        WorkflowResult {
            run_id: self.run_id,
            image_id: self.image.id,
            plan: self.plan.clone(),
            quantum_steps: std::mem::take(&mut self.quantum_steps),
            classical_steps: std::mem::take(&mut self.classical_steps),
            completion_s: self.clock_s - self.start_s,
            cost_usd,
        }
    }
}

/// Bookkeeping for a quantum step parked in the batch engine.
struct AwaitedStep {
    run_index: usize,
    step_name: String,
    required_qubits: u32,
    /// Run-local simulated time of the submission (waiting is measured from
    /// here: pool wait for the trigger + queue wait).
    submitted_s: f64,
    fidelity_per_qpu: Vec<f64>,
    /// The step's circuit and mitigation stack, kept so a pending job pulled
    /// out of a batch at a recalibration boundary can be re-estimated against
    /// the post-boundary calibration snapshot.
    circuit: Circuit,
    stack: MitigationStack,
}

/// A sharded replicated control plane (per shard, f = 1: three store
/// replicas with the leader lease inside the store) whose batch engines
/// split plans at recalibration boundaries (§7) and whose tenant 0 mirrors
/// the legacy single-caller path: weight 1, unbounded in-flight, and no
/// rejection retries (a scheduler rejection fails the awaiting run
/// immediately, as before the submission service existed).
fn default_control_plane(
    num_shards: usize,
    num_qpus: usize,
    trigger: ScheduleTrigger,
    seed: u64,
) -> ShardedControlPlane {
    let mut control = ShardedControlPlane::new(
        num_shards,
        num_qpus,
        trigger,
        CalibrationPolicy::SplitAtBoundary,
        1,
        seed,
    );
    let tenant = control
        .register_tenant_with(TenantConfig { weight: 1, max_in_flight: usize::MAX, max_retries: 0 })
        .expect("fresh store has a quorum");
    debug_assert_eq!(tenant, DEFAULT_TENANT);
    control
}

/// The neutral plan used by workflows without quantum steps.
fn classical_only_plan() -> ResourcePlan {
    ResourcePlan {
        stack_label: "classical-only".into(),
        stack: MitigationStack::none(),
        qpu_model: "none".into(),
        estimated_fidelity: 1.0,
        quantum_time_s: 0.0,
        classical_time_s: 0.0,
        uses_accelerator: false,
        cost_usd: 0.0,
    }
}

/// Pick the plan matching a priority: highest fidelity, lowest total time, or
/// the most balanced (closest to the fidelity-per-second knee).
fn pick_plan(plans: &[ResourcePlan], priority: Priority) -> Option<&ResourcePlan> {
    if plans.is_empty() {
        return None;
    }
    match priority {
        Priority::Fidelity => {
            plans.iter().max_by(|a, b| a.estimated_fidelity.total_cmp(&b.estimated_fidelity))
        }
        Priority::CompletionTime => {
            plans.iter().min_by(|a, b| a.total_time_s().total_cmp(&b.total_time_s()))
        }
        Priority::Balanced => {
            let max_f = plans.iter().map(|p| p.estimated_fidelity).fold(0.0, f64::max);
            let max_t = plans.iter().map(|p| p.total_time_s()).fold(0.0, f64::max);
            plans.iter().max_by(|a, b| {
                let score = |p: &ResourcePlan| {
                    p.estimated_fidelity / max_f.max(1e-9)
                        - 0.5 * p.total_time_s() / max_t.max(1e-9)
                };
                score(a).total_cmp(&score(b))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::mitigated_execution_workflow;
    use qonductor_circuit::generators::{ghz, qaoa_maxcut, MaxCutGraph};
    use qonductor_scheduler::ClassicalRequest;

    fn ghz_image(orchestrator: &Orchestrator, n: u32, mitigated: bool) -> ImageId {
        let stack = if mitigated { MitigationStack::listing2() } else { MitigationStack::none() };
        let wf = mitigated_execution_workflow(
            format!("ghz{n}"),
            ghz(n),
            stack,
            ClassicalRequest::small(),
        );
        orchestrator.create_workflow(wf, DeploymentConfig::default())
    }

    #[test]
    fn end_to_end_invoke_produces_results() {
        let orchestrator = Orchestrator::with_default_cluster(1);
        let image = ghz_image(&orchestrator, 8, true);
        orchestrator.deploy(image).unwrap();
        let run = orchestrator.invoke(image).unwrap();
        assert_eq!(orchestrator.workflow_status(run), Some(WorkflowStatus::Completed));
        let result = orchestrator.workflow_results(run).unwrap();
        assert_eq!(result.quantum_steps.len(), 1);
        assert_eq!(result.classical_steps.len(), 2);
        assert!(result.mean_fidelity() > 0.0 && result.mean_fidelity() <= 1.0);
        assert!(result.completion_s > 0.0);
        assert!(result.cost_usd > 0.0);
        assert!(orchestrator.monitor().workflow_result(run).is_some());
    }

    #[test]
    fn oversized_workflow_fails_deploy_and_invoke() {
        let orchestrator = Orchestrator::with_default_cluster(2);
        let image = ghz_image(&orchestrator, 40, false);
        assert!(matches!(
            orchestrator.deploy(image),
            Err(OrchestratorError::NoFeasibleQpu { required_qubits: 40 })
        ));
        assert!(orchestrator.invoke(image).is_err());
    }

    #[test]
    fn unknown_image_and_run_are_reported() {
        let orchestrator = Orchestrator::with_default_cluster(3);
        assert_eq!(orchestrator.deploy(99), Err(OrchestratorError::ImageNotFound(99)));
        assert_eq!(orchestrator.workflow_results(42), Err(OrchestratorError::RunNotFound(42)));
    }

    #[test]
    fn resource_plans_are_generated_for_images() {
        let orchestrator = Orchestrator::with_default_cluster(4);
        let graph = MaxCutGraph::ring(12);
        let wf = mitigated_execution_workflow(
            "qaoa",
            qaoa_maxcut(&graph, &[0.4], &[0.7]),
            MitigationStack::listing2(),
            ClassicalRequest::small(),
        );
        let image = orchestrator.create_workflow(wf, DeploymentConfig::default());
        let plans = orchestrator.estimate_resources(image).unwrap();
        assert!(!plans.is_empty());
        assert!(plans.len() <= 3);
        assert!(plans.iter().all(|p| p.estimated_fidelity > 0.0));
    }

    #[test]
    fn consecutive_runs_accumulate_queue_time() {
        let orchestrator = Orchestrator::with_default_cluster(5);
        let image = ghz_image(&orchestrator, 12, false);
        let first = orchestrator.invoke(image).unwrap();
        let second = orchestrator.invoke(image).unwrap();
        let r1 = orchestrator.workflow_results(first).unwrap();
        let r2 = orchestrator.workflow_results(second).unwrap();
        assert_ne!(first, second);
        assert!(r1.completion_s > 0.0 && r2.completion_s > 0.0);
        assert_eq!(orchestrator.list_images().len(), 1);
    }

    /// A control-plane failover between invocations loses nothing: the job
    /// state is rebuilt bit-for-bit from the replicated journal, later
    /// invocations keep working, and accounting/id spaces continue seamlessly.
    #[test]
    fn failover_between_invocations_preserves_control_state() {
        let orchestrator = Orchestrator::with_default_cluster(7);
        let image = ghz_image(&orchestrator, 8, false);
        let first = orchestrator.invoke(image).unwrap();
        let digest = orchestrator.control_digest();
        let leader_before = orchestrator.with_control(|c| c.leader());
        orchestrator.failover().expect("failover succeeds");
        assert_eq!(orchestrator.control_digest(), digest, "state rebuilt bit-for-bit");
        assert_ne!(orchestrator.with_control(|c| c.leader()), leader_before);
        // The orchestrator keeps serving invocations on the recovered state.
        let second = orchestrator.invoke(image).unwrap();
        assert_ne!(first, second);
        assert_eq!(orchestrator.workflow_status(second), Some(WorkflowStatus::Completed));
        let stats = orchestrator.tenant_stats(DEFAULT_TENANT).unwrap();
        assert_eq!(stats.completed, 2, "pre-crash accounting survived the failover");
    }

    /// Snapshot + compaction keeps failover working with a truncated journal.
    #[test]
    fn snapshot_compaction_then_failover() {
        let orchestrator = Orchestrator::with_default_cluster(8);
        let image = ghz_image(&orchestrator, 8, false);
        orchestrator.invoke(image).unwrap();
        let entries_before = orchestrator.with_control(|c| c.log().retained_len());
        assert!(entries_before > 0, "invocation journaled events");
        orchestrator.snapshot_control().unwrap();
        assert_eq!(orchestrator.with_control(|c| c.log().retained_len()), 0);
        let digest = orchestrator.control_digest();
        orchestrator.failover().expect("failover from snapshot alone");
        assert_eq!(orchestrator.control_digest(), digest);
        orchestrator.invoke(image).unwrap();
    }

    /// A 2-shard orchestrator serves invocations end-to-end: tenants route by
    /// hash, each shard schedules only onto its leased half of the fleet, and
    /// a whole-plane failover rebuilds every shard byte-for-byte with the
    /// lease partition intact.
    #[test]
    fn sharded_orchestrator_serves_invocations_and_fails_over() {
        let orchestrator = Orchestrator::with_default_cluster(9).with_shards(2);
        let image = ghz_image(&orchestrator, 8, false);
        let first = orchestrator.invoke(image).unwrap();
        assert_eq!(orchestrator.workflow_status(first), Some(WorkflowStatus::Completed));
        let result = orchestrator.workflow_results(first).unwrap();
        assert_eq!(result.quantum_steps.len(), 1);
        // The default tenant lives on exactly one shard and that shard
        // leases half of the 8-QPU fleet.
        let (home_shard, _) = orchestrator
            .with_sharded_control(|c| c.placement_of(DEFAULT_TENANT))
            .expect("default tenant is registered");
        assert_eq!(
            orchestrator.with_sharded_control(|c| c.allocator().leased_by(home_shard).len()),
            4
        );

        let digest = orchestrator.control_digest();
        orchestrator.failover().expect("every shard fails over");
        assert_eq!(orchestrator.control_digest(), digest, "per-shard replay is byte-exact");
        assert!(orchestrator.with_sharded_control(|c| c.rebuild_allocator().is_ok()));

        let second = orchestrator.invoke(image).unwrap();
        assert_ne!(first, second);
        assert_eq!(orchestrator.workflow_status(second), Some(WorkflowStatus::Completed));
        let stats = orchestrator.tenant_stats(DEFAULT_TENANT).unwrap();
        assert_eq!(stats.completed, 2, "accounting survived the sharded failover");
    }

    #[test]
    fn priority_changes_the_selected_plan() {
        let orchestrator = Orchestrator::with_default_cluster(6);
        let make = |priority| {
            let wf = mitigated_execution_workflow(
                "ghz",
                ghz(16),
                MitigationStack::none(),
                ClassicalRequest::small(),
            );
            let config = DeploymentConfig { priority, ..Default::default() };
            orchestrator.create_workflow(wf, config)
        };
        let fid_image = make(Priority::Fidelity);
        let jct_image = make(Priority::CompletionTime);
        let fid_run = orchestrator.invoke(fid_image).unwrap();
        let jct_run = orchestrator.invoke(jct_image).unwrap();
        let fid_plan = orchestrator.workflow_results(fid_run).unwrap().plan;
        let jct_plan = orchestrator.workflow_results(jct_run).unwrap().plan;
        assert!(fid_plan.estimated_fidelity >= jct_plan.estimated_fidelity);
        assert!(fid_plan.total_time_s() >= jct_plan.total_time_s());
    }
}
