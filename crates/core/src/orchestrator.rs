//! The Qonductor orchestrator: the user-facing API of Table 2
//! (`create_workflow`, `deploy`, `invoke`, `workflow_results`, …) wired to the
//! control-plane components — workflow manager/registry, resource estimator,
//! hybrid scheduler, job manager — and the worker-node resources (the QPU
//! fleet and classical nodes).
//!
//! The orchestrator executes workflows against the *modelled* hybrid cluster
//! (simulated time): quantum steps are scheduled with the NSGA-II + MCDM
//! scheduler onto fleet queues, classical steps are placed with the
//! filter–score scheduler, and results (per-step fidelity, waiting, execution
//! and completion times, dollar cost) are persisted in the system monitor.

use crate::config::{DeploymentConfig, Priority};
use crate::monitor::{SystemMonitor, WorkflowStatus};
use crate::registry::{HybridWorkflowImage, ImageId, WorkflowRegistry};
use crate::workflow::{Step, Workflow};
use parking_lot::Mutex;
use qonductor_backend::Fleet;
use qonductor_estimator::{
    generate_plans, EstimationBackend, PlanGeneratorConfig, PricingTable, ResourcePlan,
};
use qonductor_mitigation::MitigationStack;
use qonductor_scheduler::{
    place, ClassicalNode, HybridScheduler, JobRequest, QpuState, SchedulerConfig, ScoringPolicy,
};
use qonductor_transpiler::Transpiler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a workflow invocation.
pub type RunId = u64;

/// Errors surfaced by the orchestrator API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrchestratorError {
    /// The referenced workflow image does not exist.
    ImageNotFound(ImageId),
    /// The referenced run does not exist.
    RunNotFound(RunId),
    /// No QPU in the cluster satisfies the workflow's qubit requirement.
    NoFeasibleQpu {
        /// Qubits required by the largest quantum step.
        required_qubits: u32,
    },
    /// No classical node satisfies a classical step's resource request.
    NoFeasibleClassicalNode,
}

/// Execution record of one quantum step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumStepResult {
    /// Step name.
    pub step: String,
    /// Device the step ran on.
    pub qpu: String,
    /// Achieved fidelity.
    pub fidelity: f64,
    /// Waiting time in the QPU queue (seconds).
    pub waiting_s: f64,
    /// Quantum execution time (seconds).
    pub execution_s: f64,
}

/// Execution record of one classical step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassicalStepResult {
    /// Step name.
    pub step: String,
    /// Node the step ran on.
    pub node: String,
    /// Execution time (seconds).
    pub execution_s: f64,
}

/// The result of a completed workflow invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowResult {
    /// Invocation id.
    pub run_id: RunId,
    /// Image the run was invoked from.
    pub image_id: ImageId,
    /// The resource plan the run used.
    pub plan: ResourcePlan,
    /// Quantum step records.
    pub quantum_steps: Vec<QuantumStepResult>,
    /// Classical step records.
    pub classical_steps: Vec<ClassicalStepResult>,
    /// End-to-end completion time (seconds of simulated time).
    pub completion_s: f64,
    /// Estimated dollar cost of the run (Table 1 pricing).
    pub cost_usd: f64,
}

impl WorkflowResult {
    /// Mean fidelity over the quantum steps (1.0 if there are none).
    pub fn mean_fidelity(&self) -> f64 {
        if self.quantum_steps.is_empty() {
            return 1.0;
        }
        self.quantum_steps.iter().map(|s| s.fidelity).sum::<f64>() / self.quantum_steps.len() as f64
    }
}

struct OrchestratorState {
    fleet: Fleet,
    classical_nodes: Vec<ClassicalNode>,
    clock_s: f64,
    next_run_id: RunId,
    results: Vec<WorkflowResult>,
    rng: StdRng,
}

/// The Qonductor orchestrator (control plane + worker resources).
pub struct Orchestrator {
    registry: WorkflowRegistry,
    monitor: SystemMonitor,
    scheduler: HybridScheduler,
    transpiler: Transpiler,
    pricing: PricingTable,
    state: Mutex<OrchestratorState>,
}

impl Orchestrator {
    /// Create an orchestrator over a QPU fleet and a set of classical nodes.
    pub fn new(fleet: Fleet, classical_nodes: Vec<ClassicalNode>, seed: u64) -> Self {
        let monitor = SystemMonitor::default();
        for member in fleet.members() {
            let _ = monitor.record_qpu_static(
                &member.qpu.name,
                member.qpu.num_qubits(),
                &member.qpu.model.name,
            );
        }
        Orchestrator {
            registry: WorkflowRegistry::new(),
            monitor,
            scheduler: HybridScheduler::new(SchedulerConfig::default()),
            transpiler: Transpiler::default(),
            pricing: PricingTable::default(),
            state: Mutex::new(OrchestratorState {
                fleet,
                classical_nodes,
                clock_s: 0.0,
                next_run_id: 0,
                results: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
            }),
        }
    }

    /// An orchestrator over the default 8-QPU IBM-like fleet and a small
    /// classical cluster (two standard VMs and one accelerated VM).
    pub fn with_default_cluster(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fleet = Fleet::ibm_default(&mut rng);
        let nodes = vec![
            ClassicalNode::standard_vm("vm-0"),
            ClassicalNode::standard_vm("vm-1"),
            ClassicalNode::high_end_vm("gpu-0"),
        ];
        Orchestrator::new(fleet, nodes, seed)
    }

    /// The workflow registry (Table 2: "Register a workflow image", "List
    /// available hybrid workflow images").
    pub fn registry(&self) -> &WorkflowRegistry {
        &self.registry
    }

    /// The system monitor.
    pub fn monitor(&self) -> &SystemMonitor {
        &self.monitor
    }

    /// Table 2 — *Create a workflow with hybrid code*: package a workflow and
    /// its deployment configuration into a hybrid workflow image.
    pub fn create_workflow(&self, workflow: Workflow, config: DeploymentConfig) -> ImageId {
        self.registry.register(workflow, config)
    }

    /// Table 2 — *List available hybrid workflow images*.
    pub fn list_images(&self) -> Vec<(ImageId, String)> {
        self.registry.list()
    }

    /// Table 2 — *Deploy a workflow*: validate the image against the cluster
    /// (does any QPU fit the largest quantum step?) without executing it.
    pub fn deploy(&self, image_id: ImageId) -> Result<(), OrchestratorError> {
        let image = self.image(image_id)?;
        let required = image.workflow.max_qubits().max(image.config.quantum.min_qubits);
        let state = self.state.lock();
        if required > 0 && state.fleet.max_qubits() < required {
            return Err(OrchestratorError::NoFeasibleQpu { required_qubits: required });
        }
        Ok(())
    }

    /// Table 2 — *Estimate the hybrid resources required*: generate resource
    /// plans for an image (fidelity/runtime/cost tradeoffs over template QPUs
    /// and mitigation stacks).
    pub fn estimate_resources(&self, image_id: ImageId) -> Result<Vec<ResourcePlan>, OrchestratorError> {
        let image = self.image(image_id)?;
        let state = self.state.lock();
        let templates: Vec<_> = state
            .fleet
            .template_qpus()
            .into_iter()
            .filter(|t| {
                image.config.preferred_models.is_empty()
                    || image.config.preferred_models.contains(&t.model.name)
            })
            .filter(|t| t.num_qubits() >= image.config.quantum.min_qubits)
            .collect();
        let plan_config = PlanGeneratorConfig {
            num_plans: image.config.num_resource_plans,
            pricing: self.pricing,
            accelerators_available: state.classical_nodes.iter().any(|n| n.accelerators_free() > 0),
        };
        let mut plans = Vec::new();
        for step in image.workflow.steps() {
            if let Step::Quantum(q) = step {
                plans.extend(generate_plans(
                    &q.circuit,
                    &templates,
                    EstimationBackend::Analytic,
                    &plan_config,
                ));
            }
        }
        Ok(plans)
    }

    /// Table 2 — *Invoke a workflow*: execute the image end-to-end on the
    /// hybrid cluster and return the run id. The run's status and results are
    /// persisted in the system monitor.
    pub fn invoke(&self, image_id: ImageId) -> Result<RunId, OrchestratorError> {
        let image = self.image(image_id)?;
        let plans = self.estimate_resources(image_id)?;
        let mut state = self.state.lock();
        let run_id = state.next_run_id;
        state.next_run_id += 1;
        let _ = self.monitor.set_workflow_status(run_id, WorkflowStatus::Pending);

        // Pick the plan matching the configured priority.
        let plan = pick_plan(&plans, image.config.priority).cloned().unwrap_or_else(|| ResourcePlan {
            stack_label: "none".into(),
            stack: MitigationStack::none(),
            qpu_model: "any".into(),
            estimated_fidelity: 0.0,
            quantum_time_s: 0.0,
            classical_time_s: 0.0,
            uses_accelerator: false,
            cost_usd: 0.0,
        });

        let _ = self.monitor.set_workflow_status(run_id, WorkflowStatus::Running);
        match self.execute_workflow(&mut state, &image, &plan, run_id) {
            Ok(result) => {
                let _ = self.monitor.set_workflow_status(run_id, WorkflowStatus::Completed);
                let _ = self.monitor.set_workflow_result(
                    run_id,
                    &format!(
                        "fidelity={:.4},completion_s={:.3},cost_usd={:.2}",
                        result.mean_fidelity(),
                        result.completion_s,
                        result.cost_usd
                    ),
                );
                state.results.push(result);
                Ok(run_id)
            }
            Err(e) => {
                let _ = self.monitor.set_workflow_status(run_id, WorkflowStatus::Failed);
                Err(e)
            }
        }
    }

    /// Table 2 — *Get the workflow results*.
    pub fn workflow_results(&self, run_id: RunId) -> Result<WorkflowResult, OrchestratorError> {
        self.state
            .lock()
            .results
            .iter()
            .find(|r| r.run_id == run_id)
            .cloned()
            .ok_or(OrchestratorError::RunNotFound(run_id))
    }

    /// Execution status of a run (from the system monitor).
    pub fn workflow_status(&self, run_id: RunId) -> Option<WorkflowStatus> {
        self.monitor.workflow_status(run_id)
    }

    fn image(&self, image_id: ImageId) -> Result<HybridWorkflowImage, OrchestratorError> {
        self.registry.get(image_id).ok_or(OrchestratorError::ImageNotFound(image_id))
    }

    /// Execute a workflow's steps in topological order against the cluster.
    fn execute_workflow(
        &self,
        state: &mut OrchestratorState,
        image: &HybridWorkflowImage,
        plan: &ResourcePlan,
        run_id: RunId,
    ) -> Result<WorkflowResult, OrchestratorError> {
        let order = image.workflow.topological_order().expect("registry guarantees acyclic workflows");
        let start_s = state.clock_s;
        let mut quantum_steps = Vec::new();
        let mut classical_steps = Vec::new();
        let mut quantum_time_total = 0.0;
        let mut classical_time_total = 0.0;

        for idx in order {
            match &image.workflow.steps()[idx] {
                Step::Classical(step) => {
                    let node_idx = place(&state.classical_nodes, &step.request, ScoringPolicy::LeastAllocated)
                        .ok_or(OrchestratorError::NoFeasibleClassicalNode)?;
                    let node_name = state.classical_nodes[node_idx].name.clone();
                    let duration = step.estimated_duration_s;
                    state.clock_s += duration;
                    classical_time_total += duration;
                    classical_steps.push(ClassicalStepResult {
                        step: step.name.clone(),
                        node: node_name,
                        execution_s: duration,
                    });
                }
                Step::Quantum(step) => {
                    let result = self.execute_quantum_step(state, step, &plan.stack)?;
                    quantum_time_total += result.execution_s;
                    quantum_steps.push(result);
                }
            }
        }

        let completion_s = state.clock_s - start_s;
        let cost_usd = self
            .pricing
            .hybrid_job_cost_usd(quantum_time_total, classical_time_total, plan.uses_accelerator);
        Ok(WorkflowResult {
            run_id,
            image_id: image.id,
            plan: plan.clone(),
            quantum_steps,
            classical_steps,
            completion_s,
            cost_usd,
        })
    }

    /// Schedule and execute one quantum step on the fleet.
    fn execute_quantum_step(
        &self,
        state: &mut OrchestratorState,
        step: &crate::workflow::QuantumStep,
        plan_stack: &MitigationStack,
    ) -> Result<QuantumStepResult, OrchestratorError> {
        let circuit = &step.circuit;
        let stack = if step.mitigation.is_empty() { plan_stack.clone() } else { step.mitigation.clone() };
        // Per-QPU estimates via transpilation + ESP + mitigation uplift.
        let mut fidelity_per_qpu = Vec::with_capacity(state.fleet.len());
        let mut exec_time_per_qpu = Vec::with_capacity(state.fleet.len());
        for member in state.fleet.members() {
            if member.qpu.num_qubits() < circuit.num_qubits() {
                fidelity_per_qpu.push(0.0);
                exec_time_per_qpu.push(1e9);
                continue;
            }
            let noise = member.qpu.noise_model();
            let transpiled = self.transpiler.transpile_for_qpu(circuit, &member.qpu);
            let cost = stack.cost(&transpiled.circuit, &noise);
            let base = noise.estimated_success_probability(&transpiled.circuit);
            fidelity_per_qpu.push(cost.mitigated_fidelity(base));
            exec_time_per_qpu.push(transpiled.total_execution_s() * cost.quantum_time_factor);
        }
        if fidelity_per_qpu.iter().all(|&f| f <= 0.0) {
            return Err(OrchestratorError::NoFeasibleQpu { required_qubits: circuit.num_qubits() });
        }

        let qpus: Vec<QpuState> = state
            .fleet
            .members()
            .iter()
            .map(|m| QpuState {
                name: m.qpu.name.clone(),
                num_qubits: m.qpu.num_qubits(),
                waiting_time_s: m.queue.estimated_waiting_s(),
            })
            .collect();
        let job = JobRequest {
            job_id: 0,
            qubits: circuit.num_qubits(),
            shots: circuit.shots(),
            fidelity_per_qpu: fidelity_per_qpu.clone(),
            exec_time_per_qpu: exec_time_per_qpu.clone(),
        };
        let outcome = self.scheduler.schedule(vec![job], qpus);
        let placement = outcome
            .placements
            .first()
            .ok_or(OrchestratorError::NoFeasibleQpu { required_qubits: circuit.num_qubits() })?;
        let qpu_index = placement.qpu_index;

        // Enqueue and run to completion on the chosen QPU's queue.
        let duration = exec_time_per_qpu[qpu_index].max(0.001);
        let now = state.clock_s;
        let member_name;
        let waiting_s;
        let finish_s;
        {
            let member = &mut state.fleet.members_mut()[qpu_index];
            // The workflow clock and the queue's own simulated time may differ
            // (a previous run advanced this queue past the current clock).
            let start_base = member.queue.now_s().max(now);
            member.queue.advance_to(start_base);
            member.queue.enqueue(u64::MAX, duration);
            let wait = member.queue.estimated_waiting_s() - duration;
            member.queue.advance_to(start_base + wait.max(0.0) + duration + 1.0);
            let done = member
                .queue
                .take_completed()
                .into_iter()
                .last()
                .expect("the enqueued job must complete");
            member_name = member.qpu.name.clone();
            waiting_s = done.waiting_s();
            finish_s = done.finish_time_s;
        }
        state.clock_s = finish_s.max(state.clock_s);
        // Update the monitor's dynamic QPU info.
        let _ = self.monitor.record_qpu_dynamic(
            &member_name,
            state.fleet.members()[qpu_index].queue.pending_len(),
            state.fleet.members()[qpu_index].queue.estimated_waiting_s(),
            state.fleet.members()[qpu_index].qpu.calibration.cycle,
        );

        let jitter = 1.0 + state.rng.gen_range(-0.02..0.02);
        Ok(QuantumStepResult {
            step: step.name.clone(),
            qpu: member_name,
            fidelity: (fidelity_per_qpu[qpu_index] * jitter).clamp(0.0, 1.0),
            waiting_s,
            execution_s: duration,
        })
    }
}

/// Pick the plan matching a priority: highest fidelity, lowest total time, or
/// the most balanced (closest to the fidelity-per-second knee).
fn pick_plan(plans: &[ResourcePlan], priority: Priority) -> Option<&ResourcePlan> {
    if plans.is_empty() {
        return None;
    }
    match priority {
        Priority::Fidelity => plans
            .iter()
            .max_by(|a, b| a.estimated_fidelity.partial_cmp(&b.estimated_fidelity).unwrap()),
        Priority::CompletionTime => plans
            .iter()
            .min_by(|a, b| a.total_time_s().partial_cmp(&b.total_time_s()).unwrap()),
        Priority::Balanced => {
            let max_f = plans.iter().map(|p| p.estimated_fidelity).fold(0.0, f64::max);
            let max_t = plans.iter().map(|p| p.total_time_s()).fold(0.0, f64::max);
            plans.iter().max_by(|a, b| {
                let score = |p: &ResourcePlan| {
                    p.estimated_fidelity / max_f.max(1e-9) - 0.5 * p.total_time_s() / max_t.max(1e-9)
                };
                score(a).partial_cmp(&score(b)).unwrap()
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::mitigated_execution_workflow;
    use qonductor_circuit::generators::{ghz, qaoa_maxcut, MaxCutGraph};
    use qonductor_scheduler::ClassicalRequest;

    fn ghz_image(orchestrator: &Orchestrator, n: u32, mitigated: bool) -> ImageId {
        let stack = if mitigated { MitigationStack::listing2() } else { MitigationStack::none() };
        let wf = mitigated_execution_workflow(format!("ghz{n}"), ghz(n), stack, ClassicalRequest::small());
        orchestrator.create_workflow(wf, DeploymentConfig::default())
    }

    #[test]
    fn end_to_end_invoke_produces_results() {
        let orchestrator = Orchestrator::with_default_cluster(1);
        let image = ghz_image(&orchestrator, 8, true);
        orchestrator.deploy(image).unwrap();
        let run = orchestrator.invoke(image).unwrap();
        assert_eq!(orchestrator.workflow_status(run), Some(WorkflowStatus::Completed));
        let result = orchestrator.workflow_results(run).unwrap();
        assert_eq!(result.quantum_steps.len(), 1);
        assert_eq!(result.classical_steps.len(), 2);
        assert!(result.mean_fidelity() > 0.0 && result.mean_fidelity() <= 1.0);
        assert!(result.completion_s > 0.0);
        assert!(result.cost_usd > 0.0);
        assert!(orchestrator.monitor().workflow_result(run).is_some());
    }

    #[test]
    fn oversized_workflow_fails_deploy_and_invoke() {
        let orchestrator = Orchestrator::with_default_cluster(2);
        let image = ghz_image(&orchestrator, 40, false);
        assert!(matches!(
            orchestrator.deploy(image),
            Err(OrchestratorError::NoFeasibleQpu { required_qubits: 40 })
        ));
        assert!(orchestrator.invoke(image).is_err());
    }

    #[test]
    fn unknown_image_and_run_are_reported() {
        let orchestrator = Orchestrator::with_default_cluster(3);
        assert_eq!(orchestrator.deploy(99), Err(OrchestratorError::ImageNotFound(99)));
        assert_eq!(
            orchestrator.workflow_results(42),
            Err(OrchestratorError::RunNotFound(42))
        );
    }

    #[test]
    fn resource_plans_are_generated_for_images() {
        let orchestrator = Orchestrator::with_default_cluster(4);
        let graph = MaxCutGraph::ring(12);
        let wf = mitigated_execution_workflow(
            "qaoa",
            qaoa_maxcut(&graph, &[0.4], &[0.7]),
            MitigationStack::listing2(),
            ClassicalRequest::small(),
        );
        let image = orchestrator.create_workflow(wf, DeploymentConfig::default());
        let plans = orchestrator.estimate_resources(image).unwrap();
        assert!(!plans.is_empty());
        assert!(plans.len() <= 3);
        assert!(plans.iter().all(|p| p.estimated_fidelity > 0.0));
    }

    #[test]
    fn consecutive_runs_accumulate_queue_time() {
        let orchestrator = Orchestrator::with_default_cluster(5);
        let image = ghz_image(&orchestrator, 12, false);
        let first = orchestrator.invoke(image).unwrap();
        let second = orchestrator.invoke(image).unwrap();
        let r1 = orchestrator.workflow_results(first).unwrap();
        let r2 = orchestrator.workflow_results(second).unwrap();
        assert_ne!(first, second);
        assert!(r1.completion_s > 0.0 && r2.completion_s > 0.0);
        assert_eq!(orchestrator.list_images().len(), 1);
    }

    #[test]
    fn priority_changes_the_selected_plan() {
        let orchestrator = Orchestrator::with_default_cluster(6);
        let make = |priority| {
            let wf = mitigated_execution_workflow(
                "ghz",
                ghz(16),
                MitigationStack::none(),
                ClassicalRequest::small(),
            );
            let config = DeploymentConfig { priority, ..Default::default() };
            orchestrator.create_workflow(wf, config)
        };
        let fid_image = make(Priority::Fidelity);
        let jct_image = make(Priority::CompletionTime);
        let fid_run = orchestrator.invoke(fid_image).unwrap();
        let jct_run = orchestrator.invoke(jct_image).unwrap();
        let fid_plan = orchestrator.workflow_results(fid_run).unwrap().plan;
        let jct_plan = orchestrator.workflow_results(jct_run).unwrap().plan;
        assert!(fid_plan.estimated_fidelity >= jct_plan.estimated_fidelity);
        assert!(fid_plan.total_time_s() >= jct_plan.total_time_s());
    }
}
