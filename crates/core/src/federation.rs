//! Multi-provider backend federation: several named provider fleets composed
//! behind one flat capacity view, plus the pluggable placement policies that
//! steer the hybrid scheduler across them.
//!
//! A [`FederatedFleet`] concatenates each provider's devices into a single
//! [`Fleet`] in registration order, remembering only the contiguous index
//! span each provider owns. Everything downstream — the job manager, the
//! scheduler, the sharded control plane, the journals — keeps operating on
//! flat QPU indices, so federation adds no new journal event types and a
//! *single*-provider federation is byte-identical to an unfederated fleet
//! (same members, same indices, same RNG streams, same digests).
//!
//! Placement policy is a [`PlacementStrategy`]: a pure mapping from a base
//! [`SchedulerConfig`] to the configuration actually used for dispatch
//! (objective preference + cost-lane weight). Strategies never touch the
//! fleet or the clock, which is what keeps failover replay and plan-ahead
//! adoption exact under any policy.

use qonductor_backend::Fleet;
use qonductor_scheduler::{Preference, SchedulerConfig};

/// One provider's slice of the federated index space.
#[derive(Debug, Clone, PartialEq)]
pub struct Provider {
    /// Provider name (e.g. `"ibm"`, `"ionq"`, `"aws-sim"`).
    pub name: String,
    /// First flat QPU index owned by this provider.
    pub start: usize,
    /// Number of QPUs the provider contributes.
    pub len: usize,
}

/// Aggregate capacity of one provider at an instant — what a dashboard or a
/// capacity planner reads off the federation without touching flat indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderCapacity {
    /// Provider name.
    pub name: String,
    /// QPUs contributed.
    pub qpus: usize,
    /// QPUs currently inside a maintenance window (capacity holes).
    pub in_maintenance: usize,
    /// Total qubits across the provider's devices.
    pub qubits: u32,
    /// Cheapest per-shot price among the provider's devices.
    pub min_cost_per_shot: f64,
}

/// Multiple named provider fleets behind one flat capacity view.
#[derive(Debug, Clone)]
pub struct FederatedFleet {
    fleet: Fleet,
    providers: Vec<Provider>,
}

impl FederatedFleet {
    /// Compose the given `(provider name, fleet)` pairs, concatenating their
    /// members in order. Index `0..n₀` is provider 0, `n₀..n₀+n₁` provider 1,
    /// and so on — span membership is a pure function of the flat index.
    pub fn new<S: Into<String>>(provider_fleets: Vec<(S, Fleet)>) -> Self {
        let mut members = Vec::new();
        let mut providers = Vec::new();
        for (name, fleet) in provider_fleets {
            let start = members.len();
            let mut fleet_members: Vec<_> = fleet.members().to_vec();
            members.append(&mut fleet_members);
            providers.push(Provider { name: name.into(), start, len: members.len() - start });
        }
        FederatedFleet { fleet: Fleet::from_members(members), providers }
    }

    /// A federation of exactly one provider — the compatibility shape. Its
    /// flat fleet is the provider's fleet unchanged, so every dispatch,
    /// digest, and batch stream matches the unfederated plane byte-for-byte.
    pub fn single<S: Into<String>>(name: S, fleet: Fleet) -> Self {
        let len = fleet.len();
        FederatedFleet { fleet, providers: vec![Provider { name: name.into(), start: 0, len }] }
    }

    /// The flat composed fleet — what every downstream layer schedules over.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Mutable flat fleet (queue advancement, calibration drift, outages).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// Unwrap into the flat fleet, dropping provider metadata.
    pub fn into_fleet(self) -> Fleet {
        self.fleet
    }

    /// The registered providers, in composition order.
    pub fn providers(&self) -> &[Provider] {
        &self.providers
    }

    /// The provider owning flat QPU index `qpu_index`.
    pub fn provider_of(&self, qpu_index: usize) -> Option<&str> {
        self.providers
            .iter()
            .find(|p| qpu_index >= p.start && qpu_index < p.start + p.len)
            .map(|p| p.name.as_str())
    }

    /// `(provider name, qpu count)` pairs in flat-index order — the shape
    /// [`FleetAllocator::with_provider_spans`] consumes so shard leases
    /// become provider-scoped.
    ///
    /// [`FleetAllocator::with_provider_spans`]: crate::fleetlease::FleetAllocator::with_provider_spans
    pub fn provider_spans(&self) -> Vec<(String, usize)> {
        self.providers.iter().map(|p| (p.name.clone(), p.len)).collect()
    }

    /// Number of QPUs across every provider.
    pub fn num_qpus(&self) -> usize {
        self.fleet.len()
    }

    /// Provision elastic capacity: append `member` at the flat-fleet tail
    /// under `provider` and return its flat index (the autoscaler grow path).
    /// If the tail provider already carries that name its span extends;
    /// otherwise a new provider span is registered — either way every
    /// existing flat index (and with it every in-flight placement, lease,
    /// and journal entry) stays valid.
    pub fn provision<S: Into<String>>(
        &mut self,
        provider: S,
        member: qonductor_backend::FleetMember,
    ) -> usize {
        let name = provider.into();
        let index = self.fleet.push_member(member);
        match self.providers.last_mut() {
            Some(last) if last.name == name => last.len += 1,
            _ => self.providers.push(Provider { name, start: index, len: 1 }),
        }
        index
    }

    /// Retire the tail member if (and only if) it is elastic-retirable: idle
    /// queue, nothing running, completions drained (see
    /// [`Fleet::pop_member`]). Shrinks (or drops) the owning provider span.
    /// Returns the retired member's flat index.
    pub fn retire_last(&mut self) -> Option<usize> {
        self.fleet.pop_member()?;
        let index = self.fleet.len();
        // Skip over degenerate empty spans (a provider registered with an
        // empty fleet) before shrinking the actual owner.
        while matches!(self.providers.last(), Some(p) if p.len == 0) {
            self.providers.pop();
        }
        if let Some(last) = self.providers.last_mut() {
            last.len -= 1;
            if last.len == 0 {
                self.providers.pop();
            }
        }
        Some(index)
    }

    /// Per-provider aggregate capacity at `now_s`, in composition order.
    pub fn capacity_view(&self, now_s: f64) -> Vec<ProviderCapacity> {
        self.providers
            .iter()
            .map(|p| {
                let members = &self.fleet.members()[p.start..p.start + p.len];
                ProviderCapacity {
                    name: p.name.clone(),
                    qpus: p.len,
                    in_maintenance: members.iter().filter(|m| m.qpu.in_maintenance(now_s)).count(),
                    qubits: members.iter().map(|m| m.qpu.num_qubits()).sum(),
                    min_cost_per_shot: members
                        .iter()
                        .map(|m| m.qpu.cost_per_shot)
                        .fold(f64::INFINITY, f64::min),
                }
            })
            .collect()
    }
}

/// A placement policy over a federated fleet: a *pure* mapping from the base
/// scheduler configuration to the one used for dispatch.
///
/// # Determinism requirements
///
/// An implementation must be a pure function of the scheduling problem and
/// its own configuration:
///
/// - **No wall-clock reads.** Simulated time reaches the scheduler through
///   the snapshot (queue waits, horizons); consulting `SystemTime`/`Instant`
///   would make journal replay diverge from the live run.
/// - **No ambient randomness or I/O.** All stochasticity must flow through
///   the seeded [`Nsga2Config`](qonductor_scheduler::Nsga2Config) the
///   strategy returns.
/// - **Stable output.** Equal inputs must produce equal configurations, so
///   speculative plan adoption and sharded failover replay federation
///   decisions byte-for-byte.
pub trait PlacementStrategy {
    /// Short policy name (scenario reports, artifacts).
    fn name(&self) -> &'static str;

    /// The scheduler configuration this policy dispatches with, derived from
    /// `base` (which carries the NSGA-II budget, boundary penalty, etc.).
    fn scheduler_config(&self, base: SchedulerConfig) -> SchedulerConfig;
}

/// Spread work for fast turnaround: JCT-heavy preference, no cost lane. The
/// optimizer's JCT objective already folds per-QPU queue backlogs, so
/// weighting it is what "least loaded" means under Eq. 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl PlacementStrategy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn scheduler_config(&self, base: SchedulerConfig) -> SchedulerConfig {
        SchedulerConfig {
            preference: Preference { fidelity_weight: 0.1, jct_weight: 0.9 },
            cost_weight: 0.0,
            ..base
        }
    }
}

/// The paper's quantum-aware policy: balanced fidelity/JCT preference, no
/// cost lane — placement follows calibration quality and backlog exactly as
/// in the unfederated evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantumAware;

impl PlacementStrategy for QuantumAware {
    fn name(&self) -> &'static str {
        "quantum-aware"
    }

    fn scheduler_config(&self, base: SchedulerConfig) -> SchedulerConfig {
        SchedulerConfig { preference: Preference::balanced(), cost_weight: 0.0, ..base }
    }
}

/// Minimise spend at bounded quality loss: the least-loaded arm's
/// turnaround-heavy preference plus an active cost lane weighted by
/// `cost_weight` (the scale at which one unit of currency trades against
/// one second of mean JCT). Sharing [`LeastLoaded`]'s preference makes the
/// two strategies a clean ablation — the only difference between them is
/// the cost lane.
#[derive(Debug, Clone, Copy)]
pub struct CostOptimized {
    /// Weight of the cost lane (must be > 0 to have any effect).
    pub cost_weight: f64,
}

impl Default for CostOptimized {
    fn default() -> Self {
        CostOptimized { cost_weight: 1.0 }
    }
}

impl PlacementStrategy for CostOptimized {
    fn name(&self) -> &'static str {
        "cost-optimized"
    }

    fn scheduler_config(&self, base: SchedulerConfig) -> SchedulerConfig {
        SchedulerConfig {
            preference: Preference { fidelity_weight: 0.1, jct_weight: 0.9 },
            cost_weight: self.cost_weight,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_provider_federation() -> FederatedFleet {
        let mut rng = StdRng::seed_from_u64(11);
        let ibm = Fleet::falcon_six(&mut rng);
        let het = Fleet::heterogeneous(&mut rng);
        FederatedFleet::new(vec![("ibm", ibm), ("mixed", het)])
    }

    #[test]
    fn composition_concatenates_spans_in_order() {
        let fed = two_provider_federation();
        assert_eq!(fed.num_qpus(), 12);
        assert_eq!(fed.providers().len(), 2);
        assert_eq!(fed.providers()[0], Provider { name: "ibm".into(), start: 0, len: 6 });
        assert_eq!(fed.providers()[1], Provider { name: "mixed".into(), start: 6, len: 6 });
        assert_eq!(fed.provider_of(0), Some("ibm"));
        assert_eq!(fed.provider_of(5), Some("ibm"));
        assert_eq!(fed.provider_of(6), Some("mixed"));
        assert_eq!(fed.provider_of(11), Some("mixed"));
        assert_eq!(fed.provider_of(12), None);
        assert_eq!(fed.provider_spans(), vec![("ibm".to_string(), 6), ("mixed".to_string(), 6)]);
    }

    #[test]
    fn a_single_provider_federation_is_the_fleet_unchanged() {
        let mut rng = StdRng::seed_from_u64(11);
        let fleet = Fleet::falcon_six(&mut rng);
        let names: Vec<String> = fleet.members().iter().map(|m| m.qpu.name.clone()).collect();
        let epoch = fleet.calibration_epoch();
        let fed = FederatedFleet::single("ibm", fleet);
        assert_eq!(fed.num_qpus(), 6);
        assert_eq!(fed.provider_of(3), Some("ibm"));
        let flat_names: Vec<String> =
            fed.fleet().members().iter().map(|m| m.qpu.name.clone()).collect();
        assert_eq!(flat_names, names, "member order is untouched");
        assert_eq!(fed.fleet().calibration_epoch(), epoch);
    }

    #[test]
    fn capacity_view_counts_maintenance_holes() {
        let mut fed = two_provider_federation();
        fed.fleet_mut().schedule_region_outage("eu-central", 100.0, 200.0);
        let before = fed.capacity_view(50.0);
        assert_eq!(before.iter().map(|c| c.in_maintenance).sum::<usize>(), 0);
        let during = fed.capacity_view(150.0);
        assert_eq!(during[0].in_maintenance, 0, "falcon_six has no regions in eu-central");
        assert_eq!(during[1].in_maintenance, 3, "the mixed provider hosts eu-central");
        assert!(during[1].min_cost_per_shot <= 0.05 + 1e-12, "the simulator sets the floor");
    }

    #[test]
    fn provision_and_retire_scale_elastic_capacity_at_the_tail() {
        use qonductor_backend::{FleetMember, JobQueue, Qpu, QpuModel, ResourceClass};
        let mut rng = StdRng::seed_from_u64(17);
        let mut fed = FederatedFleet::single("ibm", Fleet::falcon_six(&mut rng));
        let elastic = |i: usize, rng: &mut StdRng| FleetMember {
            qpu: Qpu::new(format!("sim_elastic_{i}"), QpuModel::falcon_27(), 1.3, rng)
                .with_resource_class(ResourceClass::Simulator),
            queue: JobQueue::new(),
        };
        let a = fed.provision("elastic-sim", elastic(0, &mut rng));
        let b = fed.provision("elastic-sim", elastic(1, &mut rng));
        assert_eq!((a, b), (6, 7), "elastic members append at the tail");
        assert_eq!(
            fed.provider_spans(),
            vec![("ibm".to_string(), 6), ("elastic-sim".to_string(), 2)],
            "a repeated provider name extends its tail span"
        );
        assert_eq!(fed.provider_of(6), Some("elastic-sim"));
        assert_eq!(fed.provider_of(3), Some("ibm"), "existing spans untouched");

        // Shrink: an idle tail retires; the span shrinks and finally drops.
        assert_eq!(fed.retire_last(), Some(7));
        assert_eq!(fed.provider_spans()[1], ("elastic-sim".to_string(), 1));
        // A busy tail refuses retirement.
        fed.fleet_mut().members_mut()[6].queue.enqueue(9, 50.0);
        assert_eq!(fed.retire_last(), None, "a tail with work must not retire");
        fed.fleet_mut().members_mut()[6].queue.advance_to(100.0);
        fed.fleet_mut().members_mut()[6].queue.take_completed();
        assert_eq!(fed.retire_last(), Some(6));
        assert_eq!(fed.provider_spans(), vec![("ibm".to_string(), 6)], "empty span dropped");
        assert_eq!(fed.num_qpus(), 6);
    }

    #[test]
    fn strategies_map_to_deterministic_scheduler_configs() {
        let base = SchedulerConfig::default();
        let ll = LeastLoaded.scheduler_config(base);
        assert_eq!(ll.cost_weight, 0.0);
        assert!(ll.preference.jct_weight > ll.preference.fidelity_weight);

        let qa = QuantumAware.scheduler_config(base);
        assert_eq!(qa.cost_weight, 0.0);
        assert_eq!(qa.preference.fidelity_weight, qa.preference.jct_weight);

        let co = CostOptimized { cost_weight: 2.5 }.scheduler_config(base);
        assert_eq!(co.cost_weight, 2.5);

        // Purity: equal inputs, equal outputs.
        let again = CostOptimized { cost_weight: 2.5 }.scheduler_config(base);
        assert_eq!(co.cost_weight, again.cost_weight);
        assert_eq!(co.preference.fidelity_weight, again.preference.fidelity_weight);
        assert_eq!(
            [LeastLoaded.name(), QuantumAware.name(), CostOptimized::default().name()],
            ["least-loaded", "quantum-aware", "cost-optimized"]
        );
    }
}
