//! Shared fleet allocator for the sharded control plane: QPU capacity is
//! handed to shards as exclusive *leases*. The allocator itself is volatile
//! bookkeeping — the durable record of every grant/release is the
//! [`ControlPlaneEvent::LeaseGranted`] / [`ControlPlaneEvent::LeaseReleased`]
//! journal entries on the *granting* shard — so after any number of shard
//! failovers the allocator is reconstructed from the per-shard lease sets
//! with [`FleetAllocator::rebuild`], which enforces the no-double-grant
//! invariant: two shards claiming the same QPU is a replay bug, not a state
//! to silently merge.
//!
//! [`ControlPlaneEvent::LeaseGranted`]: crate::replication::ControlPlaneEvent::LeaseGranted
//! [`ControlPlaneEvent::LeaseReleased`]: crate::replication::ControlPlaneEvent::LeaseReleased

use std::collections::BTreeSet;

/// A QPU claimed by more than one shard's journal — capacity would be
/// double-granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConflict {
    /// The doubly-claimed QPU.
    pub qpu_index: usize,
    /// The shard that already held the lease.
    pub held_by: usize,
    /// The shard whose claim collided.
    pub claimed_by: usize,
}

/// Exclusive-lease bookkeeping over the shared QPU fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAllocator {
    /// `owner_of[qpu] = Some(shard)` while leased.
    owner_of: Vec<Option<usize>>,
}

impl FleetAllocator {
    /// An allocator over `num_qpus` unleased QPUs.
    pub fn new(num_qpus: usize) -> Self {
        FleetAllocator { owner_of: vec![None; num_qpus] }
    }

    /// Number of QPUs under management.
    pub fn num_qpus(&self) -> usize {
        self.owner_of.len()
    }

    /// Grant `qpu_index` to `shard` if it is free (or already held by the
    /// same shard — grants are idempotent per owner). Returns whether the
    /// shard holds the lease afterwards.
    pub fn try_grant(&mut self, shard: usize, qpu_index: usize) -> bool {
        match self.owner_of[qpu_index] {
            None => {
                self.owner_of[qpu_index] = Some(shard);
                true
            }
            Some(owner) => owner == shard,
        }
    }

    /// Release `qpu_index` if `shard` holds it. Returns whether a lease was
    /// released (a release by a non-owner is refused, not absorbed).
    pub fn release(&mut self, shard: usize, qpu_index: usize) -> bool {
        if self.owner_of[qpu_index] == Some(shard) {
            self.owner_of[qpu_index] = None;
            true
        } else {
            false
        }
    }

    /// Current lease holder of `qpu_index`.
    pub fn owner(&self, qpu_index: usize) -> Option<usize> {
        self.owner_of.get(qpu_index).copied().flatten()
    }

    /// QPU indices leased by `shard`, ascending.
    pub fn leased_by(&self, shard: usize) -> Vec<usize> {
        self.owner_of
            .iter()
            .enumerate()
            .filter_map(|(qpu, owner)| (*owner == Some(shard)).then_some(qpu))
            .collect()
    }

    /// Reconstruct the allocator from the per-shard journaled lease sets
    /// (`shard_leases[s]` = the QPU indices shard `s` holds after replay).
    /// Fails with the exact conflict if two shards claim one QPU — the
    /// invariant a crash mid-lease must not break.
    pub fn rebuild(
        shard_leases: &[BTreeSet<usize>],
        num_qpus: usize,
    ) -> Result<Self, LeaseConflict> {
        let mut allocator = FleetAllocator::new(num_qpus);
        for (shard, held) in shard_leases.iter().enumerate() {
            for &qpu_index in held {
                if let Some(held_by) = allocator.owner(qpu_index) {
                    return Err(LeaseConflict { qpu_index, held_by, claimed_by: shard });
                }
                allocator.owner_of[qpu_index] = Some(shard);
            }
        }
        Ok(allocator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_exclusive_and_idempotent_per_owner() {
        let mut alloc = FleetAllocator::new(4);
        assert!(alloc.try_grant(0, 2));
        assert!(alloc.try_grant(0, 2), "re-grant to the owner is idempotent");
        assert!(!alloc.try_grant(1, 2), "a held QPU is refused to another shard");
        assert_eq!(alloc.owner(2), Some(0));
        assert_eq!(alloc.leased_by(0), vec![2]);
        assert_eq!(alloc.leased_by(1), Vec::<usize>::new());
    }

    #[test]
    fn release_is_owner_gated() {
        let mut alloc = FleetAllocator::new(2);
        alloc.try_grant(0, 1);
        assert!(!alloc.release(1, 1), "a non-owner cannot release");
        assert_eq!(alloc.owner(1), Some(0));
        assert!(alloc.release(0, 1));
        assert_eq!(alloc.owner(1), None);
        assert!(!alloc.release(0, 1), "double release is refused");
        assert!(alloc.try_grant(1, 1), "a released QPU is grantable again");
    }

    #[test]
    fn rebuild_reconstructs_ownership_and_rejects_double_grants() {
        let shard0: BTreeSet<usize> = [0, 2].into_iter().collect();
        let shard1: BTreeSet<usize> = [1, 3].into_iter().collect();
        let alloc = FleetAllocator::rebuild(&[shard0.clone(), shard1], 4).unwrap();
        assert_eq!(alloc.owner(0), Some(0));
        assert_eq!(alloc.owner(1), Some(1));
        assert_eq!(alloc.leased_by(0), vec![0, 2]);

        let overlapping: BTreeSet<usize> = [2, 3].into_iter().collect();
        assert_eq!(
            FleetAllocator::rebuild(&[shard0, overlapping], 4),
            Err(LeaseConflict { qpu_index: 2, held_by: 0, claimed_by: 1 })
        );
    }
}
