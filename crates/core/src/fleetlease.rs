//! Shared fleet allocator for the sharded control plane: QPU capacity is
//! handed to shards as exclusive *leases*. The allocator itself is volatile
//! bookkeeping — the durable record of every grant/release is the
//! [`ControlPlaneEvent::LeaseGranted`] / [`ControlPlaneEvent::LeaseReleased`]
//! journal entries on the *granting* shard — so after any number of shard
//! failovers the allocator is reconstructed from the per-shard lease sets
//! with [`FleetAllocator::rebuild`], which enforces the no-double-grant
//! invariant: two shards claiming the same QPU is a replay bug, not a state
//! to silently merge.
//!
//! In a federated deployment the flat QPU index space is carved into
//! contiguous *provider spans* ([`FleetAllocator::with_provider_spans`]):
//! span membership is a pure function of the QPU index, so the journaled
//! grant/release events need no new fields — a failover replays the same
//! `lgr`/`lrl` records and re-derives every provider attribution
//! byte-for-byte.
//!
//! [`ControlPlaneEvent::LeaseGranted`]: crate::replication::ControlPlaneEvent::LeaseGranted
//! [`ControlPlaneEvent::LeaseReleased`]: crate::replication::ControlPlaneEvent::LeaseReleased

use std::collections::BTreeSet;
use std::fmt;

/// A QPU claimed by more than one shard's journal — capacity would be
/// double-granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConflict {
    /// The doubly-claimed QPU.
    pub qpu_index: usize,
    /// The shard that already held the lease.
    pub held_by: usize,
    /// The shard whose claim collided.
    pub claimed_by: usize,
}

/// Why a lease release was refused — typed like [`LeaseConflict`] so callers
/// can tell an ownership bug apart from a transiently busy queue instead of
/// collapsing both into a silent `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseError {
    /// The releasing shard does not hold the lease.
    NotOwner {
        /// The QPU whose release was requested.
        qpu_index: usize,
        /// The shard that asked.
        requested_by: usize,
        /// The actual holder, if any.
        held_by: Option<usize>,
    },
    /// The QPU's queue still holds dispatched work; releasing mid-execution
    /// would re-route those completions to the next lease holder.
    QueueBusy {
        /// The QPU whose release was requested.
        qpu_index: usize,
        /// Jobs still pending on its queue.
        pending_jobs: usize,
    },
}

impl fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReleaseError::NotOwner { qpu_index, requested_by, held_by } => write!(
                f,
                "shard {requested_by} does not hold the lease on QPU {qpu_index} (holder: {held_by:?})"
            ),
            ReleaseError::QueueBusy { qpu_index, pending_jobs } => write!(
                f,
                "QPU {qpu_index} still has {pending_jobs} pending job(s); release refused"
            ),
        }
    }
}

impl std::error::Error for ReleaseError {}

/// A contiguous slice of the flat QPU index space owned by one named
/// provider: QPUs `start..start + len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderSpan {
    /// Provider name (e.g. `"ibm"`, `"ionq"`).
    pub name: String,
    /// First QPU index of the span.
    pub start: usize,
    /// Number of QPUs in the span.
    pub len: usize,
}

/// Exclusive-lease bookkeeping over the shared QPU fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAllocator {
    /// `owner_of[qpu] = Some(shard)` while leased.
    owner_of: Vec<Option<usize>>,
    /// Contiguous provider spans covering (a prefix of) the index space;
    /// empty for a single-provider fleet. Static configuration, never
    /// journaled: provider attribution is a pure function of the QPU index.
    spans: Vec<ProviderSpan>,
}

impl FleetAllocator {
    /// An allocator over `num_qpus` unleased QPUs.
    pub fn new(num_qpus: usize) -> Self {
        FleetAllocator { owner_of: vec![None; num_qpus], spans: Vec::new() }
    }

    /// Attach provider spans: `spans[p] = (name, qpu count)` in flat-index
    /// order, concatenated from index 0. Span membership is derived purely
    /// from the QPU index, so journal replay needs no provider fields.
    pub fn with_provider_spans<S: Into<String>>(mut self, spans: Vec<(S, usize)>) -> Self {
        let mut start = 0;
        self.spans = spans
            .into_iter()
            .map(|(name, len)| {
                let span = ProviderSpan { name: name.into(), start, len };
                start += len;
                span
            })
            .collect();
        debug_assert!(start <= self.owner_of.len(), "spans must fit the index space");
        self
    }

    /// The configured provider spans (empty when unfederated).
    pub fn provider_spans(&self) -> &[ProviderSpan] {
        &self.spans
    }

    /// The provider owning `qpu_index`, if spans are configured and cover it.
    pub fn provider_of(&self, qpu_index: usize) -> Option<&str> {
        self.spans
            .iter()
            .find(|s| qpu_index >= s.start && qpu_index < s.start + s.len)
            .map(|s| s.name.as_str())
    }

    /// Number of QPUs under management.
    pub fn num_qpus(&self) -> usize {
        self.owner_of.len()
    }

    /// Grant `qpu_index` to `shard` if it is free (or already held by the
    /// same shard — grants are idempotent per owner). Returns whether the
    /// shard holds the lease afterwards.
    pub fn try_grant(&mut self, shard: usize, qpu_index: usize) -> bool {
        match self.owner_of[qpu_index] {
            None => {
                self.owner_of[qpu_index] = Some(shard);
                true
            }
            Some(owner) => owner == shard,
        }
    }

    /// Whether [`FleetAllocator::release`] would succeed for this request —
    /// the shard holds the lease and the queue is empty — without mutating.
    /// Lets a write-ahead caller validate before journaling the release.
    pub fn check_release(
        &self,
        shard: usize,
        qpu_index: usize,
        pending_jobs: usize,
    ) -> Result<(), ReleaseError> {
        if self.owner_of.get(qpu_index).copied().flatten() != Some(shard) {
            return Err(ReleaseError::NotOwner {
                qpu_index,
                requested_by: shard,
                held_by: self.owner(qpu_index),
            });
        }
        if pending_jobs > 0 {
            return Err(ReleaseError::QueueBusy { qpu_index, pending_jobs });
        }
        Ok(())
    }

    /// Release `qpu_index` if `shard` holds it and the QPU's queue is idle
    /// (`pending_jobs` is the caller-observed queue depth). A release by a
    /// non-owner or on a busy queue is refused with the exact typed reason,
    /// never absorbed.
    pub fn release(
        &mut self,
        shard: usize,
        qpu_index: usize,
        pending_jobs: usize,
    ) -> Result<(), ReleaseError> {
        self.check_release(shard, qpu_index, pending_jobs)?;
        self.owner_of[qpu_index] = None;
        Ok(())
    }

    /// Current lease holder of `qpu_index`.
    pub fn owner(&self, qpu_index: usize) -> Option<usize> {
        self.owner_of.get(qpu_index).copied().flatten()
    }

    /// QPU indices leased by `shard`, ascending.
    pub fn leased_by(&self, shard: usize) -> Vec<usize> {
        self.owner_of
            .iter()
            .enumerate()
            .filter_map(|(qpu, owner)| (*owner == Some(shard)).then_some(qpu))
            .collect()
    }

    /// `shard`'s leased QPUs grouped by provider span, in span order:
    /// `(provider name, ascending QPU indices)`. QPUs outside every span are
    /// omitted; with no spans configured the result is empty.
    pub fn leased_by_provider(&self, shard: usize) -> Vec<(String, Vec<usize>)> {
        self.spans
            .iter()
            .map(|span| {
                let held: Vec<usize> = (span.start..span.start + span.len)
                    .filter(|&qpu| self.owner(qpu) == Some(shard))
                    .collect();
                (span.name.clone(), held)
            })
            .collect()
    }

    /// Reconstruct the allocator from the per-shard journaled lease sets
    /// (`shard_leases[s]` = the QPU indices shard `s` holds after replay).
    /// Fails with the exact conflict if two shards claim one QPU — the
    /// invariant a crash mid-lease must not break. Provider spans are static
    /// configuration; re-attach them with
    /// [`FleetAllocator::with_provider_spans`] (membership is index-derived,
    /// so the re-derived attribution is byte-identical).
    pub fn rebuild(
        shard_leases: &[BTreeSet<usize>],
        num_qpus: usize,
    ) -> Result<Self, LeaseConflict> {
        let mut allocator = FleetAllocator::new(num_qpus);
        for (shard, held) in shard_leases.iter().enumerate() {
            for &qpu_index in held {
                if let Some(held_by) = allocator.owner(qpu_index) {
                    return Err(LeaseConflict { qpu_index, held_by, claimed_by: shard });
                }
                allocator.owner_of[qpu_index] = Some(shard);
            }
        }
        Ok(allocator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_exclusive_and_idempotent_per_owner() {
        let mut alloc = FleetAllocator::new(4);
        assert!(alloc.try_grant(0, 2));
        assert!(alloc.try_grant(0, 2), "re-grant to the owner is idempotent");
        assert!(!alloc.try_grant(1, 2), "a held QPU is refused to another shard");
        assert_eq!(alloc.owner(2), Some(0));
        assert_eq!(alloc.leased_by(0), vec![2]);
        assert_eq!(alloc.leased_by(1), Vec::<usize>::new());
    }

    #[test]
    fn release_is_owner_gated_with_typed_errors() {
        let mut alloc = FleetAllocator::new(2);
        alloc.try_grant(0, 1);
        assert_eq!(
            alloc.release(1, 1, 0),
            Err(ReleaseError::NotOwner { qpu_index: 1, requested_by: 1, held_by: Some(0) }),
            "a non-owner release reports the actual holder"
        );
        assert_eq!(alloc.owner(1), Some(0));
        assert_eq!(alloc.release(0, 1, 0), Ok(()));
        assert_eq!(alloc.owner(1), None);
        assert_eq!(
            alloc.release(0, 1, 0),
            Err(ReleaseError::NotOwner { qpu_index: 1, requested_by: 0, held_by: None }),
            "double release reports the lease as free"
        );
        assert!(alloc.try_grant(1, 1), "a released QPU is grantable again");
    }

    #[test]
    fn busy_queue_release_is_a_typed_error() {
        let mut alloc = FleetAllocator::new(2);
        alloc.try_grant(0, 0);
        assert_eq!(
            alloc.release(0, 0, 3),
            Err(ReleaseError::QueueBusy { qpu_index: 0, pending_jobs: 3 }),
            "a busy queue refuses release with the observed depth"
        );
        assert_eq!(alloc.owner(0), Some(0), "the refused release left the lease in place");
        assert_eq!(alloc.check_release(0, 0, 0), Ok(()));
        assert_eq!(alloc.release(0, 0, 0), Ok(()));
    }

    #[test]
    fn provider_spans_partition_the_index_space() {
        let alloc =
            FleetAllocator::new(6).with_provider_spans(vec![("ibm", 4), ("ionq", 1), ("sim", 1)]);
        assert_eq!(alloc.provider_of(0), Some("ibm"));
        assert_eq!(alloc.provider_of(3), Some("ibm"));
        assert_eq!(alloc.provider_of(4), Some("ionq"));
        assert_eq!(alloc.provider_of(5), Some("sim"));
        assert_eq!(alloc.provider_of(6), None);

        let mut alloc = alloc;
        alloc.try_grant(0, 1);
        alloc.try_grant(0, 4);
        alloc.try_grant(1, 5);
        assert_eq!(
            alloc.leased_by_provider(0),
            vec![
                ("ibm".to_string(), vec![1]),
                ("ionq".to_string(), vec![4]),
                ("sim".to_string(), vec![])
            ]
        );
        assert_eq!(
            alloc.leased_by_provider(1),
            vec![
                ("ibm".to_string(), vec![]),
                ("ionq".to_string(), vec![]),
                ("sim".to_string(), vec![5])
            ]
        );
    }

    #[test]
    fn rebuild_reconstructs_ownership_and_rejects_double_grants() {
        let shard0: BTreeSet<usize> = [0, 2].into_iter().collect();
        let shard1: BTreeSet<usize> = [1, 3].into_iter().collect();
        let alloc = FleetAllocator::rebuild(&[shard0.clone(), shard1], 4).unwrap();
        assert_eq!(alloc.owner(0), Some(0));
        assert_eq!(alloc.owner(1), Some(1));
        assert_eq!(alloc.leased_by(0), vec![0, 2]);

        let overlapping: BTreeSet<usize> = [2, 3].into_iter().collect();
        assert_eq!(
            FleetAllocator::rebuild(&[shard0, overlapping], 4),
            Err(LeaseConflict { qpu_index: 2, held_by: 0, claimed_by: 1 })
        );
    }

    #[test]
    fn rebuild_with_spans_reattached_matches_the_original_attribution() {
        let mut alloc = FleetAllocator::new(4).with_provider_spans(vec![("ibm", 2), ("ionq", 2)]);
        alloc.try_grant(0, 0);
        alloc.try_grant(1, 3);
        let sets: Vec<BTreeSet<usize>> = vec![[0].into_iter().collect(), [3].into_iter().collect()];
        let rebuilt = FleetAllocator::rebuild(&sets, 4)
            .unwrap()
            .with_provider_spans(vec![("ibm", 2), ("ionq", 2)]);
        assert_eq!(rebuilt, alloc, "replayed leases + static spans = byte-identical allocator");
        assert_eq!(rebuilt.leased_by_provider(0), alloc.leased_by_provider(0));
    }
}
