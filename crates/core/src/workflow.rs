//! Hybrid workflows (§5): a directed acyclic graph of classical and quantum
//! steps with control/data-flow dependencies, as produced by the workflow
//! manager when it splits a hybrid application into its quantum and classical
//! parts.

use qonductor_circuit::Circuit;
use qonductor_mitigation::MitigationStack;
use qonductor_scheduler::ClassicalRequest;
use serde::{Deserialize, Serialize};

/// Kind of classical processing performed by a classical step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassicalKind {
    /// Error-mitigation circuit generation / noise-scaling preparation.
    PreProcessing,
    /// Result reconstruction / inference (e.g. ZNE extrapolation, REM inversion).
    PostProcessing,
    /// Classical simulation or optimisation (e.g. a VQE parameter update).
    Computation,
}

/// A classical workflow step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassicalStep {
    /// Step name.
    pub name: String,
    /// What the step does.
    pub kind: ClassicalKind,
    /// Resource request of the step.
    pub request: ClassicalRequest,
    /// Estimated CPU duration in seconds.
    pub estimated_duration_s: f64,
}

/// A quantum workflow step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumStep {
    /// Step name.
    pub name: String,
    /// The circuit to execute.
    pub circuit: Circuit,
    /// Error-mitigation stack applied around this circuit.
    pub mitigation: MitigationStack,
}

/// A workflow step: either classical or quantum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Classical processing step.
    Classical(ClassicalStep),
    /// Quantum execution step.
    Quantum(QuantumStep),
}

impl Step {
    /// Step name.
    pub fn name(&self) -> &str {
        match self {
            Step::Classical(s) => &s.name,
            Step::Quantum(s) => &s.name,
        }
    }

    /// `true` for quantum steps.
    pub fn is_quantum(&self) -> bool {
        matches!(self, Step::Quantum(_))
    }
}

/// A hybrid workflow: steps `V` plus dependency edges `E ⊆ V × V`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name.
    pub name: String,
    steps: Vec<Step>,
    /// Edges `(from, to)`: `to` depends on `from`.
    edges: Vec<(usize, usize)>,
}

impl Workflow {
    /// Create an empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow { name: name.into(), steps: Vec::new(), edges: Vec::new() }
    }

    /// Build a linear (chain) workflow from an ordered step list — the common
    /// pre-process → execute → post-process shape of Figure 1.
    pub fn chain(name: impl Into<String>, steps: Vec<Step>) -> Self {
        let mut wf = Workflow::new(name);
        for step in steps {
            wf.add_chained(step);
        }
        wf
    }

    /// Add a step with no dependencies; returns its index.
    pub fn add_step(&mut self, step: Step) -> usize {
        self.steps.push(step);
        self.steps.len() - 1
    }

    /// Add a step depending on the previously added step (chain order).
    pub fn add_chained(&mut self, step: Step) -> usize {
        let idx = self.add_step(step);
        if idx > 0 {
            self.edges.push((idx - 1, idx));
        }
        idx
    }

    /// Add a dependency edge `from → to`.
    ///
    /// # Panics
    /// Panics if either index is out of range or the edge is a self-loop.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.steps.len() && to < self.steps.len(), "edge endpoints must exist");
        assert_ne!(from, to, "self-dependencies are not allowed");
        self.edges.push((from, to));
    }

    /// All steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// All dependency edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the workflow has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of quantum steps.
    pub fn num_quantum_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.is_quantum()).count()
    }

    /// Largest circuit width among the quantum steps.
    pub fn max_qubits(&self) -> u32 {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Quantum(q) => Some(q.circuit.num_qubits()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Topological order of the steps, or `None` if the dependency graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.steps.len();
        let mut indegree = vec![0usize; n];
        let mut adj = vec![Vec::new(); n];
        for &(from, to) in &self.edges {
            adj[from].push(to);
            indegree[to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = queue.pop() {
            order.push(node);
            for &next in &adj[node] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    queue.push(next);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// `true` if the dependency graph is acyclic.
    pub fn is_valid(&self) -> bool {
        self.topological_order().is_some()
    }
}

/// Build the standard mitigated-execution workflow of Figure 1 / Listing 2 for
/// one circuit: pre-processing (circuit generation / noise scaling), quantum
/// execution, post-processing (inference / reconstruction).
pub fn mitigated_execution_workflow(
    name: impl Into<String>,
    circuit: Circuit,
    mitigation: MitigationStack,
    request: ClassicalRequest,
) -> Workflow {
    let name = name.into();
    let mut steps = Vec::new();
    if !mitigation.is_empty() {
        steps.push(Step::Classical(ClassicalStep {
            name: format!("{name}-preprocess"),
            kind: ClassicalKind::PreProcessing,
            request,
            estimated_duration_s: 0.5,
        }));
    }
    steps.push(Step::Quantum(QuantumStep {
        name: format!("{name}-execute"),
        circuit,
        mitigation: mitigation.clone(),
    }));
    if !mitigation.is_empty() {
        steps.push(Step::Classical(ClassicalStep {
            name: format!("{name}-postprocess"),
            kind: ClassicalKind::PostProcessing,
            request,
            estimated_duration_s: 1.0,
        }));
    }
    Workflow::chain(name, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qonductor_circuit::generators::ghz;

    #[test]
    fn chain_workflow_is_valid_and_ordered() {
        let wf = mitigated_execution_workflow(
            "demo",
            ghz(5),
            MitigationStack::listing2(),
            ClassicalRequest::small(),
        );
        assert_eq!(wf.len(), 3);
        assert_eq!(wf.num_quantum_steps(), 1);
        assert_eq!(wf.max_qubits(), 5);
        assert!(wf.is_valid());
        let order = wf.topological_order().unwrap();
        // Pre-processing first, post-processing last.
        assert_eq!(order.first(), Some(&0));
        assert_eq!(order.last(), Some(&2));
    }

    #[test]
    fn unmitigated_workflow_has_only_the_quantum_step() {
        let wf = mitigated_execution_workflow(
            "plain",
            ghz(3),
            MitigationStack::none(),
            ClassicalRequest::small(),
        );
        assert_eq!(wf.len(), 1);
        assert!(wf.steps()[0].is_quantum());
    }

    #[test]
    fn cycles_are_detected() {
        let mut wf = Workflow::new("cyclic");
        let a = wf.add_step(Step::Classical(ClassicalStep {
            name: "a".into(),
            kind: ClassicalKind::Computation,
            request: ClassicalRequest::small(),
            estimated_duration_s: 1.0,
        }));
        let b = wf.add_step(Step::Classical(ClassicalStep {
            name: "b".into(),
            kind: ClassicalKind::Computation,
            request: ClassicalRequest::small(),
            estimated_duration_s: 1.0,
        }));
        wf.add_edge(a, b);
        assert!(wf.is_valid());
        wf.add_edge(b, a);
        assert!(!wf.is_valid());
        assert!(wf.topological_order().is_none());
    }

    #[test]
    fn diamond_dependencies_topologically_ordered() {
        let step = |n: &str| {
            Step::Classical(ClassicalStep {
                name: n.into(),
                kind: ClassicalKind::Computation,
                request: ClassicalRequest::small(),
                estimated_duration_s: 1.0,
            })
        };
        let mut wf = Workflow::new("diamond");
        let a = wf.add_step(step("a"));
        let b = wf.add_step(step("b"));
        let c = wf.add_step(step("c"));
        let d = wf.add_step(step("d"));
        wf.add_edge(a, b);
        wf.add_edge(a, c);
        wf.add_edge(b, d);
        wf.add_edge(c, d);
        let order = wf.topological_order().unwrap();
        let pos = |x: usize| order.iter().position(|&i| i == x).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(d) > pos(b) && pos(d) > pos(c));
    }

    #[test]
    #[should_panic]
    fn self_edge_panics() {
        let mut wf = Workflow::new("bad");
        let a = wf.add_step(Step::Quantum(QuantumStep {
            name: "q".into(),
            circuit: ghz(2),
            mitigation: MitigationStack::none(),
        }));
        wf.add_edge(a, a);
    }
}
