//! Elastic-capacity autoscaling: a sliding load-forecast window over job
//! arrivals (arrivals/s per [`ResourceClass`]) driving grow/shrink decisions
//! for `Simulator`-class capacity in a [`crate::federation::FederatedFleet`].
//!
//! The autoscaler *decides*; it never mutates the fleet itself. Callers apply
//! a [`ScalingDecision`] by journaling
//! [`crate::replication::ControlPlaneEvent::QpuProvisioned`] /
//! [`QpuRetired`](crate::replication::ControlPlaneEvent::QpuRetired) events
//! through [`crate::replication::ReplicatedControlPlane::provision_qpu`] and
//! then growing the federation tail — which is what makes autoscaled runs
//! replay byte-for-byte through a leader crash.
//!
//! # Determinism contract
//!
//! Every decision is a pure function of `(observed arrivals, now_s, config)`:
//!
//! - **No wall-clock reads.** Simulated time flows in through
//!   [`Autoscaler::observe_arrival`] and [`Autoscaler::decide`]; the
//!   autoscaler holds no clock of its own, so journal replay and chaos-matrix
//!   re-runs see identical decision sequences.
//! - **Seeded forecast.** The predictive path's dither is derived by an FNV
//!   hash of `(seed, decision instant bits)` — deterministic pseudo-noise,
//!   reproducible from the config seed alone, never from ambient RNG state.
//! - **Stable arithmetic.** Rates are computed in a fixed fold order over a
//!   `VecDeque` pruned to the window, so equal observation streams produce
//!   bit-equal rates on every platform.

use qonductor_backend::ResourceClass;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the autoscaler turns load into capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingStrategy {
    /// Scale on the *observed* arrival rate over the sliding window.
    Reactive,
    /// Scale on the *forecast* rate: a two-half-window linear trend
    /// extrapolated one window ahead, plus seeded dither.
    Predictive,
    /// Scale on the max of the observed and forecast rates — react to bursts
    /// already here, pre-provision for bursts the trend predicts.
    Hybrid,
}

/// Autoscaler tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// The scaling strategy.
    pub strategy: ScalingStrategy,
    /// Sliding-window length (seconds of simulated time) the arrival rate is
    /// measured over.
    pub window_s: f64,
    /// Arrivals/s one QPU of elastic capacity is expected to absorb: the
    /// target that converts a rate into a capacity count.
    pub target_rate_per_qpu: f64,
    /// Arrivals/s the *fixed* (non-elastic) fleet absorbs before any elastic
    /// capacity is warranted.
    pub baseline_rate: f64,
    /// Lower bound on elastic QPUs (never shrink below).
    pub min_elastic: usize,
    /// Upper bound on elastic QPUs (never grow above).
    pub max_elastic: usize,
    /// Minimum simulated seconds between two non-`Hold` decisions (guards
    /// against grow/shrink flapping at a rate boundary).
    pub cooldown_s: f64,
    /// Seed of the deterministic forecast dither.
    pub seed: u64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            strategy: ScalingStrategy::Hybrid,
            window_s: 120.0,
            target_rate_per_qpu: 0.05,
            baseline_rate: 0.1,
            min_elastic: 0,
            max_elastic: 4,
            cooldown_s: 60.0,
            seed: 0,
        }
    }
}

/// One scaling decision, sized in whole QPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingDecision {
    /// Provision `n` more elastic QPUs.
    Grow(usize),
    /// Retire `n` elastic QPUs.
    Shrink(usize),
    /// Capacity already matches the (forecast) load.
    Hold,
}

/// The sliding-window load forecaster and elastic-capacity sizer. See the
/// module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    /// `(t_s, class)` arrival observations inside the sliding window,
    /// oldest first.
    arrivals: VecDeque<(f64, ResourceClass)>,
    /// Instant of the last non-`Hold` decision (cooldown baseline).
    last_scaled_s: Option<f64>,
}

impl Autoscaler {
    /// An autoscaler with the given tuning.
    pub fn new(config: AutoscalerConfig) -> Self {
        Autoscaler { config, arrivals: VecDeque::new(), last_scaled_s: None }
    }

    /// The active configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Record one job arrival at `t_s` targeting `class` capacity.
    /// Observations must arrive in non-decreasing time order (the window is
    /// pruned from the front).
    pub fn observe_arrival(&mut self, t_s: f64, class: ResourceClass) {
        self.arrivals.push_back((t_s, class));
        self.prune(t_s);
    }

    /// Drop observations older than the window behind `now_s`.
    fn prune(&mut self, now_s: f64) {
        let horizon = now_s - self.config.window_s;
        while matches!(self.arrivals.front(), Some(&(t, _)) if t < horizon) {
            self.arrivals.pop_front();
        }
    }

    /// Observed arrival rate (arrivals/s, all classes) over the window ending
    /// at `now_s`.
    pub fn observed_rate(&self, now_s: f64) -> f64 {
        let horizon = now_s - self.config.window_s;
        let count = self.arrivals.iter().filter(|&&(t, _)| t >= horizon).count();
        count as f64 / self.config.window_s
    }

    /// Forecast arrival rate one window ahead: the linear trend between the
    /// older and newer half of the window, extrapolated forward, plus a
    /// seeded dither of at most ±2% (pseudo-noise standing in for forecast
    /// model error — deterministic, so replays agree). Clamped at zero.
    pub fn forecast_rate(&self, now_s: f64) -> f64 {
        let half = self.config.window_s / 2.0;
        let horizon = now_s - self.config.window_s;
        let mid = now_s - half;
        let older = self.arrivals.iter().filter(|&&(t, _)| t >= horizon && t < mid).count();
        let newer = self.arrivals.iter().filter(|&&(t, _)| t >= mid).count();
        let older_rate = older as f64 / half;
        let newer_rate = newer as f64 / half;
        // Extrapolate the half-window trend one further half-window out.
        let trend = newer_rate + (newer_rate - older_rate);
        let dither = 1.0 + 0.04 * (seeded_unit(self.config.seed, now_s) - 0.5);
        (trend * dither).max(0.0)
    }

    /// The rate the active strategy sizes against.
    fn planning_rate(&self, now_s: f64) -> f64 {
        match self.config.strategy {
            ScalingStrategy::Reactive => self.observed_rate(now_s),
            ScalingStrategy::Predictive => self.forecast_rate(now_s),
            ScalingStrategy::Hybrid => self.observed_rate(now_s).max(self.forecast_rate(now_s)),
        }
    }

    /// Elastic QPU count the planning rate warrants (before cooldown).
    pub fn desired_elastic(&self, now_s: f64) -> usize {
        let excess = self.planning_rate(now_s) - self.config.baseline_rate;
        let desired = if excess <= 0.0 {
            0
        } else {
            (excess / self.config.target_rate_per_qpu).ceil() as usize
        };
        desired.clamp(self.config.min_elastic, self.config.max_elastic)
    }

    /// Decide how to move from `elastic_now` provisioned QPUs toward the
    /// warranted count. Non-`Hold` decisions are rate-limited by the
    /// cooldown; a decision inside the cooldown window is always `Hold`.
    pub fn decide(&mut self, now_s: f64, elastic_now: usize) -> ScalingDecision {
        if matches!(self.last_scaled_s, Some(last) if now_s - last < self.config.cooldown_s) {
            return ScalingDecision::Hold;
        }
        let desired = self.desired_elastic(now_s);
        let decision = if desired > elastic_now {
            ScalingDecision::Grow(desired - elastic_now)
        } else if desired < elastic_now {
            ScalingDecision::Shrink(elastic_now - desired)
        } else {
            ScalingDecision::Hold
        };
        if decision != ScalingDecision::Hold {
            self.last_scaled_s = Some(now_s);
        }
        decision
    }
}

/// Deterministic unit-interval pseudo-noise from `(seed, t_s)`: an FNV-1a
/// fold of the seed and the instant's IEEE-754 bits. Not statistical-quality
/// randomness — just reproducible dither.
fn seeded_unit(seed: u64, t_s: f64) -> f64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in seed.to_le_bytes().into_iter().chain(t_s.to_bits().to_le_bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(strategy: ScalingStrategy) -> AutoscalerConfig {
        AutoscalerConfig {
            strategy,
            window_s: 100.0,
            target_rate_per_qpu: 0.1,
            baseline_rate: 0.2,
            min_elastic: 0,
            max_elastic: 5,
            cooldown_s: 0.0,
            seed: 42,
        }
    }

    /// Feed `rate` arrivals/s over the window ending at `until_s`.
    fn feed(scaler: &mut Autoscaler, rate: f64, from_s: f64, until_s: f64) {
        let step = 1.0 / rate;
        let mut t = from_s;
        while t < until_s {
            scaler.observe_arrival(t, ResourceClass::Simulator);
            t += step;
        }
    }

    #[test]
    fn reactive_scaling_follows_the_observed_rate() {
        let mut scaler = Autoscaler::new(config(ScalingStrategy::Reactive));
        assert_eq!(scaler.decide(0.0, 0), ScalingDecision::Hold, "no load, no capacity");
        // 0.5 arrivals/s: 0.3 above baseline → 3 QPUs at 0.1 each.
        feed(&mut scaler, 0.5, 0.0, 100.0);
        assert!((scaler.observed_rate(100.0) - 0.5).abs() < 0.02);
        assert_eq!(scaler.decide(100.0, 0), ScalingDecision::Grow(3));
        assert_eq!(scaler.decide(100.0, 3), ScalingDecision::Hold, "capacity matches");
        // Load drains: the window empties and capacity shrinks back.
        scaler.observe_arrival(300.0, ResourceClass::Simulator);
        assert_eq!(scaler.decide(300.0, 3), ScalingDecision::Shrink(3));
    }

    #[test]
    fn predictive_scaling_extrapolates_a_rising_trend() {
        let mut rising = Autoscaler::new(config(ScalingStrategy::Predictive));
        // Older half at 0.2/s, newer half at 0.6/s → trend forecasts ~1.0/s,
        // well above the 0.4/s observed mean.
        feed(&mut rising, 0.2, 0.0, 50.0);
        feed(&mut rising, 0.6, 50.0, 100.0);
        let forecast = rising.forecast_rate(100.0);
        let observed = rising.observed_rate(100.0);
        assert!(
            forecast > observed + 0.3,
            "rising trend must forecast above observed ({forecast:.3} vs {observed:.3})"
        );
        // A flat stream forecasts ≈ its observed rate (dither is ±2%).
        let mut flat = Autoscaler::new(config(ScalingStrategy::Predictive));
        feed(&mut flat, 0.4, 0.0, 100.0);
        let f = flat.forecast_rate(100.0);
        assert!((f - flat.observed_rate(100.0)).abs() < 0.05, "flat trend stays flat ({f:.3})");
    }

    #[test]
    fn hybrid_takes_the_max_of_observed_and_forecast() {
        // Falling trend: observed dominates (hybrid must not shed capacity a
        // still-high observed rate needs).
        let mut scaler = Autoscaler::new(config(ScalingStrategy::Hybrid));
        feed(&mut scaler, 0.8, 0.0, 50.0);
        feed(&mut scaler, 0.2, 50.0, 100.0);
        let planning = scaler.desired_elastic(100.0);
        let observed_only = {
            let mut r = Autoscaler::new(config(ScalingStrategy::Reactive));
            feed(&mut r, 0.8, 0.0, 50.0);
            feed(&mut r, 0.2, 50.0, 100.0);
            r.desired_elastic(100.0)
        };
        assert_eq!(planning, observed_only, "falling trend: hybrid sizes on observed");
    }

    #[test]
    fn decisions_are_deterministic_for_equal_observation_streams() {
        let run = || {
            let mut scaler = Autoscaler::new(config(ScalingStrategy::Hybrid));
            let mut decisions = Vec::new();
            let mut elastic = 0usize;
            for step in 0..40 {
                let t = step as f64 * 10.0;
                // A deterministic burst between t=100 and t=250.
                let rate = if (100.0..250.0).contains(&t) { 0.9 } else { 0.1 };
                feed(&mut scaler, rate, t, t + 10.0);
                let d = scaler.decide(t + 10.0, elastic);
                match d {
                    ScalingDecision::Grow(n) => elastic += n,
                    ScalingDecision::Shrink(n) => elastic -= n,
                    ScalingDecision::Hold => {}
                }
                decisions.push(d);
            }
            (decisions, elastic)
        };
        let (a, elastic_a) = run();
        let (b, elastic_b) = run();
        assert_eq!(a, b, "equal streams, equal decision sequences");
        assert_eq!(elastic_a, elastic_b);
        assert!(a.iter().any(|d| matches!(d, ScalingDecision::Grow(_))), "the burst grows");
        assert!(a.iter().any(|d| matches!(d, ScalingDecision::Shrink(_))), "the drain shrinks");

        // A different seed dithers the forecast but stays deterministic.
        let mut other =
            Autoscaler::new(AutoscalerConfig { seed: 7, ..config(ScalingStrategy::Predictive) });
        feed(&mut other, 0.5, 0.0, 100.0);
        let f1 = other.forecast_rate(100.0);
        let f2 = other.forecast_rate(100.0);
        assert_eq!(f1, f2, "same instant, same forecast");
    }

    #[test]
    fn cooldown_suppresses_flapping_and_bounds_are_respected() {
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            cooldown_s: 50.0,
            max_elastic: 2,
            ..config(ScalingStrategy::Reactive)
        });
        feed(&mut scaler, 1.2, 0.0, 100.0);
        // 1.0/s over baseline wants 10 QPUs; the cap clamps to 2.
        assert_eq!(scaler.decide(100.0, 0), ScalingDecision::Grow(2));
        // Inside the cooldown every decision is Hold, whatever the load.
        assert_eq!(scaler.decide(120.0, 2), ScalingDecision::Hold);
        assert_eq!(scaler.decide(149.9, 0), ScalingDecision::Hold);
        // After the cooldown the scaler acts again.
        feed(&mut scaler, 1.2, 100.0, 160.0);
        assert!(matches!(scaler.decide(160.0, 0), ScalingDecision::Grow(_)));

        let mut floored = Autoscaler::new(AutoscalerConfig {
            min_elastic: 1,
            ..config(ScalingStrategy::Reactive)
        });
        assert_eq!(floored.decide(500.0, 0), ScalingDecision::Grow(1), "floor holds with no load");
    }
}
