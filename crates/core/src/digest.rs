//! Shared FNV-1a fingerprint primitives.
//!
//! Two widths, two jobs:
//!
//! - **64-bit** ([`Fnv64`]) fingerprints scheduling-cycle input snapshots for
//!   the plan-ahead cache (see `jobmanager::snapshot_digest`), where a digest
//!   collision merely adopts a plan computed from identical bytes.
//! - **128-bit** ([`Fnv128`]) backs the control plane's *incremental* state
//!   digest: a rolling hash absorbed event-by-event as entries are journaled,
//!   anchored to a full-encode checkpoint at each snapshot. Two planes that
//!   journal the same bytes from the same checkpoint roll to the same value,
//!   so digest equality is a cheap O(1) stand-in for the byte-exact
//!   `encode_state` oracle (which the test suites keep for real comparisons).
//!
//! FNV-1a is used deliberately: it is a fixed public algorithm with no
//! per-process seed, so digests are stable across runs, replicas, and
//! failovers — a requirement for cross-plane equality checks. It is not
//! collision-resistant against adversaries; nothing here is security-bearing.

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x100_0000_01b3;
/// FNV-1a 128-bit offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the offset basis (nothing absorbed yet).
    pub fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }

    /// Fold `bytes` into the running hash.
    pub fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }

    /// The current hash value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Streaming FNV-1a 128-bit hasher. [`Fnv128::from_state`] resumes from a
/// previously extracted [`Fnv128::value`], which is what makes the rolling
/// control-plane digest possible: absorb each journaled event as it commits,
/// stash the state, resume on the next event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A hasher at the offset basis (nothing absorbed yet).
    pub fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    /// Resume a hasher from a previously extracted [`Fnv128::value`].
    pub fn from_state(state: u128) -> Self {
        Fnv128(state)
    }

    /// Fold `bytes` into the running hash.
    pub fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The current hash value.
    pub fn value(self) -> u128 {
        self.0
    }
}

/// One-shot FNV-1a 128-bit hash of `bytes`.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.absorb(bytes);
    h.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_fnv1a_vectors_hold_for_both_widths() {
        // Reference vectors from the FNV specification (draft-eastlake-fnv):
        // the empty string hashes to the offset basis, and "a"/"foobar" to
        // the published 64-bit values.
        assert_eq!(fnv128(b""), FNV128_OFFSET);
        let mut h64 = Fnv64::new();
        assert_eq!(h64.value(), FNV64_OFFSET);
        h64.absorb(b"a");
        assert_eq!(h64.value(), 0xaf63_dc4c_8601_ec8c);
        let mut foobar = Fnv64::new();
        foobar.absorb(b"foobar");
        assert_eq!(foobar.value(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn resuming_from_state_matches_one_shot_absorption() {
        let mut whole = Fnv128::new();
        whole.absorb(b"subm 1 2\ndisp 3\n");

        let mut first = Fnv128::new();
        first.absorb(b"subm 1 2\n");
        let mut resumed = Fnv128::from_state(first.value());
        resumed.absorb(b"disp 3\n");

        assert_eq!(whole.value(), resumed.value());
    }
}
