//! Structured random circuits: alternating layers of random single-qubit
//! rotations and randomly paired two-qubit gates. Used by the load generator
//! (§8.2: "hybrid applications with random quantum circuits").

use crate::circuit::Circuit;
use rand::seq::SliceRandom;
use rand::Rng;

/// Build an `n`-qubit random circuit of the given `depth` (number of alternating
/// layers), followed by measurement of all qubits.
///
/// Even layers apply a random rotation (RX/RY/RZ with a uniform angle) to every
/// qubit; odd layers apply CX gates between a random perfect matching of qubits.
pub fn random_circuit<R: Rng + ?Sized>(n: u32, depth: u32, rng: &mut R) -> Circuit {
    assert!(n >= 1, "random circuit needs at least one qubit");
    let mut c = Circuit::named(n, "random");
    for layer in 0..depth {
        if layer % 2 == 0 {
            for q in 0..n {
                let theta: f64 = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
                match rng.gen_range(0..3) {
                    0 => c.rx(theta, q),
                    1 => c.ry(theta, q),
                    _ => c.rz(theta, q),
                };
            }
        } else if n >= 2 {
            let mut qubits: Vec<u32> = (0..n).collect();
            qubits.shuffle(rng);
            for pair in qubits.chunks_exact(2) {
                c.cx(pair[0], pair[1]);
            }
        }
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_circuit_two_qubit_layers() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = random_circuit(8, 6, &mut rng);
        // 3 entangling layers × 4 CX pairs.
        assert_eq!(c.two_qubit_gates(), 12);
        // 3 rotation layers × 8 qubits.
        assert_eq!(c.gate_counts().0, 24);
    }

    #[test]
    fn random_circuit_odd_width_leaves_one_idle_per_layer() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = random_circuit(5, 2, &mut rng);
        assert_eq!(c.two_qubit_gates(), 2); // floor(5/2)
    }

    #[test]
    fn random_circuit_single_qubit_has_no_entanglers() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = random_circuit(1, 10, &mut rng);
        assert_eq!(c.two_qubit_gates(), 0);
    }

    #[test]
    fn random_circuit_deterministic_per_seed() {
        let a = random_circuit(6, 8, &mut StdRng::seed_from_u64(9));
        let b = random_circuit(6, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
