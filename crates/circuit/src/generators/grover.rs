//! Grover search circuit with a single marked element.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Build an `n`-qubit Grover search circuit marking the all-ones bit string,
/// with the textbook number of iterations ⌊(π/4)·√(2ⁿ)⌋ capped at 8 so that
/// large benchmark circuits stay a realistic size, followed by measurement.
///
/// The multi-controlled-Z oracle and diffuser are decomposed into a CZ ladder
/// (an approximation that preserves the width/depth/2q-count scaling that the
/// orchestrator's estimator consumes, without requiring ancilla management).
pub fn grover(n: u32) -> Circuit {
    assert!(n >= 2, "Grover circuit needs at least two qubits");
    let mut c = Circuit::named(n, "grover");
    // Uniform superposition.
    for q in 0..n {
        c.h(q);
    }
    let iterations =
        (((std::f64::consts::FRAC_PI_4) * f64::from(1u32 << n.min(20)).sqrt()) as u32).clamp(1, 8);
    for _ in 0..iterations {
        c.barrier();
        // Oracle marking |1…1⟩: ladder of CZ gates approximating a multi-controlled Z.
        multi_controlled_z(&mut c, n);
        // Diffuser: H X (MCZ) X H on every qubit.
        for q in 0..n {
            c.h(q);
            c.x(q);
        }
        multi_controlled_z(&mut c, n);
        for q in 0..n {
            c.x(q);
            c.h(q);
        }
    }
    c.measure_all();
    c
}

/// CZ-ladder stand-in for a multi-controlled Z over all `n` qubits.
fn multi_controlled_z(c: &mut Circuit, n: u32) {
    if n == 2 {
        c.cz(0, 1);
        return;
    }
    for q in 0..n - 1 {
        c.cz(q, q + 1);
    }
    for q in (0..n - 2).rev() {
        c.apply1(Gate::T, q);
        c.cz(q, q + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grover_iteration_count_is_capped() {
        let small = grover(2);
        let large = grover(10);
        assert!(large.two_qubit_gates() > small.two_qubit_gates());
        // With the cap at 8 iterations the 2q count stays bounded:
        // per iteration ≤ 2 * (2*(n-1) - 1) gates.
        let n = 10usize;
        assert!(large.two_qubit_gates() <= 8 * 2 * (2 * (n - 1)));
    }

    #[test]
    fn grover_measures_all() {
        let c = grover(4);
        assert_eq!(c.num_measurements(), 4);
    }

    #[test]
    #[should_panic]
    fn grover_one_qubit_panics() {
        grover(1);
    }
}
