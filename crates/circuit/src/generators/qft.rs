//! Quantum Fourier Transform generator.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Build an `n`-qubit QFT circuit (with final qubit-reversal SWAPs) applied to
/// the |+…+⟩-like input produced by an initial layer of Hadamards, followed by
/// measurement of all qubits.
///
/// Controlled-phase rotations are decomposed as
/// `CP(θ) = RZ(θ/2)⊗RZ(θ/2) · CX · RZ(-θ/2) · CX` up to global phase, which
/// keeps the circuit within the `{RZ, CX, H}` gate alphabet.
///
/// # Panics
/// Panics if `n == 0`.
pub fn qft(n: u32) -> Circuit {
    assert!(n >= 1, "QFT circuit needs at least one qubit");
    let mut c = Circuit::named(n, "qft");
    // Input state preparation.
    for q in 0..n {
        c.h(q);
    }
    c.barrier();
    for target in 0..n {
        c.h(target);
        for control in (target + 1)..n {
            let k = (control - target) as i32 + 1;
            let theta = std::f64::consts::PI / f64::from(1u32 << (k - 1).min(30));
            controlled_phase(&mut c, theta, control, target);
        }
    }
    // Qubit reversal.
    let mut lo = 0;
    let mut hi = n - 1;
    while lo < hi {
        c.swap(lo, hi);
        lo += 1;
        hi -= 1;
    }
    c.measure_all();
    c
}

/// Append a controlled-phase rotation CP(θ) between `control` and `target`
/// using the RZ/CX decomposition (exact up to global phase).
fn controlled_phase(c: &mut Circuit, theta: f64, control: u32, target: u32) {
    c.apply1(Gate::RZ(theta / 2.0), control);
    c.apply1(Gate::RZ(theta / 2.0), target);
    c.cx(control, target);
    c.apply1(Gate::RZ(-theta / 2.0), target);
    c.cx(control, target);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_gate_scaling_is_quadratic() {
        // Number of CP blocks is n(n-1)/2, each contributing two CX gates,
        // plus floor(n/2) SWAPs.
        for n in [2u32, 4, 6, 8] {
            let c = qft(n);
            let expected_cx = (n * (n - 1)) as usize; // 2 * n(n-1)/2
            let expected_swap = (n / 2) as usize;
            assert_eq!(c.two_qubit_gates(), expected_cx + expected_swap, "n = {n}");
        }
    }

    #[test]
    fn qft_measures_everything() {
        let c = qft(5);
        assert_eq!(c.num_measurements(), 5);
    }

    #[test]
    fn qft_single_qubit_is_hadamards() {
        let c = qft(1);
        assert_eq!(c.two_qubit_gates(), 0);
        assert!(c.gate_counts().0 >= 2); // H prep + H transform
    }
}
