//! Hardware-efficient VQE ansatz (two-local RY + CX entangling layers),
//! representative of the variational workloads cited throughout the paper.

use crate::circuit::Circuit;
use rand::Rng;

/// Build an `n`-qubit, `reps`-repetition two-local VQE ansatz with random
/// rotation angles drawn from `rng`, followed by measurement of all qubits.
///
/// Each repetition is a layer of `RY(θ)` rotations on every qubit followed by a
/// linear-entanglement layer of CX gates; a final rotation layer closes the ansatz.
pub fn vqe_ansatz<R: Rng + ?Sized>(n: u32, reps: u32, rng: &mut R) -> Circuit {
    assert!(n >= 1, "VQE ansatz needs at least one qubit");
    let mut c = Circuit::named(n, "vqe");
    for _rep in 0..reps {
        for q in 0..n {
            let theta: f64 = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            c.ry(theta, q);
        }
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    for q in 0..n {
        let theta: f64 = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        c.ry(theta, q);
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vqe_gate_counts() {
        let mut rng = StdRng::seed_from_u64(11);
        let c = vqe_ansatz(6, 3, &mut rng);
        // 3 reps × 6 RY + 6 final RY = 24 single-qubit rotations.
        assert_eq!(c.gate_counts().0, 24);
        // 3 reps × 5 CX.
        assert_eq!(c.two_qubit_gates(), 15);
    }

    #[test]
    fn vqe_zero_reps_is_rotations_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = vqe_ansatz(4, 0, &mut rng);
        assert_eq!(c.two_qubit_gates(), 0);
        assert_eq!(c.gate_counts().0, 4);
    }

    #[test]
    fn vqe_is_deterministic_per_seed() {
        let a = vqe_ansatz(5, 2, &mut StdRng::seed_from_u64(42));
        let b = vqe_ansatz(5, 2, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
