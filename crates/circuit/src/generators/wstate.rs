//! W-state preparation circuit.

use crate::circuit::Circuit;

/// Build an `n`-qubit W-state preparation circuit using the standard cascade of
/// controlled rotations (decomposed into RY + CX), followed by measurement.
///
/// The W state is the equal superposition of all single-excitation basis states.
pub fn w_state(n: u32) -> Circuit {
    assert!(n >= 2, "W-state circuit needs at least two qubits");
    let mut c = Circuit::named(n, "wstate");
    // Start with the excitation on qubit 0.
    c.x(0);
    // Cascade: distribute the excitation with controlled-RY + CX blocks.
    for k in 1..n {
        let remaining = f64::from(n - k);
        let theta = 2.0 * (1.0 / (remaining + 1.0)).sqrt().acos();
        // Controlled-RY(θ) from qubit k-1 to k, decomposed as RY(θ/2) CX RY(-θ/2) CX.
        c.ry(theta / 2.0, k);
        c.cx(k - 1, k);
        c.ry(-theta / 2.0, k);
        c.cx(k - 1, k);
        // Shift the excitation.
        c.cx(k, k - 1);
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wstate_gate_counts() {
        let c = w_state(5);
        // 4 cascade blocks × 3 CX each.
        assert_eq!(c.two_qubit_gates(), 12);
        // 1 X + 4 × 2 RY.
        assert_eq!(c.gate_counts().0, 9);
        assert_eq!(c.num_measurements(), 5);
    }

    #[test]
    fn wstate_two_qubits() {
        let c = w_state(2);
        assert_eq!(c.two_qubit_gates(), 3);
    }

    #[test]
    #[should_panic]
    fn wstate_single_qubit_panics() {
        w_state(1);
    }
}
