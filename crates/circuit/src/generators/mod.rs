//! Generators for the standard quantum-algorithm families used by the paper's
//! evaluation (§8.1): GHZ, QFT, QAOA (max-cut), VQE ansatz, Grover, W-state,
//! and structured random circuits. This is the MQT-Bench-style workload
//! substitute described in DESIGN.md.

mod ghz;
mod grover;
mod qaoa;
mod qft;
mod random;
mod vqe;
mod wstate;

pub use ghz::ghz;
pub use grover::grover;
pub use qaoa::{qaoa_maxcut, MaxCutGraph};
pub use qft::qft;
pub use random::random_circuit;
pub use vqe::vqe_ansatz;
pub use wstate::w_state;

use serde::{Deserialize, Serialize};

/// The algorithm families available from the generator library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Greenberger–Horne–Zeilinger state preparation.
    Ghz,
    /// Quantum Fourier Transform.
    Qft,
    /// Quantum Approximate Optimization Algorithm on a random 3-regular-ish graph.
    Qaoa,
    /// Hardware-efficient two-local VQE ansatz.
    Vqe,
    /// Grover search with a single marked element.
    Grover,
    /// W-state preparation.
    WState,
    /// Structured random circuit (alternating 1q/2q layers).
    Random,
}

impl Algorithm {
    /// All algorithm families, in a stable order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Ghz,
        Algorithm::Qft,
        Algorithm::Qaoa,
        Algorithm::Vqe,
        Algorithm::Grover,
        Algorithm::WState,
        Algorithm::Random,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Ghz => "ghz",
            Algorithm::Qft => "qft",
            Algorithm::Qaoa => "qaoa",
            Algorithm::Vqe => "vqe",
            Algorithm::Grover => "grover",
            Algorithm::WState => "wstate",
            Algorithm::Random => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_circuits(n: u32) -> Vec<(Algorithm, Circuit)> {
        let mut rng = StdRng::seed_from_u64(7);
        Algorithm::ALL
            .iter()
            .map(|&a| (a, crate::workload::build_algorithm(a, n, 2, &mut rng)))
            .collect()
    }

    #[test]
    fn every_algorithm_builds_at_small_sizes() {
        for n in [2u32, 3, 5, 8] {
            for (alg, c) in all_circuits(n) {
                assert_eq!(c.num_qubits(), n, "{:?} width", alg);
                assert!(!c.is_empty(), "{:?} produced an empty circuit", alg);
                assert!(c.num_measurements() as u32 >= n, "{:?} must measure all qubits", alg);
            }
        }
    }

    #[test]
    fn algorithm_names_unique() {
        let mut names: Vec<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }
}
