//! GHZ state preparation: the circuit used by the paper's Figure 2(b)
//! spatial-variance experiment (12-qubit GHZ across six IBM QPUs).

use crate::circuit::Circuit;

/// Build an `n`-qubit GHZ state preparation circuit followed by measurement of
/// all qubits: `H` on qubit 0, then a CNOT chain `0→1→…→n-1`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ghz(n: u32) -> Circuit {
    assert!(n >= 1, "GHZ circuit needs at least one qubit");
    let mut c = Circuit::named(n, "ghz");
    c.h(0);
    for q in 0..n.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CircuitMetrics;

    #[test]
    fn ghz_structure() {
        let c = ghz(12);
        let m = CircuitMetrics::of(&c);
        assert_eq!(m.width, 12);
        assert_eq!(m.one_qubit_gates, 1);
        assert_eq!(m.two_qubit_gates, 11);
        assert_eq!(m.measurements, 12);
        // Linear CNOT chain: depth n (H + chain) plus trailing measurement.
        assert_eq!(c.depth(), 13);
    }

    #[test]
    fn ghz_single_qubit() {
        let c = ghz(1);
        assert_eq!(c.two_qubit_gates(), 0);
        assert_eq!(c.num_measurements(), 1);
    }

    #[test]
    #[should_panic]
    fn ghz_zero_panics() {
        ghz(0);
    }
}
