//! QAOA max-cut circuit generator — the workload highlighted by the paper's
//! Listing 2 and the 20-qubit resource-plan experiment (Figure 7a).

use crate::circuit::Circuit;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An undirected graph instance for the max-cut problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxCutGraph {
    /// Number of vertices (= number of qubits).
    pub num_vertices: u32,
    /// Undirected edges as vertex pairs `(u, v)` with `u < v`.
    pub edges: Vec<(u32, u32)>,
}

impl MaxCutGraph {
    /// Build a ring graph with `n` vertices (each vertex connected to its successor).
    pub fn ring(n: u32) -> Self {
        assert!(n >= 2);
        let edges = (0..n).map(|u| (u, (u + 1) % n)).map(|(u, v)| (u.min(v), u.max(v))).collect();
        MaxCutGraph { num_vertices: n, edges }
    }

    /// Build an Erdős–Rényi-style random graph where every vertex pair is an
    /// edge with probability `p`. Isolated vertices are connected to a random
    /// neighbour so the problem never degenerates.
    pub fn random<R: Rng + ?Sized>(n: u32, p: f64, rng: &mut R) -> Self {
        assert!(n >= 2);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    edges.push((u, v));
                }
            }
        }
        // Connect isolated vertices.
        let mut degree = vec![0u32; n as usize];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        for u in 0..n {
            if degree[u as usize] == 0 {
                let mut v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
                edges.push((u.min(v), u.max(v)));
                degree[u as usize] += 1;
                degree[v as usize] += 1;
            }
        }
        edges.sort_unstable();
        edges.dedup();
        MaxCutGraph { num_vertices: n, edges }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Build a `p`-layer QAOA max-cut circuit over `graph` with the given variational
/// parameters. `gammas` and `betas` must each have length `p`.
///
/// Each layer applies `RZZ(2γ)` per graph edge (the cost unitary) followed by
/// `RX(2β)` per qubit (the mixer unitary). All qubits are measured at the end.
pub fn qaoa_maxcut(graph: &MaxCutGraph, gammas: &[f64], betas: &[f64]) -> Circuit {
    assert_eq!(gammas.len(), betas.len(), "QAOA needs one (γ, β) pair per layer");
    assert!(!gammas.is_empty(), "QAOA needs at least one layer");
    let n = graph.num_vertices;
    let mut c = Circuit::named(n, "qaoa");
    for q in 0..n {
        c.h(q);
    }
    for (layer, (&gamma, &beta)) in gammas.iter().zip(betas.iter()).enumerate() {
        if layer > 0 {
            c.barrier();
        }
        for &(u, v) in &graph.edges {
            c.rzz(2.0 * gamma, u, v);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_graph_has_n_edges() {
        let g = MaxCutGraph::ring(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn random_graph_has_no_isolated_vertices() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = MaxCutGraph::random(12, 0.1, &mut rng);
        let mut deg = [0u32; 12];
        for &(u, v) in &g.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d > 0));
    }

    #[test]
    fn qaoa_layer_structure() {
        let g = MaxCutGraph::ring(5);
        let c = qaoa_maxcut(&g, &[0.4, 0.7], &[0.1, 0.2]);
        // Two layers × 5 edges of RZZ each.
        assert_eq!(c.two_qubit_gates(), 10);
        // H prep (5) + RX mixer (5 per layer × 2).
        assert_eq!(c.gate_counts().0, 15);
        assert_eq!(c.num_measurements(), 5);
    }

    #[test]
    #[should_panic]
    fn mismatched_parameters_panic() {
        let g = MaxCutGraph::ring(4);
        qaoa_maxcut(&g, &[0.1], &[0.1, 0.2]);
    }
}
