//! # qonductor-circuit
//!
//! Quantum-circuit intermediate representation and benchmark-circuit
//! generators for the Qonductor orchestrator (SC '25 reproduction).
//!
//! The crate provides:
//! * a flat, allocation-light circuit IR ([`Circuit`], [`Gate`], [`Instruction`]),
//! * a dependency DAG ([`dag::CircuitDag`]) used by the transpiler and estimator,
//! * structural metrics ([`metrics::CircuitMetrics`]) — the feature vector the
//!   resource estimator regresses on,
//! * generators for the standard algorithm families (GHZ, QFT, QAOA, VQE,
//!   Grover, W-state, random) in [`generators`],
//! * an MQT-Bench-style [`workload::WorkloadGenerator`] reproducing the paper's
//!   benchmark sampling model (§8.1/§8.2).

#![warn(missing_docs)]

pub mod circuit;
pub mod dag;
pub mod gate;
pub mod generators;
pub mod metrics;
pub mod workload;

pub use circuit::Circuit;
pub use dag::CircuitDag;
pub use gate::{Gate, Instruction, NO_OPERAND};
pub use generators::Algorithm;
pub use metrics::CircuitMetrics;
pub use workload::{WorkloadConfig, WorkloadGenerator};
