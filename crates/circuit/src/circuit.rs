//! The quantum circuit IR: a flat list of [`Instruction`]s over `n` qubits.

use crate::gate::{Gate, Instruction, NO_OPERAND};
use serde::{Deserialize, Serialize};

/// A quantum circuit: an ordered list of instructions over a fixed qubit register.
///
/// The representation intentionally mirrors Qiskit's `QuantumCircuit` at the
/// level needed by Qonductor: building algorithm circuits, transpiling them,
/// applying error mitigation transformations, and extracting the structural
/// features (width, depth, two-qubit count, shots) that the resource estimator
/// regresses on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Number of qubits in the register.
    num_qubits: u32,
    /// Number of classical bits (for measurement results).
    num_clbits: u32,
    /// Ordered instruction list.
    instructions: Vec<Instruction>,
    /// Number of measurement shots requested for this circuit.
    shots: u32,
    /// Optional human-readable name (algorithm family), used by the workload
    /// generator and the estimator's feature extraction.
    name: String,
}

impl Circuit {
    /// Create an empty circuit over `num_qubits` qubits with the same number of
    /// classical bits and a default of 1024 shots.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            num_clbits: num_qubits,
            instructions: Vec::new(),
            shots: 1024,
            name: String::new(),
        }
    }

    /// Create an empty named circuit.
    pub fn named(num_qubits: u32, name: impl Into<String>) -> Self {
        let mut c = Self::new(num_qubits);
        c.name = name.into();
        c
    }

    /// Circuit name (algorithm family), possibly empty.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Set the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> u32 {
        self.num_clbits
    }

    /// Number of measurement shots.
    pub fn shots(&self) -> u32 {
        self.shots
    }

    /// Set the number of measurement shots.
    pub fn set_shots(&mut self, shots: u32) {
        self.shots = shots;
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Mutable access to the instruction list (used by transpiler passes).
    pub fn instructions_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instructions
    }

    /// Total number of instructions (including measurements and barriers).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Append an arbitrary instruction, validating qubit indices.
    pub fn push(&mut self, instr: Instruction) {
        assert!(instr.q0 < self.num_qubits, "qubit index {} out of range", instr.q0);
        if instr.q1 != NO_OPERAND {
            assert!(instr.q1 < self.num_qubits, "qubit index {} out of range", instr.q1);
        }
        self.instructions.push(instr);
    }

    /// Apply a single-qubit gate.
    pub fn apply1(&mut self, gate: Gate, q: u32) -> &mut Self {
        self.push(Instruction::one(gate, q));
        self
    }

    /// Apply a two-qubit gate.
    pub fn apply2(&mut self, gate: Gate, q0: u32, q1: u32) -> &mut Self {
        self.push(Instruction::two(gate, q0, q1));
        self
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::H, q)
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::X, q)
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::Y, q)
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::Z, q)
    }

    /// RX rotation on `q`.
    pub fn rx(&mut self, theta: f64, q: u32) -> &mut Self {
        self.apply1(Gate::RX(theta), q)
    }

    /// RY rotation on `q`.
    pub fn ry(&mut self, theta: f64, q: u32) -> &mut Self {
        self.apply1(Gate::RY(theta), q)
    }

    /// RZ rotation on `q`.
    pub fn rz(&mut self, theta: f64, q: u32) -> &mut Self {
        self.apply1(Gate::RZ(theta), q)
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::S, q)
    }

    /// S-dagger on `q`.
    pub fn sdg(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::Sdg, q)
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::T, q)
    }

    /// Sqrt-X on `q`.
    pub fn sx(&mut self, q: u32) -> &mut Self {
        self.apply1(Gate::SX, q)
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: u32, t: u32) -> &mut Self {
        self.apply2(Gate::CX, c, t)
    }

    /// Controlled-Z between `a` and `b`.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.apply2(Gate::CZ, a, b)
    }

    /// SWAP between `a` and `b`.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.apply2(Gate::Swap, a, b)
    }

    /// ZZ interaction between `a` and `b`.
    pub fn rzz(&mut self, theta: f64, a: u32, b: u32) -> &mut Self {
        self.apply2(Gate::RZZ(theta), a, b)
    }

    /// Measure qubit `q` into classical bit `c`.
    pub fn measure(&mut self, q: u32, c: u32) -> &mut Self {
        assert!(q < self.num_qubits);
        assert!(c < self.num_clbits);
        self.instructions.push(Instruction::measure(q, c));
        self
    }

    /// Measure every qubit into the classical bit of the same index.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.measure(q, q);
        }
        self
    }

    /// Insert a barrier across all qubits.
    pub fn barrier(&mut self) -> &mut Self {
        self.instructions.push(Instruction {
            gate: Gate::Barrier,
            q0: 0,
            q1: NO_OPERAND,
            cbit: NO_OPERAND,
        });
        self
    }

    /// Append all instructions of `other` to `self`. Both circuits must have the
    /// same width; measurement bits are preserved.
    pub fn compose(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.num_qubits, other.num_qubits, "compose requires equal circuit widths");
        self.instructions.extend_from_slice(&other.instructions);
        self
    }

    /// The circuit with every unitary instruction inverted and the order
    /// reversed; measurements and barriers are dropped. Used by gate folding.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::named(self.num_qubits, format!("{}_dg", self.name));
        inv.shots = self.shots;
        for instr in self.instructions.iter().rev() {
            if !instr.gate.is_unitary() {
                continue;
            }
            let mut g = *instr;
            g.gate = instr.gate.inverse();
            // CX/CZ/SWAP keep operand order under inversion.
            inv.instructions.push(g);
        }
        inv
    }

    /// The unitary portion of the circuit (everything before/except measurements
    /// and barriers), preserving order.
    pub fn unitary_part(&self) -> Circuit {
        let mut c = Circuit::named(self.num_qubits, self.name.clone());
        c.shots = self.shots;
        c.instructions =
            self.instructions.iter().copied().filter(|i| i.gate.is_unitary()).collect();
        c
    }

    /// Number of gates of each arity `(one_qubit, two_qubit)`, excluding
    /// measurements, barriers and delays.
    pub fn gate_counts(&self) -> (usize, usize) {
        let mut one = 0;
        let mut two = 0;
        for i in &self.instructions {
            if !i.gate.is_unitary() {
                continue;
            }
            if i.gate.is_two_qubit() {
                two += 1;
            } else {
                one += 1;
            }
        }
        (one, two)
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gates(&self) -> usize {
        self.gate_counts().1
    }

    /// Number of measurement instructions.
    pub fn num_measurements(&self) -> usize {
        self.instructions.iter().filter(|i| i.gate == Gate::Measure).count()
    }

    /// Circuit depth: the length of the longest qubit-wise dependency chain,
    /// counting unitary gates and measurements (barriers and virtual RZs are
    /// free, matching how hardware executes them).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits as usize];
        let mut max_depth = 0;
        for instr in &self.instructions {
            match instr.gate {
                Gate::Barrier => {
                    // A barrier synchronises all qubits without consuming depth.
                    let m = *level.iter().max().unwrap_or(&0);
                    for l in level.iter_mut() {
                        *l = m;
                    }
                }
                g if g.is_virtual() => {}
                _ => {
                    let q0 = instr.q0 as usize;
                    let new = if instr.q1 != NO_OPERAND {
                        let q1 = instr.q1 as usize;
                        let d = level[q0].max(level[q1]) + 1;
                        level[q0] = d;
                        level[q1] = d;
                        d
                    } else {
                        level[q0] += 1;
                        level[q0]
                    };
                    max_depth = max_depth.max(new);
                }
            }
        }
        max_depth
    }

    /// Indices of qubits that are actually acted upon by at least one gate.
    pub fn active_qubits(&self) -> Vec<u32> {
        let mut used = vec![false; self.num_qubits as usize];
        for i in &self.instructions {
            if i.gate == Gate::Barrier {
                continue;
            }
            used[i.q0 as usize] = true;
            if i.q1 != NO_OPERAND {
                used[i.q1 as usize] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(q, &u)| if u { Some(q as u32) } else { None })
            .collect()
    }

    /// Remap qubit indices according to `layout`, where `layout[logical] = physical`.
    /// The resulting circuit is widened to `new_width` qubits.
    pub fn remap(&self, layout: &[u32], new_width: u32) -> Circuit {
        assert!(layout.len() >= self.num_qubits as usize);
        let mut c = Circuit::named(new_width, self.name.clone());
        c.num_clbits = self.num_clbits;
        c.shots = self.shots;
        for instr in &self.instructions {
            let mut ni = *instr;
            if instr.gate != Gate::Barrier {
                ni.q0 = layout[instr.q0 as usize];
                if instr.q1 != NO_OPERAND {
                    ni.q1 = layout[instr.q1 as usize];
                }
            }
            c.instructions.push(ni);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn bell_structure() {
        let c = bell();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_measurements(), 2);
        assert_eq!(c.gate_counts(), (1, 1));
        assert_eq!(c.two_qubit_gates(), 1);
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // depth 1
        c.cx(0, 1); // depth 2 on qubits 0,1
        c.cx(1, 2); // depth 3 on qubits 1,2
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn rz_is_free_in_depth() {
        let mut c = Circuit::new(1);
        c.rz(0.1, 0).rz(0.2, 0).rz(0.3, 0);
        assert_eq!(c.depth(), 0);
        c.x(0);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn barrier_synchronises_depth() {
        let mut c = Circuit::new(2);
        c.x(0).x(0); // qubit 0 at depth 2
        c.barrier();
        c.x(1); // starts after the barrier, so lands at depth 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn compose_concatenates() {
        let mut a = bell();
        let b = bell();
        let before = a.len();
        a.compose(&b);
        assert_eq!(a.len(), before + b.len());
    }

    #[test]
    #[should_panic]
    fn compose_width_mismatch_panics() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.compose(&b);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(0);
        c.cx(0, 1);
        c.measure_all();
        let inv = c.inverse();
        // Measurements dropped, order reversed.
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.instructions()[0].gate, Gate::CX);
        assert_eq!(inv.instructions()[1].gate, Gate::Sdg);
        assert_eq!(inv.instructions()[2].gate, Gate::H);
    }

    #[test]
    fn remap_moves_qubits() {
        let c = bell();
        let mapped = c.remap(&[3, 1], 5);
        assert_eq!(mapped.num_qubits(), 5);
        let cx = mapped.instructions().iter().find(|i| i.gate == Gate::CX).unwrap();
        assert_eq!((cx.q0, cx.q1), (3, 1));
    }

    #[test]
    fn active_qubits_ignores_idle() {
        let mut c = Circuit::new(4);
        c.h(1).cx(1, 3);
        assert_eq!(c.active_qubits(), vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.h(2);
    }
}
