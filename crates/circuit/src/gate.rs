//! Quantum gate definitions.
//!
//! Gates are small, `Copy`-able values so that circuits can store them in flat
//! vectors without per-gate heap allocation (hot path for the transpiler and
//! the workload generator, which create tens of thousands of circuits).

use serde::{Deserialize, Serialize};

/// A quantum gate (or non-unitary instruction kind) supported by the circuit IR.
///
/// The set covers the gates emitted by the algorithm generators plus the basis
/// gates of the modelled QPU architectures (IBM-style `{SX, RZ, X, CX/ECR}` and
/// a generic `{RX, RZ, CZ}` set).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity (explicit idle cycle).
    Id,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// S-dagger.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T-dagger.
    Tdg,
    /// Square root of X (IBM basis gate).
    SX,
    /// Rotation about X by the stored angle (radians).
    RX(f64),
    /// Rotation about Y by the stored angle (radians).
    RY(f64),
    /// Rotation about Z by the stored angle (radians). Virtual (zero duration)
    /// on IBM-style hardware.
    RZ(f64),
    /// Generic single-qubit unitary U(θ, φ, λ).
    U(f64, f64, f64),
    /// Controlled-X (CNOT). Control is the first operand, target the second.
    CX,
    /// Controlled-Z.
    CZ,
    /// Echoed cross-resonance (IBM native two-qubit gate on newer devices).
    ECR,
    /// SWAP gate.
    Swap,
    /// Two-qubit ZZ interaction exp(-i θ/2 Z⊗Z), used by QAOA.
    RZZ(f64),
    /// Measurement in the computational basis into a classical bit.
    Measure,
    /// Barrier: scheduling/optimization fence (no physical operation).
    Barrier,
    /// Explicit delay of the stored duration in nanoseconds (used by
    /// dynamical-decoupling insertion).
    Delay(f64),
}

impl Gate {
    /// Number of qubit operands the gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::CX | Gate::CZ | Gate::ECR | Gate::Swap | Gate::RZZ(_) => 2,
            _ => 1,
        }
    }

    /// `true` for two-qubit gates (the dominant error source on NISQ devices).
    pub fn is_two_qubit(&self) -> bool {
        self.num_qubits() == 2
    }

    /// `true` if the gate is unitary (i.e. not a measurement, barrier, or delay).
    pub fn is_unitary(&self) -> bool {
        !matches!(self, Gate::Measure | Gate::Barrier | Gate::Delay(_))
    }

    /// `true` for directives that occupy no hardware time (barriers) or are
    /// implemented virtually in software (RZ frame updates on IBM hardware).
    pub fn is_virtual(&self) -> bool {
        matches!(self, Gate::Barrier | Gate::RZ(_) | Gate::Id)
    }

    /// Canonical lowercase name (Qiskit-compatible where applicable).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::Id => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::SX => "sx",
            Gate::RX(_) => "rx",
            Gate::RY(_) => "ry",
            Gate::RZ(_) => "rz",
            Gate::U(_, _, _) => "u",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::ECR => "ecr",
            Gate::Swap => "swap",
            Gate::RZZ(_) => "rzz",
            Gate::Measure => "measure",
            Gate::Barrier => "barrier",
            Gate::Delay(_) => "delay",
        }
    }

    /// Continuous parameters carried by the gate, if any.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::RZZ(t) | Gate::Delay(t) => vec![t],
            Gate::U(a, b, c) => vec![a, b, c],
            _ => vec![],
        }
    }

    /// The inverse gate, used by gate folding (ZNE) and uncompute patterns.
    /// Measurements, barriers and delays are their own "inverse" for folding
    /// purposes (they are never folded).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::SX => Gate::U(-std::f64::consts::FRAC_PI_2, 0.0, 0.0),
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::RZZ(t) => Gate::RZZ(-t),
            Gate::U(a, b, c) => Gate::U(-a, -c, -b),
            g => g,
        }
    }

    /// `true` if the gate is (exactly) self-inverse, e.g. Paulis, H, CX, CZ, SWAP.
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::Id | Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::CX | Gate::CZ | Gate::Swap
        )
    }
}

/// A gate applied to concrete qubit indices (and an optional classical bit for
/// measurements).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// The gate kind (with parameters).
    pub gate: Gate,
    /// First qubit operand (control for two-qubit controlled gates).
    pub q0: u32,
    /// Second qubit operand; `u32::MAX` for single-qubit gates.
    pub q1: u32,
    /// Classical bit index for measurements; `u32::MAX` otherwise.
    pub cbit: u32,
}

/// Sentinel meaning "no operand".
pub const NO_OPERAND: u32 = u32::MAX;

impl Instruction {
    /// Single-qubit instruction.
    pub fn one(gate: Gate, q: u32) -> Self {
        debug_assert_eq!(gate.num_qubits(), 1);
        Instruction { gate, q0: q, q1: NO_OPERAND, cbit: NO_OPERAND }
    }

    /// Two-qubit instruction.
    pub fn two(gate: Gate, q0: u32, q1: u32) -> Self {
        debug_assert_eq!(gate.num_qubits(), 2);
        debug_assert_ne!(q0, q1, "two-qubit gate operands must differ");
        Instruction { gate, q0, q1, cbit: NO_OPERAND }
    }

    /// Measurement of `q` into classical bit `c`.
    pub fn measure(q: u32, c: u32) -> Self {
        Instruction { gate: Gate::Measure, q0: q, q1: NO_OPERAND, cbit: c }
    }

    /// Qubits touched by this instruction (1 or 2 of them).
    pub fn qubits(&self) -> impl Iterator<Item = u32> + '_ {
        let second = if self.q1 == NO_OPERAND { None } else { Some(self.q1) };
        std::iter::once(self.q0).chain(second)
    }

    /// `true` if the instruction acts on qubit `q`.
    pub fn touches(&self, q: u32) -> bool {
        self.q0 == q || (self.q1 != NO_OPERAND && self.q1 == q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_arity() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::CX.num_qubits(), 2);
        assert_eq!(Gate::RZZ(0.3).num_qubits(), 2);
        assert!(Gate::CX.is_two_qubit());
        assert!(!Gate::RX(1.0).is_two_qubit());
    }

    #[test]
    fn gate_names_are_stable() {
        assert_eq!(Gate::CX.name(), "cx");
        assert_eq!(Gate::U(0.0, 0.0, 0.0).name(), "u");
        assert_eq!(Gate::Measure.name(), "measure");
    }

    #[test]
    fn gate_params_roundtrip() {
        assert_eq!(Gate::RX(1.5).params(), vec![1.5]);
        assert_eq!(Gate::U(1.0, 2.0, 3.0).params(), vec![1.0, 2.0, 3.0]);
        assert!(Gate::H.params().is_empty());
    }

    #[test]
    fn self_inverse_gates() {
        for g in [Gate::H, Gate::X, Gate::Y, Gate::Z, Gate::CX, Gate::CZ, Gate::Swap] {
            assert!(g.is_self_inverse(), "{:?} should be self-inverse", g);
            assert_eq!(g.inverse(), g);
        }
        assert!(!Gate::S.is_self_inverse());
        assert_eq!(Gate::S.inverse(), Gate::Sdg);
        assert_eq!(Gate::RX(0.7).inverse(), Gate::RX(-0.7));
    }

    #[test]
    fn unitary_vs_directive() {
        assert!(Gate::H.is_unitary());
        assert!(!Gate::Measure.is_unitary());
        assert!(!Gate::Barrier.is_unitary());
        assert!(Gate::Barrier.is_virtual());
        assert!(Gate::RZ(0.1).is_virtual());
        assert!(!Gate::SX.is_virtual());
    }

    #[test]
    fn instruction_constructors() {
        let i = Instruction::one(Gate::H, 3);
        assert_eq!(i.q0, 3);
        assert_eq!(i.q1, NO_OPERAND);
        assert!(i.touches(3));
        assert!(!i.touches(2));

        let c = Instruction::two(Gate::CX, 0, 1);
        assert_eq!(c.qubits().collect::<Vec<_>>(), vec![0, 1]);

        let m = Instruction::measure(5, 2);
        assert_eq!(m.gate, Gate::Measure);
        assert_eq!(m.cbit, 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn two_qubit_same_operand_panics_in_debug() {
        let _ = Instruction::two(Gate::CX, 1, 1);
    }
}
