//! DAG representation of a circuit.
//!
//! Every instruction becomes a node; edges connect consecutive operations on
//! the same qubit. The DAG is consumed by the transpiler's ASAP scheduler and
//! by the numerical fidelity estimator (which traverses it front-to-back,
//! multiplying per-operation success probabilities).

use crate::circuit::Circuit;
use crate::gate::{Gate, Instruction, NO_OPERAND};

/// A node in the circuit DAG: one instruction plus its dependency edges.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Index of the instruction in the originating circuit.
    pub index: usize,
    /// The instruction itself.
    pub instruction: Instruction,
    /// Indices of nodes that must complete before this one (per-qubit order).
    pub predecessors: Vec<usize>,
    /// Indices of nodes that depend on this one.
    pub successors: Vec<usize>,
}

/// Dependency DAG over a circuit's instructions.
#[derive(Debug, Clone)]
pub struct CircuitDag {
    nodes: Vec<DagNode>,
    num_qubits: u32,
}

impl CircuitDag {
    /// Build the DAG from a circuit. Barriers create a full synchronisation
    /// point: every later instruction depends (transitively) on every earlier one.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut nodes: Vec<DagNode> = Vec::with_capacity(n);
        // last_on_qubit[q] = index of the most recent node touching qubit q
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits() as usize];
        // Barrier handling: remember the last barrier node, all qubits depend on it.
        let mut last_barrier: Option<usize> = None;

        for (idx, instr) in circuit.instructions().iter().enumerate() {
            let mut preds: Vec<usize> = Vec::new();
            if instr.gate == Gate::Barrier {
                // Barrier depends on the latest node of every qubit.
                for last in last_on_qubit.iter().flatten() {
                    if !preds.contains(last) {
                        preds.push(*last);
                    }
                }
                if let Some(b) = last_barrier {
                    if preds.is_empty() {
                        preds.push(b);
                    }
                }
                last_barrier = Some(idx);
                for l in last_on_qubit.iter_mut() {
                    *l = Some(idx);
                }
            } else {
                let q0 = instr.q0 as usize;
                if let Some(p) = last_on_qubit[q0] {
                    preds.push(p);
                } else if let Some(b) = last_barrier {
                    preds.push(b);
                }
                last_on_qubit[q0] = Some(idx);
                if instr.q1 != NO_OPERAND {
                    let q1 = instr.q1 as usize;
                    if let Some(p) = last_on_qubit[q1] {
                        if !preds.contains(&p) {
                            preds.push(p);
                        }
                    }
                    last_on_qubit[q1] = Some(idx);
                }
            }
            nodes.push(DagNode {
                index: idx,
                instruction: *instr,
                predecessors: preds,
                successors: Vec::new(),
            });
        }

        // Fill successors from predecessors.
        for idx in 0..nodes.len() {
            let preds = nodes[idx].predecessors.clone();
            for p in preds {
                nodes[p].successors.push(idx);
            }
        }

        CircuitDag { nodes, num_qubits: circuit.num_qubits() }
    }

    /// All nodes in original instruction order (which is already a valid
    /// topological order, since dependencies only point backwards).
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Nodes with no predecessors (the circuit's front layer).
    pub fn front_layer(&self) -> Vec<usize> {
        self.nodes.iter().filter(|n| n.predecessors.is_empty()).map(|n| n.index).collect()
    }

    /// Partition nodes into ASAP layers: layer k contains the nodes whose
    /// longest dependency chain has length k. Virtual gates share the layer of
    /// their predecessor (they consume no time).
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.nodes.len()];
        let mut max_level = 0usize;
        for (idx, node) in self.nodes.iter().enumerate() {
            let base = node
                .predecessors
                .iter()
                .map(|&p| {
                    if self.nodes[p].instruction.gate.is_virtual() {
                        level[p]
                    } else {
                        level[p] + 1
                    }
                })
                .max()
                .unwrap_or(0);
            level[idx] = base;
            max_level = max_level.max(base);
        }
        let mut layers = vec![Vec::new(); max_level + 1];
        for (idx, &l) in level.iter().enumerate() {
            layers[l].push(idx);
        }
        layers
    }

    /// Longest path length counting only non-virtual gates — equal to
    /// [`Circuit::depth`] when the circuit has no barriers.
    pub fn critical_path_len(&self) -> usize {
        let mut level = vec![0usize; self.nodes.len()];
        let mut best = 0;
        for (idx, node) in self.nodes.iter().enumerate() {
            let own = usize::from(
                !node.instruction.gate.is_virtual() && node.instruction.gate != Gate::Barrier,
            );
            let base = node.predecessors.iter().map(|&p| level[p]).max().unwrap_or(0);
            level[idx] = base + own;
            best = best.max(level[idx]);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn bell_dag_dependencies() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.len(), 4);
        // H has no predecessors.
        assert!(dag.nodes()[0].predecessors.is_empty());
        // CX depends on H (qubit 0) only.
        assert_eq!(dag.nodes()[1].predecessors, vec![0]);
        // measure(0) and measure(1) both depend on the CX.
        assert_eq!(dag.nodes()[2].predecessors, vec![1]);
        assert_eq!(dag.nodes()[3].predecessors, vec![1]);
        // CX's successors are the two measurements.
        assert_eq!(dag.nodes()[1].successors, vec![2, 3]);
    }

    #[test]
    fn front_layer_is_independent_gates() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cx(0, 1);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.front_layer(), vec![0, 1, 2]);
    }

    #[test]
    fn layers_respect_dependencies() {
        let mut c = Circuit::new(3);
        c.h(0).h(1); // layer 0
        c.cx(0, 1); // layer 1
        c.cx(1, 2); // layer 2
        let dag = CircuitDag::from_circuit(&c);
        let layers = dag.layers();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], vec![0, 1]);
        assert_eq!(layers[1], vec![2]);
        assert_eq!(layers[2], vec![3]);
    }

    #[test]
    fn critical_path_matches_depth_without_barriers() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).x(3);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.critical_path_len(), c.depth());
    }

    #[test]
    fn barrier_orders_across_qubits() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.barrier();
        c.x(1);
        let dag = CircuitDag::from_circuit(&c);
        // x(1) depends on the barrier which depends on x(0).
        assert_eq!(dag.nodes()[2].predecessors, vec![1]);
        assert_eq!(dag.nodes()[1].predecessors, vec![0]);
    }

    #[test]
    fn empty_circuit_dag() {
        let c = Circuit::new(3);
        let dag = CircuitDag::from_circuit(&c);
        assert!(dag.is_empty());
        assert_eq!(dag.layers().len(), 1);
        assert!(dag.layers()[0].is_empty());
        assert_eq!(dag.critical_path_len(), 0);
    }
}
