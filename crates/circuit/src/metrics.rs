//! Structural circuit metrics: the features the resource estimator regresses on
//! (§6 of the paper: width, shots, depth, number of two-qubit operations) plus
//! a few auxiliary counts used by the numerical baseline estimator.

use crate::circuit::Circuit;
use serde::{Deserialize, Serialize};

/// Structural metrics of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitMetrics {
    /// Circuit width: number of qubits actually used.
    pub width: u32,
    /// Register size (declared number of qubits).
    pub register_size: u32,
    /// Circuit depth (longest dependency chain of non-virtual operations).
    pub depth: usize,
    /// Number of single-qubit gates.
    pub one_qubit_gates: usize,
    /// Number of two-qubit gates.
    pub two_qubit_gates: usize,
    /// Number of measurement operations.
    pub measurements: usize,
    /// Number of shots requested.
    pub shots: u32,
}

impl CircuitMetrics {
    /// Compute metrics from a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let (one, two) = circuit.gate_counts();
        CircuitMetrics {
            width: circuit.active_qubits().len() as u32,
            register_size: circuit.num_qubits(),
            depth: circuit.depth(),
            one_qubit_gates: one,
            two_qubit_gates: two,
            measurements: circuit.num_measurements(),
            shots: circuit.shots(),
        }
    }

    /// Total gate count (one- plus two-qubit gates).
    pub fn total_gates(&self) -> usize {
        self.one_qubit_gates + self.two_qubit_gates
    }

    /// Ratio of two-qubit gates to all gates (0 if the circuit has no gates).
    pub fn two_qubit_ratio(&self) -> f64 {
        let total = self.total_gates();
        if total == 0 {
            0.0
        } else {
            self.two_qubit_gates as f64 / total as f64
        }
    }

    /// Feature vector used by the regression estimator:
    /// `[width, shots, depth, two_qubit_gates, one_qubit_gates, measurements]`.
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.width as f64,
            self.shots as f64,
            self.depth as f64,
            self.two_qubit_gates as f64,
            self.one_qubit_gates as f64,
            self.measurements as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn metrics_of_ghz_like_circuit() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 0..3 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        let m = CircuitMetrics::of(&c);
        assert_eq!(m.width, 4);
        assert_eq!(m.register_size, 4);
        assert_eq!(m.one_qubit_gates, 1);
        assert_eq!(m.two_qubit_gates, 3);
        assert_eq!(m.measurements, 4);
        assert_eq!(m.depth, 5); // H + 3 CX chain + measure on last qubit
        assert_eq!(m.total_gates(), 4);
        assert!((m.two_qubit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn width_ignores_idle_qubits() {
        let mut c = Circuit::new(10);
        c.h(2).cx(2, 7);
        let m = CircuitMetrics::of(&c);
        assert_eq!(m.width, 2);
        assert_eq!(m.register_size, 10);
    }

    #[test]
    fn feature_vector_layout() {
        let mut c = Circuit::new(3);
        c.set_shots(4096);
        c.h(0).cx(0, 1).measure_all();
        let f = CircuitMetrics::of(&c).feature_vector();
        assert_eq!(f.len(), 6);
        assert_eq!(f[0], 3.0); // measure_all touches all three qubits
        assert_eq!(f[1], 4096.0);
    }

    #[test]
    fn empty_circuit_metrics() {
        let c = Circuit::new(5);
        let m = CircuitMetrics::of(&c);
        assert_eq!(m.total_gates(), 0);
        assert_eq!(m.two_qubit_ratio(), 0.0);
        assert_eq!(m.depth, 0);
    }
}
