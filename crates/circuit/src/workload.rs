//! MQT-Bench-style workload synthesis (§8.1 / §8.2 of the paper).
//!
//! The paper generates "over 70,000 benchmark circuits, 2 to 130 qubits in
//! size" from a benchmark library and feeds them to the cloud simulation with
//! "random quantum circuits, number of shots, and circuit sizes, following a
//! normal distribution". [`WorkloadGenerator`] reproduces that sampling model.

use crate::circuit::Circuit;
use crate::generators::{self, Algorithm, MaxCutGraph};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the benchmark-circuit sampling distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean number of qubits for sampled circuits.
    pub mean_qubits: f64,
    /// Standard deviation of the number of qubits.
    pub std_qubits: f64,
    /// Minimum number of qubits (paper: 2).
    pub min_qubits: u32,
    /// Maximum number of qubits (paper: 130).
    pub max_qubits: u32,
    /// Mean number of shots.
    pub mean_shots: f64,
    /// Standard deviation of the number of shots.
    pub std_shots: f64,
    /// Minimum shots.
    pub min_shots: u32,
    /// Maximum shots.
    pub max_shots: u32,
}

impl Default for WorkloadConfig {
    /// Defaults matching the paper's evaluation range: 2–130 qubits centred on
    /// NISQ-typical sizes, 100–20,000 shots centred on 4,000.
    fn default() -> Self {
        WorkloadConfig {
            mean_qubits: 16.0,
            std_qubits: 8.0,
            min_qubits: 2,
            max_qubits: 130,
            mean_shots: 4000.0,
            std_shots: 2000.0,
            min_shots: 100,
            max_shots: 20_000,
        }
    }
}

/// Draws a sample from a normal distribution via the Box–Muller transform.
/// Implemented locally to stay within the allowed offline crate set.
pub fn sample_normal<R: Rng + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Build a circuit of algorithm family `alg` with `n` qubits.
///
/// `layers` controls the repetition count for the variational/random families
/// (QAOA layers, VQE repetitions, random-circuit depth multiplier).
pub fn build_algorithm<R: Rng + ?Sized>(
    alg: Algorithm,
    n: u32,
    layers: u32,
    rng: &mut R,
) -> Circuit {
    let n = n.max(2);
    let layers = layers.max(1);
    match alg {
        Algorithm::Ghz => generators::ghz(n),
        Algorithm::Qft => generators::qft(n),
        Algorithm::Qaoa => {
            let graph = MaxCutGraph::random(n, 3.0 / f64::from(n.max(4)), rng);
            let gammas: Vec<f64> =
                (0..layers).map(|_| rng.gen_range(0.0..std::f64::consts::PI)).collect();
            let betas: Vec<f64> =
                (0..layers).map(|_| rng.gen_range(0.0..std::f64::consts::PI)).collect();
            generators::qaoa_maxcut(&graph, &gammas, &betas)
        }
        Algorithm::Vqe => generators::vqe_ansatz(n, layers, rng),
        Algorithm::Grover => generators::grover(n),
        Algorithm::WState => generators::w_state(n),
        Algorithm::Random => generators::random_circuit(n, 2 * layers + 2, rng),
    }
}

/// Generator of benchmark circuits following the paper's sampling model.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
}

impl Default for WorkloadGenerator {
    fn default() -> Self {
        Self::new(WorkloadConfig::default())
    }
}

impl WorkloadGenerator {
    /// Create a generator with the given sampling configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        WorkloadGenerator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Sample a circuit width (number of qubits) from the configured normal
    /// distribution, clamped to `[min_qubits, max_qubits]`.
    pub fn sample_width<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let w = sample_normal(self.config.mean_qubits, self.config.std_qubits, rng).round();
        (w.max(self.config.min_qubits as f64) as u32).min(self.config.max_qubits)
    }

    /// Sample a shot count from the configured normal distribution, clamped to
    /// `[min_shots, max_shots]`.
    pub fn sample_shots<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let s = sample_normal(self.config.mean_shots, self.config.std_shots, rng).round();
        (s.max(self.config.min_shots as f64) as u32).min(self.config.max_shots)
    }

    /// Sample a single benchmark circuit: random algorithm family, width, shot
    /// count, and (for variational families) layer count.
    pub fn sample_circuit<R: Rng + ?Sized>(&self, rng: &mut R) -> Circuit {
        let alg = Algorithm::ALL[rng.gen_range(0..Algorithm::ALL.len())];
        let width = self.sample_width(rng);
        let layers = rng.gen_range(1..=3);
        let mut circuit = build_algorithm(alg, width, layers, rng);
        circuit.set_shots(self.sample_shots(rng));
        circuit
    }

    /// Sample a batch of `count` benchmark circuits.
    pub fn sample_batch<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Circuit> {
        (0..count).map(|_| self.sample_circuit(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_widths_respect_bounds() {
        let gen = WorkloadGenerator::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let w = gen.sample_width(&mut rng);
            assert!((2..=130).contains(&w));
        }
    }

    #[test]
    fn sampled_shots_respect_bounds() {
        let gen = WorkloadGenerator::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let s = gen.sample_shots(&mut rng);
            assert!((100..=20_000).contains(&s));
        }
    }

    #[test]
    fn normal_sampler_statistics() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(10.0, 2.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std = {}", var.sqrt());
    }

    #[test]
    fn batch_has_requested_size_and_valid_circuits() {
        let gen = WorkloadGenerator::new(WorkloadConfig {
            mean_qubits: 8.0,
            std_qubits: 3.0,
            max_qubits: 20,
            ..WorkloadConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(13);
        let batch = gen.sample_batch(50, &mut rng);
        assert_eq!(batch.len(), 50);
        for c in &batch {
            assert!(c.num_qubits() >= 2 && c.num_qubits() <= 20);
            assert!(!c.is_empty());
            assert!(c.shots() >= 100);
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let gen = WorkloadGenerator::default();
        let a = gen.sample_batch(10, &mut StdRng::seed_from_u64(5));
        let b = gen.sample_batch(10, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
