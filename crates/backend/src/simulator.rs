//! Noisy circuit execution on modelled QPUs.
//!
//! Two fidelity paths are provided, mirroring how the paper's evaluation
//! operates at two scales:
//!
//! * **Statevector + Monte-Carlo Pauli trajectories** — exact ideal
//!   distribution plus stochastic error injection, used for narrow circuits
//!   (the GHZ-12 spatial-variance experiment of Fig. 2b, unit tests, and the
//!   resource-estimator training set). Fidelity is the Hellinger fidelity
//!   between the ideal and the noisy distribution, exactly as in the paper.
//! * **Analytic ESP** — the estimated-success-probability model derived from
//!   calibration data, used for circuits too wide to simulate (up to the
//!   130-qubit benchmarks) and for the high-throughput cloud simulation.

use crate::hellinger::{hellinger_fidelity, Distribution};
use crate::math::C64;
use crate::noise::NoiseModel;
use qonductor_circuit::{Circuit, Gate, Instruction, NO_OPERAND};
use rand::Rng;

/// How `execute` should obtain the fidelity of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityMode {
    /// Statevector + trajectory sampling when the circuit is narrow enough,
    /// analytic ESP otherwise.
    Auto,
    /// Always use the analytic ESP model (fast, any width).
    Analytic,
    /// Always use trajectory simulation (panics if the circuit is too wide).
    Trajectory,
}

/// Result of executing a circuit on a modelled QPU.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Sampled measurement counts (empty when the analytic path was used).
    pub counts: Distribution,
    /// Execution fidelity in [0, 1].
    pub fidelity: f64,
    /// Quantum execution time for all shots, in nanoseconds.
    pub duration_ns: f64,
    /// Number of shots executed.
    pub shots: u32,
}

/// Configurable noisy-execution engine.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    /// Maximum circuit width (active qubits) for the statevector path.
    pub max_statevector_qubits: u32,
    /// Number of Monte-Carlo noise trajectories sampled on the statevector path.
    pub trajectories: usize,
    /// Fidelity path selection.
    pub mode: FidelityMode,
    /// Per-shot repetition/reset overhead in nanoseconds (added to each shot).
    pub shot_overhead_ns: f64,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator {
            max_statevector_qubits: 14,
            trajectories: 128,
            mode: FidelityMode::Auto,
            shot_overhead_ns: 1_000.0,
        }
    }
}

impl Simulator {
    /// A simulator that always takes the fast analytic path (used by the cloud
    /// simulation, which executes hundreds of thousands of jobs).
    pub fn analytic() -> Self {
        Simulator { mode: FidelityMode::Analytic, ..Default::default() }
    }

    /// Exact measurement-outcome distribution of the noiseless circuit.
    ///
    /// The circuit is first compacted onto its active qubits; it must use at
    /// most [`Self::max_statevector_qubits`] of them.
    pub fn ideal_distribution(&self, circuit: &Circuit) -> Distribution {
        let (compact, _map) = compact_circuit(circuit);
        assert!(
            compact.num_qubits() <= self.max_statevector_qubits,
            "circuit too wide for the statevector simulator ({} > {})",
            compact.num_qubits(),
            self.max_statevector_qubits
        );
        let mut state = Statevector::new(compact.num_qubits());
        for instr in compact.instructions() {
            if instr.gate.is_unitary() {
                state.apply(instr);
            }
        }
        state.measurement_distribution(&measurement_map(&compact))
    }

    /// Sample noisy measurement counts with Monte-Carlo Pauli-error trajectories.
    pub fn noisy_counts<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        shots: u32,
        rng: &mut R,
    ) -> Distribution {
        let (compact, qubit_map) = compact_circuit(circuit);
        assert!(
            compact.num_qubits() <= self.max_statevector_qubits,
            "circuit too wide for the statevector simulator"
        );
        let meas = measurement_map(&compact);
        let trajectories = self.trajectories.min(shots as usize).max(1);
        let shots_per_traj = (shots as usize / trajectories).max(1);
        let duration = noise.circuit_duration_ns(circuit);
        let mut counts = Distribution::new();

        for _ in 0..trajectories {
            let mut state = Statevector::new(compact.num_qubits());
            for instr in compact.instructions() {
                if !instr.gate.is_unitary() {
                    continue;
                }
                state.apply(instr);
                // Stochastic Pauli error after each noisy gate, using the
                // *physical* qubit indices for calibration lookup.
                let pq0 = qubit_map[instr.q0 as usize];
                let pq1 =
                    if instr.q1 == NO_OPERAND { NO_OPERAND } else { qubit_map[instr.q1 as usize] };
                let p_err = noise.instruction_error(instr.gate, pq0, pq1);
                if p_err > 0.0 && rng.gen_bool(p_err.min(1.0)) {
                    state.apply_random_pauli(instr.q0, rng);
                    if instr.q1 != NO_OPERAND && rng.gen_bool(0.5) {
                        state.apply_random_pauli(instr.q1, rng);
                    }
                }
            }
            // Decoherence over the circuit duration: per-qubit dephasing/damping
            // modelled as an extra stochastic Z/X error.
            for logical in 0..compact.num_qubits() {
                let phys = qubit_map[logical as usize];
                let survive = noise.decoherence_factor(phys, duration * 0.5);
                if rng.gen_bool((1.0 - survive).clamp(0.0, 1.0)) {
                    state.apply_random_pauli(logical, rng);
                }
            }
            // Sample shots from this trajectory, applying readout errors.
            for _ in 0..shots_per_traj {
                let mut outcome = state.sample(&meas, rng);
                for (bit_idx, &(logical_q, _cbit)) in meas.iter().enumerate() {
                    let phys = qubit_map[logical_q as usize];
                    if rng.gen_bool(noise.readout_error(phys).clamp(0.0, 1.0)) {
                        outcome ^= 1 << bit_idx;
                    }
                }
                *counts.entry(outcome).or_insert(0.0) += 1.0;
            }
        }
        counts
    }

    /// Execute a circuit on a device described by `noise`, returning counts (if
    /// the trajectory path ran), fidelity, and the quantum execution time.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> ExecutionResult {
        let width = circuit.active_qubits().len() as u32;
        let per_shot = noise.circuit_duration_ns(circuit) + self.shot_overhead_ns;
        let duration_ns = per_shot * f64::from(circuit.shots());
        let use_trajectory = match self.mode {
            FidelityMode::Trajectory => true,
            FidelityMode::Analytic => false,
            FidelityMode::Auto => width <= self.max_statevector_qubits,
        };
        if use_trajectory {
            let ideal = self.ideal_distribution(circuit);
            let noisy = self.noisy_counts(circuit, noise, circuit.shots(), rng);
            let fidelity = hellinger_fidelity(&ideal, &noisy);
            ExecutionResult { counts: noisy, fidelity, duration_ns, shots: circuit.shots() }
        } else {
            // Analytic path: ESP with small multiplicative sampling jitter so that
            // repeated executions are not bit-identical (mirrors shot noise).
            let esp = noise.estimated_success_probability(circuit);
            let jitter = 1.0 + rng.gen_range(-0.02..0.02);
            ExecutionResult {
                counts: Distribution::new(),
                fidelity: (esp * jitter).clamp(0.0, 1.0),
                duration_ns,
                shots: circuit.shots(),
            }
        }
    }
}

/// Compact a circuit onto its active qubits. Returns the compacted circuit and
/// the map `logical (compacted) index → original physical index`.
pub fn compact_circuit(circuit: &Circuit) -> (Circuit, Vec<u32>) {
    let active = circuit.active_qubits();
    if active.is_empty() {
        return (Circuit::new(1), vec![0]);
    }
    let mut phys_to_logical = vec![u32::MAX; circuit.num_qubits() as usize];
    for (logical, &phys) in active.iter().enumerate() {
        phys_to_logical[phys as usize] = logical as u32;
    }
    let mut compact = Circuit::named(active.len() as u32, circuit.name().to_string());
    compact.set_shots(circuit.shots());
    for instr in circuit.instructions() {
        if instr.gate == Gate::Barrier {
            compact.barrier();
            continue;
        }
        let mut ni = *instr;
        ni.q0 = phys_to_logical[instr.q0 as usize];
        if instr.q1 != NO_OPERAND {
            ni.q1 = phys_to_logical[instr.q1 as usize];
        }
        if ni.gate == Gate::Measure {
            // Re-index classical bits densely as well.
            ni.cbit = ni.q0;
        }
        compact.push(ni);
    }
    (compact, active)
}

/// Ordered `(qubit, clbit)` measurement pairs of a circuit; if the circuit has
/// no measurements, all qubits are measured in index order.
fn measurement_map(circuit: &Circuit) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = circuit
        .instructions()
        .iter()
        .filter(|i| i.gate == Gate::Measure)
        .map(|i| (i.q0, i.cbit))
        .collect();
    if pairs.is_empty() {
        pairs = (0..circuit.num_qubits()).map(|q| (q, q)).collect();
    }
    pairs
}

/// Dense statevector over `n ≤ 30` qubits.
#[derive(Debug, Clone)]
pub struct Statevector {
    num_qubits: u32,
    amps: Vec<C64>,
}

impl Statevector {
    /// The |0…0⟩ state over `n` qubits.
    pub fn new(n: u32) -> Self {
        assert!((1..=30).contains(&n), "statevector supports 1..=30 qubits");
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        Statevector { num_qubits: n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Probability of computational basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Apply a unitary instruction.
    pub fn apply(&mut self, instr: &Instruction) {
        match instr.gate {
            g if !g.is_unitary() => {}
            Gate::CX => self.apply_cx(instr.q0, instr.q1),
            Gate::CZ => self.apply_cz(instr.q0, instr.q1),
            Gate::Swap => self.apply_swap(instr.q0, instr.q1),
            Gate::ECR => {
                // ECR is locally equivalent to CX; the simulator uses the CX
                // representative (the transpiler never emits bare ECR without
                // its dressing rotations, so sampled distributions agree).
                self.apply_cx(instr.q0, instr.q1);
            }
            Gate::RZZ(theta) => self.apply_rzz(theta, instr.q0, instr.q1),
            g => {
                let m = one_qubit_matrix(g);
                self.apply_one_qubit(&m, instr.q0);
            }
        }
    }

    /// Apply a uniformly random Pauli (X, Y, or Z) to qubit `q`.
    pub fn apply_random_pauli<R: Rng + ?Sized>(&mut self, q: u32, rng: &mut R) {
        let gate = match rng.gen_range(0..3) {
            0 => Gate::X,
            1 => Gate::Y,
            _ => Gate::Z,
        };
        self.apply(&Instruction::one(gate, q));
    }

    fn apply_one_qubit(&mut self, m: &[[C64; 2]; 2], q: u32) {
        let stride = 1usize << q;
        let n = self.amps.len();
        let mut i = 0usize;
        while i < n {
            if i & stride == 0 {
                let a = self.amps[i];
                let b = self.amps[i | stride];
                self.amps[i] = m[0][0] * a + m[0][1] * b;
                self.amps[i | stride] = m[1][0] * a + m[1][1] * b;
            }
            i += 1;
        }
    }

    fn apply_cx(&mut self, control: u32, target: u32) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cmask != 0 && i & tmask == 0 {
                self.amps.swap(i, i | tmask);
            }
        }
    }

    fn apply_cz(&mut self, a: u32, b: u32) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            if i & amask != 0 && i & bmask != 0 {
                self.amps[i] = -self.amps[i];
            }
        }
    }

    fn apply_swap(&mut self, a: u32, b: u32) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            if i & amask != 0 && i & bmask == 0 {
                self.amps.swap(i, (i & !amask) | bmask);
            }
        }
    }

    fn apply_rzz(&mut self, theta: f64, a: u32, b: u32) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        let plus = C64::from_polar(-theta / 2.0);
        let minus = C64::from_polar(theta / 2.0);
        for i in 0..self.amps.len() {
            let parity = ((i & amask != 0) as u8) ^ ((i & bmask != 0) as u8);
            let phase = if parity == 0 { plus } else { minus };
            self.amps[i] = self.amps[i] * phase;
        }
    }

    /// Distribution over the classical register defined by `measurements`
    /// (`(qubit, clbit)` pairs), marginalising over unmeasured qubits.
    pub fn measurement_distribution(&self, measurements: &[(u32, u32)]) -> Distribution {
        let mut dist = Distribution::new();
        for (idx, amp) in self.amps.iter().enumerate() {
            let p = amp.norm_sqr();
            if p < 1e-15 {
                continue;
            }
            let mut key = 0u64;
            for (bit_idx, &(q, _c)) in measurements.iter().enumerate() {
                if idx & (1usize << q) != 0 {
                    key |= 1 << bit_idx;
                }
            }
            *dist.entry(key).or_insert(0.0) += p;
        }
        dist
    }

    /// Sample one measurement outcome over the classical register.
    pub fn sample<R: Rng + ?Sized>(&self, measurements: &[(u32, u32)], rng: &mut R) -> u64 {
        let r: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        let mut chosen = self.amps.len() - 1;
        for (idx, amp) in self.amps.iter().enumerate() {
            acc += amp.norm_sqr();
            if acc >= r {
                chosen = idx;
                break;
            }
        }
        let mut key = 0u64;
        for (bit_idx, &(q, _c)) in measurements.iter().enumerate() {
            if chosen & (1usize << q) != 0 {
                key |= 1 << bit_idx;
            }
        }
        key
    }
}

/// 2×2 matrix of a single-qubit gate.
fn one_qubit_matrix(gate: Gate) -> [[C64; 2]; 2] {
    use std::f64::consts::FRAC_1_SQRT_2 as S;
    let z = C64::ZERO;
    let o = C64::ONE;
    match gate {
        Gate::Id | Gate::Delay(_) | Gate::Barrier => [[o, z], [z, o]],
        Gate::H => [[C64::real(S), C64::real(S)], [C64::real(S), C64::real(-S)]],
        Gate::X => [[z, o], [o, z]],
        Gate::Y => [[z, C64::new(0.0, -1.0)], [C64::I, z]],
        Gate::Z => [[o, z], [z, C64::real(-1.0)]],
        Gate::S => [[o, z], [z, C64::I]],
        Gate::Sdg => [[o, z], [z, C64::new(0.0, -1.0)]],
        Gate::T => [[o, z], [z, C64::from_polar(std::f64::consts::FRAC_PI_4)]],
        Gate::Tdg => [[o, z], [z, C64::from_polar(-std::f64::consts::FRAC_PI_4)]],
        Gate::SX => {
            [[C64::new(0.5, 0.5), C64::new(0.5, -0.5)], [C64::new(0.5, -0.5), C64::new(0.5, 0.5)]]
        }
        Gate::RX(t) => {
            let c = C64::real((t / 2.0).cos());
            let s = C64::new(0.0, -(t / 2.0).sin());
            [[c, s], [s, c]]
        }
        Gate::RY(t) => {
            let c = C64::real((t / 2.0).cos());
            let s = C64::real((t / 2.0).sin());
            [[c, -s], [s, c]]
        }
        Gate::RZ(t) => [[C64::from_polar(-t / 2.0), z], [z, C64::from_polar(t / 2.0)]],
        Gate::U(theta, phi, lambda) => {
            let c = (theta / 2.0).cos();
            let s = (theta / 2.0).sin();
            [
                [C64::real(c), C64::from_polar(lambda).scale(-s)],
                [C64::from_polar(phi).scale(s), C64::from_polar(phi + lambda).scale(c)],
            ]
        }
        g => panic!("{:?} is not a single-qubit unitary", g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationGenerator;
    use qonductor_circuit::generators::{ghz, qft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noise(n: u32, quality: f64) -> NoiseModel {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|q| (q, q + 1)).collect();
        let mut rng = StdRng::seed_from_u64(123);
        NoiseModel::new(CalibrationGenerator::with_quality(quality).generate(n, &edges, &mut rng))
    }

    #[test]
    fn bell_state_ideal_distribution() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let sim = Simulator::default();
        let dist = sim.ideal_distribution(&c);
        assert_eq!(dist.len(), 2);
        assert!((dist[&0b00] - 0.5).abs() < 1e-10);
        assert!((dist[&0b11] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn ghz_ideal_distribution_has_two_peaks() {
        let sim = Simulator::default();
        let dist = sim.ideal_distribution(&ghz(8));
        assert_eq!(dist.len(), 2);
        assert!((dist[&0] - 0.5).abs() < 1e-10);
        assert!((dist[&0b1111_1111] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn x_gate_flips_deterministically() {
        let mut c = Circuit::new(3);
        c.x(0).x(2).measure_all();
        let sim = Simulator::default();
        let dist = sim.ideal_distribution(&c);
        assert_eq!(dist.len(), 1);
        assert!((dist[&0b101] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rzz_is_diagonal_and_preserves_probabilities() {
        let mut c = Circuit::new(2);
        c.x(0).rzz(0.7, 0, 1).measure_all();
        let sim = Simulator::default();
        let dist = sim.ideal_distribution(&c);
        assert_eq!(dist.len(), 1);
        assert!((dist[&0b01] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qft_distribution_is_normalised() {
        let sim = Simulator::default();
        let dist = sim.ideal_distribution(&qft(4));
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_execution_fidelity_below_one_and_quality_ordered() {
        let sim = Simulator { trajectories: 64, ..Simulator::default() };
        let c = ghz(8);
        let mut rng = StdRng::seed_from_u64(7);
        let good = sim.execute(&c, &noise(8, 0.5), &mut rng);
        let bad = sim.execute(&c, &noise(8, 5.0), &mut rng);
        assert!(good.fidelity <= 1.0 && good.fidelity > 0.0);
        assert!(good.fidelity > bad.fidelity, "good={} bad={}", good.fidelity, bad.fidelity);
    }

    #[test]
    fn analytic_mode_handles_wide_circuits() {
        let sim = Simulator::analytic();
        let c = ghz(60);
        let mut rng = StdRng::seed_from_u64(9);
        let n = noise(60, 1.0);
        let res = sim.execute(&c, &n, &mut rng);
        assert!(res.fidelity >= 0.0 && res.fidelity <= 1.0);
        assert!(res.counts.is_empty());
        assert!(res.duration_ns > 0.0);
    }

    #[test]
    fn execution_duration_scales_with_shots() {
        let sim = Simulator::analytic();
        let mut rng = StdRng::seed_from_u64(3);
        let n = noise(8, 1.0);
        let mut c1 = ghz(8);
        c1.set_shots(1000);
        let mut c2 = ghz(8);
        c2.set_shots(4000);
        let r1 = sim.execute(&c1, &n, &mut rng);
        let r2 = sim.execute(&c2, &n, &mut rng);
        assert!((r2.duration_ns / r1.duration_ns - 4.0).abs() < 0.01);
    }

    #[test]
    fn compact_circuit_maps_back_to_physical_qubits() {
        let mut c = Circuit::new(27);
        c.h(20).cx(20, 25).measure(20, 20);
        c.measure(25, 25);
        let (compact, map) = compact_circuit(&c);
        assert_eq!(compact.num_qubits(), 2);
        assert_eq!(map, vec![20, 25]);
        let sim = Simulator::default();
        let dist = sim.ideal_distribution(&c);
        assert_eq!(dist.len(), 2); // bell pair on the two active qubits
    }

    #[test]
    fn trajectory_counts_sum_to_requested_shots() {
        let sim = Simulator { trajectories: 16, ..Simulator::default() };
        let mut rng = StdRng::seed_from_u64(21);
        let n = noise(4, 1.0);
        let mut c = ghz(4);
        c.set_shots(160);
        let counts = sim.noisy_counts(&c, &n, c.shots(), &mut rng);
        let total: f64 = counts.values().sum();
        assert!((total - 160.0).abs() < 1e-9);
    }
}
