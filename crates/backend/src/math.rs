//! Minimal complex-number arithmetic for the statevector simulator.
//!
//! Implemented locally to stay within the allowed offline crate set (no
//! `num-complex`). Only the operations the simulator needs are provided.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Complex zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A purely real complex number.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// e^{iθ}.
    pub fn from_polar(theta: f64) -> Self {
        C64 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared magnitude |z|².
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64 { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert_eq!(-z, C64::new(-3.0, 4.0));
    }

    #[test]
    fn complex_multiplication() {
        // (1 + i)(1 - i) = 2
        let a = C64::new(1.0, 1.0);
        let b = C64::new(1.0, -1.0);
        assert_eq!(a * b, C64::real(2.0));
        // i * i = -1
        assert_eq!(C64::I * C64::I, C64::real(-1.0));
    }

    #[test]
    fn polar_form() {
        let z = C64::from_polar(std::f64::consts::FRAC_PI_2);
        assert!((z.re - 0.0).abs() < 1e-12);
        assert!((z.im - 1.0).abs() < 1e-12);
    }
}
