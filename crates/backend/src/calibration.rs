//! QPU calibration data: per-qubit coherence times and error rates, per-edge
//! two-qubit gate errors, and the drift of all of these across calibration
//! cycles (§2.1 and §3 of the paper: "noise models … vary across calibration
//! cycles, leading to spatiotemporal performance variance").

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Calibration parameters of a single physical qubit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitCalibration {
    /// Energy-relaxation time T1 in microseconds.
    pub t1_us: f64,
    /// Dephasing time T2 in microseconds.
    pub t2_us: f64,
    /// Single-qubit gate (SX/X) error probability.
    pub gate_error: f64,
    /// Readout (measurement) error probability.
    pub readout_error: f64,
    /// Single-qubit gate duration in nanoseconds.
    pub gate_duration_ns: f64,
    /// Readout duration in nanoseconds.
    pub readout_duration_ns: f64,
}

impl QubitCalibration {
    /// A "typical" IBM Falcon-era qubit.
    pub fn typical() -> Self {
        QubitCalibration {
            t1_us: 100.0,
            t2_us: 80.0,
            gate_error: 3e-4,
            readout_error: 1.5e-2,
            gate_duration_ns: 35.0,
            readout_duration_ns: 700.0,
        }
    }
}

/// Calibration parameters of a two-qubit gate on a coupling-map edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeCalibration {
    /// Two-qubit gate (CX/ECR/CZ) error probability.
    pub gate_error: f64,
    /// Two-qubit gate duration in nanoseconds.
    pub gate_duration_ns: f64,
}

impl EdgeCalibration {
    /// A "typical" IBM Falcon-era CX edge.
    pub fn typical() -> Self {
        EdgeCalibration { gate_error: 8e-3, gate_duration_ns: 400.0 }
    }
}

/// A full calibration snapshot of a QPU at one calibration cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationData {
    /// Per-qubit calibration, indexed by physical qubit.
    pub qubits: Vec<QubitCalibration>,
    /// Per-edge calibration, keyed by the canonical (min, max) qubit pair.
    pub edges: BTreeMap<(u32, u32), EdgeCalibration>,
    /// Monotonically increasing calibration-cycle counter.
    pub cycle: u64,
    /// Simulated wall-clock timestamp (seconds) at which this snapshot was taken.
    pub timestamp_s: f64,
}

impl CalibrationData {
    /// Number of calibrated qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Calibration for the edge `(a, b)` (order-insensitive), if the edge exists.
    pub fn edge(&self, a: u32, b: u32) -> Option<&EdgeCalibration> {
        self.edges.get(&(a.min(b), a.max(b)))
    }

    /// Average single-qubit gate error across all qubits.
    pub fn mean_gate_error(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.gate_error))
    }

    /// Average two-qubit gate error across all edges.
    pub fn mean_two_qubit_error(&self) -> f64 {
        mean(self.edges.values().map(|e| e.gate_error))
    }

    /// Average readout error across all qubits.
    pub fn mean_readout_error(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.readout_error))
    }

    /// Average T1 in microseconds.
    pub fn mean_t1_us(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.t1_us))
    }

    /// Average T2 in microseconds.
    pub fn mean_t2_us(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.t2_us))
    }

    /// Element-wise average of several calibration snapshots. Used to build the
    /// *template QPUs* of §6 ("their calibration data are the average of all
    /// available QPUs of that model").
    ///
    /// All snapshots must have the same number of qubits and edge set; the
    /// cycle/timestamp of the first snapshot is kept.
    pub fn average(snapshots: &[&CalibrationData]) -> CalibrationData {
        assert!(!snapshots.is_empty(), "cannot average zero calibration snapshots");
        let n = snapshots[0].qubits.len();
        assert!(
            snapshots.iter().all(|s| s.qubits.len() == n),
            "all snapshots must have the same qubit count"
        );
        let k = snapshots.len() as f64;
        let qubits = (0..n)
            .map(|q| {
                let mut acc = QubitCalibration {
                    t1_us: 0.0,
                    t2_us: 0.0,
                    gate_error: 0.0,
                    readout_error: 0.0,
                    gate_duration_ns: 0.0,
                    readout_duration_ns: 0.0,
                };
                for s in snapshots {
                    let c = s.qubits[q];
                    acc.t1_us += c.t1_us;
                    acc.t2_us += c.t2_us;
                    acc.gate_error += c.gate_error;
                    acc.readout_error += c.readout_error;
                    acc.gate_duration_ns += c.gate_duration_ns;
                    acc.readout_duration_ns += c.readout_duration_ns;
                }
                QubitCalibration {
                    t1_us: acc.t1_us / k,
                    t2_us: acc.t2_us / k,
                    gate_error: acc.gate_error / k,
                    readout_error: acc.readout_error / k,
                    gate_duration_ns: acc.gate_duration_ns / k,
                    readout_duration_ns: acc.readout_duration_ns / k,
                }
            })
            .collect();
        let mut edges = BTreeMap::new();
        for key in snapshots[0].edges.keys() {
            let mut err = 0.0;
            let mut dur = 0.0;
            let mut count = 0.0;
            for s in snapshots {
                if let Some(e) = s.edges.get(key) {
                    err += e.gate_error;
                    dur += e.gate_duration_ns;
                    count += 1.0;
                }
            }
            if count > 0.0 {
                edges.insert(
                    *key,
                    EdgeCalibration { gate_error: err / count, gate_duration_ns: dur / count },
                );
            }
        }
        CalibrationData {
            qubits,
            edges,
            cycle: snapshots[0].cycle,
            timestamp_s: snapshots[0].timestamp_s,
        }
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// A QPU's explicit recalibration schedule: the current calibration *epoch*
/// (one epoch per calibration cycle, so the epoch of the device's live
/// [`CalibrationData`] is always `epoch`) and the simulated instant of the
/// next recalibration boundary. Estimates computed against one epoch are
/// invalid past the boundary (§7: schedules that cross a calibration-cycle
/// boundary must be partitioned and re-estimated), so the scheduler and the
/// batch engine read this clock to know how far ahead a plan may reach.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationClock {
    /// Current calibration epoch (mirrors [`CalibrationData::cycle`]).
    pub epoch: u64,
    /// Simulated time (seconds) of the next recalibration boundary.
    pub next_boundary_s: f64,
    /// Seconds between recalibration boundaries.
    pub period_s: f64,
}

impl CalibrationClock {
    /// A fresh clock at epoch 0 whose first boundary is one period from the
    /// simulated epoch (boundaries sit on multiples of the period).
    pub fn new(period_s: f64) -> Self {
        assert!(period_s > 0.0, "calibration period must be positive");
        CalibrationClock { epoch: 0, next_boundary_s: period_s, period_s }
    }

    /// `true` if a recalibration boundary lies at or before `t_s`.
    pub fn boundary_due(&self, t_s: f64) -> bool {
        t_s >= self.next_boundary_s
    }

    /// Advance one epoch past a recalibration at `timestamp_s`: the epoch
    /// increments and the next boundary moves to the first period multiple
    /// strictly after the recalibration instant.
    pub fn advance_past(&mut self, timestamp_s: f64) {
        self.epoch += 1;
        while self.next_boundary_s <= timestamp_s {
            self.next_boundary_s += self.period_s;
        }
    }

    /// Reset to a new period (epoch unchanged): the next boundary becomes the
    /// first multiple of the new period strictly after `now_s`.
    pub fn reschedule(&mut self, period_s: f64, now_s: f64) {
        assert!(period_s > 0.0, "calibration period must be positive");
        self.period_s = period_s;
        self.next_boundary_s = (now_s / period_s).floor() * period_s + period_s;
    }
}

/// Generator of realistic calibration snapshots and their drift over time.
///
/// `quality` scales error rates: 1.0 is a typical device, values < 1.0 are
/// better-than-typical devices, values > 1.0 are noisier devices. This is how
/// the named fleet reproduces the spatial fidelity variance of Figure 2(b).
#[derive(Debug, Clone, Copy)]
pub struct CalibrationGenerator {
    /// Error-rate scale factor of the device (lower is better).
    pub quality: f64,
    /// Relative spread of per-qubit parameters around the device mean.
    pub spread: f64,
    /// Relative magnitude of drift applied at each new calibration cycle.
    pub drift: f64,
}

impl Default for CalibrationGenerator {
    fn default() -> Self {
        CalibrationGenerator { quality: 1.0, spread: 0.35, drift: 0.15 }
    }
}

impl CalibrationGenerator {
    /// Create a generator with a given device quality factor.
    pub fn with_quality(quality: f64) -> Self {
        CalibrationGenerator { quality, ..Default::default() }
    }

    /// Generate an initial calibration snapshot for `num_qubits` qubits and the
    /// given coupling-map `edges`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        num_qubits: u32,
        edges: &[(u32, u32)],
        rng: &mut R,
    ) -> CalibrationData {
        let typical = QubitCalibration::typical();
        let typical_edge = EdgeCalibration::typical();
        let qubits = (0..num_qubits)
            .map(|_| QubitCalibration {
                t1_us: (typical.t1_us / self.quality) * self.jitter(rng),
                t2_us: (typical.t2_us / self.quality) * self.jitter(rng),
                gate_error: (typical.gate_error * self.quality) * self.jitter(rng),
                readout_error: (typical.readout_error * self.quality) * self.jitter(rng),
                gate_duration_ns: typical.gate_duration_ns * self.jitter_small(rng),
                readout_duration_ns: typical.readout_duration_ns * self.jitter_small(rng),
            })
            .collect();
        let edges = edges
            .iter()
            .map(|&(a, b)| {
                (
                    (a.min(b), a.max(b)),
                    EdgeCalibration {
                        gate_error: (typical_edge.gate_error * self.quality) * self.jitter(rng),
                        gate_duration_ns: typical_edge.gate_duration_ns * self.jitter_small(rng),
                    },
                )
            })
            .collect();
        CalibrationData { qubits, edges, cycle: 0, timestamp_s: 0.0 }
    }

    /// Produce the next calibration cycle from `previous`: every parameter takes
    /// a bounded multiplicative random walk step, modelling the unpredictable
    /// fluctuation between calibration cycles reported by the paper.
    pub fn drift_cycle<R: Rng + ?Sized>(
        &self,
        previous: &CalibrationData,
        timestamp_s: f64,
        rng: &mut R,
    ) -> CalibrationData {
        let step =
            |v: f64, rng: &mut R| -> f64 { v * (1.0 + rng.gen_range(-self.drift..self.drift)) };
        let qubits = previous
            .qubits
            .iter()
            .map(|q| QubitCalibration {
                t1_us: step(q.t1_us, rng).max(1.0),
                t2_us: step(q.t2_us, rng).max(1.0),
                gate_error: step(q.gate_error, rng).clamp(1e-6, 0.5),
                readout_error: step(q.readout_error, rng).clamp(1e-5, 0.5),
                gate_duration_ns: q.gate_duration_ns,
                readout_duration_ns: q.readout_duration_ns,
            })
            .collect();
        let edges = previous
            .edges
            .iter()
            .map(|(&k, e)| {
                (
                    k,
                    EdgeCalibration {
                        gate_error: step(e.gate_error, rng).clamp(1e-5, 0.8),
                        gate_duration_ns: e.gate_duration_ns,
                    },
                )
            })
            .collect();
        CalibrationData { qubits, edges, cycle: previous.cycle + 1, timestamp_s }
    }

    fn jitter<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        1.0 + rng.gen_range(-self.spread..self.spread)
    }

    fn jitter_small<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        1.0 + rng.gen_range(-0.05..0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_edges(n: u32) -> Vec<(u32, u32)> {
        (0..n - 1).map(|q| (q, q + 1)).collect()
    }

    #[test]
    fn generated_calibration_has_expected_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let cal = CalibrationGenerator::default().generate(5, &linear_edges(5), &mut rng);
        assert_eq!(cal.num_qubits(), 5);
        assert_eq!(cal.edges.len(), 4);
        assert!(cal.edge(1, 2).is_some());
        assert!(cal.edge(2, 1).is_some(), "edge lookup must be order-insensitive");
        assert!(cal.edge(0, 4).is_none());
    }

    #[test]
    fn quality_factor_scales_errors() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = linear_edges(20);
        let good = CalibrationGenerator::with_quality(0.5).generate(20, &edges, &mut rng);
        let bad = CalibrationGenerator::with_quality(2.0).generate(20, &edges, &mut rng);
        assert!(good.mean_two_qubit_error() < bad.mean_two_qubit_error());
        assert!(good.mean_readout_error() < bad.mean_readout_error());
        assert!(good.mean_t1_us() > bad.mean_t1_us());
    }

    #[test]
    fn drift_changes_values_but_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let gen = CalibrationGenerator::default();
        let c0 = gen.generate(8, &linear_edges(8), &mut rng);
        let c1 = gen.drift_cycle(&c0, 3600.0, &mut rng);
        assert_eq!(c1.cycle, 1);
        assert_eq!(c1.num_qubits(), c0.num_qubits());
        assert_eq!(c1.edges.len(), c0.edges.len());
        assert_ne!(c0.mean_two_qubit_error(), c1.mean_two_qubit_error());
        // Drift is bounded: no error escapes its clamp range.
        assert!(c1.qubits.iter().all(|q| q.gate_error <= 0.5 && q.gate_error >= 1e-6));
    }

    #[test]
    fn average_is_element_wise_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let gen = CalibrationGenerator::default();
        let a = gen.generate(4, &linear_edges(4), &mut rng);
        let b = gen.generate(4, &linear_edges(4), &mut rng);
        let avg = CalibrationData::average(&[&a, &b]);
        let expected = (a.qubits[0].t1_us + b.qubits[0].t1_us) / 2.0;
        assert!((avg.qubits[0].t1_us - expected).abs() < 1e-9);
        let e_expected =
            (a.edge(0, 1).unwrap().gate_error + b.edge(0, 1).unwrap().gate_error) / 2.0;
        assert!((avg.edge(0, 1).unwrap().gate_error - e_expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn average_of_nothing_panics() {
        CalibrationData::average(&[]);
    }

    #[test]
    fn clock_advances_epoch_and_boundary() {
        let mut clock = CalibrationClock::new(3600.0);
        assert_eq!(clock.epoch, 0);
        assert_eq!(clock.next_boundary_s, 3600.0);
        assert!(!clock.boundary_due(3599.9));
        assert!(clock.boundary_due(3600.0));
        clock.advance_past(3600.0);
        assert_eq!(clock.epoch, 1);
        assert_eq!(clock.next_boundary_s, 7200.0);
        // A late recalibration (boundary long overdue) skips to the first
        // boundary after the recalibration instant.
        clock.advance_past(20_000.0);
        assert_eq!(clock.epoch, 2);
        assert_eq!(clock.next_boundary_s, 21_600.0);
    }

    #[test]
    fn clock_reschedule_snaps_to_the_new_period() {
        let mut clock = CalibrationClock::new(3600.0);
        clock.advance_past(3600.0);
        clock.reschedule(600.0, 3700.0);
        assert_eq!(clock.epoch, 1, "rescheduling keeps the epoch");
        assert_eq!(clock.next_boundary_s, 4200.0);
        assert_eq!(clock.period_s, 600.0);
    }
}
