//! Hellinger fidelity between measurement-outcome distributions — the quantum
//! performance metric used throughout the paper (§2.1).

use std::collections::HashMap;

/// A probability distribution (or histogram of counts) over measurement
/// bitstrings, keyed by the integer value of the measured classical register.
pub type Distribution = HashMap<u64, f64>;

/// Normalise a histogram of counts into a probability distribution.
/// Returns an empty map if the total weight is zero.
pub fn normalize(counts: &Distribution) -> Distribution {
    let total: f64 = counts.values().sum();
    if total <= 0.0 {
        return Distribution::new();
    }
    counts.iter().map(|(&k, &v)| (k, v / total)).collect()
}

/// Hellinger distance H(p, q) = sqrt(1 - Σ sqrt(p_i q_i)) between two
/// (automatically normalised) distributions.
pub fn hellinger_distance(p: &Distribution, q: &Distribution) -> f64 {
    let p = normalize(p);
    let q = normalize(q);
    let mut bc = 0.0; // Bhattacharyya coefficient
    for (k, &pv) in &p {
        if let Some(&qv) = q.get(k) {
            bc += (pv * qv).sqrt();
        }
    }
    (1.0 - bc.min(1.0)).max(0.0).sqrt()
}

/// Hellinger fidelity `(1 - H²)²` between two distributions, matching Qiskit's
/// `hellinger_fidelity`. Ranges in [0, 1]; 1 means identical distributions.
pub fn hellinger_fidelity(p: &Distribution, q: &Distribution) -> f64 {
    let h = hellinger_distance(p, q);
    let f = (1.0 - h * h).powi(2);
    f.clamp(0.0, 1.0)
}

/// Convenience constructor for a distribution from `(bitstring, weight)` pairs.
pub fn distribution_from(pairs: &[(u64, f64)]) -> Distribution {
    pairs.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_unit_fidelity() {
        let p = distribution_from(&[(0, 0.5), (3, 0.5)]);
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert!(hellinger_distance(&p, &p).abs() < 1e-9);
    }

    #[test]
    fn disjoint_distributions_have_zero_fidelity() {
        let p = distribution_from(&[(0, 1.0)]);
        let q = distribution_from(&[(1, 1.0)]);
        assert!((hellinger_fidelity(&p, &q)).abs() < 1e-12);
        assert!((hellinger_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_normalised_automatically() {
        let p = distribution_from(&[(0, 512.0), (3, 512.0)]);
        let q = distribution_from(&[(0, 0.5), (3, 0.5)]);
        assert!((hellinger_fidelity(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let p = distribution_from(&[(0, 0.5), (1, 0.5)]);
        let q = distribution_from(&[(0, 0.5), (2, 0.5)]);
        let f = hellinger_fidelity(&p, &q);
        assert!(f > 0.0 && f < 1.0);
        // Bhattacharyya coefficient is 0.5, so H² = 0.5 and fidelity = 0.25.
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_yields_zero_fidelity() {
        let p = Distribution::new();
        let q = distribution_from(&[(0, 1.0)]);
        assert_eq!(hellinger_fidelity(&p, &q), 0.0);
    }

    #[test]
    fn fidelity_is_symmetric() {
        let p = distribution_from(&[(0, 0.7), (1, 0.2), (2, 0.1)]);
        let q = distribution_from(&[(0, 0.4), (1, 0.4), (3, 0.2)]);
        assert!((hellinger_fidelity(&p, &q) - hellinger_fidelity(&q, &p)).abs() < 1e-12);
    }
}
