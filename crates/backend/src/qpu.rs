//! QPU device models, technologies, and the *template QPUs* used by the
//! resource estimator (§6: a template QPU adopts the basis gate set and
//! coupling map of a QPU model, with calibration data averaged over all
//! devices of that model).

use crate::calibration::{CalibrationClock, CalibrationData, CalibrationGenerator};
use crate::noise::NoiseModel;
use crate::topology::CouplingMap;
use qonductor_circuit::Gate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Quantum hardware technology families (§2.2 heterogeneity dimension 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QpuTechnology {
    /// Superconducting transmon devices (IBM, Google).
    Superconducting,
    /// Trapped-ion devices (IonQ, Quantinuum) — all-to-all connectivity,
    /// slower gates, higher fidelity.
    TrappedIon,
    /// Neutral-atom devices (QuEra, Pasqal).
    NeutralAtom,
}

/// The coarse *resource class* a federated scheduler places against: the
/// billing and capacity tier of a device, one level above
/// [`QpuTechnology`]. Real hardware maps technology → class directly;
/// `Simulator` marks classically emulated capacity that shares a hardware
/// model's topology but bills (and degrades) differently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Superconducting hardware (transmon-style devices).
    #[default]
    Superconducting,
    /// Trapped-ion hardware.
    IonTrap,
    /// Classical simulator capacity emulating a hardware model.
    Simulator,
}

impl ResourceClass {
    /// The resource class real hardware of `technology` belongs to.
    pub fn of_technology(technology: QpuTechnology) -> Self {
        match technology {
            QpuTechnology::Superconducting | QpuTechnology::NeutralAtom => {
                ResourceClass::Superconducting
            }
            QpuTechnology::TrappedIon => ResourceClass::IonTrap,
        }
    }

    /// Default per-shot cost (arbitrary credit units) for this class:
    /// ion traps bill a premium over superconducting devices, simulators
    /// are near-free. Providers override per device.
    pub fn default_cost_per_shot(self) -> f64 {
        match self {
            ResourceClass::Superconducting => 1.0,
            ResourceClass::IonTrap => 3.0,
            ResourceClass::Simulator => 0.05,
        }
    }
}

/// A scheduled capacity hole: the device accepts no new work in
/// `[start_s, end_s)`. The planner treats window starts as boundaries
/// (like recalibration) and parks straddling jobs until the window ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// Window start (inclusive), seconds of simulated time.
    pub start_s: f64,
    /// Window end (exclusive), seconds of simulated time.
    pub end_s: f64,
}

impl MaintenanceWindow {
    /// `true` if `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }
}

/// A QPU *model* (architecture family): basis gates, coupling map, technology.
/// Multiple physical devices share one model (heterogeneity dimension 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpuModel {
    /// Model name, e.g. "falcon-r5.11".
    pub name: String,
    /// Hardware technology.
    pub technology: QpuTechnology,
    /// Qubit connectivity.
    pub coupling_map: CouplingMap,
    /// Native basis gates (canonical lowercase gate names).
    pub basis_gates: Vec<String>,
}

impl QpuModel {
    /// IBM Falcon-style 27-qubit superconducting model.
    pub fn falcon_27() -> Self {
        QpuModel {
            name: "falcon-r5.11".into(),
            technology: QpuTechnology::Superconducting,
            coupling_map: CouplingMap::heavy_hex_27(),
            basis_gates: vec!["rz".into(), "sx".into(), "x".into(), "cx".into()],
        }
    }

    /// IBM Falcon-style 16-qubit superconducting model (Guadalupe class).
    pub fn falcon_16() -> Self {
        QpuModel {
            name: "falcon-r4p".into(),
            technology: QpuTechnology::Superconducting,
            coupling_map: CouplingMap::heavy_hex_16(),
            basis_gates: vec!["rz".into(), "sx".into(), "x".into(), "cx".into()],
        }
    }

    /// IBM Falcon-style 7-qubit superconducting model (Lagos/Nairobi class).
    pub fn falcon_7() -> Self {
        QpuModel {
            name: "falcon-r5.11h".into(),
            technology: QpuTechnology::Superconducting,
            coupling_map: CouplingMap::heavy_hex_7(),
            basis_gates: vec!["rz".into(), "sx".into(), "x".into(), "cx".into()],
        }
    }

    /// Trapped-ion model with all-to-all connectivity over `n` qubits.
    pub fn trapped_ion(n: u32) -> Self {
        QpuModel {
            name: format!("ion-{n}"),
            technology: QpuTechnology::TrappedIon,
            coupling_map: CouplingMap::full(n),
            basis_gates: vec!["rz".into(), "rx".into(), "ry".into(), "rzz".into()],
        }
    }

    /// Number of qubits of this model.
    pub fn num_qubits(&self) -> u32 {
        self.coupling_map.num_qubits()
    }

    /// `true` if `gate` is native on this model.
    pub fn is_native(&self, gate: Gate) -> bool {
        match gate {
            Gate::Measure | Gate::Barrier | Gate::Delay(_) | Gate::Id => true,
            g => self.basis_gates.iter().any(|b| b == g.name()),
        }
    }
}

/// A physical QPU: a named instance of a model with its own calibration history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Qpu {
    /// Device name, e.g. "ibm_cairo".
    pub name: String,
    /// Architecture model.
    pub model: QpuModel,
    /// Current calibration snapshot.
    pub calibration: CalibrationData,
    /// Device quality factor used when regenerating calibration (lower = better).
    pub quality: f64,
    /// The device's recalibration schedule: current epoch and next boundary
    /// (IBM devices calibrate roughly daily; the simulation default is hourly
    /// to exercise crossovers). Invariant: `clock.epoch == calibration.cycle`.
    pub clock: CalibrationClock,
    /// Billing/capacity tier of the device (federation dimension). Defaults
    /// to the class implied by the model's technology.
    #[serde(default)]
    pub resource_class: ResourceClass,
    /// Per-shot cost in provider credit units. Only consulted when a
    /// scheduler enables its cost objective; the default plane never reads it.
    #[serde(default)]
    pub cost_per_shot: f64,
    /// Provider region the device is hosted in (outages are scoped per
    /// region in the federation scenarios).
    #[serde(default)]
    pub region: String,
    /// Historical availability score in `[0, 1]` (federation metadata; used
    /// by placement strategies for tie-breaking documentation, not by the
    /// default plane).
    #[serde(default)]
    pub reliability_score: f64,
    /// Scheduled maintenance windows, ascending by start time.
    #[serde(default)]
    pub maintenance: Vec<MaintenanceWindow>,
}

/// Default region devices are hosted in when a provider does not say.
pub const DEFAULT_REGION: &str = "us-east";

/// Default reliability score for a freshly provisioned device.
pub const DEFAULT_RELIABILITY: f64 = 0.99;

impl Qpu {
    /// Create a QPU of the given model with freshly generated calibration data.
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        model: QpuModel,
        quality: f64,
        rng: &mut R,
    ) -> Self {
        let calibration = CalibrationGenerator::with_quality(quality).generate(
            model.num_qubits(),
            model.coupling_map.edges(),
            rng,
        );
        let resource_class = ResourceClass::of_technology(model.technology);
        Qpu {
            name: name.into(),
            model,
            calibration,
            quality,
            clock: CalibrationClock::new(3600.0),
            resource_class,
            cost_per_shot: resource_class.default_cost_per_shot(),
            region: DEFAULT_REGION.into(),
            reliability_score: DEFAULT_RELIABILITY,
            maintenance: Vec::new(),
        }
    }

    /// Override the resource class (e.g. to mark a hardware model's
    /// topology as simulator capacity) and reset the per-shot cost to the
    /// class default.
    pub fn with_resource_class(mut self, class: ResourceClass) -> Self {
        self.resource_class = class;
        self.cost_per_shot = class.default_cost_per_shot();
        self
    }

    /// Override the per-shot cost.
    pub fn with_cost_per_shot(mut self, cost: f64) -> Self {
        self.cost_per_shot = cost;
        self
    }

    /// Override the hosting region.
    pub fn with_region(mut self, region: impl Into<String>) -> Self {
        self.region = region.into();
        self
    }

    /// Override the reliability score (clamped to `[0, 1]`).
    pub fn with_reliability(mut self, score: f64) -> Self {
        self.reliability_score = score.clamp(0.0, 1.0);
        self
    }

    /// Schedule a maintenance window (kept sorted by start time).
    pub fn add_maintenance_window(&mut self, start_s: f64, end_s: f64) {
        debug_assert!(end_s > start_s, "maintenance window must be non-empty");
        self.maintenance.push(MaintenanceWindow { start_s, end_s });
        self.maintenance.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    }

    /// `true` if the device is inside a maintenance window at `t`.
    pub fn in_maintenance(&self, t: f64) -> bool {
        self.maintenance.iter().any(|w| w.contains(t))
    }

    /// Start of the next maintenance window strictly after `now_s`, or
    /// `None` when nothing further is scheduled.
    pub fn next_maintenance_start_after(&self, now_s: f64) -> Option<f64> {
        self.maintenance.iter().map(|w| w.start_s).filter(|&s| s > now_s).min_by(f64::total_cmp)
    }

    /// End of the maintenance window covering `t`, or `None` when the
    /// device is up at `t`.
    pub fn maintenance_end_at(&self, t: f64) -> Option<f64> {
        self.maintenance.iter().find(|w| w.contains(t)).map(|w| w.end_s)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.model.num_qubits()
    }

    /// The noise model induced by the current calibration.
    pub fn noise_model(&self) -> NoiseModel {
        NoiseModel::new(self.calibration.clone())
    }

    /// Advance to the next calibration cycle (drifting all parameters) and
    /// step the epoch clock past `timestamp_s`. The clock's epoch stays in
    /// lock-step with [`CalibrationData::cycle`].
    pub fn recalibrate<R: Rng + ?Sized>(&mut self, timestamp_s: f64, rng: &mut R) {
        let gen = CalibrationGenerator { quality: self.quality, ..Default::default() };
        self.calibration = gen.drift_cycle(&self.calibration, timestamp_s, rng);
        self.clock.advance_past(timestamp_s);
        debug_assert_eq!(self.clock.epoch, self.calibration.cycle);
    }

    /// Seconds between calibration cycles.
    pub fn calibration_period_s(&self) -> f64 {
        self.clock.period_s
    }

    /// Replace the recalibration cadence (next boundary snaps to the first
    /// multiple of the new period after `now_s`).
    pub fn set_calibration_period(&mut self, period_s: f64, now_s: f64) {
        self.clock.reschedule(period_s, now_s);
    }

    /// Timestamp (seconds) of the next calibration boundary strictly after
    /// `now_s`, as the clock will actually fire it: never earlier than the
    /// clock's own next boundary (boundaries the clock already consumed are
    /// gone, even if `now_s` lies before them).
    pub fn next_calibration_after(&self, now_s: f64) -> f64 {
        let mut boundary = self.clock.next_boundary_s;
        while boundary <= now_s {
            boundary += self.clock.period_s;
        }
        boundary
    }
}

/// A template QPU: one per model, carrying the model's coupling map / basis
/// gates and the *average* calibration over all devices of that model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemplateQpu {
    /// The represented model.
    pub model: QpuModel,
    /// Averaged calibration data.
    pub calibration: CalibrationData,
    /// Names of the devices averaged into this template.
    pub member_devices: Vec<String>,
}

impl TemplateQpu {
    /// Build the template QPUs for a set of devices, grouping by model name.
    pub fn from_devices(devices: &[Qpu]) -> Vec<TemplateQpu> {
        let mut by_model: Vec<(String, Vec<&Qpu>)> = Vec::new();
        for d in devices {
            match by_model.iter_mut().find(|(name, _)| *name == d.model.name) {
                Some((_, group)) => group.push(d),
                None => by_model.push((d.model.name.clone(), vec![d])),
            }
        }
        by_model
            .into_iter()
            .map(|(_, group)| {
                let snapshots: Vec<&CalibrationData> =
                    group.iter().map(|d| &d.calibration).collect();
                TemplateQpu {
                    model: group[0].model.clone(),
                    calibration: CalibrationData::average(&snapshots),
                    member_devices: group.iter().map(|d| d.name.clone()).collect(),
                }
            })
            .collect()
    }

    /// Noise model induced by the averaged calibration.
    pub fn noise_model(&self) -> NoiseModel {
        NoiseModel::new(self.calibration.clone())
    }

    /// Number of qubits of the template's model.
    pub fn num_qubits(&self) -> u32 {
        self.model.num_qubits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn falcon_models_have_expected_sizes() {
        assert_eq!(QpuModel::falcon_27().num_qubits(), 27);
        assert_eq!(QpuModel::falcon_16().num_qubits(), 16);
        assert_eq!(QpuModel::falcon_7().num_qubits(), 7);
    }

    #[test]
    fn basis_gate_membership() {
        let m = QpuModel::falcon_27();
        assert!(m.is_native(Gate::CX));
        assert!(m.is_native(Gate::RZ(0.4)));
        assert!(m.is_native(Gate::Measure));
        assert!(!m.is_native(Gate::H));
        assert!(!m.is_native(Gate::RZZ(0.4)));
        let ion = QpuModel::trapped_ion(11);
        assert!(ion.is_native(Gate::RZZ(0.4)));
        assert!(!ion.is_native(Gate::CX));
    }

    #[test]
    fn qpu_calibration_matches_topology() {
        let mut rng = StdRng::seed_from_u64(8);
        let qpu = Qpu::new("ibm_test", QpuModel::falcon_27(), 1.0, &mut rng);
        assert_eq!(qpu.calibration.num_qubits(), 27);
        assert_eq!(qpu.calibration.edges.len(), qpu.model.coupling_map.edges().len());
    }

    #[test]
    fn recalibration_advances_cycle() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut qpu = Qpu::new("ibm_test", QpuModel::falcon_7(), 1.0, &mut rng);
        let before = qpu.calibration.clone();
        assert_eq!(qpu.clock.epoch, 0);
        assert_eq!(qpu.clock.next_boundary_s, 3600.0);
        qpu.recalibrate(3600.0, &mut rng);
        assert_eq!(qpu.calibration.cycle, before.cycle + 1);
        assert_eq!(qpu.clock.epoch, qpu.calibration.cycle, "clock stays in lock-step");
        assert_eq!(qpu.clock.next_boundary_s, 7200.0);
        assert_ne!(qpu.calibration.mean_two_qubit_error(), before.mean_two_qubit_error());
    }

    #[test]
    fn next_calibration_boundary() {
        let mut rng = StdRng::seed_from_u64(8);
        let qpu = Qpu::new("ibm_test", QpuModel::falcon_7(), 1.0, &mut rng);
        assert_eq!(qpu.next_calibration_after(0.0), 3600.0);
        assert_eq!(qpu.next_calibration_after(100.0), 3600.0);
        assert_eq!(qpu.next_calibration_after(3600.0), 7200.0);
        // Consumed boundaries are gone: after a late recalibration the next
        // boundary is the clock's, even for a `now_s` in the past.
        let mut qpu = qpu;
        let mut rng = StdRng::seed_from_u64(9);
        qpu.recalibrate(20_000.0, &mut rng);
        assert_eq!(qpu.next_calibration_after(4_000.0), 21_600.0);
    }

    #[test]
    fn resource_class_defaults_follow_technology() {
        let mut rng = StdRng::seed_from_u64(8);
        let sc = Qpu::new("ibm_test", QpuModel::falcon_27(), 1.0, &mut rng);
        assert_eq!(sc.resource_class, ResourceClass::Superconducting);
        assert_eq!(sc.cost_per_shot, 1.0);
        let ion = Qpu::new("ion_test", QpuModel::trapped_ion(11), 1.0, &mut rng);
        assert_eq!(ion.resource_class, ResourceClass::IonTrap);
        assert_eq!(ion.cost_per_shot, 3.0);
        let sim = Qpu::new("sim_test", QpuModel::falcon_27(), 1.0, &mut rng)
            .with_resource_class(ResourceClass::Simulator);
        assert_eq!(sim.cost_per_shot, 0.05);
        let custom = sim.with_cost_per_shot(0.2);
        assert_eq!(custom.cost_per_shot, 0.2);
    }

    #[test]
    fn maintenance_windows_sort_and_query() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut qpu = Qpu::new("ibm_test", QpuModel::falcon_7(), 1.0, &mut rng);
        assert!(!qpu.in_maintenance(100.0));
        assert_eq!(qpu.next_maintenance_start_after(0.0), None);
        qpu.add_maintenance_window(500.0, 700.0);
        qpu.add_maintenance_window(100.0, 200.0);
        assert_eq!(qpu.maintenance[0].start_s, 100.0, "windows kept sorted");
        assert!(qpu.in_maintenance(150.0));
        assert!(!qpu.in_maintenance(200.0), "end is exclusive");
        assert_eq!(qpu.next_maintenance_start_after(0.0), Some(100.0));
        assert_eq!(qpu.next_maintenance_start_after(100.0), Some(500.0));
        assert_eq!(qpu.next_maintenance_start_after(600.0), None);
        assert_eq!(qpu.maintenance_end_at(550.0), Some(700.0));
        assert_eq!(qpu.maintenance_end_at(300.0), None);
    }

    #[test]
    fn maintenance_boundary_instants_are_half_open() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut qpu = Qpu::new("ibm_edge", QpuModel::falcon_7(), 1.0, &mut rng);
        qpu.add_maintenance_window(100.0, 200.0);
        // A batch snapshot taken exactly at `start` must see the device masked.
        assert!(qpu.in_maintenance(100.0), "start instant is inclusive");
        assert_eq!(qpu.maintenance_end_at(100.0), Some(200.0));
        // A job dispatched exactly at `end` must not be masked.
        assert!(!qpu.in_maintenance(200.0), "end instant is exclusive");
        assert_eq!(qpu.maintenance_end_at(200.0), None);
        // The window itself agrees with the device-level queries.
        let w = MaintenanceWindow { start_s: 100.0, end_s: 200.0 };
        assert!(w.contains(100.0));
        assert!(!w.contains(200.0));
        // `next_maintenance_start_after` is strictly-after: queried exactly at
        // `start` it reports the next window, never the one just entered.
        assert_eq!(qpu.next_maintenance_start_after(100.0 - f64::EPSILON * 128.0), Some(100.0));
        assert_eq!(qpu.next_maintenance_start_after(100.0), None);
        // Back-to-back windows: the shared instant belongs to the later one.
        qpu.add_maintenance_window(200.0, 250.0);
        assert!(qpu.in_maintenance(200.0), "shared boundary belongs to the later window");
        assert_eq!(qpu.maintenance_end_at(200.0), Some(250.0));
        assert!(!qpu.in_maintenance(250.0));
    }

    #[test]
    fn template_qpus_group_by_model_and_average() {
        let mut rng = StdRng::seed_from_u64(10);
        let devices = vec![
            Qpu::new("ibm_a", QpuModel::falcon_27(), 0.8, &mut rng),
            Qpu::new("ibm_b", QpuModel::falcon_27(), 1.4, &mut rng),
            Qpu::new("ibm_c", QpuModel::falcon_7(), 1.0, &mut rng),
        ];
        let templates = TemplateQpu::from_devices(&devices);
        assert_eq!(templates.len(), 2);
        let t27 = templates.iter().find(|t| t.num_qubits() == 27).unwrap();
        assert_eq!(t27.member_devices.len(), 2);
        let expected = (devices[0].calibration.mean_two_qubit_error()
            + devices[1].calibration.mean_two_qubit_error())
            / 2.0;
        assert!((t27.calibration.mean_two_qubit_error() - expected).abs() < 1e-9);
    }
}
