//! Named QPU fleets replicating the IBM Quantum devices used in the paper's
//! evaluation (§8): the 27-qubit Falcons (cairo, hanoi, kolkata, mumbai,
//! algiers, auckland), the 16-qubit guadalupe, and the 7-qubit lagos / nairobi.
//!
//! Device *quality factors* are chosen so that the spatial fidelity variance of
//! Figure 2(b) (≈38% best-to-worst spread on a 12-qubit GHZ circuit) is
//! reproduced, with auckland the best device and algiers the worst.

use crate::qpu::{Qpu, QpuModel, ResourceClass, TemplateQpu};
use crate::queue::JobQueue;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A QPU plus its job queue — one entry of the simulated quantum cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetMember {
    /// The device.
    pub qpu: Qpu,
    /// The device's job queue (simulated time flow).
    pub queue: JobQueue,
}

/// A collection of QPUs forming the quantum side of the hybrid cluster.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fleet {
    members: Vec<FleetMember>,
}

/// `(name, quality, model)` specification of the default 8-QPU evaluation fleet.
/// Lower quality value = better device. The ordering of qualities reproduces the
/// Fig. 2(b) fidelity ordering: auckland > hanoi > cairo > hanoi… etc.
fn default_fleet_spec() -> Vec<(&'static str, f64, QpuModel)> {
    vec![
        ("auckland", 0.70, QpuModel::falcon_27()),
        ("hanoi", 0.85, QpuModel::falcon_27()),
        ("cairo", 1.00, QpuModel::falcon_27()),
        ("kolkata", 1.20, QpuModel::falcon_27()),
        ("mumbai", 1.25, QpuModel::falcon_27()),
        ("algiers", 1.40, QpuModel::falcon_27()),
        ("guadalupe", 1.10, QpuModel::falcon_16()),
        ("lagos", 0.95, QpuModel::falcon_7()),
    ]
}

impl Fleet {
    /// The default 8-QPU fleet used by the end-to-end evaluation (Figures 6, 8).
    pub fn ibm_default<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let members = default_fleet_spec()
            .into_iter()
            .map(|(name, quality, model)| FleetMember {
                qpu: Qpu::new(format!("ibm_{name}"), model, quality, rng),
                queue: JobQueue::new(),
            })
            .collect();
        Fleet { members }
    }

    /// The six 27-qubit Falcons of the Figure 2(b) spatial-variance experiment.
    pub fn falcon_six<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let members = default_fleet_spec()
            .into_iter()
            .filter(|(_, _, m)| m.num_qubits() == 27)
            .map(|(name, quality, model)| FleetMember {
                qpu: Qpu::new(format!("ibm_{name}"), model, quality, rng),
                queue: JobQueue::new(),
            })
            .collect();
        Fleet { members }
    }

    /// A scaled fleet of `n` 27-qubit devices with qualities interpolated over
    /// the default range — used by the cluster-size scalability study (Fig. 9a/9c).
    pub fn scaled<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n >= 1);
        let members = (0..n)
            .map(|i| {
                let quality = 0.7 + 0.7 * (i as f64 / n.max(2) as f64);
                FleetMember {
                    qpu: Qpu::new(format!("qpu_{i:02}"), QpuModel::falcon_27(), quality, rng),
                    queue: JobQueue::new(),
                }
            })
            .collect();
        Fleet { members }
    }

    /// A heterogeneous federation-style fleet mixing resource classes and
    /// regions: four superconducting Falcons split across `us-east` and
    /// `eu-central`, one premium all-to-all ion trap, and one near-free
    /// simulator mirroring the Falcon topology. Used by the federation
    /// scenarios (cost × fidelity × turnaround placement studies).
    pub fn heterogeneous<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let spec: Vec<(&str, f64, QpuModel, ResourceClass, &str, f64)> = vec![
            (
                "auckland",
                0.70,
                QpuModel::falcon_27(),
                ResourceClass::Superconducting,
                "us-east",
                1.2,
            ),
            ("hanoi", 0.85, QpuModel::falcon_27(), ResourceClass::Superconducting, "us-east", 1.0),
            (
                "cairo",
                1.00,
                QpuModel::falcon_27(),
                ResourceClass::Superconducting,
                "eu-central",
                0.8,
            ),
            (
                "kolkata",
                1.20,
                QpuModel::falcon_27(),
                ResourceClass::Superconducting,
                "eu-central",
                0.6,
            ),
            ("ion_forte", 0.60, QpuModel::trapped_ion(25), ResourceClass::IonTrap, "us-east", 3.5),
            ("sim_aer", 1.35, QpuModel::falcon_27(), ResourceClass::Simulator, "eu-central", 0.05),
        ];
        let members = spec
            .into_iter()
            .map(|(name, quality, model, class, region, cost)| FleetMember {
                qpu: Qpu::new(name, model, quality, rng)
                    .with_resource_class(class)
                    .with_region(region)
                    .with_cost_per_shot(cost),
                queue: JobQueue::new(),
            })
            .collect();
        Fleet { members }
    }

    /// Build a fleet from explicit members.
    pub fn from_members(members: Vec<FleetMember>) -> Self {
        Fleet { members }
    }

    /// Number of QPUs in the fleet.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// All members.
    pub fn members(&self) -> &[FleetMember] {
        &self.members
    }

    /// Mutable access to all members.
    pub fn members_mut(&mut self) -> &mut [FleetMember] {
        &mut self.members
    }

    /// Append an elastic member at the fleet tail (autoscaler grow path) and
    /// return its flat index. Tail-append keeps every existing flat QPU index
    /// stable, which is what lets the journaled control plane scale capacity
    /// without renumbering in-flight placements.
    pub fn push_member(&mut self, member: FleetMember) -> usize {
        self.members.push(member);
        self.members.len() - 1
    }

    /// Remove and return the tail member (autoscaler shrink path), or `None`
    /// if the fleet is empty or the tail still has work — a queued, running,
    /// or undrained-completion member must not be retired, or its jobs (and
    /// their completion records) would vanish mid-flight.
    pub fn pop_member(&mut self) -> Option<FleetMember> {
        let tail = self.members.last()?;
        if tail.queue.pending_len() > 0
            || tail.queue.is_busy()
            || !tail.queue.completed().is_empty()
        {
            return None;
        }
        self.members.pop()
    }

    /// Member by device name.
    pub fn by_name(&self, name: &str) -> Option<&FleetMember> {
        self.members.iter().find(|m| m.qpu.name == name)
    }

    /// Mutable member by device name.
    pub fn by_name_mut(&mut self, name: &str) -> Option<&mut FleetMember> {
        self.members.iter_mut().find(|m| m.qpu.name == name)
    }

    /// Template QPUs (one per model) over the fleet.
    pub fn template_qpus(&self) -> Vec<TemplateQpu> {
        let devices: Vec<Qpu> = self.members.iter().map(|m| m.qpu.clone()).collect();
        TemplateQpu::from_devices(&devices)
    }

    /// Largest QPU size in the fleet.
    pub fn max_qubits(&self) -> u32 {
        self.members.iter().map(|m| m.qpu.num_qubits()).max().unwrap_or(0)
    }

    /// Advance every member's queue to `target_s` and recalibrate devices at
    /// every calibration boundary the advance crosses: each elapsed boundary
    /// is its own epoch, stamped at the boundary instant.
    pub fn advance_to<R: Rng + ?Sized>(&mut self, target_s: f64, rng: &mut R) {
        for m in &mut self.members {
            m.queue.advance_to(target_s);
        }
        self.sync_calibrations(target_s, rng);
    }

    /// Recalibrate (only) the devices whose boundary has passed by `now_s`
    /// without advancing any queue — plan-time freshness for callers that
    /// compute estimates between queue advances.
    pub fn sync_calibrations<R: Rng + ?Sized>(&mut self, now_s: f64, rng: &mut R) {
        for m in &mut self.members {
            while m.qpu.clock.boundary_due(now_s) {
                let boundary = m.qpu.clock.next_boundary_s;
                m.qpu.recalibrate(boundary, rng);
            }
        }
    }

    /// Fleet-wide calibration epoch: the sum of every member's epoch. It is
    /// monotonic and changes whenever *any* device recalibrates, so estimate
    /// tables stamped with it are stale iff the fleet epoch moved on.
    pub fn calibration_epoch(&self) -> u64 {
        self.members.iter().map(|m| m.qpu.clock.epoch).sum()
    }

    /// Earliest upcoming recalibration boundary across the fleet, or `None`
    /// for an empty fleet.
    pub fn next_calibration_boundary_s(&self) -> Option<f64> {
        self.members.iter().map(|m| m.qpu.clock.next_boundary_s).min_by(|a, b| a.total_cmp(b))
    }

    /// Per-QPU shot costs, indexed like [`Fleet::members`]. The vector a
    /// cost-aware scheduler attaches to its [`SchedulingProblem`]
    /// (`qonductor_scheduler`) as the cost objective lane.
    pub fn cost_per_shot_per_qpu(&self) -> Vec<f64> {
        self.members.iter().map(|m| m.qpu.cost_per_shot).collect()
    }

    /// Schedule a maintenance window on every device hosted in `region` —
    /// a seeded regional outage. Returns how many devices were affected.
    pub fn schedule_region_outage(&mut self, region: &str, start_s: f64, end_s: f64) -> usize {
        let mut affected = 0;
        for m in &mut self.members {
            if m.qpu.region == region {
                m.qpu.add_maintenance_window(start_s, end_s);
                affected += 1;
            }
        }
        affected
    }

    /// Indices of members currently inside a maintenance window at `t`.
    pub fn in_maintenance_at(&self, t: f64) -> Vec<usize> {
        (0..self.members.len()).filter(|&i| self.members[i].qpu.in_maintenance(t)).collect()
    }

    /// The same fleet with every member recalibrating every `period_s`
    /// seconds (next boundaries snap to multiples of the new period after
    /// `now_s`) — drift scenarios shorten the cadence to force crossovers.
    pub fn with_calibration_period(mut self, period_s: f64, now_s: f64) -> Self {
        for m in &mut self.members {
            m.qpu.set_calibration_period(period_s, now_s);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_fleet_has_eight_named_devices() {
        let mut rng = StdRng::seed_from_u64(1);
        let fleet = Fleet::ibm_default(&mut rng);
        assert_eq!(fleet.len(), 8);
        assert!(fleet.by_name("ibm_auckland").is_some());
        assert!(fleet.by_name("ibm_algiers").is_some());
        assert!(fleet.by_name("ibm_lagos").is_some());
        assert!(fleet.by_name("does_not_exist").is_none());
        assert_eq!(fleet.max_qubits(), 27);
    }

    #[test]
    fn falcon_six_are_all_27_qubits() {
        let mut rng = StdRng::seed_from_u64(2);
        let fleet = Fleet::falcon_six(&mut rng);
        assert_eq!(fleet.len(), 6);
        assert!(fleet.members().iter().all(|m| m.qpu.num_qubits() == 27));
    }

    #[test]
    fn quality_ordering_reflected_in_calibration() {
        let mut rng = StdRng::seed_from_u64(3);
        let fleet = Fleet::falcon_six(&mut rng);
        let best = fleet.by_name("ibm_auckland").unwrap();
        let worst = fleet.by_name("ibm_algiers").unwrap();
        assert!(
            best.qpu.calibration.mean_two_qubit_error()
                < worst.qpu.calibration.mean_two_qubit_error()
        );
    }

    #[test]
    fn scaled_fleet_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [4usize, 8, 16] {
            let fleet = Fleet::scaled(n, &mut rng);
            assert_eq!(fleet.len(), n);
        }
    }

    #[test]
    fn heterogeneous_fleet_mixes_classes_and_regions() {
        let mut rng = StdRng::seed_from_u64(21);
        let fleet = Fleet::heterogeneous(&mut rng);
        assert_eq!(fleet.len(), 6);
        let classes: Vec<ResourceClass> =
            fleet.members().iter().map(|m| m.qpu.resource_class).collect();
        assert!(classes.contains(&ResourceClass::Superconducting));
        assert!(classes.contains(&ResourceClass::IonTrap));
        assert!(classes.contains(&ResourceClass::Simulator));
        let costs = fleet.cost_per_shot_per_qpu();
        assert_eq!(costs.len(), 6);
        assert!(costs.iter().all(|&c| c > 0.0));
        // The simulator is the cheapest resource, the ion trap the priciest.
        let sim = fleet.by_name("sim_aer").unwrap();
        assert!(costs.iter().all(|&c| c >= sim.qpu.cost_per_shot));
        let ion = fleet.by_name("ion_forte").unwrap();
        assert!(costs.iter().all(|&c| c <= ion.qpu.cost_per_shot));
    }

    #[test]
    fn region_outage_holes_only_that_region() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut fleet = Fleet::heterogeneous(&mut rng);
        let affected = fleet.schedule_region_outage("eu-central", 1000.0, 2000.0);
        assert_eq!(affected, 3);
        assert!(fleet.in_maintenance_at(500.0).is_empty());
        let down = fleet.in_maintenance_at(1500.0);
        assert_eq!(down.len(), 3);
        assert!(down.iter().all(|&i| fleet.members()[i].qpu.region == "eu-central"));
        assert!(fleet.in_maintenance_at(2000.0).is_empty(), "window end is exclusive");
    }

    #[test]
    fn template_qpus_cover_models() {
        let mut rng = StdRng::seed_from_u64(5);
        let fleet = Fleet::ibm_default(&mut rng);
        let templates = fleet.template_qpus();
        // Three models in the default fleet: falcon-27, falcon-16, falcon-7.
        assert_eq!(templates.len(), 3);
        let t27 = templates.iter().find(|t| t.num_qubits() == 27).unwrap();
        assert_eq!(t27.member_devices.len(), 6);
    }

    #[test]
    fn advance_recalibrates_after_period() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut fleet = Fleet::ibm_default(&mut rng);
        let before_cycle = fleet.members()[0].qpu.calibration.cycle;
        fleet.advance_to(100.0, &mut rng);
        assert_eq!(fleet.members()[0].qpu.calibration.cycle, before_cycle);
        fleet.advance_to(4000.0, &mut rng);
        assert_eq!(fleet.members()[0].qpu.calibration.cycle, before_cycle + 1);
        // The calibration snapshot is stamped at the boundary, not the target.
        assert_eq!(fleet.members()[0].qpu.calibration.timestamp_s, 3600.0);
    }

    #[test]
    fn advance_crosses_every_elapsed_boundary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut fleet = Fleet::ibm_default(&mut rng);
        assert_eq!(fleet.calibration_epoch(), 0);
        assert_eq!(fleet.next_calibration_boundary_s(), Some(3600.0));
        // Jumping 3 periods ahead recalibrates three times per member.
        fleet.advance_to(3.5 * 3600.0, &mut rng);
        assert_eq!(fleet.calibration_epoch(), 3 * fleet.len() as u64);
        assert!(fleet.members().iter().all(|m| m.qpu.calibration.cycle == 3));
        assert_eq!(fleet.next_calibration_boundary_s(), Some(4.0 * 3600.0));
    }

    #[test]
    fn sync_calibrations_refreshes_without_touching_queues() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut fleet = Fleet::ibm_default(&mut rng);
        fleet.members_mut()[0].queue.enqueue(1, 50.0);
        fleet.sync_calibrations(4000.0, &mut rng);
        assert!(fleet.members().iter().all(|m| m.qpu.clock.epoch == 1));
        // The queue did not advance: the enqueued job is still pending.
        assert_eq!(fleet.members()[0].queue.pending_len(), 1);
    }

    #[test]
    fn push_and_pop_member_keep_existing_indices_stable() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut fleet = Fleet::falcon_six(&mut rng);
        let names: Vec<String> = fleet.members().iter().map(|m| m.qpu.name.clone()).collect();
        let elastic = FleetMember {
            qpu: Qpu::new("sim_elastic_0", QpuModel::falcon_27(), 1.3, &mut rng)
                .with_resource_class(ResourceClass::Simulator),
            queue: JobQueue::new(),
        };
        let index = fleet.push_member(elastic);
        assert_eq!(index, 6, "elastic capacity appends at the tail");
        for (i, name) in names.iter().enumerate() {
            assert_eq!(&fleet.members()[i].qpu.name, name, "existing indices untouched");
        }
        let popped = fleet.pop_member().expect("idle tail retires");
        assert_eq!(popped.qpu.name, "sim_elastic_0");
        assert_eq!(fleet.len(), 6);
    }

    #[test]
    fn pop_member_refuses_a_tail_with_work() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut fleet = Fleet::scaled(2, &mut rng);
        fleet.members_mut()[1].queue.enqueue(7, 50.0);
        assert!(fleet.pop_member().is_none(), "queued work blocks retirement");
        fleet.members_mut()[1].queue.advance_to(10.0);
        assert!(fleet.pop_member().is_none(), "a running job blocks retirement");
        fleet.members_mut()[1].queue.advance_to(100.0);
        assert!(fleet.pop_member().is_none(), "undrained completions block retirement");
        fleet.members_mut()[1].queue.take_completed();
        assert!(fleet.pop_member().is_some(), "a drained idle tail retires");
        assert!(Fleet::from_members(Vec::new()).pop_member().is_none(), "empty fleet");
    }

    #[test]
    fn calibration_period_override_moves_boundaries() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut fleet = Fleet::ibm_default(&mut rng).with_calibration_period(600.0, 0.0);
        assert_eq!(fleet.next_calibration_boundary_s(), Some(600.0));
        fleet.advance_to(650.0, &mut rng);
        assert_eq!(fleet.calibration_epoch(), fleet.len() as u64);
        assert_eq!(fleet.next_calibration_boundary_s(), Some(1200.0));
    }
}
