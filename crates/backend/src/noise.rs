//! Noise model derived from calibration data.
//!
//! The model captures the error channels of §2.1: stochastic gate (Pauli)
//! errors, decoherence-induced damping over the circuit duration (T1/T2), and
//! readout errors. It drives both the noisy simulator and the analytic
//! estimated-success-probability (ESP) fidelity model used for wide circuits
//! and by the numerical baseline estimator.

use crate::calibration::CalibrationData;
use qonductor_circuit::{Circuit, Gate};
use serde::{Deserialize, Serialize};

/// A calibration-derived noise model for one QPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    calibration: CalibrationData,
}

impl NoiseModel {
    /// Build a noise model from a calibration snapshot.
    pub fn new(calibration: CalibrationData) -> Self {
        NoiseModel { calibration }
    }

    /// The underlying calibration snapshot.
    pub fn calibration(&self) -> &CalibrationData {
        &self.calibration
    }

    /// Error probability of a single-qubit gate on physical qubit `q`.
    /// Virtual gates (RZ, barriers) are error-free.
    pub fn one_qubit_error(&self, q: u32) -> f64 {
        self.calibration
            .qubits
            .get(q as usize)
            .map(|c| c.gate_error)
            .unwrap_or_else(|| self.calibration.mean_gate_error())
    }

    /// Error probability of a two-qubit gate on the edge `(a, b)`. If the edge
    /// is not calibrated (e.g. the circuit was not routed to this device), the
    /// device-mean two-qubit error inflated by the coupling distance is used.
    pub fn two_qubit_error(&self, a: u32, b: u32) -> f64 {
        match self.calibration.edge(a, b) {
            Some(e) => e.gate_error,
            None => (self.calibration.mean_two_qubit_error() * 1.5).min(0.9),
        }
    }

    /// Readout error probability of qubit `q`.
    pub fn readout_error(&self, q: u32) -> f64 {
        self.calibration
            .qubits
            .get(q as usize)
            .map(|c| c.readout_error)
            .unwrap_or_else(|| self.calibration.mean_readout_error())
    }

    /// Probability that an instruction introduces an error.
    pub fn instruction_error(&self, gate: Gate, q0: u32, q1: u32) -> f64 {
        if gate.is_virtual() {
            return 0.0;
        }
        match gate {
            Gate::Measure => self.readout_error(q0),
            Gate::Delay(_) => 0.0,
            g if g.is_two_qubit() => self.two_qubit_error(q0, q1),
            _ => self.one_qubit_error(q0),
        }
    }

    /// Duration of an instruction in nanoseconds according to the calibration.
    /// SWAP gates count as three CX durations (their standard decomposition).
    pub fn instruction_duration_ns(&self, gate: Gate, q0: u32, q1: u32) -> f64 {
        let qubit = |q: u32| {
            self.calibration
                .qubits
                .get(q as usize)
                .copied()
                .unwrap_or_else(crate::calibration::QubitCalibration::typical)
        };
        match gate {
            Gate::Barrier | Gate::RZ(_) | Gate::Id => 0.0,
            Gate::Delay(ns) => ns,
            Gate::Measure => qubit(q0).readout_duration_ns,
            g if g.is_two_qubit() => {
                let d = self.calibration.edge(q0, q1).map(|e| e.gate_duration_ns).unwrap_or_else(
                    || crate::calibration::EdgeCalibration::typical().gate_duration_ns,
                );
                if matches!(g, Gate::Swap) {
                    3.0 * d
                } else {
                    d
                }
            }
            _ => qubit(q0).gate_duration_ns,
        }
    }

    /// Estimated total execution duration of one shot of `circuit` in
    /// nanoseconds: the critical-path sum of instruction durations.
    pub fn circuit_duration_ns(&self, circuit: &Circuit) -> f64 {
        let n = circuit.num_qubits() as usize;
        let mut finish = vec![0.0f64; n];
        for instr in circuit.instructions() {
            if instr.gate == Gate::Barrier {
                let m = finish.iter().cloned().fold(0.0, f64::max);
                for f in finish.iter_mut() {
                    *f = m;
                }
                continue;
            }
            let d = self.instruction_duration_ns(instr.gate, instr.q0, instr.q1);
            let q0 = instr.q0 as usize;
            if instr.gate.is_two_qubit() {
                let q1 = instr.q1 as usize;
                let start = finish[q0].max(finish[q1]);
                finish[q0] = start + d;
                finish[q1] = start + d;
            } else {
                finish[q0] += d;
            }
        }
        finish.iter().cloned().fold(0.0, f64::max)
    }

    /// Decoherence survival factor for a qubit idling (or operating) for
    /// `duration_ns`: `exp(-t/T1) · exp(-t/T2)` combined as the standard
    /// approximation `exp(-t·(1/T1 + 1/T2)/2)` on the damping envelope.
    pub fn decoherence_factor(&self, q: u32, duration_ns: f64) -> f64 {
        let cal = self
            .calibration
            .qubits
            .get(q as usize)
            .copied()
            .unwrap_or_else(crate::calibration::QubitCalibration::typical);
        let t_us = duration_ns / 1000.0;
        let rate = 0.5 * (1.0 / cal.t1_us + 1.0 / cal.t2_us);
        (-t_us * rate).exp()
    }

    /// Analytic estimated success probability (ESP) of a circuit on this
    /// device: the product of per-instruction success probabilities and the
    /// per-qubit decoherence survival over the circuit duration.
    ///
    /// This is the scalable fidelity proxy used for circuits too wide for the
    /// statevector simulator and by the numerical baseline of Figure 7(b).
    pub fn estimated_success_probability(&self, circuit: &Circuit) -> f64 {
        let mut esp = 1.0f64;
        for instr in circuit.instructions() {
            let p_err = self.instruction_error(instr.gate, instr.q0, instr.q1);
            esp *= 1.0 - p_err;
        }
        let duration = self.circuit_duration_ns(circuit);
        for &q in circuit.active_qubits().iter() {
            esp *= self.decoherence_factor(q, duration * 0.5);
        }
        esp.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationGenerator;
    use qonductor_circuit::generators::ghz;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(n: u32, quality: f64, seed: u64) -> NoiseModel {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|q| (q, q + 1)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        NoiseModel::new(CalibrationGenerator::with_quality(quality).generate(n, &edges, &mut rng))
    }

    #[test]
    fn virtual_gates_are_error_free() {
        let m = model(4, 1.0, 1);
        assert_eq!(m.instruction_error(Gate::RZ(0.3), 0, u32::MAX), 0.0);
        assert_eq!(m.instruction_error(Gate::Barrier, 0, u32::MAX), 0.0);
        assert!(m.instruction_error(Gate::CX, 0, 1) > 0.0);
    }

    #[test]
    fn esp_decreases_with_circuit_size() {
        let m = model(20, 1.0, 2);
        let small = m.estimated_success_probability(&ghz(4));
        let large = m.estimated_success_probability(&ghz(16));
        assert!(small > large, "small={small} large={large}");
        assert!(small <= 1.0 && large >= 0.0);
    }

    #[test]
    fn esp_decreases_with_device_quality() {
        let good = model(12, 0.5, 3).estimated_success_probability(&ghz(12));
        let bad = model(12, 3.0, 3).estimated_success_probability(&ghz(12));
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn duration_accumulates_on_critical_path() {
        let m = model(3, 1.0, 4);
        let mut c = Circuit::new(3);
        c.x(0);
        let d1 = m.circuit_duration_ns(&c);
        c.cx(0, 1);
        let d2 = m.circuit_duration_ns(&c);
        assert!(d2 > d1);
        // A gate on an independent qubit does not extend the critical path when
        // it is shorter than the existing one.
        c.x(2);
        let d3 = m.circuit_duration_ns(&c);
        assert!((d3 - d2).abs() < 1e-9);
    }

    #[test]
    fn swap_costs_three_cx() {
        let m = model(3, 1.0, 5);
        let cx = m.instruction_duration_ns(Gate::CX, 0, 1);
        let swap = m.instruction_duration_ns(Gate::Swap, 0, 1);
        assert!((swap - 3.0 * cx).abs() < 1e-9);
    }

    #[test]
    fn decoherence_factor_bounds() {
        let m = model(2, 1.0, 6);
        assert!((m.decoherence_factor(0, 0.0) - 1.0).abs() < 1e-12);
        let f = m.decoherence_factor(0, 1_000_000.0); // 1 ms ≫ T1
        assert!(f < 0.01);
    }
}
