//! # qonductor-backend
//!
//! QPU device substrate for the Qonductor orchestrator: calibration data and
//! its drift over calibration cycles, qubit-connectivity topologies, QPU and
//! template-QPU models, calibration-derived noise models, a noisy circuit
//! simulator (statevector + Monte-Carlo Pauli trajectories, plus an analytic
//! estimated-success-probability path for wide circuits), Hellinger fidelity,
//! per-QPU job queues with simulated time, and named device fleets replicating
//! the IBM devices used by the paper's evaluation.

#![warn(missing_docs)]

pub mod calibration;
pub mod fleet;
pub mod hellinger;
pub mod math;
pub mod noise;
pub mod qpu;
pub mod queue;
pub mod simulator;
pub mod topology;

pub use calibration::{
    CalibrationClock, CalibrationData, CalibrationGenerator, EdgeCalibration, QubitCalibration,
};
pub use fleet::{Fleet, FleetMember};
pub use hellinger::{hellinger_fidelity, Distribution};
pub use noise::NoiseModel;
pub use qpu::{MaintenanceWindow, Qpu, QpuModel, QpuTechnology, ResourceClass, TemplateQpu};
pub use queue::{CompletedJob, JobQueue, QueuedJob};
pub use simulator::{ExecutionResult, FidelityMode, Simulator, Statevector};
pub use topology::CouplingMap;
