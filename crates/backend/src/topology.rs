//! QPU qubit-connectivity topologies (coupling maps).
//!
//! The modelled architectures cover the heterogeneity dimensions of §2.2:
//! linear / ring / grid generic devices and the IBM-style heavy-hex lattices
//! used by the 27-qubit Falcon, 65-qubit Hummingbird, and 127-qubit Eagle models.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An undirected qubit coupling map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplingMap {
    num_qubits: u32,
    /// Canonical (min, max) edge list, sorted and deduplicated.
    edges: Vec<(u32, u32)>,
}

impl CouplingMap {
    /// Build a coupling map from an explicit edge list.
    pub fn new(num_qubits: u32, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut canon: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a < num_qubits && b < num_qubits, "edge ({a},{b}) out of range");
                assert_ne!(a, b, "self-loop edges are not allowed");
                (a.min(b), a.max(b))
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        CouplingMap { num_qubits, edges: canon }
    }

    /// A 1-D chain of `n` qubits.
    pub fn linear(n: u32) -> Self {
        assert!(n >= 1);
        Self::new(n, (0..n.saturating_sub(1)).map(|q| (q, q + 1)))
    }

    /// A ring of `n` qubits.
    pub fn ring(n: u32) -> Self {
        assert!(n >= 3);
        Self::new(n, (0..n).map(|q| (q, (q + 1) % n)))
    }

    /// A `rows × cols` 2-D grid.
    pub fn grid(rows: u32, cols: u32) -> Self {
        assert!(rows >= 1 && cols >= 1);
        let idx = |r: u32, c: u32| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Self::new(rows * cols, edges)
    }

    /// All-to-all connectivity over `n` qubits (trapped-ion style devices).
    pub fn full(n: u32) -> Self {
        assert!(n >= 1);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Self::new(n, edges)
    }

    /// The IBM 27-qubit Falcon heavy-hex coupling map (e.g. cairo, hanoi,
    /// kolkata, mumbai, algiers, auckland).
    pub fn heavy_hex_27() -> Self {
        // Edge list of the IBM Falcon r5.11 27-qubit heavy-hex lattice.
        let edges = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        Self::new(27, edges)
    }

    /// A 16-qubit heavy-hex-like map (Guadalupe-style device).
    pub fn heavy_hex_16() -> Self {
        let edges = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
        ];
        Self::new(16, edges)
    }

    /// A 7-qubit heavy-hex-like map (Falcon r5.11H: lagos / nairobi style).
    pub fn heavy_hex_7() -> Self {
        let edges = [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)];
        Self::new(7, edges)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The canonical edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// `true` if `a` and `b` are directly coupled.
    pub fn are_coupled(&self, a: u32, b: u32) -> bool {
        let key = (a.min(b), a.max(b));
        self.edges.binary_search(&key).is_ok()
    }

    /// Direct neighbours of qubit `q`.
    pub fn neighbors(&self, q: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for &(a, b) in &self.edges {
            if a == q {
                out.push(b);
            } else if b == q {
                out.push(a);
            }
        }
        out
    }

    /// Degree of qubit `q`.
    pub fn degree(&self, q: u32) -> usize {
        self.neighbors(q).len()
    }

    /// All-pairs shortest-path distance matrix computed with BFS from every
    /// qubit. `u32::MAX` marks unreachable pairs.
    pub fn distance_matrix(&self) -> Vec<Vec<u32>> {
        let n = self.num_qubits as usize;
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (start, row) in dist.iter_mut().enumerate() {
            row[start] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                let du = row[u];
                for &v in &adj[u] {
                    if row[v] == u32::MAX {
                        row[v] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// Shortest-path distance between two qubits (`None` if disconnected).
    pub fn distance(&self, a: u32, b: u32) -> Option<u32> {
        let d = self.distance_matrix()[a as usize][b as usize];
        if d == u32::MAX {
            None
        } else {
            Some(d)
        }
    }

    /// `true` if every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        self.distance_matrix()[0].iter().all(|&d| d != u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_structure() {
        let m = CouplingMap::linear(5);
        assert_eq!(m.num_qubits(), 5);
        assert_eq!(m.edges().len(), 4);
        assert!(m.are_coupled(2, 3));
        assert!(m.are_coupled(3, 2));
        assert!(!m.are_coupled(0, 4));
        assert_eq!(m.distance(0, 4), Some(4));
    }

    #[test]
    fn ring_wraps_around() {
        let m = CouplingMap::ring(6);
        assert!(m.are_coupled(5, 0));
        assert_eq!(m.distance(0, 3), Some(3));
        assert_eq!(m.distance(0, 5), Some(1));
    }

    #[test]
    fn grid_adjacency() {
        let m = CouplingMap::grid(3, 4);
        assert_eq!(m.num_qubits(), 12);
        assert!(m.are_coupled(0, 1));
        assert!(m.are_coupled(0, 4));
        assert!(!m.are_coupled(0, 5));
        assert_eq!(m.distance(0, 11), Some(5));
    }

    #[test]
    fn full_connectivity() {
        let m = CouplingMap::full(5);
        assert_eq!(m.edges().len(), 10);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(m.distance(a, b), Some(1));
                }
            }
        }
    }

    #[test]
    fn heavy_hex_27_is_connected_and_sparse() {
        let m = CouplingMap::heavy_hex_27();
        assert_eq!(m.num_qubits(), 27);
        assert_eq!(m.edges().len(), 28);
        assert!(m.is_connected());
        // Heavy-hex degree is at most 3.
        for q in 0..27 {
            assert!(m.degree(q) <= 3, "qubit {q} has degree {}", m.degree(q));
        }
    }

    #[test]
    fn heavy_hex_variants_connected() {
        assert!(CouplingMap::heavy_hex_16().is_connected());
        assert!(CouplingMap::heavy_hex_7().is_connected());
    }

    #[test]
    fn duplicate_and_reversed_edges_are_canonicalised() {
        let m = CouplingMap::new(3, vec![(0, 1), (1, 0), (1, 2), (1, 2)]);
        assert_eq!(m.edges().len(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        CouplingMap::new(2, vec![(0, 5)]);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        CouplingMap::new(3, vec![(1, 1)]);
    }

    #[test]
    fn disconnected_map_detected() {
        let m = CouplingMap::new(4, vec![(0, 1), (2, 3)]);
        assert!(!m.is_connected());
        assert_eq!(m.distance(0, 3), None);
    }
}
